//! `Gdf`: the block-level dataflow graph with block-flow and macro-flow edges.
//!
//! The dataflow graph is built from [`SeqGraph`] once hierarchical
//! declustering has decided which sequential elements belong to which block
//! (Sect. IV-D).  Every node is either a block or a multi-bit port; every
//! edge carries two latency→bits histograms:
//!
//! * **block flow** (`E_df^b`): a BFS starts simultaneously from all
//!   components of block *i* and traverses only *glue logic* (sequential
//!   elements not assigned to any block). When a component of block *j* is
//!   reached, the bit width of its predecessor on the path is added to the
//!   bin of the path latency.
//! * **macro flow** (`E_df^m`): the same process between the *macros* of the
//!   blocks, allowing the search to cross every sequential element except
//!   macros.

use crate::affinity::AffinityMatrix;
use crate::histogram::FlowHistogram;
use crate::seqgraph::{SeqGraph, SeqNodeId, SeqNodeKind};
use netlist::HeapSize;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Assignment of sequential-graph nodes to dataflow blocks.
///
/// `block_of[s]` is the block index of sequential node `s`, or `None` when
/// the node is glue logic (not part of any block). Port nodes should also be
/// `None`; they become their own dataflow nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockAssignment {
    /// Number of blocks.
    pub num_blocks: usize,
    /// Block index per sequential node (indexed by `SeqNodeId`).
    pub block_of: Vec<Option<usize>>,
    /// Human-readable block names (hierarchy paths), one per block.
    pub block_names: Vec<String>,
}

impl BlockAssignment {
    /// Creates an assignment where every node is glue logic.
    pub fn empty(gseq: &SeqGraph, num_blocks: usize) -> Self {
        Self {
            num_blocks,
            block_of: vec![None; gseq.num_nodes()],
            block_names: (0..num_blocks).map(|i| format!("block_{i}")).collect(),
        }
    }

    /// Assigns a sequential node to a block.
    ///
    /// # Panics
    ///
    /// Panics if the block index is out of range.
    pub fn assign(&mut self, node: SeqNodeId, block: usize) {
        assert!(block < self.num_blocks, "block index out of range");
        self.block_of[node.0 as usize] = Some(block);
    }

    /// Block of a node, if any.
    pub fn block(&self, node: SeqNodeId) -> Option<usize> {
        self.block_of[node.0 as usize]
    }

    /// All sequential nodes assigned to `block`.
    pub fn members(&self, block: usize) -> Vec<SeqNodeId> {
        self.block_of
            .iter()
            .enumerate()
            .filter_map(|(i, b)| (*b == Some(block)).then_some(SeqNodeId(i as u32)))
            .collect()
    }
}

/// A node of the dataflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataflowNode {
    /// A block of the current floorplanning level.
    Block {
        /// Block index (into the [`BlockAssignment`]).
        index: usize,
        /// Block name.
        name: String,
    },
    /// A multi-bit primary port.
    Port {
        /// The sequential node of the port array.
        seq_node: SeqNodeId,
        /// Port base name.
        name: String,
        /// Bit width.
        width: u64,
    },
}

impl DataflowNode {
    /// Name of the node (block name or port base name).
    pub fn name(&self) -> &str {
        match self {
            DataflowNode::Block { name, .. } => name,
            DataflowNode::Port { name, .. } => name,
        }
    }

    /// Returns `true` for block nodes.
    pub fn is_block(&self) -> bool {
        matches!(self, DataflowNode::Block { .. })
    }
}

/// An edge of the dataflow graph, holding the two flow histograms.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DataflowEdge {
    /// Block-flow histogram (paths through glue logic only).
    pub block_flow: FlowHistogram,
    /// Macro-flow histogram (macro-to-macro paths through any non-macro node).
    pub macro_flow: FlowHistogram,
}

impl DataflowEdge {
    /// Blended affinity: `λ·score(block_flow) + (1−λ)·score(macro_flow)`.
    pub fn affinity(&self, lambda: f64, k: u32) -> f64 {
        lambda * self.block_flow.score(k) + (1.0 - lambda) * self.macro_flow.score(k)
    }

    /// Returns `true` when neither histogram carries any flow.
    pub fn is_empty(&self) -> bool {
        self.block_flow.is_empty() && self.macro_flow.is_empty()
    }
}

/// The dataflow graph `Gdf`.
///
/// Nodes `0..num_blocks` are the blocks (in [`BlockAssignment`] order),
/// followed by one node per multi-bit port array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowGraph {
    nodes: Vec<DataflowNode>,
    /// Flat row-major edge map: `edges[i * n + j]` is the edge `i → j`.
    edges: Vec<DataflowEdge>,
    num_blocks: usize,
}

/// Parameters for dataflow-graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataflowConfig {
    /// Maximum latency explored by the flow searches (BFS depth bound).
    pub max_latency: u32,
    /// Minimum port width for a port array to become a dataflow node.
    pub min_port_bits: u64,
}

impl Default for DataflowConfig {
    fn default() -> Self {
        Self { max_latency: 8, min_port_bits: 1 }
    }
}

impl DataflowGraph {
    /// Builds the dataflow graph for a given block assignment.
    // the flow-search loops index `edges` from inside the hit callback, which
    // an enumerate() rewrite cannot express
    #[allow(clippy::needless_range_loop)]
    pub fn build(gseq: &SeqGraph, assignment: &BlockAssignment, config: &DataflowConfig) -> Self {
        let num_blocks = assignment.num_blocks;
        let mut nodes: Vec<DataflowNode> = (0..num_blocks)
            .map(|i| DataflowNode::Block {
                index: i,
                name: assignment
                    .block_names
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("block_{i}")),
            })
            .collect();
        // port nodes (only those not swallowed by a block and wide enough)
        let mut df_of_seq: Vec<Option<usize>> = vec![None; gseq.num_nodes()];
        for (id, node) in gseq.iter() {
            if node.kind == SeqNodeKind::Port
                && assignment.block(id).is_none()
                && node.width >= config.min_port_bits
            {
                df_of_seq[id.0 as usize] = Some(nodes.len());
                nodes.push(DataflowNode::Port {
                    seq_node: id,
                    name: node.name.clone(),
                    width: node.width,
                });
            }
        }
        // blocks: map member seq nodes to their block's df index
        for (i, b) in assignment.block_of.iter().enumerate() {
            if let Some(block) = b {
                df_of_seq[i] = Some(*block);
            }
        }

        let n = nodes.len();
        let mut edges = vec![DataflowEdge::default(); n * n];

        // ---- block flow ---------------------------------------------------
        // For every dataflow node, BFS from all its member sequential nodes,
        // traversing only glue logic (seq nodes with no dataflow node).
        for src_df in 0..n {
            let sources: Vec<usize> =
                (0..gseq.num_nodes()).filter(|&s| df_of_seq[s] == Some(src_df)).collect();
            if sources.is_empty() {
                continue;
            }
            Self::flow_search(
                gseq,
                &sources,
                |s| df_of_seq[s].is_none(), // traverse glue only
                |s| df_of_seq[s],
                config.max_latency,
                |dst_df, latency, bits| {
                    if dst_df != src_df {
                        edges[src_df * n + dst_df].block_flow.add(latency, bits);
                    }
                },
            );
        }

        // ---- macro flow ---------------------------------------------------
        // For every block, BFS from its macros, traversing every node except
        // macros, recording hits on macros of other blocks.
        let is_macro: Vec<bool> = (0..gseq.num_nodes())
            .map(|i| gseq.node(SeqNodeId(i as u32)).kind == SeqNodeKind::Macro)
            .collect();
        for src_df in 0..n {
            let sources: Vec<usize> = (0..gseq.num_nodes())
                .filter(|&s| df_of_seq[s] == Some(src_df) && is_macro[s])
                .collect();
            if sources.is_empty() {
                continue;
            }
            Self::flow_search(
                gseq,
                &sources,
                |s| !is_macro[s], // traverse anything but macros
                |s| if is_macro[s] { df_of_seq[s] } else { None },
                config.max_latency,
                |dst_df, latency, bits| {
                    if dst_df != src_df {
                        edges[src_df * n + dst_df].macro_flow.add(latency, bits);
                    }
                },
            );
        }

        Self { nodes, edges, num_blocks }
    }

    /// Generic flow search: BFS from `sources`, continuing through nodes for
    /// which `can_traverse` is true, and invoking `record(dst, latency, bits)`
    /// whenever `target_of` maps a reached node to a dataflow node.  `bits` is
    /// the width of the predecessor node on the path, per the paper.
    fn flow_search<T, G, R>(
        gseq: &SeqGraph,
        sources: &[usize],
        mut can_traverse: T,
        mut target_of: G,
        max_latency: u32,
        mut record: R,
    ) where
        T: FnMut(usize) -> bool,
        G: FnMut(usize) -> Option<usize>,
        R: FnMut(usize, u32, u64),
    {
        let n = gseq.num_nodes();
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        for &s in sources {
            if dist[s] == u32::MAX {
                dist[s] = 0;
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            if dist[u] >= max_latency {
                continue;
            }
            // sources always expand; interior nodes only when traversable
            if dist[u] != 0 && !can_traverse(u) {
                continue;
            }
            let u_width = gseq.node(SeqNodeId(u as u32)).width;
            for &(v, edge_bits) in gseq.successors(SeqNodeId(u as u32)) {
                if dist[v] != u32::MAX {
                    continue;
                }
                dist[v] = dist[u] + 1;
                if let Some(dst_df) = target_of(v) {
                    // width of the predecessor on the path, bounded by the
                    // actual wires on the final hop
                    let bits = u_width.min(edge_bits).max(1);
                    record(dst_df, dist[v], bits);
                }
                queue.push_back(v);
            }
        }
    }

    /// Number of dataflow nodes (blocks + ports).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of block nodes.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Node accessor.
    pub fn node(&self, idx: usize) -> &DataflowNode {
        &self.nodes[idx]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &DataflowNode> + '_ {
        self.nodes.iter()
    }

    /// Edge accessor (`from`, `to` are dense node indices).
    pub fn edge(&self, from: usize, to: usize) -> &DataflowEdge {
        let n = self.nodes.len();
        debug_assert!(from < n && to < n, "edge index ({from}, {to}) out of {n}");
        &self.edges[from * n + to]
    }

    /// The symmetric affinity matrix for a given λ and k: entry `(i, j)` is
    /// the blended score of the edges `i→j` and `j→i` added together.
    pub fn affinity_matrix(&self, lambda: f64, k: u32) -> AffinityMatrix {
        let n = self.nodes.len();
        let mut m = AffinityMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let a = self.edges[i * n + j].affinity(lambda, k)
                    + self.edges[j * n + i].affinity(lambda, k);
                m.set(i, j, a);
            }
        }
        m
    }
}

impl HeapSize for BlockAssignment {
    fn heap_bytes(&self) -> usize {
        self.block_of.heap_bytes() + self.block_names.heap_bytes()
    }
}

impl HeapSize for DataflowNode {
    fn heap_bytes(&self) -> usize {
        match self {
            DataflowNode::Block { name, .. } | DataflowNode::Port { name, .. } => name.heap_bytes(),
        }
    }
}

impl HeapSize for DataflowEdge {
    fn heap_bytes(&self) -> usize {
        self.block_flow.heap_bytes() + self.macro_flow.heap_bytes()
    }
}

impl HeapSize for DataflowGraph {
    fn heap_bytes(&self) -> usize {
        self.nodes.heap_bytes() + self.edges.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqgraph::SeqGraphConfig;
    use netlist::design::{Design, DesignBuilder};

    /// The Fig. 2 system: four macro blocks A..D communicating through a
    /// standard-cell block X.  A feeds B and C through registers in X; B and C
    /// feed D through registers in X.
    fn fig2_design() -> Design {
        let mut b = DesignBuilder::new("fig2");
        let make_macro = |b: &mut DesignBuilder, blk: &str| {
            b.add_macro(format!("u_{blk}/mac"), "MAC", 100, 100, format!("u_{blk}"))
        };
        let ma = make_macro(&mut b, "a");
        let mb = make_macro(&mut b, "b");
        let mc = make_macro(&mut b, "c");
        let md = make_macro(&mut b, "d");
        // X holds two 8-bit pipeline registers between A→{B,C} and {B,C}→D
        let connect_through_reg = |b: &mut DesignBuilder, from, to: Vec<_>, tag: &str| {
            for i in 0..8u32 {
                let f = b.add_flop(format!("u_x/{tag}_reg[{i}]"), "u_x");
                let n_in = b.add_net(format!("u_x/{tag}_in_{i}"));
                b.connect_driver(n_in, from);
                b.connect_sink(n_in, f);
                for &t in &to {
                    let n_out = b.add_net(format!("u_x/{tag}_out_{i}"));
                    b.connect_driver(n_out, f);
                    b.connect_sink(n_out, t);
                }
            }
        };
        connect_through_reg(&mut b, ma, vec![mb, mc], "axbc");
        connect_through_reg(&mut b, mb, vec![md], "bxd");
        connect_through_reg(&mut b, mc, vec![md], "cxd");
        b.build()
    }

    fn fig2_assignment(gseq: &SeqGraph) -> BlockAssignment {
        // blocks: 0=A, 1=B, 2=C, 3=D, 4=X (the register block)
        let mut asg = BlockAssignment::empty(gseq, 5);
        asg.block_names = vec!["A".into(), "B".into(), "C".into(), "D".into(), "X".into()];
        for (id, node) in gseq.iter() {
            let block = if node.hier_path.starts_with("u_a") {
                Some(0)
            } else if node.hier_path.starts_with("u_b") {
                Some(1)
            } else if node.hier_path.starts_with("u_c") {
                Some(2)
            } else if node.hier_path.starts_with("u_d") {
                Some(3)
            } else if node.hier_path.starts_with("u_x") {
                Some(4)
            } else {
                None
            };
            if let Some(blk) = block {
                asg.assign(id, blk);
            }
        }
        asg
    }

    #[test]
    fn block_flow_sees_only_direct_neighbours() {
        let d = fig2_design();
        let gseq = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        let asg = fig2_assignment(&gseq);
        let gdf = DataflowGraph::build(&gseq, &asg, &DataflowConfig::default());
        // A communicates with X directly (block flow), but not with B at the
        // block-flow level because the X registers belong to a block.
        assert!(!gdf.edge(0, 4).block_flow.is_empty(), "A -> X block flow");
        assert!(gdf.edge(0, 1).block_flow.is_empty(), "A -> B has no block flow");
    }

    #[test]
    fn macro_flow_connects_macros_across_blocks() {
        let d = fig2_design();
        let gseq = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        let asg = fig2_assignment(&gseq);
        let gdf = DataflowGraph::build(&gseq, &asg, &DataflowConfig::default());
        // macro flow crosses the X registers: A -> B and A -> C at latency 2
        assert!(!gdf.edge(0, 1).macro_flow.is_empty(), "A -> B macro flow");
        assert!(!gdf.edge(0, 2).macro_flow.is_empty(), "A -> C macro flow");
        assert_eq!(gdf.edge(0, 1).macro_flow.min_latency(), Some(2));
        // X has no macros, so it has no outgoing macro flow
        assert!(gdf.edge(4, 3).macro_flow.is_empty());
        // and there is no direct A -> D macro flow at latency <= 2... it appears at latency 4
        let a_to_d = &gdf.edge(0, 3).macro_flow;
        assert!(a_to_d.is_empty() || a_to_d.min_latency() >= Some(4));
    }

    #[test]
    fn affinity_blends_block_and_macro_flow() {
        let d = fig2_design();
        let gseq = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        let asg = fig2_assignment(&gseq);
        let gdf = DataflowGraph::build(&gseq, &asg, &DataflowConfig::default());
        let m_block_only = gdf.affinity_matrix(1.0, 1);
        let m_macro_only = gdf.affinity_matrix(0.0, 1);
        // with block flow only, A-B affinity is zero; with macro flow it is positive
        assert_eq!(m_block_only.get(0, 1), 0.0);
        assert!(m_macro_only.get(0, 1) > 0.0);
        // A-X affinity is positive for block flow, zero for macro flow
        assert!(m_block_only.get(0, 4) > 0.0);
        assert_eq!(m_macro_only.get(0, 4), 0.0);
        // blended matrix is symmetric
        let m = gdf.affinity_matrix(0.5, 1);
        for i in 0..m.len() {
            for j in 0..m.len() {
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ports_become_dataflow_nodes() {
        use netlist::design::PortDirection;
        let mut b = DesignBuilder::new("t");
        let m = b.add_macro("u_a/mac", "MAC", 10, 10, "u_a");
        for i in 0..4 {
            let p = b.add_port(format!("din[{i}]"), PortDirection::Input);
            let n = b.add_net(format!("n{i}"));
            b.connect_port_driver(n, p);
            b.connect_sink(n, m);
        }
        let d = b.build();
        let gseq = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        let mut asg = BlockAssignment::empty(&gseq, 1);
        asg.block_names = vec!["A".into()];
        for (id, node) in gseq.iter() {
            if node.kind == SeqNodeKind::Macro {
                asg.assign(id, 0);
            }
        }
        let gdf = DataflowGraph::build(&gseq, &asg, &DataflowConfig::default());
        assert_eq!(gdf.num_nodes(), 2); // block A + port din
        assert!(!gdf.node(1).is_block());
        assert!(!gdf.edge(1, 0).block_flow.is_empty(), "port -> block flow recorded");
    }

    #[test]
    fn lambda_extremes_select_single_flow() {
        let mut e = DataflowEdge::default();
        e.block_flow.add(1, 10);
        e.macro_flow.add(1, 100);
        assert_eq!(e.affinity(1.0, 1), 10.0);
        assert_eq!(e.affinity(0.0, 1), 100.0);
        assert_eq!(e.affinity(0.5, 1), 55.0);
    }
}
