//! `Maff`: the flat, row-major dataflow affinity matrix.
//!
//! The affinity matrix is the interface between dataflow inference and layout
//! generation: entry `(i, j)` is the symmetric blended flow score between
//! dataflow nodes `i` and `j`.  It used to be a `Vec<Vec<f64>>`; the nested
//! representation cost one heap allocation per row and a double indirection
//! per lookup inside the annealer's cost loop.  [`AffinityMatrix`] stores the
//! same `n × n` values in one contiguous buffer.
//!
//! # Example
//!
//! ```
//! use graphs::AffinityMatrix;
//!
//! let mut m = AffinityMatrix::zeros(3);
//! m.set(0, 2, 5.0);
//! assert_eq!(m.get(0, 2), 5.0);
//! assert_eq!(m.row(0), &[0.0, 0.0, 5.0]);
//! ```

use netlist::HeapSize;
use serde::{Deserialize, Serialize};

/// A dense `n × n` affinity matrix in one flat row-major buffer.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AffinityMatrix {
    n: usize,
    data: Vec<f64>,
}

impl AffinityMatrix {
    /// An `n × n` matrix of zeros.
    pub fn zeros(n: usize) -> Self {
        Self { n, data: vec![0.0; n * n] }
    }

    /// Builds a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not form a square matrix.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n = rows.len();
        let mut data = Vec::with_capacity(n * n);
        for row in &rows {
            assert_eq!(row.len(), n, "affinity matrix must be square");
            data.extend_from_slice(row);
        }
        Self { n, data }
    }

    /// The dimension `n` of the matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is 0 × 0.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n, "affinity index ({i}, {j}) out of {}", self.n);
        self.data[i * self.n + j]
    }

    /// Sets the entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.n && j < self.n, "affinity index ({i}, {j}) out of {}", self.n);
        self.data[i * self.n + j] = value;
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The largest entry (0 for an empty matrix).
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(0.0_f64, f64::max)
    }
}

impl HeapSize for AffinityMatrix {
    fn heap_bytes(&self) -> usize {
        self.data.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = AffinityMatrix::zeros(2);
        assert_eq!(m.len(), 2);
        m.set(1, 0, 3.5);
        assert_eq!(m.get(1, 0), 3.5);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.max_value(), 3.5);
    }

    #[test]
    fn from_rows_round_trips() {
        let m = AffinityMatrix::from_rows(vec![vec![0.0, 1.0], vec![2.0, 0.0]]);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.row(1), &[2.0, 0.0]);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        AffinityMatrix::from_rows(vec![vec![0.0, 1.0], vec![2.0]]);
    }
}
