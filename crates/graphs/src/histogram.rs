//! Latency → bit-count histograms and the `score(h, k)` weighting.
//!
//! Connectivity information of a dataflow edge takes the form of a histogram
//! whose bins represent latency (number of sequential stages on the path) and
//! whose heights represent the number of bits flowing at that latency
//! (Sect. IV-D).  The histogram is condensed into a single affinity score:
//!
//! ```text
//! score(h, k) = Σ_i  bits_i / latency_i^k
//! ```
//!
//! where `k` controls the exponential decay impact of latency.

use netlist::HeapSize;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A latency → bits histogram describing the dataflow along one edge.
///
/// # Example
///
/// ```
/// use graphs::FlowHistogram;
///
/// let mut h = FlowHistogram::new();
/// h.add(1, 64);   // 64 bits with latency 1
/// h.add(3, 32);   // 32 bits with latency 3
/// assert_eq!(h.total_bits(), 96);
/// assert!((h.score(1) - (64.0 + 32.0 / 3.0)).abs() < 1e-9);
/// assert!(h.score(2) < h.score(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlowHistogram {
    bins: BTreeMap<u32, u64>,
}

impl FlowHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `bits` bits of flow at the given `latency` (in sequential stages).
    ///
    /// A latency of 0 (purely combinational path) is clamped to 1 so the
    /// score stays finite; the paper's latencies are always ≥ 1 because every
    /// path between two sequential elements crosses at least one stage.
    pub fn add(&mut self, latency: u32, bits: u64) {
        if bits == 0 {
            return;
        }
        *self.bins.entry(latency.max(1)).or_insert(0) += bits;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &FlowHistogram) {
        for (&lat, &bits) in &other.bins {
            self.add(lat, bits);
        }
    }

    /// Iterates over `(latency, bits)` bins in increasing latency order.
    pub fn bins(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.bins.iter().map(|(&l, &b)| (l, b))
    }

    /// Total number of bits across all latencies.
    pub fn total_bits(&self) -> u64 {
        self.bins.values().sum()
    }

    /// Smallest latency present, if any.
    pub fn min_latency(&self) -> Option<u32> {
        self.bins.keys().next().copied()
    }

    /// Returns `true` when no flow has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// The affinity score `Σ bits_i / latency_i^k`.
    ///
    /// Larger `k` punishes long-latency flow more aggressively; `k = 0`
    /// reduces to the raw bit count.
    pub fn score(&self, k: u32) -> f64 {
        self.bins.iter().map(|(&lat, &bits)| bits as f64 / (lat as f64).powi(k as i32)).sum()
    }
}

impl FromIterator<(u32, u64)> for FlowHistogram {
    fn from_iter<T: IntoIterator<Item = (u32, u64)>>(iter: T) -> Self {
        let mut h = FlowHistogram::new();
        for (lat, bits) in iter {
            h.add(lat, bits);
        }
        h
    }
}

impl HeapSize for FlowHistogram {
    fn heap_bytes(&self) -> usize {
        self.bins.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_scores_zero() {
        let h = FlowHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.total_bits(), 0);
        assert_eq!(h.score(2), 0.0);
        assert_eq!(h.min_latency(), None);
    }

    #[test]
    fn add_accumulates_same_bin() {
        let mut h = FlowHistogram::new();
        h.add(2, 8);
        h.add(2, 8);
        assert_eq!(h.bins().collect::<Vec<_>>(), vec![(2, 16)]);
    }

    #[test]
    fn zero_bits_ignored_and_zero_latency_clamped() {
        let mut h = FlowHistogram::new();
        h.add(1, 0);
        assert!(h.is_empty());
        h.add(0, 4);
        assert_eq!(h.min_latency(), Some(1));
    }

    #[test]
    fn score_with_k0_is_total_bits() {
        let h: FlowHistogram = [(1, 10), (4, 6)].into_iter().collect();
        assert_eq!(h.score(0), 16.0);
    }

    #[test]
    fn score_decreases_with_k() {
        let h: FlowHistogram = [(2, 10), (5, 6)].into_iter().collect();
        assert!(h.score(0) > h.score(1));
        assert!(h.score(1) > h.score(2));
        assert!(h.score(2) > h.score(3));
    }

    #[test]
    fn latency_one_flow_unaffected_by_k() {
        let h: FlowHistogram = [(1, 42)].into_iter().collect();
        assert_eq!(h.score(0), 42.0);
        assert_eq!(h.score(5), 42.0);
    }

    #[test]
    fn merge_adds_bins() {
        let mut a: FlowHistogram = [(1, 4), (2, 2)].into_iter().collect();
        let b: FlowHistogram = [(2, 3), (7, 1)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.bins().collect::<Vec<_>>(), vec![(1, 4), (2, 5), (7, 1)]);
    }
}
