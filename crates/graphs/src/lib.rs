//! Circuit graph abstractions used by dataflow-driven macro placement.
//!
//! The paper (Table I) models the circuit at three levels of abstraction,
//! all derived from the input hierarchical netlist `N`:
//!
//! | Graph  | Size   | Vertices | Purpose |
//! |--------|--------|----------|---------|
//! | `Gnet` | ~10⁷   | macros, ports, flops, combinational cells | bit-level connectivity |
//! | `Gseq` | ~10⁵   | macros, multi-bit registers and ports     | multi-bit sequential connectivity |
//! | `Gdf`  | ~10²   | blocks and multi-bit ports                | dataflow affinity |
//!
//! * [`netgraph::NetGraph`] is a thin directed-graph view over a
//!   [`netlist::Design`] (driver → sink edges per net).
//! * [`seqgraph::SeqGraph`] collapses combinational logic, clusters register
//!   and port bits into arrays by name, and keeps edges only between
//!   sequential elements (macros, register arrays, port arrays).
//! * [`dataflow::DataflowGraph`] groups sequential elements into *blocks*
//!   (the output of hierarchical declustering) and summarizes the paths
//!   between blocks into latency→bits histograms, separately for *block flow*
//!   and *macro flow*.
//! * [`histogram::FlowHistogram`] implements the `score(h, k)` weighting of
//!   Sect. IV-D.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]

pub mod affinity;
pub mod bfs;
pub mod dataflow;
pub mod histogram;
pub mod netgraph;
pub mod seqgraph;

pub use affinity::AffinityMatrix;
pub use dataflow::{BlockAssignment, DataflowEdge, DataflowGraph, DataflowNode};
pub use histogram::FlowHistogram;
pub use netgraph::{NetGraph, NetGraphNode};
pub use seqgraph::{SeqGraph, SeqNode, SeqNodeId, SeqNodeKind};
