//! `Gnet`: the bit-level netlist connectivity graph.
//!
//! A thin directed-graph view over a [`netlist::Design`]: one node per cell
//! and per primary port, one edge per (driver, sink) pair of every net.
//! This is the ~10⁷-node graph of Table I from which the sequential graph is
//! derived.

use netlist::design::{CellId, CellKind, Design, PortId};
use serde::{Deserialize, Serialize};

/// A node of the netlist graph: either a cell or a primary port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetGraphNode {
    /// A cell of the design.
    Cell(CellId),
    /// A primary port of the design.
    Port(PortId),
}

/// The bit-level netlist connectivity graph `Gnet`.
///
/// Node indices are dense: cells occupy `0..num_cells`, ports occupy
/// `num_cells..num_cells+num_ports`.
///
/// # Example
///
/// ```
/// use graphs::NetGraph;
/// use netlist::design::DesignBuilder;
///
/// let mut b = DesignBuilder::new("t");
/// let f = b.add_flop("f", "");
/// let g = b.add_comb("g", "");
/// let n = b.add_net("n");
/// b.connect_driver(n, f);
/// b.connect_sink(n, g);
/// let design = b.build();
/// let gnet = NetGraph::from_design(&design);
/// assert_eq!(gnet.num_nodes(), 2);
/// assert_eq!(gnet.successors(0), &[1]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetGraph {
    num_cells: usize,
    num_ports: usize,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
}

impl NetGraph {
    /// Builds the graph from a design, walking the flat CSR
    /// [`netlist::Connectivity`] view (`net→pin` packed arrays) instead of
    /// the per-net `Vec`s, so construction shares the cache-friendly arrays
    /// the evaluation hot loops already use.
    pub fn from_design(design: &Design) -> Self {
        let num_cells = design.num_cells();
        let num_ports = design.num_ports();
        let n = num_cells + num_ports;
        let csr = design.connectivity();
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        let mut drivers: Vec<usize> = Vec::new();
        let mut sinks: Vec<usize> = Vec::new();
        for net in design.net_ids() {
            drivers.clear();
            sinks.clear();
            for &pin in csr.pins(net) {
                let idx = match pin.cell() {
                    Some(c) => c.0 as usize,
                    None => num_cells + pin.port().expect("pin is a cell or a port").0 as usize,
                };
                if pin.is_driver() {
                    drivers.push(idx);
                } else {
                    sinks.push(idx);
                }
            }
            for &d in &drivers {
                for &s in &sinks {
                    if d != s {
                        succ[d].push(s);
                        pred[s].push(d);
                    }
                }
            }
        }
        for v in succ.iter_mut().chain(pred.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        Self { num_cells, num_ports, succ, pred }
    }

    /// The pre-CSR construction, preserved verbatim as the *before* side of
    /// the `bench_placer` evaluation-boundary comparison: walks the per-net
    /// `Vec` fields (`driver_cell`, `sink_cells`, …) instead of the packed
    /// pin arrays. Produces a graph identical to
    /// [`NetGraph::from_design`] (the sort + dedup canonicalizes edge
    /// order), only slower to build.
    pub fn from_design_reference(design: &Design) -> Self {
        let num_cells = design.num_cells();
        let num_ports = design.num_ports();
        let n = num_cells + num_ports;
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for (_, net) in design.nets() {
            let mut drivers: Vec<usize> = Vec::new();
            if let Some(c) = net.driver_cell {
                drivers.push(c.0 as usize);
            }
            if let Some(p) = net.driver_port {
                drivers.push(num_cells + p.0 as usize);
            }
            let mut sinks: Vec<usize> = net.sink_cells.iter().map(|c| c.0 as usize).collect();
            sinks.extend(net.sink_ports.iter().map(|p| num_cells + p.0 as usize));
            for &d in &drivers {
                for &s in &sinks {
                    if d != s {
                        succ[d].push(s);
                        pred[s].push(d);
                    }
                }
            }
        }
        for v in succ.iter_mut().chain(pred.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        Self { num_cells, num_ports, succ, pred }
    }

    /// Total number of nodes (cells + ports).
    pub fn num_nodes(&self) -> usize {
        self.num_cells + self.num_ports
    }

    /// Number of cell nodes.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Number of port nodes.
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// Dense node index of a cell.
    pub fn cell_node(&self, id: CellId) -> usize {
        id.0 as usize
    }

    /// Dense node index of a port.
    pub fn port_node(&self, id: PortId) -> usize {
        self.num_cells + id.0 as usize
    }

    /// What design object a dense node index refers to.
    pub fn node(&self, idx: usize) -> NetGraphNode {
        if idx < self.num_cells {
            NetGraphNode::Cell(CellId(idx as u32))
        } else {
            NetGraphNode::Port(PortId((idx - self.num_cells) as u32))
        }
    }

    /// Out-neighbors (fanout) of a node.
    pub fn successors(&self, idx: usize) -> &[usize] {
        &self.succ[idx]
    }

    /// In-neighbors (fanin) of a node.
    pub fn predecessors(&self, idx: usize) -> &[usize] {
        &self.pred[idx]
    }

    /// Total number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Returns `true` when the node is a sequential endpoint for dataflow
    /// purposes: a macro, a flop, or a primary port.
    pub fn is_sequential_endpoint(&self, idx: usize, design: &Design) -> bool {
        match self.node(idx) {
            NetGraphNode::Cell(c) => design.cell(c).kind != CellKind::Comb,
            NetGraphNode::Port(_) => true,
        }
    }

    /// Serializes the graph with the spill-tier codec ([`netlist::codec`]):
    /// the node counts followed by both adjacency tables, node indices as
    /// `u32` (they are bounded by the 30-bit design-id encoding).
    pub fn encode(&self, out: &mut Vec<u8>) {
        netlist::codec::put_u64(out, self.num_cells as u64);
        netlist::codec::put_u64(out, self.num_ports as u64);
        for table in [&self.succ, &self.pred] {
            netlist::codec::put_u64(out, table.len() as u64);
            for row in table {
                netlist::codec::put_u64(out, row.len() as u64);
                for &v in row {
                    netlist::codec::put_u32(out, v as u32);
                }
            }
        }
    }

    /// Decodes a graph encoded by [`NetGraph::encode`]. Returns `None` on
    /// truncation, trailing bytes, or adjacency tables whose shape does not
    /// match the node counts.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = netlist::codec::Reader::new(bytes);
        let num_cells = r.take_u64()? as usize;
        let num_ports = r.take_u64()? as usize;
        let n = num_cells.checked_add(num_ports)?;
        let mut tables = Vec::with_capacity(2);
        for _ in 0..2 {
            let rows = r.take_u64()? as usize;
            // each row carries at least its 8-byte length prefix, so this
            // also rejects corrupt counts before they size an allocation
            if rows != n || r.remaining() / 8 < rows {
                return None;
            }
            let mut table = Vec::with_capacity(rows);
            for _ in 0..rows {
                let len = r.take_u64()? as usize;
                if r.remaining() / 4 < len {
                    return None;
                }
                let mut row = Vec::with_capacity(len);
                for _ in 0..len {
                    let v = r.take_u32()? as usize;
                    if v >= n {
                        return None;
                    }
                    row.push(v);
                }
                table.push(row);
            }
            tables.push(table);
        }
        if !r.is_exhausted() {
            return None;
        }
        let pred = tables.pop().expect("two tables decoded");
        let succ = tables.pop().expect("two tables decoded");
        Some(Self { num_cells, num_ports, succ, pred })
    }
}

impl netlist::HeapSize for NetGraph {
    fn heap_bytes(&self) -> usize {
        self.succ.heap_bytes() + self.pred.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::{DesignBuilder, PortDirection};

    fn design_with_port() -> Design {
        // port p -> comb g -> flop f -> macro m
        let mut b = DesignBuilder::new("t");
        let g = b.add_comb("g", "");
        let f = b.add_flop("f", "");
        let m = b.add_macro("m", "RAM", 10, 10, "");
        let p = b.add_port("p", PortDirection::Input);
        let n0 = b.add_net("n0");
        let n1 = b.add_net("n1");
        let n2 = b.add_net("n2");
        b.connect_port_driver(n0, p);
        b.connect_sink(n0, g);
        b.connect_driver(n1, g);
        b.connect_sink(n1, f);
        b.connect_driver(n2, f);
        b.connect_sink(n2, m);
        b.build()
    }

    #[test]
    fn edges_follow_driver_to_sink() {
        let d = design_with_port();
        let g = NetGraph::from_design(&d);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        let pnode = g.port_node(d.find_port("p").unwrap());
        let gnode = g.cell_node(d.find_cell("g").unwrap());
        assert_eq!(g.successors(pnode), &[gnode]);
        assert_eq!(g.predecessors(gnode), &[pnode]);
    }

    #[test]
    fn node_mapping_roundtrip() {
        let d = design_with_port();
        let g = NetGraph::from_design(&d);
        let f = d.find_cell("f").unwrap();
        assert_eq!(g.node(g.cell_node(f)), NetGraphNode::Cell(f));
        let p = d.find_port("p").unwrap();
        assert_eq!(g.node(g.port_node(p)), NetGraphNode::Port(p));
    }

    #[test]
    fn sequential_endpoints() {
        let d = design_with_port();
        let g = NetGraph::from_design(&d);
        assert!(!g.is_sequential_endpoint(g.cell_node(d.find_cell("g").unwrap()), &d));
        assert!(g.is_sequential_endpoint(g.cell_node(d.find_cell("f").unwrap()), &d));
        assert!(g.is_sequential_endpoint(g.cell_node(d.find_cell("m").unwrap()), &d));
        assert!(g.is_sequential_endpoint(g.port_node(d.find_port("p").unwrap()), &d));
    }

    #[test]
    fn reference_construction_matches_csr_construction() {
        let d = design_with_port();
        assert_eq!(NetGraph::from_design(&d), NetGraph::from_design_reference(&d));
    }

    #[test]
    fn encode_decode_round_trips_bit_identically() {
        let d = design_with_port();
        let g = NetGraph::from_design(&d);
        let mut buf = Vec::new();
        g.encode(&mut buf);
        assert_eq!(NetGraph::decode(&buf).expect("decodes"), g);
        for cut in 0..buf.len() {
            assert!(NetGraph::decode(&buf[..cut]).is_none(), "cut at {cut}");
        }
        let mut padded = buf.clone();
        padded.push(0);
        assert!(NetGraph::decode(&padded).is_none());
    }

    #[test]
    fn multi_sink_net_fans_out() {
        let mut b = DesignBuilder::new("t");
        let f = b.add_flop("f", "");
        let a = b.add_comb("a", "");
        let c = b.add_comb("c", "");
        let n = b.add_net("n");
        b.connect_driver(n, f);
        b.connect_sink(n, a);
        b.connect_sink(n, c);
        let d = b.build();
        let g = NetGraph::from_design(&d);
        assert_eq!(g.successors(0).len(), 2);
    }
}
