//! Multi-source breadth-first search utilities.
//!
//! Target-area assignment (Sect. IV-C) and dataflow inference (Sect. IV-D)
//! both rely on multi-source BFS: shortest paths are computed simultaneously
//! from every element of a set of sources, as in "The more the merrier"
//! (Then et al., VLDB'14) which the paper cites.

use netlist::HeapSize;
use std::collections::VecDeque;

/// Result of a multi-source BFS over a graph with `n` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// Distance (in edges) from the nearest source, `u32::MAX` if unreachable.
    pub distance: Vec<u32>,
    /// Index of the source that first reached each node, `usize::MAX` if unreachable.
    pub source: Vec<usize>,
    /// Predecessor of each node on its shortest path, `usize::MAX` for sources
    /// and unreachable nodes.
    pub predecessor: Vec<usize>,
}

impl BfsResult {
    /// Returns `true` if the node was reached by the search.
    pub fn reached(&self, node: usize) -> bool {
        self.distance[node] != u32::MAX
    }
}

/// Runs a multi-source BFS.
///
/// * `num_nodes` — number of nodes in the graph,
/// * `sources` — the seed nodes (distance 0); the *source index* recorded for
///   reached nodes is the position of the seed in this slice,
/// * `successors` — adjacency callback returning the out-neighbors of a node,
/// * `can_traverse` — filter deciding whether the search may continue *through*
///   a node (sources are always expanded; targets that cannot be traversed are
///   still reached and recorded, they just do not propagate further).
///
/// # Example
///
/// ```
/// use graphs::bfs::multi_source_bfs;
///
/// // path graph 0 - 1 - 2 - 3
/// let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
/// let r = multi_source_bfs(4, &[0], |n| adj[n].clone(), |_| true);
/// assert_eq!(r.distance, vec![0, 1, 2, 3]);
/// assert_eq!(r.predecessor[3], 2);
/// ```
pub fn multi_source_bfs<S, T>(
    num_nodes: usize,
    sources: &[usize],
    mut successors: S,
    mut can_traverse: T,
) -> BfsResult
where
    S: FnMut(usize) -> Vec<usize>,
    T: FnMut(usize) -> bool,
{
    let mut distance = vec![u32::MAX; num_nodes];
    let mut source = vec![usize::MAX; num_nodes];
    let mut predecessor = vec![usize::MAX; num_nodes];
    let mut queue = VecDeque::new();
    for (i, &s) in sources.iter().enumerate() {
        if s < num_nodes && distance[s] == u32::MAX {
            distance[s] = 0;
            source[s] = i;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        // Only sources and traversable nodes expand further.
        if distance[u] != 0 && !can_traverse(u) {
            continue;
        }
        for v in successors(u) {
            if v < num_nodes && distance[v] == u32::MAX {
                distance[v] = distance[u] + 1;
                source[v] = source[u];
                predecessor[v] = u;
                queue.push_back(v);
            }
        }
    }
    BfsResult { distance, source, predecessor }
}

impl HeapSize for BfsResult {
    fn heap_bytes(&self) -> usize {
        self.distance.heap_bytes() + self.source.heap_bytes() + self.predecessor.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_adj() -> Vec<Vec<usize>> {
        // 0-1-2
        // |   |
        // 3-4-5
        vec![vec![1, 3], vec![0, 2], vec![1, 5], vec![0, 4], vec![3, 5], vec![2, 4]]
    }

    #[test]
    fn single_source_distances() {
        let adj = grid_adj();
        let r = multi_source_bfs(6, &[0], |n| adj[n].clone(), |_| true);
        assert_eq!(r.distance, vec![0, 1, 2, 1, 2, 3]);
        assert!(r.reached(5));
    }

    #[test]
    fn multi_source_takes_nearest() {
        let adj = grid_adj();
        let r = multi_source_bfs(6, &[0, 5], |n| adj[n].clone(), |_| true);
        assert_eq!(r.distance, vec![0, 1, 1, 1, 1, 0]);
        assert_eq!(r.source[1], 0);
        assert_eq!(r.source[2], 1);
    }

    #[test]
    fn blocked_nodes_are_reached_but_not_traversed() {
        // 0 -> 1 -> 2 ; node 1 cannot be traversed
        let adj = [vec![1], vec![2], vec![]];
        let r = multi_source_bfs(3, &[0], |n| adj[n].clone(), |n| n != 1);
        assert_eq!(r.distance[1], 1);
        assert!(!r.reached(2));
    }

    #[test]
    fn unreachable_nodes_flagged() {
        let adj = [vec![], vec![]];
        let r = multi_source_bfs(2, &[0], |n: usize| adj[n].clone(), |_| true);
        assert!(!r.reached(1));
        assert_eq!(r.source[1], usize::MAX);
    }

    #[test]
    fn duplicate_sources_keep_first() {
        let adj = [vec![1], vec![]];
        let r = multi_source_bfs(2, &[0, 0], |n| adj[n].clone(), |_| true);
        assert_eq!(r.source[0], 0);
    }
}
