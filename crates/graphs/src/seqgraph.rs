//! `Gseq`: the multi-bit sequential connectivity graph.
//!
//! Derived from [`NetGraph`] following Sect. IV-D of the paper:
//!
//! 1. combinational cells are removed by connecting their predecessors to
//!    their successors (implemented as a comb-only BFS between sequential
//!    endpoints),
//! 2. flop and port bits are clustered into arrays using component names
//!    (`name[n]`, `name_n`),
//! 3. edges between sequential components are inferred from their transitive
//!    fanin/fanout through combinational logic, weighted by the number of
//!    bits that flow,
//! 4. register arrays narrower than a configurable bit threshold are
//!    discarded to reduce the graph size.

use crate::netgraph::{NetGraph, NetGraphNode};
use netlist::arrays::split_array_name;
use netlist::dense::{DenseId, DenseMap};
use netlist::design::{CellId, CellKind, Design, PortId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Identifier of a node in a [`SeqGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SeqNodeId(pub u32);

/// Sequential-node ids are dense (`0..num_nodes`), so per-node data can live
/// in a [`netlist::DenseMap`] like the design id families.
impl netlist::dense::DenseId for SeqNodeId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    fn from_index(index: usize) -> Self {
        Self(index as u32)
    }
}

/// Kind of a sequential-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeqNodeKind {
    /// A hard macro.
    Macro,
    /// A multi-bit register (cluster of flop bits with the same array name).
    Register,
    /// A multi-bit primary port (cluster of port bits with the same base name).
    Port,
}

/// A node of the sequential graph: a macro, a register array or a port array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqNode {
    /// Kind of the node.
    pub kind: SeqNodeKind,
    /// Array base name (register/port) or instance name (macro).
    pub name: String,
    /// Bit width of the node.
    pub width: u64,
    /// Hierarchy path of the node (empty for ports).
    pub hier_path: String,
    /// Member cells (flop bits, or the single macro cell).
    pub cells: Vec<CellId>,
    /// Member primary ports (for port arrays).
    pub ports: Vec<PortId>,
}

/// Configuration for [`SeqGraph`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeqGraphConfig {
    /// Register arrays narrower than this many bits are discarded
    /// (macros and ports are always kept). `1` keeps everything.
    pub min_register_bits: u64,
}

impl Default for SeqGraphConfig {
    fn default() -> Self {
        Self { min_register_bits: 1 }
    }
}

/// The sequential graph `Gseq`: weighted nodes (bit widths) and directed
/// weighted edges (bits of flow across one sequential stage).
///
/// # Example
///
/// ```
/// use graphs::{SeqGraph, SeqNodeKind};
/// use netlist::design::DesignBuilder;
///
/// let mut b = DesignBuilder::new("t");
/// // 2-bit register feeding a macro through combinational logic
/// let r0 = b.add_flop("u/data_reg[0]", "u");
/// let r1 = b.add_flop("u/data_reg[1]", "u");
/// let g = b.add_comb("u/g", "u");
/// let m = b.add_macro("u/ram", "RAM", 100, 100, "u");
/// let n0 = b.add_net("n0");
/// let n1 = b.add_net("n1");
/// let n2 = b.add_net("n2");
/// b.connect_driver(n0, r0);
/// b.connect_sink(n0, g);
/// b.connect_driver(n1, r1);
/// b.connect_sink(n1, g);
/// b.connect_driver(n2, g);
/// b.connect_sink(n2, m);
/// let design = b.build();
/// let gseq = SeqGraph::from_design(&design, &Default::default());
/// assert_eq!(gseq.num_nodes(), 2); // the register array and the macro
/// let reg = gseq.nodes().position(|n| n.kind == SeqNodeKind::Register).unwrap();
/// assert_eq!(gseq.node(graphs::SeqNodeId(reg as u32)).width, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqGraph {
    nodes: Vec<SeqNode>,
    succ: Vec<Vec<(usize, u64)>>,
    pred: Vec<Vec<(usize, u64)>>,
    /// Dense per-cell lookup: `Some(node)` for macro cells, `None` otherwise.
    macro_of_cell: DenseMap<CellId, Option<SeqNodeId>>,
}

/// Sentinel for "this bit has no sequential node" in the dense per-bit map.
const NO_NODE: u32 = u32::MAX;

/// Dense base-name grouping of array bits (the clustering step of `Gseq`
/// construction, formerly name-keyed hash maps): a stable sort over the base
/// names makes equal names contiguous while keeping id order inside each
/// group, so every bit gets a flat `group` index and each group knows the id
/// of its first bit (groups are materialized as nodes in first-occurrence
/// order, exactly like the old insertion-ordered maps).
struct NameGroups<I: DenseId> {
    /// Group index per member id (dense over the id family; non-member slots
    /// stay at `NO_NODE`).
    group_of: DenseMap<I, u32>,
    /// Base name per group.
    base: Vec<String>,
    /// The sequential node materialized for each group (`NO_NODE` until the
    /// group's first bit is reached in id order).
    node_of_group: Vec<u32>,
}

impl<I: DenseId> NameGroups<I> {
    fn build(universe: usize, members: impl Iterator<Item = (I, String)>) -> Self {
        let mut pairs: Vec<(I, String)> = members.collect();
        // stable sort: equal names become contiguous, id order is kept inside
        // each group
        pairs.sort_by(|a, b| a.1.cmp(&b.1));
        let mut group_of: DenseMap<I, u32> = DenseMap::filled(universe, NO_NODE);
        let mut base = Vec::new();
        for (i, (id, name)) in pairs.iter().enumerate() {
            if i == 0 || pairs[i - 1].1 != *name {
                base.push(name.clone());
            }
            group_of[*id] = (base.len() - 1) as u32;
        }
        let node_of_group = vec![NO_NODE; base.len()];
        Self { group_of, base, node_of_group }
    }

    /// The node of `id`'s group, creating it through `make_node` when `id` is
    /// the first group member seen.
    fn node_for(&mut self, id: I, make_node: impl FnOnce(&str) -> usize) -> usize {
        let group = self.group_of[id] as usize;
        if self.node_of_group[group] == NO_NODE {
            self.node_of_group[group] = make_node(&self.base[group]) as u32;
        }
        self.node_of_group[group] as usize
    }
}

impl SeqGraph {
    /// Builds `Gseq` directly from a design (constructing the intermediate
    /// [`NetGraph`] internally).
    pub fn from_design(design: &Design, config: &SeqGraphConfig) -> Self {
        let gnet = NetGraph::from_design(design);
        Self::from_netgraph(design, &gnet, config)
    }

    /// Builds `Gseq` from a previously constructed [`NetGraph`].
    pub fn from_netgraph(design: &Design, gnet: &NetGraph, config: &SeqGraphConfig) -> Self {
        // --- step 2: cluster sequential bits into arrays -------------------
        // All clustering state is dense: base-name grouping comes from a
        // stable sort (see [`NameGroups`]), the per-bit node map is a flat
        // array over netlist-graph nodes, and the macro lookup is a
        // `DenseMap` over cell ids. Node creation order is unchanged from the
        // old name-keyed maps: cells in id order (macros and first register
        // bits interleaved), then ports in id order.
        let mut nodes: Vec<SeqNode> = Vec::new();
        let mut node_of_bit: Vec<u32> = vec![NO_NODE; gnet.num_nodes()];
        let mut macro_of_cell: DenseMap<CellId, Option<SeqNodeId>> =
            DenseMap::with_len(design.num_cells());
        let mut registers = NameGroups::build(
            design.num_cells(),
            design
                .cells()
                .filter(|(_, c)| c.kind == CellKind::Flop)
                .map(|(id, c)| (id, split_array_name(&c.name).base)),
        );
        let mut port_arrays = NameGroups::build(
            design.num_ports(),
            design.ports().map(|(id, p)| (id, split_array_name(&p.name).base)),
        );

        for (cell_id, cell) in design.cells() {
            match cell.kind {
                CellKind::Macro => {
                    let idx = nodes.len();
                    nodes.push(SeqNode {
                        kind: SeqNodeKind::Macro,
                        name: cell.name.clone(),
                        width: 0, // filled from connectivity below
                        hier_path: cell.hier_path.clone(),
                        cells: vec![cell_id],
                        ports: Vec::new(),
                    });
                    macro_of_cell[cell_id] = Some(SeqNodeId(idx as u32));
                    node_of_bit[gnet.cell_node(cell_id)] = idx as u32;
                }
                CellKind::Flop => {
                    let idx = registers.node_for(cell_id, |base| {
                        nodes.push(SeqNode {
                            kind: SeqNodeKind::Register,
                            name: base.to_string(),
                            width: 0,
                            hier_path: cell.hier_path.clone(),
                            cells: Vec::new(),
                            ports: Vec::new(),
                        });
                        nodes.len() - 1
                    });
                    nodes[idx].cells.push(cell_id);
                    nodes[idx].width += 1;
                    node_of_bit[gnet.cell_node(cell_id)] = idx as u32;
                }
                CellKind::Comb => {}
            }
        }
        for port_id in design.port_ids() {
            let idx = port_arrays.node_for(port_id, |base| {
                nodes.push(SeqNode {
                    kind: SeqNodeKind::Port,
                    name: base.to_string(),
                    width: 0,
                    hier_path: String::new(),
                    cells: Vec::new(),
                    ports: Vec::new(),
                });
                nodes.len() - 1
            });
            nodes[idx].ports.push(port_id);
            nodes[idx].width += 1;
            node_of_bit[gnet.port_node(port_id)] = idx as u32;
        }

        // --- step 4: discard narrow register arrays ------------------------
        let keep: Vec<bool> = nodes
            .iter()
            .map(|n| n.kind != SeqNodeKind::Register || n.width >= config.min_register_bits)
            .collect();
        let mut remap = vec![NO_NODE; nodes.len()];
        let mut kept_nodes = Vec::new();
        for (i, node) in nodes.into_iter().enumerate() {
            if keep[i] {
                remap[i] = kept_nodes.len() as u32;
                kept_nodes.push(node);
            }
        }
        let nodes = kept_nodes;
        for slot in node_of_bit.iter_mut() {
            if *slot != NO_NODE {
                *slot = remap[*slot as usize]; // NO_NODE for discarded arrays
            }
        }
        for slot in macro_of_cell.iter_mut().filter_map(|(_, v)| v.as_mut()) {
            // macros are never discarded, so their remap slot is always valid
            *slot = SeqNodeId(remap[slot.0 as usize]);
        }

        // --- steps 1 & 3: infer edges through combinational logic ----------
        // For every sequential bit, a forward BFS through combinational cells
        // finds the sequential endpoints it reaches in one stage.  The width
        // of the edge src → dst is the larger of (a) the number of distinct
        // source bits that reach dst and (b) the number of distinct dst bits
        // reached, which approximates the wire count even when one of the two
        // endpoints is a single-node macro.
        // BTreeMaps, not HashMaps: the edge maps are *iterated* below to
        // build succ/pred, and hash order must never reach a result
        // (hidap-lint rule hash-iter).
        let mut edge_src_bits: std::collections::BTreeMap<(usize, usize), u64> =
            std::collections::BTreeMap::new();
        let mut edge_dst_bits: std::collections::BTreeMap<
            (usize, usize),
            std::collections::HashSet<usize>,
        > = std::collections::BTreeMap::new();
        let mut visited = vec![u32::MAX; gnet.num_nodes()];
        let mut epoch = 0u32;
        for bit in 0..gnet.num_nodes() {
            let src_node = node_of_bit[bit];
            if src_node == NO_NODE {
                continue;
            }
            let src_node = src_node as usize;
            epoch += 1;
            let mut queue = VecDeque::new();
            let mut reached: Vec<(usize, usize)> = Vec::new(); // (dst_node, dst_bit)
            visited[bit] = epoch;
            queue.push_back(bit);
            while let Some(u) = queue.pop_front() {
                for &v in gnet.successors(u) {
                    if visited[v] == epoch {
                        continue;
                    }
                    visited[v] = epoch;
                    match node_of_bit[v] {
                        NO_NODE => {
                            // combinational (or discarded) node: traverse through
                            if is_traversable(gnet, v, design) {
                                queue.push_back(v);
                            }
                        }
                        dst_node => {
                            if dst_node as usize != src_node {
                                reached.push((dst_node as usize, v));
                            }
                        }
                    }
                }
            }
            let mut seen_dst: std::collections::HashSet<usize> = std::collections::HashSet::new();
            for (dst_node, dst_bit) in reached {
                if seen_dst.insert(dst_node) {
                    *edge_src_bits.entry((src_node, dst_node)).or_insert(0) += 1;
                }
                edge_dst_bits.entry((src_node, dst_node)).or_default().insert(dst_bit);
            }
        }
        let edge_bits: std::collections::BTreeMap<(usize, usize), u64> = edge_src_bits
            .into_iter()
            .map(|(key, src_count)| {
                let dst_count = edge_dst_bits.get(&key).map(|s| s.len() as u64).unwrap_or(0);
                (key, src_count.max(dst_count))
            })
            .collect();

        let mut succ = vec![Vec::new(); nodes.len()];
        let mut pred = vec![Vec::new(); nodes.len()];
        for ((s, d), bits) in edge_bits {
            succ[s].push((d, bits));
            pred[d].push((s, bits));
        }
        for v in succ.iter_mut().chain(pred.iter_mut()) {
            v.sort_unstable();
        }

        let mut graph = Self { nodes, succ, pred, macro_of_cell };
        graph.fill_macro_widths();
        graph
    }

    /// Macro node widths are not defined by a register array; use the total
    /// bits flowing in/out of the macro as its width.
    fn fill_macro_widths(&mut self) {
        for idx in 0..self.nodes.len() {
            if self.nodes[idx].kind == SeqNodeKind::Macro {
                let in_bits: u64 = self.pred[idx].iter().map(|&(_, b)| b).sum();
                let out_bits: u64 = self.succ[idx].iter().map(|&(_, b)| b).sum();
                self.nodes[idx].width = in_bits.max(out_bits).max(1);
            }
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Node accessor.
    pub fn node(&self, id: SeqNodeId) -> &SeqNode {
        &self.nodes[id.0 as usize]
    }

    /// Iterates over the nodes in index order.
    pub fn nodes(&self) -> impl Iterator<Item = &SeqNode> + '_ {
        self.nodes.iter()
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SeqNodeId, &SeqNode)> + '_ {
        self.nodes.iter().enumerate().map(|(i, n)| (SeqNodeId(i as u32), n))
    }

    /// Out-edges of a node as `(target, bits)`.
    pub fn successors(&self, id: SeqNodeId) -> &[(usize, u64)] {
        &self.succ[id.0 as usize]
    }

    /// In-edges of a node as `(source, bits)`.
    pub fn predecessors(&self, id: SeqNodeId) -> &[(usize, u64)] {
        &self.pred[id.0 as usize]
    }

    /// The sequential node representing a macro cell, if any.
    pub fn macro_node(&self, cell: CellId) -> Option<SeqNodeId> {
        self.macro_of_cell.get(cell).copied().flatten()
    }

    /// Ids of all macro nodes.
    pub fn macro_nodes(&self) -> impl Iterator<Item = SeqNodeId> + '_ {
        self.iter().filter(|(_, n)| n.kind == SeqNodeKind::Macro).map(|(id, _)| id)
    }

    /// Ids of all port nodes.
    pub fn port_nodes(&self) -> impl Iterator<Item = SeqNodeId> + '_ {
        self.iter().filter(|(_, n)| n.kind == SeqNodeKind::Port).map(|(id, _)| id)
    }

    /// Bits flowing on the edge `from → to`, 0 if absent.
    pub fn edge_bits(&self, from: SeqNodeId, to: SeqNodeId) -> u64 {
        self.succ[from.0 as usize]
            .iter()
            .find(|&&(t, _)| t == to.0 as usize)
            .map(|&(_, b)| b)
            .unwrap_or(0)
    }

    /// Serializes the graph with the spill-tier codec ([`netlist::codec`]):
    /// nodes (kind tag, names, width, member ids), both weighted adjacency
    /// tables, and the dense macro-cell lookup (`u32::MAX` for `None`).
    pub fn encode(&self, out: &mut Vec<u8>) {
        netlist::codec::put_u64(out, self.nodes.len() as u64);
        for node in &self.nodes {
            let tag = match node.kind {
                SeqNodeKind::Macro => 0u8,
                SeqNodeKind::Register => 1,
                SeqNodeKind::Port => 2,
            };
            netlist::codec::put_u8(out, tag);
            netlist::codec::put_str(out, &node.name);
            netlist::codec::put_u64(out, node.width);
            netlist::codec::put_str(out, &node.hier_path);
            netlist::codec::put_u64(out, node.cells.len() as u64);
            for c in &node.cells {
                netlist::codec::put_u32(out, c.0);
            }
            netlist::codec::put_u64(out, node.ports.len() as u64);
            for p in &node.ports {
                netlist::codec::put_u32(out, p.0);
            }
        }
        for table in [&self.succ, &self.pred] {
            netlist::codec::put_u64(out, table.len() as u64);
            for row in table {
                netlist::codec::put_u64(out, row.len() as u64);
                for &(target, bits) in row {
                    netlist::codec::put_u32(out, target as u32);
                    netlist::codec::put_u64(out, bits);
                }
            }
        }
        netlist::codec::put_u64(out, self.macro_of_cell.len() as u64);
        for (_, slot) in self.macro_of_cell.iter() {
            netlist::codec::put_u32(out, slot.map_or(u32::MAX, |id| id.0));
        }
    }

    /// Decodes a graph encoded by [`SeqGraph::encode`]. Returns `None` on
    /// truncation, trailing bytes, or indices out of the decoded node range.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = netlist::codec::Reader::new(bytes);
        let num_nodes = r.take_u64()? as usize;
        if r.remaining() < num_nodes {
            return None;
        }
        let mut nodes = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let kind = match r.take_u8()? {
                0 => SeqNodeKind::Macro,
                1 => SeqNodeKind::Register,
                2 => SeqNodeKind::Port,
                _ => return None,
            };
            let name = r.take_str()?;
            let width = r.take_u64()?;
            let hier_path = r.take_str()?;
            let cells = r.take_u32_vec()?.into_iter().map(CellId).collect();
            let ports = r.take_u32_vec()?.into_iter().map(PortId).collect();
            nodes.push(SeqNode { kind, name, width, hier_path, cells, ports });
        }
        let mut tables = Vec::with_capacity(2);
        for _ in 0..2 {
            let rows = r.take_u64()? as usize;
            // each row carries at least its 8-byte length prefix, so this
            // also rejects corrupt counts before they size an allocation
            if rows != num_nodes || r.remaining() / 8 < rows {
                return None;
            }
            let mut table = Vec::with_capacity(rows);
            for _ in 0..rows {
                let len = r.take_u64()? as usize;
                if r.remaining() / 12 < len {
                    return None;
                }
                let mut row = Vec::with_capacity(len);
                for _ in 0..len {
                    let target = r.take_u32()? as usize;
                    if target >= num_nodes {
                        return None;
                    }
                    row.push((target, r.take_u64()?));
                }
                table.push(row);
            }
            tables.push(table);
        }
        let slots = r.take_u64()? as usize;
        if r.remaining() / 4 < slots {
            return None;
        }
        let mut macro_slots = Vec::with_capacity(slots);
        for _ in 0..slots {
            let raw = r.take_u32()?;
            if raw == u32::MAX {
                macro_slots.push(None);
            } else if (raw as usize) < num_nodes {
                macro_slots.push(Some(SeqNodeId(raw)));
            } else {
                return None;
            }
        }
        if !r.is_exhausted() {
            return None;
        }
        let pred = tables.pop().expect("two tables decoded");
        let succ = tables.pop().expect("two tables decoded");
        Some(Self { nodes, succ, pred, macro_of_cell: DenseMap::from_vec(macro_slots) })
    }
}

impl netlist::HeapSize for SeqNodeId {
    fn heap_bytes(&self) -> usize {
        0
    }
}

impl netlist::HeapSize for SeqNode {
    fn heap_bytes(&self) -> usize {
        self.name.heap_bytes()
            + self.hier_path.heap_bytes()
            + self.cells.heap_bytes()
            + self.ports.heap_bytes()
    }
}

impl netlist::HeapSize for SeqGraph {
    fn heap_bytes(&self) -> usize {
        self.nodes.heap_bytes()
            + self.succ.heap_bytes()
            + self.pred.heap_bytes()
            + self.macro_of_cell.heap_bytes()
    }
}

/// Returns `true` if the netlist-graph node may be traversed when collapsing
/// combinational logic: combinational cells only (sequential endpoints stop
/// the search, discarded registers also stop it so latency is not silently
/// underestimated... they are rare by construction).
fn is_traversable(gnet: &NetGraph, idx: usize, design: &Design) -> bool {
    match gnet.node(idx) {
        NetGraphNode::Cell(c) => design.cell(c).kind == CellKind::Comb,
        NetGraphNode::Port(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::{DesignBuilder, PortDirection};

    /// port[2] -> comb -> reg_a[4] -> comb -> MACRO -> reg_b[2] -> out port
    fn pipeline_design() -> Design {
        let mut b = DesignBuilder::new("t");
        let mut prev: Vec<CellId> = Vec::new();
        // input port bits
        let mut in_ports = Vec::new();
        for i in 0..2 {
            in_ports.push(b.add_port(format!("din[{i}]"), PortDirection::Input));
        }
        // stage A: 4-bit register fed by the input ports through buffers
        for i in 0..4 {
            let g = b.add_comb(format!("u_a/buf_{i}"), "u_a");
            let f = b.add_flop(format!("u_a/ra_reg[{i}]"), "u_a");
            let n_in = b.add_net(format!("u_a/nin_{i}"));
            let n_q = b.add_net(format!("u_a/nq_{i}"));
            b.connect_port_driver(n_in, in_ports[i % 2]);
            b.connect_sink(n_in, g);
            b.connect_driver(n_q, g);
            b.connect_sink(n_q, f);
            prev.push(f);
        }
        // macro fed by all 4 bits of stage A
        let m = b.add_macro("u_m/ram", "RAM", 100, 100, "u_m");
        for (i, &f) in prev.iter().enumerate() {
            let n = b.add_net(format!("u_a/to_ram_{i}"));
            b.connect_driver(n, f);
            b.connect_sink(n, m);
        }
        // stage B: 2-bit register fed by the macro
        let mut stage_b = Vec::new();
        for i in 0..2 {
            let f = b.add_flop(format!("u_b/rb_reg[{i}]"), "u_b");
            let n = b.add_net(format!("u_b/from_ram_{i}"));
            b.connect_driver(n, m);
            b.connect_sink(n, f);
            stage_b.push(f);
        }
        // output port
        let po = b.add_port("dout[0]", PortDirection::Output);
        let n = b.add_net("dout[0]");
        b.connect_driver(n, stage_b[0]);
        b.connect_port_sink(n, po);
        b.build()
    }

    #[test]
    fn clusters_registers_and_ports_by_name() {
        let d = pipeline_design();
        let g = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        // nodes: din port (2b), dout port (1b), ra_reg (4b), rb_reg (2b), macro
        assert_eq!(g.num_nodes(), 5);
        let ra = g.iter().find(|(_, n)| n.name.ends_with("ra_reg")).unwrap();
        assert_eq!(ra.1.width, 4);
        assert_eq!(ra.1.kind, SeqNodeKind::Register);
        let din = g.iter().find(|(_, n)| n.name == "din").unwrap();
        assert_eq!(din.1.width, 2);
        assert_eq!(din.1.kind, SeqNodeKind::Port);
    }

    #[test]
    fn edges_cross_combinational_logic_only() {
        let d = pipeline_design();
        let g = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        let ra = g.iter().find(|(_, n)| n.name.ends_with("ra_reg")).unwrap().0;
        let din = g.iter().find(|(_, n)| n.name == "din").unwrap().0;
        let m = g.macro_nodes().next().unwrap();
        // din -> ra through buffers: 2 source bits fan out to 4 register bits
        assert_eq!(g.edge_bits(din, ra), 4);
        // ra -> macro: all 4 bits reach it directly
        assert_eq!(g.edge_bits(ra, m), 4);
        // no edge din -> macro (a register is in between)
        assert_eq!(g.edge_bits(din, m), 0);
    }

    #[test]
    fn macro_width_from_connectivity() {
        let d = pipeline_design();
        let g = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        let m = g.macro_nodes().next().unwrap();
        assert_eq!(g.node(m).width, 4); // max(in=4, out=2)
    }

    #[test]
    fn min_register_bits_filters_small_arrays() {
        let d = pipeline_design();
        let g = SeqGraph::from_design(&d, &SeqGraphConfig { min_register_bits: 3 });
        // rb_reg (2 bits) is dropped
        assert!(g.iter().all(|(_, n)| !n.name.ends_with("rb_reg")));
        assert_eq!(g.num_nodes(), 4);
    }

    #[test]
    fn macro_node_lookup() {
        let d = pipeline_design();
        let g = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        let ram = d.find_cell("u_m/ram").unwrap();
        let node = g.macro_node(ram).unwrap();
        assert_eq!(g.node(node).kind, SeqNodeKind::Macro);
        assert_eq!(g.macro_nodes().count(), 1);
        assert_eq!(g.port_nodes().count(), 2);
    }

    #[test]
    fn encode_decode_round_trips_bit_identically() {
        let d = pipeline_design();
        for min_bits in [1, 3] {
            let g = SeqGraph::from_design(&d, &SeqGraphConfig { min_register_bits: min_bits });
            let mut buf = Vec::new();
            g.encode(&mut buf);
            assert_eq!(SeqGraph::decode(&buf).expect("decodes"), g);
        }
        let g = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        let mut buf = Vec::new();
        g.encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(SeqGraph::decode(&buf[..cut]).is_none(), "cut at {cut}");
        }
        let mut padded = buf.clone();
        padded.push(0);
        assert!(SeqGraph::decode(&padded).is_none());
    }

    #[test]
    fn empty_design_has_no_nodes() {
        let d = DesignBuilder::new("empty").build();
        let g = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
