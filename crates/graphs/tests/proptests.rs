//! Property-based tests of the graph abstractions.

use graphs::bfs::multi_source_bfs;
use graphs::seqgraph::SeqGraphConfig;
use graphs::{FlowHistogram, NetGraph, SeqGraph};
use netlist::design::DesignBuilder;
use proptest::prelude::*;

proptest! {
    #[test]
    fn histogram_score_monotone_in_k_and_bits(
        bins in prop::collection::vec((1u32..10, 1u64..1000), 1..10)
    ) {
        let h: FlowHistogram = bins.iter().copied().collect();
        // score never increases with k
        for k in 0..4 {
            prop_assert!(h.score(k) + 1e-9 >= h.score(k + 1));
        }
        // score at k=0 equals total bits
        prop_assert!((h.score(0) - h.total_bits() as f64).abs() < 1e-6);
        // adding flow can only increase the score
        let mut bigger = h.clone();
        bigger.add(1, 10);
        prop_assert!(bigger.score(2) > h.score(2));
    }

    #[test]
    fn histogram_merge_is_commutative(
        a_bins in prop::collection::vec((1u32..8, 1u64..100), 0..8),
        b_bins in prop::collection::vec((1u32..8, 1u64..100), 0..8),
    ) {
        let a: FlowHistogram = a_bins.iter().copied().collect();
        let b: FlowHistogram = b_bins.iter().copied().collect();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn bfs_distances_are_shortest_on_random_dags(
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..100),
        num_nodes in 1usize..30,
        source in 0usize..30,
    ) {
        let source = source % num_nodes;
        let adj: Vec<Vec<usize>> = {
            let mut adj = vec![Vec::new(); num_nodes];
            for &(a, b) in &edges {
                let (a, b) = (a % num_nodes, b % num_nodes);
                if a != b {
                    adj[a].push(b);
                }
            }
            adj
        };
        let r = multi_source_bfs(num_nodes, &[source], |n| adj[n].clone(), |_| true);
        prop_assert_eq!(r.distance[source], 0);
        // relaxation check: no edge can shortcut a BFS distance by more than 1
        for (a, succs) in adj.iter().enumerate() {
            if r.distance[a] == u32::MAX { continue; }
            for &b in succs {
                prop_assert!(r.distance[b] <= r.distance[a] + 1);
            }
        }
        // predecessors form valid shortest-path links
        for n in 0..num_nodes {
            if n != source && r.reached(n) {
                let p = r.predecessor[n];
                prop_assert!(r.reached(p));
                prop_assert_eq!(r.distance[n], r.distance[p] + 1);
            }
        }
    }

    #[test]
    fn seq_graph_width_conservation(
        num_regs in 1usize..6,
        bits in 1u64..12,
    ) {
        // a chain of register arrays, each `bits` wide, feeding the next
        let mut b = DesignBuilder::new("chain");
        let mut stages: Vec<Vec<_>> = Vec::new();
        for s in 0..num_regs {
            let stage: Vec<_> = (0..bits)
                .map(|i| b.add_flop(format!("u/s{s}_reg[{i}]"), "u"))
                .collect();
            stages.push(stage);
        }
        for s in 1..num_regs {
            let pairs: Vec<_> =
                stages[s - 1].iter().copied().zip(stages[s].iter().copied()).collect();
            for (i, (src, dst)) in pairs.into_iter().enumerate() {
                let n = b.add_net(format!("n{s}_{i}"));
                b.connect_driver(n, src);
                b.connect_sink(n, dst);
            }
        }
        let design = b.build();
        let gseq = SeqGraph::from_design(&design, &SeqGraphConfig::default());
        prop_assert_eq!(gseq.num_nodes(), num_regs);
        prop_assert_eq!(gseq.num_edges(), num_regs - 1);
        for (id, node) in gseq.iter() {
            prop_assert_eq!(node.width, bits);
            for &(_, w) in gseq.successors(id) {
                prop_assert_eq!(w, bits);
            }
        }
    }

    #[test]
    fn netgraph_edge_count_matches_net_degrees(
        edges in prop::collection::vec((0usize..20, 0usize..20), 1..60),
    ) {
        let mut b = DesignBuilder::new("g");
        let cells: Vec<_> = (0..20).map(|i| b.add_comb(format!("c{i}"), "")).collect();
        let mut expected = std::collections::HashSet::new();
        for (i, &(from, to)) in edges.iter().enumerate() {
            if from == to { continue; }
            let n = b.add_net(format!("n{i}"));
            b.connect_driver(n, cells[from]);
            b.connect_sink(n, cells[to]);
            expected.insert((from, to));
        }
        let design = b.build();
        let g = NetGraph::from_design(&design);
        prop_assert_eq!(g.num_edges(), expected.len());
    }
}
