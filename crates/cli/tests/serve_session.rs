//! End-to-end `--serve` session through the CLI front end: emit real
//! Verilog/LEF inputs, drive the daemon with a command script, and assert
//! the transcript — admission control, priority order, and zero warm graph
//! rebuilds, all through the file loader the binary uses.

use server::{Frame, SharedWriter};
use workload::emit::{emit_lef, emit_verilog};
use workload::{SocConfig, SocGenerator, SubsystemConfig};

fn soc_config(name: &str, bits: usize, seed: u64) -> SocConfig {
    SocConfig {
        name: name.into(),
        subsystems: vec![
            SubsystemConfig::balanced("u_cpu", 2, bits),
            SubsystemConfig::balanced("u_dsp", 2, bits),
        ],
        channels: vec![(0, 1), (1, 0)],
        io_subsystems: vec![0],
        io_bits: 8,
        utilization: 0.5,
        aspect_ratio: 1.0,
        seed,
    }
}

/// Emits a design as Verilog + LEF and returns the file paths.
fn write_inputs(dir: &std::path::Path, config: SocConfig) -> (String, String) {
    let name = config.name.clone();
    let generated = SocGenerator::new(config).generate();
    let verilog = dir.join(format!("{name}.v"));
    let lef = dir.join(format!("{name}.lef"));
    std::fs::write(&verilog, emit_verilog(&generated.design)).unwrap();
    std::fs::write(&lef, emit_lef(&generated.design, &generated.library, 1000)).unwrap();
    (verilog.to_str().unwrap().to_string(), lef.to_str().unwrap().to_string())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hidap_serve_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn parse_transcript(bytes: &[u8]) -> Vec<Frame> {
    String::from_utf8(bytes.to_vec())
        .unwrap()
        .lines()
        .map(|line| Frame::parse(line).unwrap_or_else(|e| panic!("bad frame '{line}': {e}")))
        .collect()
}

#[test]
fn serve_session_places_files_with_priorities_and_zero_warm_rebuilds() {
    let dir = temp_dir("e2e");
    let (small_v, small_lef) = write_inputs(&dir, soc_config("soc_small", 4, 5));
    let (large_v, large_lef) = write_inputs(&dir, soc_config("soc_large", 96, 7));

    // budget sized between the two designs: holds the small one pinned,
    // rejects new work once the large one is pinned alongside it
    let small_bytes = {
        use netlist::HeapSize;
        let opts = cli::parse_args(&[
            "--verilog".into(),
            small_v.clone(),
            "--lef".into(),
            small_lef.clone(),
        ])
        .unwrap();
        let (design, _) = cli::load_design(&opts).unwrap();
        design.connectivity();
        design.heap_bytes()
    };
    let large_bytes = {
        use netlist::HeapSize;
        let opts = cli::parse_args(&[
            "--verilog".into(),
            large_v.clone(),
            "--lef".into(),
            large_lef.clone(),
        ])
        .unwrap();
        let (design, _) = cli::load_design(&opts).unwrap();
        design.connectivity();
        design.heap_bytes()
    };
    let budget_mib = (small_bytes + large_bytes / 2) as f64 / (1u64 << 20) as f64;

    let opts =
        cli::parse_args(&["--serve".into(), "--memory-budget".into(), format!("{budget_mib}")])
            .unwrap();
    let script = format!(
        "hello client=ci\n\
         intern verilog={small_v} lef={small_lef}\n\
         submit design=0 flow=hidap effort=fast seeds=11 priority=0 evaluate=standard\n\
         submit design=0 flow=hidap effort=fast seeds=12 priority=5 evaluate=standard\n\
         intern verilog={large_v} lef={large_lef}\n\
         submit design=1 flow=hidap effort=fast seeds=13\n\
         drain\n\
         release design=1\n\
         submit design=0 flow=hidap effort=fast seeds=11 priority=0 evaluate=standard\n\
         drain\n\
         stats\n\
         shutdown\n"
    );

    // drive build_server directly (instead of run_serve_session) to keep
    // the daemon for in-process artifact-counter assertions afterwards
    let mut daemon = cli::build_server(&opts);
    let out = SharedWriter::new(Vec::new());
    let end = daemon.serve_once(script.as_bytes(), out.clone()).unwrap();
    assert_eq!(end, server::SessionEnd::Shutdown);
    let frames = parse_transcript(&out.lock());

    // the loader read the real files: interns echo the parsed design names
    let interns: Vec<&Frame> =
        frames.iter().filter(|f| f.name == "ok" && f.get("cmd") == Some("intern")).collect();
    assert_eq!(interns.len(), 2);
    assert_eq!(interns[0].get("name"), Some("soc_small"));
    assert_eq!(interns[1].get("name"), Some("soc_large"));
    assert_eq!(interns[0].get("dbu"), Some("1000"));

    // admission rejected the submit against the over-budget store
    let rejections: Vec<&Frame> = frames
        .iter()
        .filter(|f| f.name == "err" && f.get("code") == Some("admission-rejected"))
        .collect();
    assert_eq!(rejections.len(), 1, "{frames:#?}");

    // priority 5 completed before priority 0 in the first drain
    let done: Vec<&Frame> = frames.iter().filter(|f| f.name == "job-done").collect();
    assert_eq!(done.len(), 3);
    assert_eq!(done[0].get("seed"), Some("12"));
    assert_eq!(done[1].get("seed"), Some("11"));

    // the warm re-submit (same design, same spec) was bit-identical
    let strip = |f: &Frame| -> Vec<(String, String)> {
        f.fields.iter().filter(|(k, _)| k != "wall_s" && k != "job").cloned().collect()
    };
    assert_eq!(strip(done[1]), strip(done[2]), "warm result matches cold bit-for-bit");

    // and performed zero graph rebuilds: misses stayed at the cold count
    // (one per kind per design that ran)
    let stats = daemon.scheduler().service().store().artifacts().stats();
    assert_eq!(stats.seq.misses, 1, "only the cold run built the sequential graph");
    assert_eq!(stats.net.misses, 1, "only the cold run built the netlist graph");
    assert!(stats.seq.hits >= 1, "the warm run hit the cache");

    // the stats frames agree with the in-process counters (one source of
    // truth through PlacementService::stats)
    let artifact_rows: Vec<&Frame> = frames.iter().filter(|f| f.name == "artifact").collect();
    let seq_row = artifact_rows.iter().find(|f| f.get("kind") == Some("seq")).unwrap();
    assert_eq!(seq_row.get("misses"), Some("1"));

    // the released large design was evicted under the budget, so the
    // high-water mark strictly exceeds the surviving residency
    let stats_frame = frames.iter().find(|f| f.name == "stats").unwrap();
    let peak: usize = stats_frame.get("peak_bytes").unwrap().parse().unwrap();
    let resident: usize = stats_frame.get("resident_bytes").unwrap().parse().unwrap();
    assert!(peak > resident, "peak {peak} should exceed post-eviction residency {resident}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_session_reports_loader_errors_without_dying() {
    let opts = cli::parse_args(&["--serve".into()]).unwrap();
    let script =
        "hello client=ci\nintern verilog=/nonexistent/x.v\nintern design=preset\nshutdown\n";
    let out = SharedWriter::new(Vec::new());
    let end = cli::run_serve_session(&opts, script.as_bytes(), out.clone()).unwrap();
    assert_eq!(end, server::SessionEnd::Shutdown);
    let frames = parse_transcript(&out.lock());
    let errs: Vec<&Frame> = frames.iter().filter(|f| f.name == "err").collect();
    assert_eq!(errs.len(), 2);
    assert_eq!(errs[0].get("code"), Some("load-failed"));
    assert!(errs[0].get("reason").unwrap().contains("cannot read"), "{:?}", errs[0]);
    assert_eq!(errs[1].get("code"), Some("load-failed"));
    assert!(errs[1].get("reason").unwrap().contains("verilog="), "the required field is named");
}
