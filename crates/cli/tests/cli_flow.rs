//! End-to-end test of the command-line front end: emit a synthetic SoC as
//! Verilog + LEF, drive the CLI library against the files, and check the
//! placed DEF and SVG outputs.

use cli::{load_design, parse_args, place, run};
use workload::emit::{emit_lef, emit_verilog};
use workload::{SocConfig, SocGenerator, SubsystemConfig};

fn write_inputs(dir: &std::path::Path) -> (std::path::PathBuf, std::path::PathBuf) {
    let generated = SocGenerator::new(SocConfig {
        name: "cli_soc".into(),
        subsystems: vec![
            SubsystemConfig::balanced("u_cpu", 2, 8),
            SubsystemConfig::balanced("u_dsp", 2, 8),
        ],
        channels: vec![(0, 1), (1, 0)],
        io_subsystems: vec![0],
        io_bits: 8,
        utilization: 0.5,
        aspect_ratio: 1.0,
        seed: 5,
    })
    .generate();
    let verilog = dir.join("cli_soc.v");
    let lef = dir.join("cli_soc.lef");
    std::fs::write(&verilog, emit_verilog(&generated.design)).unwrap();
    std::fs::write(&lef, emit_lef(&generated.design, &generated.library, 1000)).unwrap();
    (verilog, lef)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hidap_cli_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn cli_places_design_and_writes_outputs() {
    let dir = temp_dir("full");
    let (verilog, lef) = write_inputs(&dir);
    let out_def = dir.join("placed.def");
    let out_svg = dir.join("floorplan.svg");
    let args: Vec<String> = [
        "--verilog",
        verilog.to_str().unwrap(),
        "--lef",
        lef.to_str().unwrap(),
        "--top",
        "cli_soc",
        "--effort",
        "fast",
        "--out",
        out_def.to_str().unwrap(),
        "--svg",
        out_svg.to_str().unwrap(),
        "--report",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let opts = parse_args(&args).expect("arguments parse");
    let output = run(&opts).expect("CLI flow succeeds");
    assert!(output.contains("placed 4 macros"));
    assert!(output.contains("wirelength"));

    // the DEF can be re-read and contains every macro
    let def_text = std::fs::read_to_string(&out_def).unwrap();
    let def = netlist::def::parse_def(&def_text).unwrap();
    assert_eq!(def.components.len(), 4);
    // the SVG looks like an SVG
    let svg_text = std::fs::read_to_string(&out_svg).unwrap();
    assert!(svg_text.starts_with("<svg"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_baseline_flow_also_works() {
    let dir = temp_dir("baseline");
    let (verilog, lef) = write_inputs(&dir);
    let args: Vec<String> = [
        "--verilog",
        verilog.to_str().unwrap(),
        "--lef",
        lef.to_str().unwrap(),
        "--flow",
        "indeda",
        "--effort",
        "fast",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let opts = parse_args(&args).expect("arguments parse");
    let (design, _) = load_design(&opts).expect("design loads");
    let placement = place(&design, &opts).expect("baseline places");
    assert_eq!(placement.macros.len(), 4);
    assert!(placement.is_legal(&design));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_manifest_places_a_fleet_through_one_service() {
    let dir = temp_dir("manifest");
    // two distinct designs; the first is listed twice so the service interns
    // it once and the repeated job reuses its cached artifacts
    let (verilog_a, lef_a) = write_inputs(&dir);
    let generated_b = SocGenerator::new(SocConfig {
        name: "cli_soc_b".into(),
        subsystems: vec![
            SubsystemConfig::balanced("u_gpu", 3, 8),
            SubsystemConfig::balanced("u_npu", 2, 8),
        ],
        channels: vec![(0, 1)],
        io_subsystems: vec![0],
        io_bits: 8,
        utilization: 0.5,
        aspect_ratio: 1.2,
        seed: 11,
    })
    .generate();
    let verilog_b = dir.join("cli_soc_b.v");
    let lef_b = dir.join("cli_soc_b.lef");
    std::fs::write(&verilog_b, emit_verilog(&generated_b.design)).unwrap();
    std::fs::write(&lef_b, emit_lef(&generated_b.design, &generated_b.library, 1000)).unwrap();

    let manifest = dir.join("designs.txt");
    std::fs::write(
        &manifest,
        format!(
            "# cli manifest test\n\
             {} lef={} top=cli_soc\n\
             {} lef={} top=cli_soc_b flow=indeda seed=3\n\
             {} lef={} top=cli_soc  # same design again: interned once\n",
            verilog_a.display(),
            lef_a.display(),
            verilog_b.display(),
            lef_b.display(),
            verilog_a.display(),
            lef_a.display(),
        ),
    )
    .unwrap();

    let args: Vec<String> =
        ["--manifest", manifest.to_str().unwrap(), "--effort", "fast", "--report"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let opts = parse_args(&args).expect("arguments parse");
    let output = run(&opts).expect("manifest flow succeeds");
    assert!(output.contains("cli_soc (hidap): placed 4 macros"), "{output}");
    assert!(output.contains("cli_soc_b (indeda): placed 5 macros"), "{output}");
    assert!(output.contains("wirelength"), "{output}");
    // 3 jobs, 2 interned designs; the repeated design reuses its stored
    // artifacts. Gseq: 2 builds for 2 designs, every other fetch is a hit
    // (job 1 flow miss + eval hit, job 2 eval miss, job 3 flow + eval hits).
    // Gnet: 2 builds (job 1 flow, job 2's Gseq derivation), 2 hits (job 1's
    // Gseq derivation, job 3 flow).
    // jobs drain one at a time, so the queue-depth watermark stays at 1
    assert!(
        output.contains("service: 3 jobs over 2 interned designs (peak queue depth 1)"),
        "{output}"
    );
    assert!(output.contains("cache: Gseq 2 built, 3 reused"), "{output}");
    assert!(output.contains("Gnet 2 built, 2 reused"), "{output}");
    // the memory line reports resident bytes split into designs + artifacts,
    // plus the run's high-water mark
    assert!(output.contains("MiB resident (designs "), "{output}");
    assert!(output.contains("), peak "), "{output}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_manifest_per_line_grids_run_their_own_sweeps() {
    let dir = temp_dir("manifest_grids");
    let (verilog, lef) = write_inputs(&dir);
    // line 1 carries its own seed×λ grid (no global --sweep); line 2 is a
    // plain single run of the same design — the heterogeneous-fleet shape
    let manifest = dir.join("designs.txt");
    std::fs::write(
        &manifest,
        format!(
            "{v} lef={l} top=cli_soc seeds=3,4 lambdas=0.2,0.8\n{v} lef={l} top=cli_soc seed=5\n",
            v = verilog.display(),
            l = lef.display(),
        ),
    )
    .unwrap();
    let opts = parse_args(
        &["--manifest", manifest.to_str().unwrap(), "--effort", "fast", "--memory-budget", "256"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<String>>(),
    )
    .unwrap();
    let output = run(&opts).expect("manifest flow succeeds");
    // both jobs run over one interned design; the grid line reports its
    // winner's seed and λ, the plain line its pinned seed
    assert!(output.contains("service: 2 jobs over 1 interned designs"), "{output}");
    assert_eq!(output.matches("cli_soc (hidap): placed 4 macros").count(), 2, "{output}");
    assert!(output.contains(", seed 5"), "{output}");
    assert!(output.contains("lambda 0."), "{output}");
    assert!(output.contains("budget 256.0 MiB"), "{output}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_manifest_memory_budget_evicts_finished_designs() {
    let dir = temp_dir("manifest_budget");
    let (verilog_a, lef_a) = write_inputs(&dir);
    let generated_b = SocGenerator::new(SocConfig {
        name: "cli_soc_evict".into(),
        subsystems: vec![SubsystemConfig::balanced("u_aux", 2, 8)],
        channels: vec![],
        io_subsystems: vec![0],
        io_bits: 8,
        utilization: 0.5,
        aspect_ratio: 1.0,
        seed: 23,
    })
    .generate();
    let verilog_b = dir.join("cli_soc_evict.v");
    let lef_b = dir.join("cli_soc_evict.lef");
    std::fs::write(&verilog_b, emit_verilog(&generated_b.design)).unwrap();
    std::fs::write(&lef_b, emit_lef(&generated_b.design, &generated_b.library, 1000)).unwrap();

    let manifest = dir.join("designs.txt");
    std::fs::write(
        &manifest,
        format!(
            "{} lef={} top=cli_soc\n{} lef={} top=cli_soc_evict\n",
            verilog_a.display(),
            lef_a.display(),
            verilog_b.display(),
            lef_b.display(),
        ),
    )
    .unwrap();
    // a budget far below one design: each design is released after its line
    // and evicted under pressure, yet every line still places successfully
    // (eviction changes memory, never results)
    let opts = parse_args(
        &["--manifest", manifest.to_str().unwrap(), "--effort", "fast", "--memory-budget", "0.01"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<String>>(),
    )
    .unwrap();
    let output = run(&opts).expect("manifest flow succeeds under eviction pressure");
    assert!(output.contains("cli_soc (hidap): placed 4 macros"), "{output}");
    assert!(output.contains("cli_soc_evict (hidap): placed 2 macros"), "{output}");
    assert!(output.contains("budget 0.0 MiB"), "{output}");
    assert!(output.contains("2 designs evicted"), "{output}");
    // everything was evicted, so the tail residency is tiny — the peak
    // field is what records the run's true footprint
    assert!(output.contains("), peak "), "{output}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_manifest_spill_dir_revives_across_batch_runs() {
    let dir = temp_dir("manifest_spill");
    let (verilog, lef) = write_inputs(&dir);
    let spill = dir.join("spill");
    let manifest = dir.join("designs.txt");
    std::fs::write(&manifest, format!("{} lef={} top=cli_soc\n", verilog.display(), lef.display()))
        .unwrap();
    // a zero-ish budget forces eviction (and therefore spilling) at every
    // opportunity; the second batch over the same directory revives instead
    // of rebuilding, with identical output
    let opts = parse_args(
        &[
            "--manifest",
            manifest.to_str().unwrap(),
            "--effort",
            "fast",
            "--memory-budget",
            "0.01",
            "--spill-dir",
            spill.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<String>>(),
    )
    .unwrap();
    let cold = run(&opts).expect("first batch succeeds");
    assert!(cold.contains("spill: "), "{cold}");
    assert!(cold.contains("1 seeds persisted"), "{cold}");
    let warm = run(&opts).expect("second batch succeeds");
    assert!(warm.contains("CSR 1 spilled, 1 revived"), "{warm}");
    let placed = |s: &str| {
        s.lines().find(|l| l.contains("placed")).map(str::to_string).expect("placement line")
    };
    assert_eq!(placed(&cold), placed(&warm), "revival must not change the placement");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_spill_dir_requires_a_service_mode() {
    let err = parse_args(
        &["--verilog", "x.v", "--spill-dir", "/tmp/spill"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<String>>(),
    )
    .expect_err("--spill-dir without --manifest/--serve is rejected");
    assert!(err.contains("--spill-dir"), "{err}");
}

#[test]
fn cli_manifest_reports_per_design_failures_without_dropping_the_rest() {
    let dir = temp_dir("manifest_partial");
    let (verilog, lef) = write_inputs(&dir);
    // a DEF with a die far too small for the macros fails that line's
    // placement; the healthy line must still be reported
    let tiny_def = dir.join("tiny.def");
    std::fs::write(
        &tiny_def,
        netlist::def::write_def("cli_soc", 1000, geometry::Rect::new(0, 0, 10, 10), &[], &[]),
    )
    .unwrap();
    let manifest = dir.join("designs.txt");
    // line 2 fails placement (tiny die), line 3 fails to even load — both
    // must be reported inline without discarding line 1's finished result
    std::fs::write(
        &manifest,
        format!(
            "{v} lef={l} top=cli_soc\n{v} lef={l} def={d} top=cli_soc\n{m} lef={l}\n",
            v = verilog.display(),
            l = lef.display(),
            d = tiny_def.display(),
            m = dir.join("missing.v").display(),
        ),
    )
    .unwrap();
    let opts = parse_args(
        &["--manifest", manifest.to_str().unwrap(), "--effort", "fast"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<String>>(),
    )
    .unwrap();
    let err = run(&opts).expect_err("a failing design fails the run");
    // ... but only after every design was placed and reported
    assert!(err.contains("cli_soc (hidap): placed 4 macros"), "{err}");
    assert!(err.contains("FAILED"), "{err}");
    assert!(err.contains("missing.v (hidap): FAILED: cannot read"), "{err}");
    assert!(err.contains("2 of 3 designs failed"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_reports_missing_files_gracefully() {
    let args: Vec<String> =
        ["--verilog", "/nonexistent/path/x.v"].iter().map(|s| s.to_string()).collect();
    let opts = parse_args(&args).unwrap();
    let err = run(&opts).unwrap_err();
    assert!(err.contains("cannot read"));
}
