//! Library backing the `hidap` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; all argument parsing and flow
//! orchestration lives here so it can be unit-tested without spawning a
//! process.
//!
//! ```text
//! hidap --verilog design.v --lef macros.lef [--def floorplan.def]
//!       [--top NAME] [--flow hidap|indeda|handfp] [--lambda 0.5]
//!       [--effort fast|default|high] [--seed 1] [--sweep] [--jobs N]
//!       [--seeds 1,2,3] [--lambdas 0.2,0.5,0.8]
//!       [--out placed.def] [--svg floorplan.svg] [--report]
//! ```
//!
//! Flows are resolved by name through the engine's flow registry
//! ([`baselines::default_registry`]), and every placement goes through the
//! unified [`placer_core::Placer`] API:
//!
//! ```no_run
//! use placer_core::{PlaceContext, PlaceRequest};
//!
//! let design = cli::load_design(&cli::parse_args(&[
//!     "--verilog".into(), "design.v".into(),
//! ])?)?.0;
//! let registry = baselines::default_registry();
//! let placer = registry.create("hidap").map_err(|e| e.to_string())?;
//! let request = PlaceRequest::new(&design).with_seed(1).with_lambda(0.5);
//! let outcome = placer
//!     .place(&request, &mut PlaceContext::new())
//!     .map_err(|e| e.to_string())?;
//! println!("placed {} macros", outcome.placement.macros.len());
//! # Ok::<(), String>(())
//! ```
//!
//! With `--sweep`, the tool fans a seed×λ grid out across `--jobs` worker
//! threads via [`placer_core::BatchRunner`] and keeps the lowest-wirelength
//! winner; the result is identical for any `--jobs` value.

use eval::{EvalConfig, Evaluator};
use geometry::Rect;
use hidap::MacroPlacement;
use netlist::design::Design;
use netlist::verilog::ElaborateOptions;
use placer_core::{BatchGrid, BatchRunner, EffortLevel, PlaceContext, PlaceOutcome, PlaceRequest};
use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Structural Verilog netlist (required).
    pub verilog: PathBuf,
    /// LEF file with macro footprints (optional).
    pub lef: Option<PathBuf>,
    /// DEF file providing the die area and port locations (optional; a square
    /// die at 60 % utilization is derived when absent).
    pub def: Option<PathBuf>,
    /// Top module name (inferred when absent).
    pub top: Option<String>,
    /// Flow to run, resolved through the flow registry.
    pub flow: String,
    /// λ blend between block flow and macro flow.
    pub lambda: f64,
    /// Effort preset: `fast`, `default` or `high`.
    pub effort: String,
    /// Random seed (base seed of the sweep when `--sweep` is given).
    pub seed: u64,
    /// Run a seed×λ sweep and keep the lowest-wirelength winner.
    pub sweep: bool,
    /// Worker threads for the sweep (0 = all available cores).
    pub jobs: usize,
    /// Explicit sweep seeds; derived from `seed` when empty.
    pub seeds: Vec<u64>,
    /// Sweep λ values.
    pub lambdas: Vec<f64>,
    /// Output DEF path (optional).
    pub out: Option<PathBuf>,
    /// Output SVG path (optional).
    pub svg: Option<PathBuf>,
    /// Print evaluation metrics after placement.
    pub report: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            verilog: PathBuf::new(),
            lef: None,
            def: None,
            top: None,
            flow: "hidap".to_string(),
            lambda: 0.5,
            effort: "default".to_string(),
            seed: 1,
            sweep: false,
            jobs: 0,
            seeds: Vec::new(),
            lambdas: vec![0.2, 0.5, 0.8],
            out: None,
            svg: None,
            report: false,
        }
    }
}

/// The usage string printed on `--help` or argument errors.
pub const USAGE: &str = "usage: hidap --verilog <file.v> [--lef <file.lef>] [--def <file.def>] \
[--top <module>] [--flow hidap|indeda|handfp] [--lambda <0..1>] [--effort fast|default|high] \
[--seed <n>] [--sweep] [--jobs <n>] [--seeds <n,n,...>] [--lambdas <l,l,...>] \
[--out <placed.def>] [--svg <floorplan.svg>] [--report]";

fn parse_list<T: std::str::FromStr>(value: &str, flag: &str) -> Result<Vec<T>, String> {
    value
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("invalid {flag} entry '{s}'")))
        .collect()
}

/// Parses command-line arguments (excluding the program name).
///
/// All value validation happens here, at parse time: unknown flows (checked
/// against the flow registry), out-of-range `--lambda`, unknown `--effort`
/// values and malformed lists are rejected with a clear message instead of
/// failing deep inside a flow.
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values,
/// invalid values or a missing `--verilog` input.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut i = 0;
    let mut have_verilog = false;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag {
            "--verilog" => {
                opts.verilog = PathBuf::from(value(&mut i)?);
                have_verilog = true;
            }
            "--lef" => opts.lef = Some(PathBuf::from(value(&mut i)?)),
            "--def" => opts.def = Some(PathBuf::from(value(&mut i)?)),
            "--top" => opts.top = Some(value(&mut i)?),
            "--flow" => {
                let name = value(&mut i)?;
                let registry = baselines::default_registry();
                if !registry.contains(&name) {
                    return Err(format!(
                        "unknown flow '{name}' (known flows: {})",
                        registry.names().join(", ")
                    ));
                }
                opts.flow = name;
            }
            "--lambda" => {
                opts.lambda =
                    value(&mut i)?.parse().map_err(|_| "invalid --lambda value".to_string())?;
            }
            "--effort" => {
                let effort = value(&mut i)?;
                if EffortLevel::parse(&effort).is_none() {
                    return Err(format!("unknown effort '{effort}' (expected fast|default|high)"));
                }
                opts.effort = effort;
            }
            "--seed" => {
                opts.seed =
                    value(&mut i)?.parse().map_err(|_| "invalid --seed value".to_string())?;
            }
            "--sweep" => opts.sweep = true,
            "--jobs" => {
                opts.jobs =
                    value(&mut i)?.parse().map_err(|_| "invalid --jobs value".to_string())?;
            }
            "--seeds" => opts.seeds = parse_list(&value(&mut i)?, "--seeds")?,
            "--lambdas" => opts.lambdas = parse_list(&value(&mut i)?, "--lambdas")?,
            "--out" => opts.out = Some(PathBuf::from(value(&mut i)?)),
            "--svg" => opts.svg = Some(PathBuf::from(value(&mut i)?)),
            "--report" => opts.report = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        i += 1;
    }
    if !have_verilog {
        return Err(format!("--verilog is required\n{USAGE}"));
    }
    if !(0.0..=1.0).contains(&opts.lambda) {
        return Err(format!("--lambda must be between 0 and 1, got {}", opts.lambda));
    }
    if let Some(bad) = opts.lambdas.iter().find(|l| !(0.0..=1.0).contains(*l)) {
        return Err(format!("--lambdas entries must be between 0 and 1, got {bad}"));
    }
    if opts.lambdas.is_empty() {
        return Err("--lambdas must name at least one value".to_string());
    }
    Ok(opts)
}

/// The engine effort tier implied by the options.
pub fn effort_level(opts: &Options) -> Result<EffortLevel, String> {
    EffortLevel::parse(&opts.effort)
        .ok_or_else(|| format!("unknown effort '{}' (expected fast|default|high)", opts.effort))
}

/// Loads the design described by the options: Verilog netlist, optional LEF
/// footprints, optional DEF die/ports. Returns the design and the DBU scale.
pub fn load_design(opts: &Options) -> Result<(Design, i64), String> {
    let verilog_text = std::fs::read_to_string(&opts.verilog)
        .map_err(|e| format!("cannot read {}: {e}", opts.verilog.display()))?;
    let mut elaborate = ElaborateOptions::default();
    let mut dbu = 1000i64;
    if let Some(lef_path) = &opts.lef {
        let lef_text = std::fs::read_to_string(lef_path)
            .map_err(|e| format!("cannot read {}: {e}", lef_path.display()))?;
        let lef =
            netlist::lef::parse_lef(&lef_text).map_err(|e| format!("LEF parse error: {e}"))?;
        dbu = lef.dbu_per_micron;
        elaborate.library = lef.library;
    }
    let mut design =
        netlist::verilog::parse_verilog(&verilog_text, opts.top.as_deref(), &elaborate)
            .map_err(|e| format!("Verilog parse error: {e}"))?;

    if let Some(def_path) = &opts.def {
        let def_text = std::fs::read_to_string(def_path)
            .map_err(|e| format!("cannot read {}: {e}", def_path.display()))?;
        let def =
            netlist::def::parse_def(&def_text).map_err(|e| format!("DEF parse error: {e}"))?;
        if def.dbu_per_micron > 0 {
            dbu = def.dbu_per_micron;
        }
        def.apply_to(&mut design);
    }
    if design.die().area() == 0 {
        // derive a square die at 60% utilization when none was provided
        let side = ((design.total_cell_area() as f64 / 0.6).sqrt()).ceil() as i64;
        design.set_die(Rect::new(0, 0, side.max(1), side.max(1)));
    }
    Ok((design, dbu))
}

/// A one-line summary of how a placement was obtained.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlacementInfo {
    /// Winning seed (differs from the base seed under `--sweep`).
    pub seed: u64,
    /// Winning λ, for flows with a λ knob.
    pub lambda: Option<f64>,
    /// Number of sweep candidates (1 without `--sweep`).
    pub candidates: usize,
    /// Worker threads the sweep used.
    pub jobs: usize,
}

/// Runs the selected flow on a loaded design through the engine API.
pub fn place(design: &Design, opts: &Options) -> Result<MacroPlacement, String> {
    place_outcome(design, opts).map(|(outcome, _)| outcome.placement)
}

/// Like [`place`], but returns the full [`PlaceOutcome`] (stage timings,
/// metrics) and sweep information.
pub fn place_outcome(
    design: &Design,
    opts: &Options,
) -> Result<(PlaceOutcome, PlacementInfo), String> {
    let registry = baselines::default_registry();
    let placer = registry.create(&opts.flow).map_err(|e| e.to_string())?;
    let effort = effort_level(opts)?;
    let mut ctx = PlaceContext::new();
    if opts.sweep {
        if placer.is_composite() {
            return Err(format!(
                "flow '{}' already sweeps a seed×λ grid internally; drop --sweep (configure the \
                 flow's own grid instead) or sweep a single-run flow like 'hidap'",
                opts.flow
            ));
        }
        // flows without a λ knob would run identical placements per λ entry
        let lambdas =
            if placer.supports_lambda() { opts.lambdas.clone() } else { vec![opts.lambda] };
        let grid = if opts.seeds.is_empty() {
            BatchGrid::derived(opts.seed, 4, lambdas)
        } else {
            BatchGrid::new(opts.seeds.clone(), lambdas)
        };
        let candidates = grid.len();
        let runner = BatchRunner::new().with_jobs(opts.jobs);
        let template = PlaceRequest::new(design).with_effort(effort);
        let batch = runner
            .run(placer.as_ref(), &template, &grid, &mut ctx)
            .map_err(|e| format!("placement failed: {e}"))?;
        let info = PlacementInfo {
            seed: batch.winner.seed,
            lambda: batch.winner.lambda,
            candidates,
            jobs: runner.effective_jobs(candidates),
        };
        Ok((batch.winner, info))
    } else {
        let request = PlaceRequest::new(design)
            .with_seed(opts.seed)
            .with_effort(effort)
            .with_lambda(opts.lambda);
        let outcome =
            placer.place(&request, &mut ctx).map_err(|e| format!("placement failed: {e}"))?;
        let info =
            PlacementInfo { seed: outcome.seed, lambda: outcome.lambda, candidates: 1, jobs: 1 };
        Ok((outcome, info))
    }
}

/// End-to-end CLI driver: load, place, write outputs, optionally report.
/// Returns the text printed to stdout.
pub fn run(opts: &Options) -> Result<String, String> {
    let (design, dbu) = load_design(opts)?;
    let (outcome, info) = place_outcome(&design, opts)?;
    let placement = &outcome.placement;
    let mut output = String::new();
    output.push_str(&format!(
        "placed {} macros on a {:.1} x {:.1} um die (legal: {})\n",
        placement.macros.len(),
        design.die().width() as f64 / dbu as f64,
        design.die().height() as f64 / dbu as f64,
        placement.is_legal(&design),
    ));
    if opts.sweep {
        output.push_str(&format!(
            "sweep: {} candidates on {} threads, winner seed {}{}\n",
            info.candidates,
            info.jobs,
            info.seed,
            info.lambda.map(|l| format!(" lambda {l}")).unwrap_or_default(),
        ));
    }

    if let Some(out) = &opts.out {
        // the flow output is a PlacementView: DEF entries come straight from
        // its sorted entries, no intermediate map
        let entries = netlist::def::placement_entries_from_view(&design, placement, true);
        let pins = netlist::def::port_entries(&design);
        let def_text = netlist::def::write_def(design.name(), dbu, design.die(), &entries, &pins);
        std::fs::write(out, def_text)
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        output.push_str(&format!("wrote {}\n", out.display()));
    }
    if let Some(svg) = &opts.svg {
        let svg_text = eval::visualize::floorplan_svg(&design, placement, design.name());
        std::fs::write(svg, svg_text)
            .map_err(|e| format!("cannot write {}: {e}", svg.display()))?;
        output.push_str(&format!("wrote {}\n", svg.display()));
    }
    if opts.report {
        let eval_cfg = EvalConfig { dbu_per_micron: dbu, ..EvalConfig::standard() };
        let metrics = Evaluator::new(eval_cfg).evaluate(&design, placement);
        output.push_str(&format!(
            "wirelength: {:.4} m\ncongestion (GRC%): {:.2}\nWNS: {:.2}% of clock\nTNS: {:.1} ns\npeak cell density: {:.2}\n",
            metrics.wirelength_m,
            metrics.grc_percent(),
            metrics.wns_percent(),
            metrics.tns_ns(),
            metrics.density.peak(),
        ));
        for timing in &outcome.stage_timings {
            output.push_str(&format!("stage {}: {:.3} s\n", timing.stage, timing.seconds));
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_minimal_arguments() {
        let opts = parse_args(&args(&["--verilog", "a.v"])).unwrap();
        assert_eq!(opts.verilog, PathBuf::from("a.v"));
        assert_eq!(opts.flow, "hidap");
        assert_eq!(opts.lambda, 0.5);
        assert!(!opts.sweep);
        assert_eq!(opts.jobs, 0);
        assert!(!opts.report);
    }

    #[test]
    fn parse_full_arguments() {
        let opts = parse_args(&args(&[
            "--verilog",
            "a.v",
            "--lef",
            "a.lef",
            "--def",
            "a.def",
            "--top",
            "chip",
            "--flow",
            "indeda",
            "--lambda",
            "0.8",
            "--effort",
            "high",
            "--seed",
            "7",
            "--sweep",
            "--jobs",
            "4",
            "--seeds",
            "1,2,3",
            "--lambdas",
            "0.1,0.9",
            "--out",
            "out.def",
            "--svg",
            "fp.svg",
            "--report",
        ]))
        .unwrap();
        assert_eq!(opts.flow, "indeda");
        assert_eq!(opts.lambda, 0.8);
        assert_eq!(opts.effort, "high");
        assert_eq!(opts.seed, 7);
        assert!(opts.sweep);
        assert_eq!(opts.jobs, 4);
        assert_eq!(opts.seeds, vec![1, 2, 3]);
        assert_eq!(opts.lambdas, vec![0.1, 0.9]);
        assert!(opts.report);
        assert_eq!(opts.top.as_deref(), Some("chip"));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--verilog"])).is_err());
        assert!(parse_args(&args(&["--verilog", "a.v", "--bogus"])).is_err());
        assert!(parse_args(&args(&["--verilog", "a.v", "--flow", "magic"])).is_err());
        assert!(parse_args(&args(&["--verilog", "a.v", "--jobs", "many"])).is_err());
        assert!(parse_args(&args(&["--verilog", "a.v", "--seeds", "1,x"])).is_err());
    }

    #[test]
    fn lambda_out_of_range_rejected_at_parse_time() {
        for bad in ["2.0", "-0.1", "1.0001"] {
            let err = parse_args(&args(&["--verilog", "a.v", "--lambda", bad])).unwrap_err();
            assert!(err.contains("--lambda must be between 0 and 1"), "{err}");
        }
        // boundary values are accepted
        assert!(parse_args(&args(&["--verilog", "a.v", "--lambda", "0.0"])).is_ok());
        assert!(parse_args(&args(&["--verilog", "a.v", "--lambda", "1.0"])).is_ok());
        // sweep lambdas are validated too
        let err = parse_args(&args(&["--verilog", "a.v", "--lambdas", "0.2,1.5"])).unwrap_err();
        assert!(err.contains("between 0 and 1"), "{err}");
    }

    #[test]
    fn unknown_effort_rejected_at_parse_time() {
        let err = parse_args(&args(&["--verilog", "a.v", "--effort", "nope"])).unwrap_err();
        assert!(err.contains("unknown effort 'nope'"), "{err}");
        assert!(err.contains("fast|default|high"), "{err}");
        for good in ["fast", "default", "high"] {
            assert!(parse_args(&args(&["--verilog", "a.v", "--effort", good])).is_ok());
        }
    }

    #[test]
    fn unknown_flow_lists_registry_names() {
        let err = parse_args(&args(&["--verilog", "a.v", "--flow", "magic"])).unwrap_err();
        assert!(err.contains("handfp"), "{err}");
        assert!(err.contains("hidap"), "{err}");
        assert!(err.contains("indeda"), "{err}");
    }

    #[test]
    fn effort_mapping() {
        let mut opts = parse_args(&args(&["--verilog", "a.v", "--effort", "fast"])).unwrap();
        assert_eq!(effort_level(&opts).unwrap(), EffortLevel::Fast);
        opts.effort = "nope".into();
        assert!(effort_level(&opts).is_err());
    }
}
