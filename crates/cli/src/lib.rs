//! Library backing the `hidap` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; all argument parsing and flow
//! orchestration lives here so it can be unit-tested without spawning a
//! process.
//!
//! ```text
//! hidap --verilog design.v --lef macros.lef [--def floorplan.def]
//!       [--top NAME] [--flow hidap|indeda|handfp] [--lambda 0.5]
//!       [--effort fast|default|high] [--seed 1] [--sweep] [--jobs N]
//!       [--seeds 1,2,3] [--lambdas 0.2,0.5,0.8]
//!       [--out placed.def] [--svg floorplan.svg] [--report]
//! hidap --manifest designs.txt [--memory-budget 512] [shared flags]
//! ```
//!
//! Flows are resolved by name through the engine's flow registry
//! ([`baselines::default_registry`]), and every placement goes through the
//! unified [`placer_core::Placer`] API:
//!
//! ```no_run
//! use placer_core::{PlaceContext, PlaceRequest};
//!
//! let design = cli::load_design(&cli::parse_args(&[
//!     "--verilog".into(), "design.v".into(),
//! ])?)?.0;
//! let registry = baselines::default_registry();
//! let placer = registry.create("hidap").map_err(|e| e.to_string())?;
//! let request = PlaceRequest::new(&design).with_seed(1).with_lambda(0.5);
//! let outcome = placer
//!     .place(&request, &mut PlaceContext::new())
//!     .map_err(|e| e.to_string())?;
//! println!("placed {} macros", outcome.placement.macros.len());
//! # Ok::<(), String>(())
//! ```
//!
//! With `--sweep`, the tool fans a seed×λ grid out across `--jobs` worker
//! threads via [`placer_core::BatchRunner`] and keeps the lowest-wirelength
//! winner; the result is identical for any `--jobs` value.

#![forbid(unsafe_code)]

use eval::{EvalConfig, Evaluator};
use geometry::Rect;
use hidap::MacroPlacement;
use netlist::design::Design;
use netlist::verilog::ElaborateOptions;
use placer_core::{
    BatchGrid, BatchRunner, EffortLevel, PlaceContext, PlaceJob, PlaceOutcome, PlaceRequest,
    PlacementService,
};
use std::path::{Path, PathBuf};

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Structural Verilog netlist (required unless `--manifest` is given).
    pub verilog: PathBuf,
    /// Manifest file for batch mode: one design per line, placed through a
    /// single [`PlacementService`] with shared artifact caches.
    pub manifest: Option<PathBuf>,
    /// LEF file with macro footprints (optional).
    pub lef: Option<PathBuf>,
    /// DEF file providing the die area and port locations (optional; a square
    /// die at 60 % utilization is derived when absent).
    pub def: Option<PathBuf>,
    /// Top module name (inferred when absent).
    pub top: Option<String>,
    /// Flow to run, resolved through the flow registry.
    pub flow: String,
    /// λ blend between block flow and macro flow.
    pub lambda: f64,
    /// Effort preset: `fast`, `default` or `high`.
    pub effort: String,
    /// Random seed (base seed of the sweep when `--sweep` is given).
    pub seed: u64,
    /// Run a seed×λ sweep and keep the lowest-wirelength winner.
    pub sweep: bool,
    /// Worker threads for the sweep (0 = all available cores).
    pub jobs: usize,
    /// Explicit sweep seeds; derived from `seed` when empty.
    pub seeds: Vec<u64>,
    /// Sweep λ values.
    pub lambdas: Vec<f64>,
    /// Memory budget in MiB for the `--manifest` batch store or the
    /// `--serve` daemon store (designs + cached artifacts). In batch mode
    /// designs are released after their last manifest line, so the budget
    /// bounds the batch's peak resident bytes; in serve mode it also feeds
    /// admission control. `None` leaves the store unbounded.
    pub memory_budget_mib: Option<f64>,
    /// Disk spill directory for the `--manifest` batch store or the
    /// `--serve` daemon store: budget-evicted artifacts (`Gnet`, `Gseq`,
    /// CSR connectivity) demote to content-addressed files there and revive
    /// by deserialization instead of reconstruction, and every successful
    /// job persists a warm-start seed so `replace` survives a daemon
    /// restart pointed at the same directory (see `docs/MEMORY.md`).
    /// `None` (the default) spills nothing.
    pub spill_dir: Option<PathBuf>,
    /// Run the placement daemon: a long-lived session speaking the line
    /// protocol of `docs/PROTOCOL.md` over stdin/stdout (or `--socket`).
    pub serve: bool,
    /// Unix-socket path for `--serve`: accept connections there instead of
    /// speaking on stdin/stdout, keeping the store warm across sessions.
    pub socket: Option<PathBuf>,
    /// Per-client quota of queued jobs for `--serve` (0 keeps the default).
    pub quota: usize,
    /// Output DEF path (optional).
    pub out: Option<PathBuf>,
    /// Output SVG path (optional).
    pub svg: Option<PathBuf>,
    /// Print evaluation metrics after placement.
    pub report: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            verilog: PathBuf::new(),
            manifest: None,
            lef: None,
            def: None,
            top: None,
            flow: "hidap".to_string(),
            lambda: 0.5,
            effort: "default".to_string(),
            seed: 1,
            sweep: false,
            jobs: 0,
            seeds: Vec::new(),
            lambdas: vec![0.2, 0.5, 0.8],
            memory_budget_mib: None,
            spill_dir: None,
            serve: false,
            socket: None,
            quota: 0,
            out: None,
            svg: None,
            report: false,
        }
    }
}

/// The usage string printed on `--help` or argument errors.
pub const USAGE: &str = "usage: hidap --verilog <file.v> [--lef <file.lef>] [--def <file.def>] \
[--top <module>] [--flow hidap|indeda|handfp] [--lambda <0..1>] [--effort fast|default|high] \
[--seed <n>] [--sweep] [--jobs <n>] [--seeds <n,n,...>] [--lambdas <l,l,...>] \
[--out <placed.def>] [--svg <floorplan.svg>] [--report]\n\
       hidap --manifest <designs.txt> [--memory-budget <MiB>] [--spill-dir <dir>] [shared flags \
as above]\n\
       hidap --serve [--socket <path>] [--memory-budget <MiB>] [--spill-dir <dir>] [--quota \
<n>]\n\
manifest lines:  <file.v> [lef=<file>] [def=<file>] [top=<name>] [flow=<name>] \
[lambda=<0..1>] [seed=<n>] [seeds=<n,n,...>] [lambdas=<l,l,...>] [effort=<tier>]   \
('#' starts a comment)\n\
serve mode speaks the line protocol documented in docs/PROTOCOL.md (commands hello, \
intern, submit, replace, cancel, release, result, stats, drain, shutdown)\n\
docs/ECO.md covers incremental ECO re-placement: the edit-script language, selective \
artifact invalidation and the warm-start guarantees behind the replace command\n\
docs/SCALING.md covers the million-cell scale axis: the mega_soc preset, the streaming \
parsers, and placing under --memory-budget\n\
docs/MEMORY.md covers the three-tier artifact plane: cost-aware eviction, the --spill-dir \
disk tier and warm-start seed persistence";

fn parse_list<T: std::str::FromStr>(value: &str, flag: &str) -> Result<Vec<T>, String> {
    value
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("invalid {flag} entry '{s}'")))
        .collect()
}

/// Parses command-line arguments (excluding the program name).
///
/// All value validation happens here, at parse time: unknown flows (checked
/// against the flow registry), out-of-range `--lambda`, unknown `--effort`
/// values and malformed lists are rejected with a clear message instead of
/// failing deep inside a flow.
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values,
/// invalid values or a missing `--verilog` input.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut i = 0;
    let mut have_verilog = false;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag {
            "--verilog" => {
                opts.verilog = PathBuf::from(value(&mut i)?);
                have_verilog = true;
            }
            "--manifest" => opts.manifest = Some(PathBuf::from(value(&mut i)?)),
            "--lef" => opts.lef = Some(PathBuf::from(value(&mut i)?)),
            "--def" => opts.def = Some(PathBuf::from(value(&mut i)?)),
            "--top" => opts.top = Some(value(&mut i)?),
            "--flow" => {
                let name = value(&mut i)?;
                let registry = baselines::default_registry();
                if !registry.contains(&name) {
                    return Err(format!(
                        "unknown flow '{name}' (known flows: {})",
                        registry.names().join(", ")
                    ));
                }
                opts.flow = name;
            }
            "--lambda" => {
                opts.lambda =
                    value(&mut i)?.parse().map_err(|_| "invalid --lambda value".to_string())?;
            }
            "--effort" => {
                let effort = value(&mut i)?;
                if EffortLevel::parse(&effort).is_none() {
                    return Err(format!("unknown effort '{effort}' (expected fast|default|high)"));
                }
                opts.effort = effort;
            }
            "--seed" => {
                opts.seed =
                    value(&mut i)?.parse().map_err(|_| "invalid --seed value".to_string())?;
            }
            "--sweep" => opts.sweep = true,
            "--jobs" => {
                opts.jobs =
                    value(&mut i)?.parse().map_err(|_| "invalid --jobs value".to_string())?;
            }
            "--seeds" => opts.seeds = parse_list(&value(&mut i)?, "--seeds")?,
            "--lambdas" => opts.lambdas = parse_list(&value(&mut i)?, "--lambdas")?,
            "--memory-budget" => {
                let mib: f64 = value(&mut i)?
                    .parse()
                    .map_err(|_| "invalid --memory-budget value".to_string())?;
                if !mib.is_finite() || mib <= 0.0 {
                    return Err(format!("--memory-budget must be a positive MiB count, got {mib}"));
                }
                opts.memory_budget_mib = Some(mib);
            }
            "--spill-dir" => opts.spill_dir = Some(PathBuf::from(value(&mut i)?)),
            "--serve" => opts.serve = true,
            "--socket" => opts.socket = Some(PathBuf::from(value(&mut i)?)),
            "--quota" => {
                opts.quota =
                    value(&mut i)?.parse().map_err(|_| "invalid --quota value".to_string())?;
            }
            "--out" => opts.out = Some(PathBuf::from(value(&mut i)?)),
            "--svg" => opts.svg = Some(PathBuf::from(value(&mut i)?)),
            "--report" => opts.report = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        i += 1;
    }
    if opts.serve && (have_verilog || opts.manifest.is_some()) {
        return Err(format!(
            "--serve runs a daemon; designs are interned over the protocol, not on the command \
             line (drop --verilog/--manifest)\n{USAGE}"
        ));
    }
    if !opts.serve {
        if opts.socket.is_some() {
            return Err("--socket selects the --serve transport; add --serve".to_string());
        }
        if opts.quota != 0 {
            return Err("--quota bounds --serve clients; add --serve".to_string());
        }
    }
    if have_verilog && opts.manifest.is_some() {
        return Err(format!("--verilog and --manifest are mutually exclusive\n{USAGE}"));
    }
    if !have_verilog && opts.manifest.is_none() && !opts.serve {
        return Err(format!("--verilog (or --manifest, or --serve) is required\n{USAGE}"));
    }
    if (opts.manifest.is_some() || opts.serve) && (opts.out.is_some() || opts.svg.is_some()) {
        return Err(
            "--out/--svg write a single design; they are not available with --manifest or --serve"
                .to_string(),
        );
    }
    if opts.memory_budget_mib.is_some() && opts.manifest.is_none() && !opts.serve {
        return Err("--memory-budget bounds the --manifest or --serve service store; it has no \
             effect on a single-design run"
            .to_string());
    }
    if opts.spill_dir.is_some() && opts.manifest.is_none() && !opts.serve {
        return Err("--spill-dir backs the --manifest or --serve service store; it has no \
             effect on a single-design run"
            .to_string());
    }
    if !(0.0..=1.0).contains(&opts.lambda) {
        return Err(format!("--lambda must be between 0 and 1, got {}", opts.lambda));
    }
    if let Some(bad) = opts.lambdas.iter().find(|l| !(0.0..=1.0).contains(*l)) {
        return Err(format!("--lambdas entries must be between 0 and 1, got {bad}"));
    }
    if opts.lambdas.is_empty() {
        return Err("--lambdas must name at least one value".to_string());
    }
    Ok(opts)
}

/// The engine effort tier implied by the options.
pub fn effort_level(opts: &Options) -> Result<EffortLevel, String> {
    EffortLevel::parse(&opts.effort)
        .ok_or_else(|| format!("unknown effort '{}' (expected fast|default|high)", opts.effort))
}

/// Loads the design described by the options: Verilog netlist, optional LEF
/// footprints, optional DEF die/ports. Returns the design and the DBU scale.
pub fn load_design(opts: &Options) -> Result<(Design, i64), String> {
    let verilog_text = std::fs::read_to_string(&opts.verilog)
        .map_err(|e| format!("cannot read {}: {e}", opts.verilog.display()))?;
    let mut elaborate = ElaborateOptions::default();
    let mut dbu = 1000i64;
    if let Some(lef_path) = &opts.lef {
        let lef_text = std::fs::read_to_string(lef_path)
            .map_err(|e| format!("cannot read {}: {e}", lef_path.display()))?;
        let lef =
            netlist::lef::parse_lef(&lef_text).map_err(|e| format!("LEF parse error: {e}"))?;
        dbu = lef.dbu_per_micron;
        elaborate.library = lef.library;
    }
    let mut design =
        netlist::verilog::parse_verilog(&verilog_text, opts.top.as_deref(), &elaborate)
            .map_err(|e| format!("Verilog parse error: {e}"))?;

    if let Some(def_path) = &opts.def {
        let def_text = std::fs::read_to_string(def_path)
            .map_err(|e| format!("cannot read {}: {e}", def_path.display()))?;
        let def =
            netlist::def::parse_def(&def_text).map_err(|e| format!("DEF parse error: {e}"))?;
        if def.dbu_per_micron > 0 {
            dbu = def.dbu_per_micron;
        }
        def.apply_to(&mut design);
    }
    if design.die().area() == 0 {
        // derive a square die at 60% utilization when none was provided
        let side = ((design.total_cell_area() as f64 / 0.6).sqrt()).ceil() as i64;
        design.set_die(Rect::new(0, 0, side.max(1), side.max(1)));
    }
    Ok((design, dbu))
}

/// A one-line summary of how a placement was obtained.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlacementInfo {
    /// Winning seed (differs from the base seed under `--sweep`).
    pub seed: u64,
    /// Winning λ, for flows with a λ knob.
    pub lambda: Option<f64>,
    /// Number of sweep candidates (1 without `--sweep`).
    pub candidates: usize,
    /// Worker threads the sweep used.
    pub jobs: usize,
}

/// Runs the selected flow on a loaded design through the engine API.
pub fn place(design: &Design, opts: &Options) -> Result<MacroPlacement, String> {
    place_outcome(design, opts).map(|(outcome, _)| outcome.placement)
}

/// Like [`place`], but returns the full [`PlaceOutcome`] (stage timings,
/// metrics) and sweep information.
pub fn place_outcome(
    design: &Design,
    opts: &Options,
) -> Result<(PlaceOutcome, PlacementInfo), String> {
    let registry = baselines::default_registry();
    let placer = registry.create(&opts.flow).map_err(|e| e.to_string())?;
    let effort = effort_level(opts)?;
    let mut ctx = PlaceContext::new();
    if opts.sweep {
        if placer.is_composite() {
            return Err(format!(
                "flow '{}' already sweeps a seed×λ grid internally; drop --sweep (configure the \
                 flow's own grid instead) or sweep a single-run flow like 'hidap'",
                opts.flow
            ));
        }
        // flows without a λ knob would run identical placements per λ entry
        let lambdas =
            if placer.supports_lambda() { opts.lambdas.clone() } else { vec![opts.lambda] };
        let grid = if opts.seeds.is_empty() {
            BatchGrid::derived(opts.seed, 4, lambdas)
        } else {
            BatchGrid::new(opts.seeds.clone(), lambdas)
        };
        let candidates = grid.len();
        let runner = BatchRunner::new().with_jobs(opts.jobs);
        let template = PlaceRequest::new(design).with_effort(effort);
        let batch = runner
            .run(placer.as_ref(), &template, &grid, &mut ctx)
            .map_err(|e| format!("placement failed: {e}"))?;
        let info = PlacementInfo {
            seed: batch.winner.seed,
            lambda: batch.winner.lambda,
            candidates,
            jobs: runner.effective_jobs(candidates),
        };
        Ok((batch.winner, info))
    } else {
        let request = PlaceRequest::new(design)
            .with_seed(opts.seed)
            .with_effort(effort)
            .with_lambda(opts.lambda);
        let outcome =
            placer.place(&request, &mut ctx).map_err(|e| format!("placement failed: {e}"))?;
        let info =
            PlacementInfo { seed: outcome.seed, lambda: outcome.lambda, candidates: 1, jobs: 1 };
        Ok((outcome, info))
    }
}

/// One line of a `--manifest` file: a design plus its per-design overrides.
/// Fields not named on the line inherit the command-line defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Structural Verilog netlist of this design.
    pub verilog: PathBuf,
    /// LEF file with macro footprints.
    pub lef: Option<PathBuf>,
    /// DEF file providing die area and port locations.
    pub def: Option<PathBuf>,
    /// Top module name.
    pub top: Option<String>,
    /// Flow to place this design with.
    pub flow: String,
    /// Explicit `lambda=` override: pins this design's λ even under
    /// `--sweep` (the line sweeps seeds only). `None` inherits `--lambda`
    /// for single runs and the `--lambdas` axis for sweeps. Mutually
    /// exclusive with `lambdas=`.
    pub lambda: Option<f64>,
    /// Explicit `lambdas=` override: this design sweeps its own λ grid,
    /// with or without the global `--sweep`. Empty inherits.
    pub lambdas: Option<Vec<f64>>,
    /// Seed for this design's run (base seed under `--sweep`; ignored when
    /// `seeds=` is given).
    pub seed: u64,
    /// Explicit `seeds=` override: this design sweeps exactly these seeds,
    /// with or without the global `--sweep`. Empty inherits.
    pub seeds: Vec<u64>,
    /// Effort preset for this design.
    pub effort: String,
}

/// Parses a `--manifest` file: one design per line, `#` starts a comment,
/// the first token is the Verilog path (resolved relative to `base_dir`),
/// every later token is a `key=value` override (`lef=`, `def=`, `top=`,
/// `flow=`, `lambda=`, `lambdas=`, `seed=`, `seeds=`, `effort=`). Values
/// are validated like the equivalent command-line flags. `seeds=`/`lambdas=`
/// give the line its own sweep grid — heterogeneous fleets can mix
/// single-run designs with per-design grids in one manifest, with or
/// without the global `--sweep`.
pub fn parse_manifest(
    text: &str,
    base_dir: &Path,
    defaults: &Options,
) -> Result<Vec<ManifestEntry>, String> {
    let registry = baselines::default_registry();
    let resolve = |raw: &str| {
        let path = PathBuf::from(raw);
        if path.is_absolute() {
            path
        } else {
            base_dir.join(path)
        }
    };
    let mut entries = Vec::new();
    for (line_no, raw_line) in text.lines().enumerate() {
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("manifest line {}: {msg}", line_no + 1);
        let mut tokens = line.split_whitespace();
        let mut entry = ManifestEntry {
            verilog: resolve(tokens.next().expect("non-empty line has a first token")),
            lef: defaults.lef.clone(),
            def: defaults.def.clone(),
            top: defaults.top.clone(),
            flow: defaults.flow.clone(),
            lambda: None,
            lambdas: None,
            seed: defaults.seed,
            seeds: Vec::new(),
            effort: defaults.effort.clone(),
        };
        for token in tokens {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| at(format!("expected key=value, got '{token}'")))?;
            match key {
                "lef" => entry.lef = Some(resolve(value)),
                "def" => entry.def = Some(resolve(value)),
                "top" => entry.top = Some(value.to_string()),
                "flow" => {
                    if !registry.contains(value) {
                        return Err(at(format!(
                            "unknown flow '{value}' (known flows: {})",
                            registry.names().join(", ")
                        )));
                    }
                    entry.flow = value.to_string();
                }
                "lambda" => {
                    let lambda: f64 =
                        value.parse().map_err(|_| at(format!("invalid lambda '{value}'")))?;
                    if !(0.0..=1.0).contains(&lambda) {
                        return Err(at(format!("lambda must be between 0 and 1, got {lambda}")));
                    }
                    entry.lambda = Some(lambda);
                }
                "lambdas" => {
                    let lambdas: Vec<f64> = parse_list(value, "lambdas=").map_err(&at)?;
                    if let Some(bad) = lambdas.iter().find(|l| !(0.0..=1.0).contains(*l)) {
                        return Err(at(format!("lambda must be between 0 and 1, got {bad}")));
                    }
                    entry.lambdas = Some(lambdas);
                }
                "seed" => {
                    entry.seed =
                        value.parse().map_err(|_| at(format!("invalid seed '{value}'")))?;
                }
                "seeds" => entry.seeds = parse_list(value, "seeds=").map_err(&at)?,
                "effort" => {
                    if EffortLevel::parse(value).is_none() {
                        return Err(at(format!(
                            "unknown effort '{value}' (expected fast|default|high)"
                        )));
                    }
                    entry.effort = value.to_string();
                }
                other => return Err(at(format!("unknown key '{other}'"))),
            }
        }
        if entry.lambda.is_some() && entry.lambdas.is_some() {
            return Err(at("lambda= and lambdas= are mutually exclusive".to_string()));
        }
        entries.push(entry);
    }
    if entries.is_empty() {
        return Err("manifest names no designs".to_string());
    }
    Ok(entries)
}

/// Batch driver behind `--manifest`: loads every design named by the
/// manifest, interns them into one [`PlacementService`] (shared connectivity
/// and artifact caches), runs one job per line and releases each design
/// after its last line — so under `--memory-budget` the store can evict
/// finished designs (and their artifacts) while later lines still run,
/// bounding the batch's peak resident bytes, not just its tail. Per-design
/// failures — an unreadable/unparsable input file as much as a failed
/// placement — are reported inline and do not stop the other designs; the
/// run errors (carrying the full report) when any design failed. Returns
/// the text printed to stdout.
pub fn run_manifest(opts: &Options) -> Result<String, String> {
    let manifest_path = opts.manifest.as_ref().expect("run_manifest requires --manifest");
    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let base_dir = manifest_path.parent().unwrap_or(Path::new("."));
    let entries = parse_manifest(&text, base_dir, opts)?;
    let registry = baselines::default_registry();

    // reject composite flows before anything runs, with the same actionable
    // message as the single-design front end — a line sweeps when the global
    // --sweep applies or when it carries its own seeds=/lambdas= grid
    for entry in &entries {
        let sweeps = opts.sweep
            || entry.seeds.len() > 1
            || entry.lambdas.as_ref().is_some_and(|l| l.len() > 1);
        if sweeps && registry.create(&entry.flow).map_err(|e| e.to_string())?.is_composite() {
            return Err(format!(
                "flow '{}' already sweeps a seed×λ grid internally; drop --sweep and per-line \
                 seeds=/lambdas= grids (configure the flow's own grid instead) or sweep a \
                 single-run flow like 'hidap'",
                entry.flow
            ));
        }
    }

    // one byte-budgeted store for the whole fleet: designs plus their
    // derived artifacts (Gnet, Gseq) under --memory-budget when given.
    // Without the flag the store is effectively unbounded for the run, so
    // no manifest line ever evicts another's warm artifacts (the PR-4
    // guarantee) — a finite batch is not the long-lived service the default
    // artifact budget protects against.
    let budget_bytes = opts
        .memory_budget_mib
        .map(|mib| (mib * (1u64 << 20) as f64) as usize)
        .unwrap_or(usize::MAX);
    let mut store = placer_core::DesignStore::with_memory_budget(budget_bytes);
    if let Some(dir) = &opts.spill_dir {
        store = store.with_spill_dir(dir.clone());
    }
    let mut service = PlacementService::with_store(registry, store).with_jobs(opts.jobs);
    // repeated lines with the same input files skip the parse entirely —
    // the front-end load is the dominant cost for large netlists
    type LoadSpec = (PathBuf, Option<PathBuf>, Option<PathBuf>, Option<String>);
    let mut loaded: std::collections::HashMap<LoadSpec, (placer_core::DesignHandle, i64, String)> =
        std::collections::HashMap::new();
    // how many lines still need each design: the handle is released after
    // its last line, so under --memory-budget the store can evict finished
    // designs while later lines are still running (the budget bounds the
    // run's peak, not just its tail)
    let mut lines_left: std::collections::HashMap<LoadSpec, usize> =
        std::collections::HashMap::new();
    for entry in &entries {
        *lines_left
            .entry((entry.verilog.clone(), entry.lef.clone(), entry.def.clone(), entry.top.clone()))
            .or_insert(0) += 1;
    }

    let mut output = String::new();
    let mut failures = 0usize;
    for entry in &entries {
        let spec: LoadSpec =
            (entry.verilog.clone(), entry.lef.clone(), entry.def.clone(), entry.top.clone());
        let (handle, dbu, name) = match loaded.get(&spec) {
            Some(cached) => cached.clone(),
            None => {
                let load_opts = Options {
                    verilog: entry.verilog.clone(),
                    lef: entry.lef.clone(),
                    def: entry.def.clone(),
                    top: entry.top.clone(),
                    ..opts.clone()
                };
                match load_design(&load_opts) {
                    Ok((design, dbu)) => {
                        let name = design.name().to_string();
                        let handle = service.intern(design);
                        loaded.insert(spec.clone(), (handle, dbu, name.clone()));
                        (handle, dbu, name)
                    }
                    Err(e) => {
                        // a bad input file fails its own line, exactly like
                        // a placement failure — earlier lines' finished
                        // results must not be discarded by a later typo
                        failures += 1;
                        output.push_str(&format!(
                            "{} ({}): FAILED: {e}\n",
                            entry.verilog.display(),
                            entry.flow
                        ));
                        *lines_left.get_mut(&spec).expect("every entry was counted") -= 1;
                        continue;
                    }
                }
            }
        };
        let effort = EffortLevel::parse(&entry.effort)
            .ok_or_else(|| format!("unknown effort '{}'", entry.effort))?;
        // per-line grid resolution: an explicit lambdas= sweeps that grid,
        // lambda= pins a single λ (even under --sweep), and without either
        // the line inherits the global axis (--lambdas when sweeping,
        // --lambda otherwise); seeds= overrides the seed axis the same way
        let lambdas = if let Some(lambdas) = &entry.lambdas {
            lambdas.clone()
        } else if let Some(lambda) = entry.lambda {
            vec![lambda]
        } else if opts.sweep {
            opts.lambdas.clone()
        } else {
            vec![opts.lambda]
        };
        let seeds = if !entry.seeds.is_empty() {
            entry.seeds.clone()
        } else if opts.sweep {
            if opts.seeds.is_empty() {
                BatchGrid::derived(entry.seed, 4, lambdas.clone()).seeds
            } else {
                opts.seeds.clone()
            }
        } else {
            vec![entry.seed]
        };
        let mut job = PlaceJob::new(handle, &entry.flow)
            .with_effort(effort)
            .with_seeds(seeds)
            .with_lambdas(lambdas);
        if opts.report {
            job = job.with_evaluation(EvalConfig { dbu_per_micron: dbu, ..EvalConfig::standard() });
        }
        // run this line now (the queue drains serially either way) and
        // report it while its design is guaranteed resident
        let job_id = service.submit(job);
        service.run_all();
        match service.take_result(job_id).expect("run_all completed the submitted job") {
            Ok(result) => {
                let design = service.store().design(result.design);
                let placement = &result.outcome.placement;
                output.push_str(&format!(
                    "{name} ({}): placed {} macros on a {:.1} x {:.1} um die (legal: {}), seed \
                     {}{}\n",
                    entry.flow,
                    placement.macros.len(),
                    design.die().width() as f64 / dbu as f64,
                    design.die().height() as f64 / dbu as f64,
                    placement.is_legal(design),
                    result.outcome.seed,
                    result.outcome.lambda.map(|l| format!(", lambda {l}")).unwrap_or_default(),
                ));
                if let Some(metrics) = &result.outcome.metrics {
                    output.push_str(&format!(
                        "  wirelength: {:.4} m, GRC%: {:.2}, WNS: {:.2}%, TNS: {:.1} ns\n",
                        metrics.wirelength_m,
                        metrics.grc_percent(),
                        metrics.wns_percent(),
                        metrics.tns_ns(),
                    ));
                }
            }
            Err(e) => {
                // report the failure and keep going: the other designs'
                // results must not be lost to one bad entry
                failures += 1;
                output.push_str(&format!("{name} ({}): FAILED: {e}\n", entry.flow));
            }
        }
        // this line is done with its design: after the last line naming it,
        // drop the intern reference so budget pressure can evict it, and
        // re-apply the budget — the line's flow/evaluation grew the artifact
        // side of the accounting, which only reclaim() folds back in
        let left = lines_left.get_mut(&spec).expect("every entry was counted");
        *left -= 1;
        if *left == 0 {
            service.release(handle);
        }
        service.store_mut().reclaim();
    }
    // one source of truth with the daemon's `stats` command: the service's
    // own snapshot, not counters re-derived from the store piecemeal
    let stats = service.stats();
    let mib = |bytes: usize| bytes as f64 / (1u64 << 20) as f64;
    output.push_str(&format!(
        "service: {} jobs over {} interned designs (peak queue depth {})\n",
        entries.len(),
        stats.interned_designs,
        stats.peak_queued,
    ));
    output.push_str(&format!(
        "cache: Gseq {} built, {} reused; Gnet {} built, {} reused; {} artifacts evicted\n",
        stats.artifacts.seq.misses,
        stats.artifacts.seq.hits,
        stats.artifacts.net.misses,
        stats.artifacts.net.hits,
        stats.artifacts.evictions(),
    ));
    if opts.spill_dir.is_some() {
        output.push_str(&format!(
            "spill: {} artifacts spilled, {} revived; CSR {} spilled, {} revived; {} seeds \
             persisted, {} revived\n",
            stats.artifacts.spills(),
            stats.artifacts.revives(),
            stats.csr_spills,
            stats.csr_revives,
            stats.seed_spills,
            stats.seed_revives,
        ));
    }
    output.push_str(&format!(
        "memory: {:.1} MiB resident (designs {:.1} MiB + artifacts {:.1} MiB), peak {:.1} MiB{}{}\n",
        mib(stats.resident_bytes),
        mib(stats.design_bytes),
        mib(stats.artifact_bytes),
        mib(stats.peak_resident_bytes),
        match opts.memory_budget_mib {
            Some(budget_mib) => format!(", budget {budget_mib:.1} MiB"),
            None => String::new(),
        },
        match stats.design_evictions {
            0 => String::new(),
            n => format!(", {n} designs evicted"),
        },
    ));
    if failures > 0 {
        return Err(format!("{output}{failures} of {} designs failed", entries.len()));
    }
    Ok(output)
}

/// Builds the `--serve` daemon: a [`server::Server`] whose loader reads
/// `intern verilog=<path> [lef=<path>] [def=<path>] [top=<name>]` commands
/// through [`load_design`] (paths resolved against the daemon's working
/// directory), over a store honoring `--memory-budget` and a scheduler
/// honoring `--quota`. Jobs drain serially (`--jobs 1` semantics) so the
/// event stream is deterministic; see `docs/PROTOCOL.md`.
pub fn build_server(opts: &Options) -> server::Server {
    let mut store = match opts.memory_budget_mib {
        Some(mib) => {
            placer_core::DesignStore::with_memory_budget((mib * (1u64 << 20) as f64) as usize)
        }
        None => placer_core::DesignStore::new(),
    };
    if let Some(dir) = &opts.spill_dir {
        store = store.with_spill_dir(dir.clone());
    }
    let service = PlacementService::with_store(baselines::default_registry(), store).with_jobs(1);
    let mut scheduler = placer_core::Scheduler::with_service(service);
    if opts.quota > 0 {
        scheduler = scheduler.with_quota(opts.quota);
    }
    server::Server::new(scheduler, file_design_loader())
}

/// The daemon's design loader: `intern` frames name input files like the
/// single-design command line does (`verilog=` required, `lef=`/`def=`/
/// `top=` optional).
fn file_design_loader() -> impl FnMut(&server::InternSpec) -> Result<server::LoadedDesign, String> {
    |spec: &server::InternSpec| {
        let verilog =
            spec.get("verilog").ok_or_else(|| "intern needs a verilog=<path> field".to_string())?;
        let load_opts = Options {
            verilog: PathBuf::from(verilog),
            lef: spec.get("lef").map(PathBuf::from),
            def: spec.get("def").map(PathBuf::from),
            top: spec.get("top").map(str::to_string),
            ..Options::default()
        };
        let (design, dbu) = load_design(&load_opts)?;
        Ok(server::LoadedDesign { design, dbu })
    }
}

/// Runs one `--serve` session over an explicit reader/writer pair (the
/// testable core of serve mode; [`run_serve`] binds it to stdin/stdout or
/// the `--socket` transport). Returns how the session ended.
pub fn run_serve_session<R: std::io::BufRead, W: std::io::Write + Send + 'static>(
    opts: &Options,
    reader: R,
    writer: W,
) -> Result<server::SessionEnd, String> {
    let mut daemon = build_server(opts);
    daemon.serve_once(reader, writer).map_err(|e| format!("serve session failed: {e}"))
}

/// The `--serve` entry point: speaks the protocol on stdin/stdout, or — with
/// `--socket <path>` — serves unix-socket connections (one at a time, store
/// staying warm) until a client sends `shutdown`.
pub fn run_serve(opts: &Options) -> Result<(), String> {
    let mut daemon = build_server(opts);
    match &opts.socket {
        Some(path) => daemon.serve_unix(path).map_err(|e| format!("serve failed: {e}")),
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            daemon
                .serve_once(stdin.lock(), stdout)
                .map(|_| ())
                .map_err(|e| format!("serve failed: {e}"))
        }
    }
}

/// End-to-end CLI driver: load, place, write outputs, optionally report.
/// In manifest mode ([`Options::manifest`]), places every design of the
/// manifest through one [`PlacementService`] instead; in serve mode
/// ([`Options::serve`]), runs the placement daemon (output streams over the
/// protocol, so the returned stdout text is empty).
/// Returns the text printed to stdout.
pub fn run(opts: &Options) -> Result<String, String> {
    if opts.serve {
        return run_serve(opts).map(|()| String::new());
    }
    if opts.manifest.is_some() {
        return run_manifest(opts);
    }
    let (design, dbu) = load_design(opts)?;
    let (outcome, info) = place_outcome(&design, opts)?;
    let placement = &outcome.placement;
    let mut output = String::new();
    output.push_str(&format!(
        "placed {} macros on a {:.1} x {:.1} um die (legal: {})\n",
        placement.macros.len(),
        design.die().width() as f64 / dbu as f64,
        design.die().height() as f64 / dbu as f64,
        placement.is_legal(&design),
    ));
    if opts.sweep {
        output.push_str(&format!(
            "sweep: {} candidates on {} threads, winner seed {}{}\n",
            info.candidates,
            info.jobs,
            info.seed,
            info.lambda.map(|l| format!(" lambda {l}")).unwrap_or_default(),
        ));
    }

    if let Some(out) = &opts.out {
        // the flow output is a PlacementView: DEF entries come straight from
        // its sorted entries, no intermediate map
        let entries = netlist::def::placement_entries_from_view(&design, placement, true);
        let pins = netlist::def::port_entries(&design);
        // stream straight to disk; a large_soc DEF is tens of MB and never
        // needs to exist as one String
        std::fs::File::create(out)
            .map(std::io::BufWriter::new)
            .and_then(|mut w| {
                netlist::def::write_def_to(
                    &mut w,
                    design.name(),
                    dbu,
                    design.die(),
                    &entries,
                    &pins,
                )
                .and_then(|()| std::io::Write::flush(&mut w))
            })
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        output.push_str(&format!("wrote {}\n", out.display()));
    }
    if let Some(svg) = &opts.svg {
        let svg_text = eval::visualize::floorplan_svg(&design, placement, design.name());
        std::fs::write(svg, svg_text)
            .map_err(|e| format!("cannot write {}: {e}", svg.display()))?;
        output.push_str(&format!("wrote {}\n", svg.display()));
    }
    if opts.report {
        let eval_cfg = EvalConfig { dbu_per_micron: dbu, ..EvalConfig::standard() };
        let metrics = Evaluator::new(eval_cfg).evaluate(&design, placement);
        output.push_str(&format!(
            "wirelength: {:.4} m\ncongestion (GRC%): {:.2}\nWNS: {:.2}% of clock\nTNS: {:.1} ns\npeak cell density: {:.2}\n",
            metrics.wirelength_m,
            metrics.grc_percent(),
            metrics.wns_percent(),
            metrics.tns_ns(),
            metrics.density.peak(),
        ));
        for timing in &outcome.stage_timings {
            output.push_str(&format!("stage {}: {:.3} s\n", timing.stage, timing.seconds));
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_minimal_arguments() {
        let opts = parse_args(&args(&["--verilog", "a.v"])).unwrap();
        assert_eq!(opts.verilog, PathBuf::from("a.v"));
        assert_eq!(opts.flow, "hidap");
        assert_eq!(opts.lambda, 0.5);
        assert!(!opts.sweep);
        assert_eq!(opts.jobs, 0);
        assert!(!opts.report);
    }

    #[test]
    fn parse_full_arguments() {
        let opts = parse_args(&args(&[
            "--verilog",
            "a.v",
            "--lef",
            "a.lef",
            "--def",
            "a.def",
            "--top",
            "chip",
            "--flow",
            "indeda",
            "--lambda",
            "0.8",
            "--effort",
            "high",
            "--seed",
            "7",
            "--sweep",
            "--jobs",
            "4",
            "--seeds",
            "1,2,3",
            "--lambdas",
            "0.1,0.9",
            "--out",
            "out.def",
            "--svg",
            "fp.svg",
            "--report",
        ]))
        .unwrap();
        assert_eq!(opts.flow, "indeda");
        assert_eq!(opts.lambda, 0.8);
        assert_eq!(opts.effort, "high");
        assert_eq!(opts.seed, 7);
        assert!(opts.sweep);
        assert_eq!(opts.jobs, 4);
        assert_eq!(opts.seeds, vec![1, 2, 3]);
        assert_eq!(opts.lambdas, vec![0.1, 0.9]);
        assert!(opts.report);
        assert_eq!(opts.top.as_deref(), Some("chip"));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--verilog"])).is_err());
        assert!(parse_args(&args(&["--verilog", "a.v", "--bogus"])).is_err());
        assert!(parse_args(&args(&["--verilog", "a.v", "--flow", "magic"])).is_err());
        assert!(parse_args(&args(&["--verilog", "a.v", "--jobs", "many"])).is_err());
        assert!(parse_args(&args(&["--verilog", "a.v", "--seeds", "1,x"])).is_err());
    }

    #[test]
    fn lambda_out_of_range_rejected_at_parse_time() {
        for bad in ["2.0", "-0.1", "1.0001"] {
            let err = parse_args(&args(&["--verilog", "a.v", "--lambda", bad])).unwrap_err();
            assert!(err.contains("--lambda must be between 0 and 1"), "{err}");
        }
        // boundary values are accepted
        assert!(parse_args(&args(&["--verilog", "a.v", "--lambda", "0.0"])).is_ok());
        assert!(parse_args(&args(&["--verilog", "a.v", "--lambda", "1.0"])).is_ok());
        // sweep lambdas are validated too
        let err = parse_args(&args(&["--verilog", "a.v", "--lambdas", "0.2,1.5"])).unwrap_err();
        assert!(err.contains("between 0 and 1"), "{err}");
    }

    #[test]
    fn unknown_effort_rejected_at_parse_time() {
        let err = parse_args(&args(&["--verilog", "a.v", "--effort", "nope"])).unwrap_err();
        assert!(err.contains("unknown effort 'nope'"), "{err}");
        assert!(err.contains("fast|default|high"), "{err}");
        for good in ["fast", "default", "high"] {
            assert!(parse_args(&args(&["--verilog", "a.v", "--effort", good])).is_ok());
        }
    }

    #[test]
    fn unknown_flow_lists_registry_names() {
        let err = parse_args(&args(&["--verilog", "a.v", "--flow", "magic"])).unwrap_err();
        assert!(err.contains("handfp"), "{err}");
        assert!(err.contains("hidap"), "{err}");
        assert!(err.contains("indeda"), "{err}");
    }

    #[test]
    fn manifest_flag_parses_and_excludes_single_design_flags() {
        let opts = parse_args(&args(&["--manifest", "designs.txt"])).unwrap();
        assert_eq!(opts.manifest, Some(PathBuf::from("designs.txt")));
        // --verilog and --manifest are mutually exclusive
        let err = parse_args(&args(&["--verilog", "a.v", "--manifest", "m.txt"])).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        // single-design outputs are rejected in batch mode
        let err = parse_args(&args(&["--manifest", "m.txt", "--out", "x.def"])).unwrap_err();
        assert!(err.contains("not available with --manifest"), "{err}");
        // neither input is an error
        let err = parse_args(&args(&[])).unwrap_err();
        assert!(err.contains("--verilog (or --manifest, or --serve)"), "{err}");
    }

    #[test]
    fn manifest_lines_parse_with_overrides_and_defaults() {
        let defaults = parse_args(&args(&["--manifest", "m.txt", "--flow", "indeda"])).unwrap();
        let text = "\
# fleet of two
a.v flow=hidap lambda=0.25 seed=9 effort=fast   # inline comment
sub/b.v lef=b.lef top=chip
";
        let entries = parse_manifest(text, Path::new("/base"), &defaults).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].verilog, PathBuf::from("/base/a.v"));
        assert_eq!(entries[0].flow, "hidap");
        assert_eq!(entries[0].lambda, Some(0.25));
        assert_eq!(entries[0].seed, 9);
        assert_eq!(entries[0].effort, "fast");
        // unnamed keys inherit the command-line defaults (λ stays unpinned
        // so sweeps use the --lambdas axis)
        assert_eq!(entries[1].flow, "indeda");
        assert_eq!(entries[1].lambda, None);
        assert_eq!(entries[1].lef, Some(PathBuf::from("/base/b.lef")));
        assert_eq!(entries[1].top.as_deref(), Some("chip"));
        assert_eq!(entries[1].verilog, PathBuf::from("/base/sub/b.v"));
    }

    #[test]
    fn memory_budget_flag_parses_and_requires_manifest() {
        let opts = parse_args(&args(&["--manifest", "m.txt", "--memory-budget", "512"])).unwrap();
        assert_eq!(opts.memory_budget_mib, Some(512.0));
        // fractional budgets are fine (tests use tiny ones)
        let opts = parse_args(&args(&["--manifest", "m.txt", "--memory-budget", "0.5"])).unwrap();
        assert_eq!(opts.memory_budget_mib, Some(0.5));
        for bad in ["0", "-3", "nan", "lots"] {
            let err =
                parse_args(&args(&["--manifest", "m.txt", "--memory-budget", bad])).unwrap_err();
            assert!(err.contains("--memory-budget"), "{bad}: {err}");
        }
        // the budget governs the manifest service store only
        let err = parse_args(&args(&["--verilog", "a.v", "--memory-budget", "64"])).unwrap_err();
        assert!(err.contains("--manifest"), "{err}");
    }

    #[test]
    fn manifest_lines_parse_per_line_grids() {
        let defaults = parse_args(&args(&["--manifest", "m.txt"])).unwrap();
        let text = "a.v seeds=1,2,3 lambdas=0.2,0.8\nb.v seeds=9\nc.v\n";
        let entries = parse_manifest(text, Path::new("/base"), &defaults).unwrap();
        assert_eq!(entries[0].seeds, vec![1, 2, 3]);
        assert_eq!(entries[0].lambdas, Some(vec![0.2, 0.8]));
        assert_eq!(entries[1].seeds, vec![9]);
        assert_eq!(entries[1].lambdas, None);
        // unnamed lines inherit (empty = use the global axis)
        assert!(entries[2].seeds.is_empty());
        assert_eq!(entries[2].lambdas, None);
    }

    #[test]
    fn manifest_validation_errors_name_the_line() {
        let defaults = parse_args(&args(&["--manifest", "m.txt"])).unwrap();
        let base = Path::new(".");
        for (text, needle) in [
            ("a.v flow=magic", "unknown flow 'magic'"),
            ("a.v lambda=1.5", "between 0 and 1"),
            ("a.v effort=turbo", "unknown effort 'turbo'"),
            ("a.v seed=many", "invalid seed"),
            ("a.v seeds=1,x", "invalid seeds"),
            ("a.v lambdas=0.2,1.5", "between 0 and 1"),
            ("a.v lambdas=0.2,zz", "invalid lambdas"),
            ("a.v lambda=0.5 lambdas=0.2", "mutually exclusive"),
            ("a.v bogus=1", "unknown key 'bogus'"),
            ("a.v nokey", "expected key=value"),
            ("# only comments\n", "no designs"),
        ] {
            let err = parse_manifest(text, base, &defaults).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
        let err = parse_manifest("ok.v\nbad.v lambda=7", base, &defaults).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn serve_flags_parse_and_exclude_batch_inputs() {
        let opts = parse_args(&args(&["--serve"])).unwrap();
        assert!(opts.serve);
        assert_eq!(opts.socket, None);
        let opts = parse_args(&args(&[
            "--serve",
            "--socket",
            "/tmp/hidap.sock",
            "--memory-budget",
            "64",
            "--quota",
            "4",
        ]))
        .unwrap();
        assert_eq!(opts.socket, Some(PathBuf::from("/tmp/hidap.sock")));
        assert_eq!(opts.memory_budget_mib, Some(64.0));
        assert_eq!(opts.quota, 4);
        // the daemon takes designs over the protocol, not the command line
        let err = parse_args(&args(&["--serve", "--verilog", "a.v"])).unwrap_err();
        assert!(err.contains("--serve runs a daemon"), "{err}");
        let err = parse_args(&args(&["--serve", "--manifest", "m.txt"])).unwrap_err();
        assert!(err.contains("--serve runs a daemon"), "{err}");
        let err = parse_args(&args(&["--serve", "--out", "x.def"])).unwrap_err();
        assert!(err.contains("not available"), "{err}");
        // serve-only flags demand --serve
        let err = parse_args(&args(&["--verilog", "a.v", "--socket", "s"])).unwrap_err();
        assert!(err.contains("--serve"), "{err}");
        let err = parse_args(&args(&["--verilog", "a.v", "--quota", "2"])).unwrap_err();
        assert!(err.contains("--serve"), "{err}");
        // --help names the protocol and ECO documents, and the replace command
        let usage = parse_args(&args(&["--help"])).unwrap_err();
        assert!(usage.contains("docs/PROTOCOL.md"), "{usage}");
        assert!(usage.contains("docs/ECO.md"), "{usage}");
        assert!(usage.contains("replace"), "{usage}");
    }

    #[test]
    fn effort_mapping() {
        let mut opts = parse_args(&args(&["--verilog", "a.v", "--effort", "fast"])).unwrap();
        assert_eq!(effort_level(&opts).unwrap(), EffortLevel::Fast);
        opts.effort = "nope".into();
        assert!(effort_level(&opts).is_err());
    }
}
