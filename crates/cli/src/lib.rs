//! Library backing the `hidap` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; all argument parsing and flow
//! orchestration lives here so it can be unit-tested without spawning a
//! process.
//!
//! ```text
//! hidap --verilog design.v --lef macros.lef [--def floorplan.def]
//!       [--top NAME] [--flow hidap|indeda] [--lambda 0.5] [--effort fast|default|high]
//!       [--seed 1] [--out placed.def] [--svg floorplan.svg] [--report]
//! ```

use baselines::{IndEda, IndEdaConfig};
use eval::{evaluate_placement, EvalConfig};
use geometry::Rect;
use hidap::{HidapConfig, HidapFlow, MacroPlacement};
use netlist::design::Design;
use netlist::verilog::ElaborateOptions;
use std::path::PathBuf;

/// Which placement flow to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// The RTL-aware dataflow-driven placer (the paper's contribution).
    Hidap,
    /// The flat connectivity-driven baseline.
    IndEda,
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Structural Verilog netlist (required).
    pub verilog: PathBuf,
    /// LEF file with macro footprints (optional).
    pub lef: Option<PathBuf>,
    /// DEF file providing the die area and port locations (optional; a square
    /// die at 60 % utilization is derived when absent).
    pub def: Option<PathBuf>,
    /// Top module name (inferred when absent).
    pub top: Option<String>,
    /// Flow to run.
    pub flow: FlowKind,
    /// λ blend between block flow and macro flow.
    pub lambda: f64,
    /// Effort preset: `fast`, `default` or `high`.
    pub effort: String,
    /// Random seed.
    pub seed: u64,
    /// Output DEF path (optional).
    pub out: Option<PathBuf>,
    /// Output SVG path (optional).
    pub svg: Option<PathBuf>,
    /// Print evaluation metrics after placement.
    pub report: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            verilog: PathBuf::new(),
            lef: None,
            def: None,
            top: None,
            flow: FlowKind::Hidap,
            lambda: 0.5,
            effort: "default".to_string(),
            seed: 1,
            out: None,
            svg: None,
            report: false,
        }
    }
}

/// The usage string printed on `--help` or argument errors.
pub const USAGE: &str = "usage: hidap --verilog <file.v> [--lef <file.lef>] [--def <file.def>] \
[--top <module>] [--flow hidap|indeda] [--lambda <0..1>] [--effort fast|default|high] \
[--seed <n>] [--out <placed.def>] [--svg <floorplan.svg>] [--report]";

/// Parses command-line arguments (excluding the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values or a
/// missing `--verilog` input.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut i = 0;
    let mut have_verilog = false;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag {
            "--verilog" => {
                opts.verilog = PathBuf::from(value(&mut i)?);
                have_verilog = true;
            }
            "--lef" => opts.lef = Some(PathBuf::from(value(&mut i)?)),
            "--def" => opts.def = Some(PathBuf::from(value(&mut i)?)),
            "--top" => opts.top = Some(value(&mut i)?),
            "--flow" => {
                opts.flow = match value(&mut i)?.as_str() {
                    "hidap" => FlowKind::Hidap,
                    "indeda" => FlowKind::IndEda,
                    other => return Err(format!("unknown flow '{other}'")),
                }
            }
            "--lambda" => {
                opts.lambda = value(&mut i)?
                    .parse()
                    .map_err(|_| "invalid --lambda value".to_string())?;
            }
            "--effort" => opts.effort = value(&mut i)?,
            "--seed" => {
                opts.seed = value(&mut i)?.parse().map_err(|_| "invalid --seed value".to_string())?;
            }
            "--out" => opts.out = Some(PathBuf::from(value(&mut i)?)),
            "--svg" => opts.svg = Some(PathBuf::from(value(&mut i)?)),
            "--report" => opts.report = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        i += 1;
    }
    if !have_verilog {
        return Err(format!("--verilog is required\n{USAGE}"));
    }
    if !(0.0..=1.0).contains(&opts.lambda) {
        return Err("--lambda must be between 0 and 1".to_string());
    }
    Ok(opts)
}

/// Builds the HiDaP configuration implied by the options.
pub fn hidap_config(opts: &Options) -> Result<HidapConfig, String> {
    let base = match opts.effort.as_str() {
        "fast" => HidapConfig::fast(),
        "default" => HidapConfig::default(),
        "high" => HidapConfig::high_effort(),
        other => return Err(format!("unknown effort '{other}' (expected fast|default|high)")),
    };
    Ok(base.with_lambda(opts.lambda).with_seed(opts.seed))
}

/// Loads the design described by the options: Verilog netlist, optional LEF
/// footprints, optional DEF die/ports. Returns the design and the DBU scale.
pub fn load_design(opts: &Options) -> Result<(Design, i64), String> {
    let verilog_text = std::fs::read_to_string(&opts.verilog)
        .map_err(|e| format!("cannot read {}: {e}", opts.verilog.display()))?;
    let mut elaborate = ElaborateOptions::default();
    let mut dbu = 1000i64;
    if let Some(lef_path) = &opts.lef {
        let lef_text = std::fs::read_to_string(lef_path)
            .map_err(|e| format!("cannot read {}: {e}", lef_path.display()))?;
        let lef = netlist::lef::parse_lef(&lef_text).map_err(|e| format!("LEF parse error: {e}"))?;
        dbu = lef.dbu_per_micron;
        elaborate.library = lef.library;
    }
    let mut design = netlist::verilog::parse_verilog(&verilog_text, opts.top.as_deref(), &elaborate)
        .map_err(|e| format!("Verilog parse error: {e}"))?;

    if let Some(def_path) = &opts.def {
        let def_text = std::fs::read_to_string(def_path)
            .map_err(|e| format!("cannot read {}: {e}", def_path.display()))?;
        let def = netlist::def::parse_def(&def_text).map_err(|e| format!("DEF parse error: {e}"))?;
        if def.dbu_per_micron > 0 {
            dbu = def.dbu_per_micron;
        }
        def.apply_to(&mut design);
    }
    if design.die().area() == 0 {
        // derive a square die at 60% utilization when none was provided
        let side = ((design.total_cell_area() as f64 / 0.6).sqrt()).ceil() as i64;
        design.set_die(Rect::new(0, 0, side.max(1), side.max(1)));
    }
    Ok((design, dbu))
}

/// Runs the selected flow on a loaded design.
pub fn place(design: &Design, opts: &Options) -> Result<MacroPlacement, String> {
    match opts.flow {
        FlowKind::Hidap => HidapFlow::new(hidap_config(opts)?)
            .run(design)
            .map_err(|e| format!("placement failed: {e}")),
        FlowKind::IndEda => {
            let config = IndEdaConfig { seed: opts.seed, ..IndEdaConfig::default() };
            IndEda::new(config).run(design).map_err(|e| format!("placement failed: {e}"))
        }
    }
}

/// End-to-end CLI driver: load, place, write outputs, optionally report.
/// Returns the text printed to stdout.
pub fn run(opts: &Options) -> Result<String, String> {
    let (design, dbu) = load_design(opts)?;
    let placement = place(&design, opts)?;
    let mut output = String::new();
    output.push_str(&format!(
        "placed {} macros on a {:.1} x {:.1} um die (legal: {})\n",
        placement.macros.len(),
        design.die().width() as f64 / dbu as f64,
        design.die().height() as f64 / dbu as f64,
        placement.is_legal(&design),
    ));

    if let Some(out) = &opts.out {
        let entries = netlist::def::placement_entries(&design, &placement.to_map(), true);
        let pins = netlist::def::port_entries(&design);
        let def_text = netlist::def::write_def(design.name(), dbu, design.die(), &entries, &pins);
        std::fs::write(out, def_text).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        output.push_str(&format!("wrote {}\n", out.display()));
    }
    if let Some(svg) = &opts.svg {
        let svg_text = eval::visualize::floorplan_svg(&design, &placement.to_map(), design.name());
        std::fs::write(svg, svg_text).map_err(|e| format!("cannot write {}: {e}", svg.display()))?;
        output.push_str(&format!("wrote {}\n", svg.display()));
    }
    if opts.report {
        let eval_cfg = EvalConfig { dbu_per_micron: dbu, ..EvalConfig::standard() };
        let metrics = evaluate_placement(&design, &placement.to_map(), &eval_cfg);
        output.push_str(&format!(
            "wirelength: {:.4} m\ncongestion (GRC%): {:.2}\nWNS: {:.2}% of clock\nTNS: {:.1} ns\npeak cell density: {:.2}\n",
            metrics.wirelength_m,
            metrics.grc_percent(),
            metrics.wns_percent(),
            metrics.tns_ns(),
            metrics.density.peak(),
        ));
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_minimal_arguments() {
        let opts = parse_args(&args(&["--verilog", "a.v"])).unwrap();
        assert_eq!(opts.verilog, PathBuf::from("a.v"));
        assert_eq!(opts.flow, FlowKind::Hidap);
        assert_eq!(opts.lambda, 0.5);
        assert!(!opts.report);
    }

    #[test]
    fn parse_full_arguments() {
        let opts = parse_args(&args(&[
            "--verilog", "a.v", "--lef", "a.lef", "--def", "a.def", "--top", "chip",
            "--flow", "indeda", "--lambda", "0.8", "--effort", "high", "--seed", "7",
            "--out", "out.def", "--svg", "fp.svg", "--report",
        ]))
        .unwrap();
        assert_eq!(opts.flow, FlowKind::IndEda);
        assert_eq!(opts.lambda, 0.8);
        assert_eq!(opts.effort, "high");
        assert_eq!(opts.seed, 7);
        assert!(opts.report);
        assert_eq!(opts.top.as_deref(), Some("chip"));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--verilog"])).is_err());
        assert!(parse_args(&args(&["--verilog", "a.v", "--bogus"])).is_err());
        assert!(parse_args(&args(&["--verilog", "a.v", "--lambda", "2.0"])).is_err());
        assert!(parse_args(&args(&["--verilog", "a.v", "--flow", "magic"])).is_err());
    }

    #[test]
    fn effort_mapping() {
        let mut opts = parse_args(&args(&["--verilog", "a.v", "--effort", "fast"])).unwrap();
        assert_eq!(hidap_config(&opts).unwrap().sa_moves_per_block, HidapConfig::fast().sa_moves_per_block);
        opts.effort = "nope".into();
        assert!(hidap_config(&opts).is_err());
    }
}
