//! The `hidap` command-line tool: RTL-aware dataflow-driven macro placement
//! from Verilog/LEF/DEF inputs to a placed DEF (and optional SVG rendering).

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match cli::run(&opts) {
        Ok(output) => print!("{output}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
