//! Property-based tests of the placer's internal invariants.

use geometry::{CutDirection, Point, PolishExpression, Rect, ShapeCurve};
use hidap::layout::{budget_areas, LayoutBlock, LayoutProblem};
use hidap::legalize::{legalize_macros, MacroFootprint, MacroFootprints};
use hidap::shape_curves::macro_packing_curve;
use hidap::HidapConfig;
use netlist::design::DesignBuilder;
use proptest::prelude::*;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn soft_blocks(areas: &[i128]) -> Vec<LayoutBlock> {
    areas
        .iter()
        .map(|&a| LayoutBlock { shape: ShapeCurve::unconstrained(), min_area: a, target_area: a })
        .collect()
}

proptest! {
    #[test]
    fn area_budgeting_partitions_the_region_exactly(
        areas in prop::collection::vec(100i128..50_000, 2..10),
        region_w in 100i64..2000,
        region_h in 100i64..2000,
        seed in 0u64..100,
    ) {
        let n = areas.len();
        let problem = LayoutProblem {
            region: Rect::new(0, 0, region_w, region_h),
            blocks: soft_blocks(&areas),
            affinity: graphs::AffinityMatrix::zeros(n),
            fixed_positions: vec![None; n],
        };
        // random but valid slicing expression
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut expr = PolishExpression::chain(n, CutDirection::Vertical);
        for _ in 0..20 {
            expr.random_move(&mut rng);
        }
        let rects = budget_areas(&problem, &expr, &HidapConfig::fast());
        prop_assert_eq!(rects.len(), n);
        // the region is exactly partitioned: total area matches and no overlaps
        let total: i128 = rects.iter().map(Rect::area).sum();
        prop_assert_eq!(total, problem.region.area());
        for i in 0..n {
            prop_assert!(problem.region.contains_rect(&rects[i]));
            for j in (i + 1)..n {
                prop_assert!(!rects[i].overlaps(&rects[j]), "blocks {i} and {j} overlap");
            }
        }
    }

    #[test]
    fn packing_curve_never_beats_total_area_and_always_fits_some_box(
        sizes in prop::collection::vec((5i64..60, 5i64..60), 1..6),
        seed in 0u64..50,
    ) {
        let leaves: Vec<ShapeCurve> = sizes.iter().map(|&(w, h)| ShapeCurve::from_macro(w, h, true)).collect();
        let total: i128 = sizes.iter().map(|&(w, h)| w as i128 * h as i128).sum();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let curve = macro_packing_curve(&leaves, &HidapConfig::fast(), &mut rng);
        prop_assert!(curve.min_area() >= total);
        // the sum of all widths times the max height is always feasible (a row)
        let row_w: i64 = sizes.iter().map(|&(w, h)| w.max(h)).sum();
        let row_h: i64 = sizes.iter().map(|&(w, h)| w.max(h)).max().unwrap();
        prop_assert!(curve.fits(row_w, row_h) || curve.min_area() <= (row_w as i128 * row_h as i128));
    }

    #[test]
    fn legalization_always_produces_overlap_free_layouts(
        macros in prop::collection::vec((10i64..150, 10i64..150, 0i64..800, 0i64..800), 1..12),
    ) {
        let mut b = DesignBuilder::new("prop");
        let mut footprints = MacroFootprints::default();
        for (i, &(w, h, x, y)) in macros.iter().enumerate() {
            let id = b.add_macro(format!("m{i}"), "RAM", w, h, "");
            footprints.insert(id, MacroFootprint { location: Point::new(x, y), rotated: false });
        }
        b.set_die(Rect::new(0, 0, 1000, 1000));
        let design = b.build();
        legalize_macros(&design, design.die(), &mut footprints);
        let rects: Vec<Rect> = footprints.iter().map(|(c, fp)| fp.rect(&design, c)).collect();
        for (i, r) in rects.iter().enumerate() {
            prop_assert!(design.die().contains_rect(r), "macro {i} outside die: {r}");
            for (j, other) in rects.iter().enumerate().skip(i + 1) {
                prop_assert!(!r.overlaps(other), "macros {i} and {j} overlap");
            }
        }
    }
}
