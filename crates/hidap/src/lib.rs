//! HiDaP: RTL-aware dataflow-driven hierarchical macro placement.
//!
//! This crate implements the DATE 2019 paper *"RTL-Aware Dataflow-Driven
//! Macro Placement"* (Vidal-Obiols, Cortadella, Petit, Galceran-Oms,
//! Martorell).  The placer exploits two pieces of RTL-stage information that
//! conventional floorplanners discard:
//!
//! * the **hierarchy tree** of the design, used as a pre-existing clustering
//!   that drives a multi-level, decluster-and-floorplan flow, and
//! * the **array structure** of registers and ports, used to infer the
//!   dataflow between blocks and derive an affinity metric combining
//!   information flow (bit widths) and latency (pipeline stages).
//!
//! The top entry point is [`flow::HidapFlow`], mirroring Algorithm 1 of the
//! paper:
//!
//! 1. build the hierarchy tree,
//! 2. generate shape curves for every hierarchy level ([`shape_curves`]),
//! 3. recursively floorplan blocks top-down ([`recursive`]), each level doing
//!    hierarchical declustering ([`decluster`]), target-area assignment
//!    ([`target_area`]), dataflow inference ([`dataflow`]) and slicing-tree
//!    layout generation by simulated annealing ([`layout`]),
//! 4. choose macro orientations ([`flipping`]).
//!
//! # Quick start
//!
//! [`HidapFlow`] implements the engine's `placer_core::Placer` trait, so the
//! recommended entry point is a `PlaceRequest` (design + seed + effort + λ)
//! through a `PlaceContext` (observer, cancellation, deadline). The outcome
//! carries the placement plus per-stage timings:
//!
//! ```
//! use hidap::{HidapConfig, HidapFlow};
//! use netlist::design::DesignBuilder;
//! use placer_core::{PlaceContext, PlaceRequest, Placer};
//! use geometry::Rect;
//!
//! // Two RAMs exchanging data through a register file.
//! let mut b = DesignBuilder::new("mini");
//! let ram0 = b.add_macro("u_a/ram0", "RAM", 200, 150, "u_a");
//! let ram1 = b.add_macro("u_b/ram1", "RAM", 200, 150, "u_b");
//! for i in 0..8 {
//!     let f = b.add_flop(format!("u_x/pipe_reg[{i}]"), "u_x");
//!     let n0 = b.add_net(format!("n0_{i}"));
//!     let n1 = b.add_net(format!("n1_{i}"));
//!     b.connect_driver(n0, ram0);
//!     b.connect_sink(n0, f);
//!     b.connect_driver(n1, f);
//!     b.connect_sink(n1, ram1);
//! }
//! b.set_die(Rect::new(0, 0, 1000, 800));
//! let design = b.build();
//!
//! let placer = HidapFlow::new(HidapConfig::fast());
//! let request = PlaceRequest::new(&design).with_seed(1).with_lambda(0.5);
//! let outcome = placer.place(&request, &mut PlaceContext::new())?;
//! assert_eq!(outcome.placement.macros.len(), 2);
//! assert!(outcome.stage_seconds("floorplan").is_some());
//! # Ok::<(), placer_core::PlaceError>(())
//! ```
//!
//! Multi-seed / multi-λ exploration goes through `placer_core::BatchRunner`,
//! which fans the grid out across all cores and picks the winner
//! deterministically:
//!
//! ```
//! # use hidap::{HidapConfig, HidapFlow};
//! # use netlist::design::DesignBuilder;
//! # use geometry::Rect;
//! use placer_core::{BatchGrid, BatchRunner, PlaceContext, PlaceRequest};
//! # let mut b = DesignBuilder::new("mini");
//! # let ram0 = b.add_macro("u_a/ram0", "RAM", 200, 150, "u_a");
//! # let ram1 = b.add_macro("u_b/ram1", "RAM", 200, 150, "u_b");
//! # for i in 0..8 {
//! #     let f = b.add_flop(format!("u_x/pipe_reg[{i}]"), "u_x");
//! #     let n0 = b.add_net(format!("n0_{i}"));
//! #     let n1 = b.add_net(format!("n1_{i}"));
//! #     b.connect_driver(n0, ram0);
//! #     b.connect_sink(n0, f);
//! #     b.connect_driver(n1, f);
//! #     b.connect_sink(n1, ram1);
//! # }
//! # b.set_die(Rect::new(0, 0, 1000, 800));
//! # let design = b.build();
//! let placer = HidapFlow::new(HidapConfig::fast());
//! let grid = BatchGrid::new(vec![1, 2], vec![0.2, 0.8]);
//! let best = BatchRunner::new()
//!     .run(&placer, &PlaceRequest::new(&design), &grid, &mut PlaceContext::new())?;
//! assert!(best.winner.placement.is_legal(&design));
//! # Ok::<(), placer_core::PlaceError>(())
//! ```
//!
//! The lower-level [`HidapFlow::run`] / [`flow::HidapFlow::run_probed`]
//! entry points remain available for callers that want the raw placement or
//! custom stage probes.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]

pub mod block;
pub mod config;
pub mod dataflow;
pub mod decluster;
pub mod error;
pub mod flipping;
pub mod flow;
pub mod layout;
pub mod legalize;
pub mod placement;
pub mod recursive;
pub mod shape_curves;
pub mod target_area;

pub use block::{Block, BlockId, BlockKind};
pub use config::HidapConfig;
pub use error::HidapError;
pub use flow::{FlowProbe, FlowStage, HidapFlow};
pub use placement::{MacroPlacement, PlacedMacro};
