//! Macro flipping: orientation selection after placement (Algorithm 1, step 4).
//!
//! Once macro locations are fixed, each macro's orientation is chosen so that
//! its pin side faces the logic it communicates with ("macro side dataflow"
//! in the paper).  When the library provides pin offsets they are used
//! directly; otherwise memories are assumed to expose their pins on the left
//! edge of the reference orientation, which is the common single-port-side
//! arrangement.

use crate::legalize::MacroFootprints;
use geometry::{Orientation, Point, Rect};
use netlist::dense::DenseMap;
use netlist::design::{CellId, Design};

/// Chooses an orientation for every placed macro.
///
/// `footprints` gives the macro locations (and whether the footprint is
/// rotated); the returned dense map holds one orientation per cell
/// (defaulting to [`Orientation::N`] for cells without a footprint), with
/// rotated footprints getting 90°/270°-family orientations.
pub fn macro_flipping(
    design: &Design,
    footprints: &MacroFootprints,
) -> DenseMap<CellId, Orientation> {
    // Pre-compute macro centers for connectivity lookups.
    let mut centers: DenseMap<CellId, Option<Point>> = DenseMap::with_len(design.num_cells());
    for (c, fp) in footprints.iter() {
        centers.insert(c, Some(fp.rect(design, c).center()));
    }

    let mut orientations: DenseMap<CellId, Orientation> =
        DenseMap::filled(design.num_cells(), Orientation::N);
    for (cell, fp) in footprints.iter() {
        let rect = fp.rect(design, cell);
        let pull = connectivity_centroid(design, cell, &centers, rect.center());
        orientations.insert(cell, choose_orientation(rect, fp.rotated, pull));
    }
    orientations
}

/// The affinity-weighted centroid of everything the macro talks to: other
/// placed macros and placed primary ports. Falls back to `default` when the
/// macro has no placed neighbours.
fn connectivity_centroid(
    design: &Design,
    cell: CellId,
    centers: &DenseMap<CellId, Option<Point>>,
    default: Point,
) -> Point {
    let csr = design.connectivity();
    let mut sum_x: i128 = 0;
    let mut sum_y: i128 = 0;
    let mut count: i128 = 0;
    for &net in csr.nets_of(cell) {
        for &pin in csr.pins(net) {
            let p = if let Some(c) = pin.cell() {
                if c == cell {
                    continue;
                }
                centers.get(c).copied().flatten()
            } else {
                pin.port().and_then(|p| design.port(p).position)
            };
            if let Some(p) = p {
                sum_x += p.x as i128;
                sum_y += p.y as i128;
                count += 1;
            }
        }
    }
    if count == 0 {
        default
    } else {
        Point::new((sum_x / count) as i64, (sum_y / count) as i64)
    }
}

/// Picks the orientation whose pin edge faces the pull point.
///
/// In the reference orientation (`N`) the pin edge is assumed to be the left
/// edge of the macro; mirrored/rotated orientations move that edge to the
/// right, bottom or top.
fn choose_orientation(rect: Rect, rotated: bool, pull: Point) -> Orientation {
    let center = rect.center();
    let dx = pull.x - center.x;
    let dy = pull.y - center.y;
    if rotated {
        // 90°-family orientations: the pin edge becomes the bottom (W) or top (E).
        if dy <= 0 {
            Orientation::W
        } else {
            Orientation::E
        }
    } else if dx <= 0 {
        Orientation::N // pins on the left edge, facing left
    } else {
        Orientation::FN // mirrored: pins on the right edge, facing right
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legalize::MacroFootprint;
    use netlist::design::{DesignBuilder, PortDirection};

    /// A macro connected to a port placed on one side of the die.
    fn design_with_side_port(port_x: i64) -> (Design, CellId) {
        let mut b = DesignBuilder::new("t");
        let m = b.add_macro("m", "RAM", 100, 100, "");
        let p = b.add_port("io", PortDirection::Input);
        b.place_port(p, Point::new(port_x, 500));
        let n = b.add_net("n");
        b.connect_port_driver(n, p);
        b.connect_sink(n, m);
        b.set_die(Rect::new(0, 0, 1000, 1000));
        (b.build(), m)
    }

    #[test]
    fn pins_face_the_connected_port() {
        let (d, m) = design_with_side_port(0);
        let mut fps = MacroFootprints::for_design(&d);
        fps.insert(m, MacroFootprint { location: Point::new(450, 450), rotated: false });
        let o = macro_flipping(&d, &fps);
        assert_eq!(o[m], Orientation::N, "port on the left -> pins face left");

        let (d, m) = design_with_side_port(1000);
        let o = macro_flipping(&d, &fps);
        assert_eq!(o[m], Orientation::FN, "port on the right -> pins face right");
    }

    #[test]
    fn rotated_macros_use_rotated_orientations() {
        let (d, m) = design_with_side_port(0);
        let mut fps = MacroFootprints::for_design(&d);
        fps.insert(m, MacroFootprint { location: Point::new(450, 450), rotated: true });
        let o = macro_flipping(&d, &fps);
        assert!(o[m].swaps_axes());
    }

    #[test]
    fn isolated_macro_gets_default_orientation() {
        let mut b = DesignBuilder::new("t");
        let m = b.add_macro("m", "RAM", 100, 100, "");
        b.set_die(Rect::new(0, 0, 1000, 1000));
        let d = b.build();
        let mut fps = MacroFootprints::for_design(&d);
        fps.insert(m, MacroFootprint { location: Point::new(0, 0), rotated: false });
        let o = macro_flipping(&d, &fps);
        assert_eq!(o[m], Orientation::N);
    }

    #[test]
    fn macro_facing_another_macro() {
        // two connected macros side by side: left one faces right, right one faces left
        let mut b = DesignBuilder::new("t");
        let a = b.add_macro("a", "RAM", 100, 100, "");
        let c = b.add_macro("c", "RAM", 100, 100, "");
        let n = b.add_net("n");
        b.connect_driver(n, a);
        b.connect_sink(n, c);
        b.set_die(Rect::new(0, 0, 1000, 1000));
        let d = b.build();
        let mut fps = MacroFootprints::for_design(&d);
        fps.insert(a, MacroFootprint { location: Point::new(0, 0), rotated: false });
        fps.insert(c, MacroFootprint { location: Point::new(500, 0), rotated: false });
        let o = macro_flipping(&d, &fps);
        assert_eq!(o[a], Orientation::FN);
        assert_eq!(o[c], Orientation::N);
    }
}
