//! Configuration of the HiDaP flow.

use serde::{Deserialize, Serialize};

/// All tunable parameters of the HiDaP flow.
///
/// The defaults follow the values reported in the paper where they are given
/// (declustering fractions of Sect. IV-B, the λ sweep of Sect. V); the
/// annealing effort knobs are chosen so that designs with a few hundred
/// macros run in minutes.
///
/// # Example
///
/// ```
/// use hidap::HidapConfig;
///
/// let fast = HidapConfig::fast();
/// assert!(fast.sa_moves_per_block < HidapConfig::default().sa_moves_per_block);
/// let cfg = HidapConfig { lambda: 0.8, ..HidapConfig::default() };
/// assert_eq!(cfg.lambda, 0.8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HidapConfig {
    /// Blend between block flow (λ) and macro flow (1 − λ) in the dataflow
    /// affinity (Sect. IV-D). The paper evaluates λ ∈ {0.2, 0.5, 0.8}.
    pub lambda: f64,
    /// Exponent `k` of the latency decay in `score(h, k)`.
    pub score_k: u32,
    /// `min_area` of hierarchical declustering, as a fraction of the area of
    /// the node being floorplanned (40 % in the paper).
    pub min_area_frac: f64,
    /// `open_area` of hierarchical declustering, as a fraction of the area of
    /// the node being floorplanned (1 % in the paper).
    pub open_area_frac: f64,
    /// Register arrays narrower than this are dropped from the sequential
    /// graph (Sect. IV-D step 4).
    pub min_register_bits: u64,
    /// Maximum latency explored during dataflow inference.
    pub max_flow_latency: u32,
    /// Fraction of extra whitespace added around macro area when deriving
    /// target areas (mimics placement-density targets).
    pub whitespace_frac: f64,
    /// Simulated-annealing moves attempted per block and per temperature step.
    pub sa_moves_per_block: usize,
    /// Number of temperature steps of the annealing schedule.
    pub sa_temperature_steps: usize,
    /// Geometric cooling factor per temperature step.
    pub sa_cooling: f64,
    /// Initial acceptance probability used to calibrate the starting temperature.
    pub sa_initial_acceptance: f64,
    /// Penalty weight for target-area (at) violations.
    pub penalty_target_area: f64,
    /// Penalty weight for minimum-area (am) violations.
    pub penalty_min_area: f64,
    /// Penalty weight for macro (shape-curve) violations.
    pub penalty_macro: f64,
    /// Maximum number of Pareto points kept per shape curve.
    pub shape_curve_limit: usize,
    /// Iterations of the area-optimizing annealer used during shape-curve
    /// generation, per macro in the node.
    pub shape_curve_effort: usize,
    /// Random seed; every run with the same seed is deterministic.
    pub seed: u64,
}

impl Default for HidapConfig {
    fn default() -> Self {
        Self {
            lambda: 0.5,
            score_k: 1,
            min_area_frac: 0.4,
            open_area_frac: 0.01,
            min_register_bits: 4,
            max_flow_latency: 8,
            whitespace_frac: 0.15,
            sa_moves_per_block: 60,
            sa_temperature_steps: 60,
            sa_cooling: 0.92,
            sa_initial_acceptance: 0.9,
            penalty_target_area: 0.05,
            penalty_min_area: 0.3,
            penalty_macro: 1.5,
            shape_curve_limit: 24,
            shape_curve_effort: 200,
            seed: 1,
        }
    }
}

impl HidapConfig {
    /// A reduced-effort configuration for unit tests and quick experiments.
    pub fn fast() -> Self {
        Self {
            min_register_bits: 1,
            sa_moves_per_block: 20,
            sa_temperature_steps: 25,
            shape_curve_effort: 60,
            ..Self::default()
        }
    }

    /// A high-effort configuration comparable to the paper's 0.5–2 h runs
    /// (scaled to the synthetic workloads of this reproduction).
    pub fn high_effort() -> Self {
        Self {
            sa_moves_per_block: 150,
            sa_temperature_steps: 90,
            sa_cooling: 0.95,
            shape_curve_effort: 400,
            ..Self::default()
        }
    }

    /// Sets λ and returns the modified configuration (builder style).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the RNG seed and returns the modified configuration.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a parameter is outside its
    /// meaningful range (λ ∉ \[0,1\], non-positive cooling, ...).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.lambda) {
            return Err(format!("lambda must be in [0, 1], got {}", self.lambda));
        }
        if !(0.0..1.0).contains(&self.sa_cooling) {
            return Err(format!("sa_cooling must be in (0, 1), got {}", self.sa_cooling));
        }
        if self.min_area_frac < 0.0 || self.open_area_frac < 0.0 {
            return Err("area fractions must be non-negative".to_string());
        }
        if self.sa_temperature_steps == 0 || self.sa_moves_per_block == 0 {
            return Err("annealing effort must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_fractions() {
        let c = HidapConfig::default();
        assert_eq!(c.min_area_frac, 0.4);
        assert_eq!(c.open_area_frac, 0.01);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods() {
        let c = HidapConfig::default().with_lambda(0.2).with_seed(99);
        assert_eq!(c.lambda, 0.2);
        assert_eq!(c.seed, 99);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(HidapConfig { lambda: 1.5, ..Default::default() }.validate().is_err());
        assert!(HidapConfig { sa_cooling: 1.0, ..Default::default() }.validate().is_err());
        assert!(HidapConfig { sa_temperature_steps: 0, ..Default::default() }.validate().is_err());
        assert!(HidapConfig { min_area_frac: -0.1, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn effort_presets_ordered() {
        assert!(
            HidapConfig::fast().sa_moves_per_block <= HidapConfig::default().sa_moves_per_block
        );
        assert!(
            HidapConfig::high_effort().sa_moves_per_block
                >= HidapConfig::default().sa_moves_per_block
        );
    }
}
