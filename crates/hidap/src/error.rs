//! Error type of the HiDaP flow.

use std::fmt;

/// An error produced by the HiDaP macro-placement flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HidapError {
    /// The design has no die area (zero width or height).
    EmptyDie,
    /// The macros cannot fit in the die area at all.
    MacrosExceedDie {
        /// Total macro area in DBU².
        macro_area: i128,
        /// Die area in DBU².
        die_area: i128,
    },
    /// An internal invariant was violated; indicates a bug.
    Internal(String),
    /// The run was aborted by a flow probe (see [`crate::flow::FlowStage`]),
    /// typically on behalf of an engine-level cancellation or deadline.
    Cancelled,
}

impl fmt::Display for HidapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HidapError::EmptyDie => write!(f, "design has an empty die area"),
            HidapError::MacrosExceedDie { macro_area, die_area } => {
                write!(f, "total macro area {macro_area} exceeds die area {die_area}")
            }
            HidapError::Internal(msg) => write!(f, "internal error: {msg}"),
            HidapError::Cancelled => write!(f, "flow run was cancelled"),
        }
    }
}

impl std::error::Error for HidapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(HidapError::EmptyDie.to_string(), "design has an empty die area");
        assert!(HidapError::MacrosExceedDie { macro_area: 10, die_area: 5 }
            .to_string()
            .contains("exceeds"));
        assert!(HidapError::Internal("x".into()).to_string().contains("internal"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HidapError>();
    }
}
