//! Blocks: the hybrid hard/soft units floorplanned at every hierarchy level.
//!
//! A block (paper Sect. II-D) represents the cells and macros under a node of
//! the hierarchy tree and is characterized by the triple ⟨Γ, am, at⟩:
//!
//! * Γ — the shape curve of its macros,
//! * am — the *minimum area*: the sum of macro and standard-cell area under
//!   the hierarchy level,
//! * at — the *target area*: am plus the glue-logic area assigned to the
//!   block by target-area assignment (Sect. IV-C).

use geometry::ShapeCurve;
use netlist::design::CellId;
use netlist::hierarchy::HierarchyNodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a block within one floorplanning level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub usize);

/// What a block was created from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockKind {
    /// A hierarchy-tree node selected by declustering (HCB member).
    Hierarchy(HierarchyNodeId),
    /// A single macro cell that lives directly at the floorplanned level.
    SingleMacro(CellId),
}

/// A block of the current floorplanning level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Origin of the block.
    pub kind: BlockKind,
    /// Human-readable name (hierarchy path or macro instance name).
    pub name: String,
    /// Shape curve of the macros inside the block (unconstrained when the
    /// block holds no macros).
    pub shape: ShapeCurve,
    /// Minimum area `am` (macros + standard cells of the subtree), in DBU².
    pub min_area: i128,
    /// Target area `at` (`am` plus assigned glue area), in DBU².
    pub target_area: i128,
    /// Macro cells inside the block.
    pub macros: Vec<CellId>,
    /// All cells of the block (used by target-area assignment and metrics).
    pub cells: Vec<CellId>,
}

impl Block {
    /// Number of macros in the block (the recursion criterion of Alg. 2).
    pub fn macro_count(&self) -> usize {
        self.macros.len()
    }

    /// Returns `true` when the block contains no macros (soft block).
    pub fn is_soft(&self) -> bool {
        self.macros.is_empty()
    }

    /// Area of the macros alone, from the shape curve.
    pub fn macro_area(&self) -> i128 {
        self.shape.min_area()
    }
}

/// The set of blocks of one floorplanning level, together with the glue
/// (HCG) cells that must be folded into their target areas.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BlockSet {
    /// The blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Cells of glue-logic hierarchy nodes (HCG), not assigned to any block yet.
    pub glue_cells: Vec<CellId>,
}

impl BlockSet {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` when there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Block accessor.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0]
    }

    /// Mutable block accessor.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0]
    }

    /// Iterates over `(id, block)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &Block)> + '_ {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i), b))
    }

    /// Sum of the target areas of all blocks.
    pub fn total_target_area(&self) -> i128 {
        self.blocks.iter().map(|b| b.target_area).sum()
    }

    /// Sum of the minimum areas of all blocks.
    pub fn total_min_area(&self) -> i128 {
        self.blocks.iter().map(|b| b.min_area).sum()
    }

    /// Total number of macros across all blocks.
    pub fn total_macros(&self) -> usize {
        self.blocks.iter().map(Block::macro_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::ShapeCurve;

    fn block(name: &str, macros: usize, min_area: i128) -> Block {
        Block {
            kind: BlockKind::Hierarchy(HierarchyNodeId(0)),
            name: name.into(),
            shape: if macros > 0 {
                ShapeCurve::from_macro(10, 10, true)
            } else {
                ShapeCurve::unconstrained()
            },
            min_area,
            target_area: min_area,
            macros: (0..macros).map(|i| CellId(i as u32)).collect(),
            cells: Vec::new(),
        }
    }

    #[test]
    fn soft_and_hard_blocks() {
        let hard = block("hard", 2, 500);
        let soft = block("soft", 0, 300);
        assert!(!hard.is_soft());
        assert!(soft.is_soft());
        assert_eq!(hard.macro_count(), 2);
        assert_eq!(hard.macro_area(), 100);
        assert_eq!(soft.macro_area(), 0);
    }

    #[test]
    fn block_set_totals() {
        let set = BlockSet {
            blocks: vec![block("a", 1, 100), block("b", 0, 50), block("c", 3, 200)],
            glue_cells: Vec::new(),
        };
        assert_eq!(set.len(), 3);
        assert_eq!(set.total_min_area(), 350);
        assert_eq!(set.total_target_area(), 350);
        assert_eq!(set.total_macros(), 4);
        assert_eq!(set.block(BlockId(2)).name, "c");
        assert_eq!(set.iter().count(), 3);
    }
}
