//! Shape-curve generation for every hierarchy level (Sect. IV-A).
//!
//! For each node of the hierarchy tree, SΓ stores a shape curve with the
//! minimal bounding boxes such that the macros of its subtree can be placed
//! under slicing constraints.  Because the hierarchy tree is not itself a
//! slicing tree, the shapes of children cannot simply be composed; instead an
//! area-optimizing simulated annealing over slicing arrangements of the
//! node's macros generates a set of small-area shape combinations.

use crate::config::HidapConfig;
use geometry::{CutDirection, PolishExpression, ShapeCurve, SlicingNode, SlicingTree};
use netlist::design::{CellKind, Design};
use netlist::hierarchy::{HierarchyNodeId, HierarchyTree};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The set SΓ: one shape curve per hierarchy node that contains macros.
///
/// Nodes without macros are unconstrained and are not stored explicitly.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ShapeCurveSet {
    curves: HashMap<HierarchyNodeId, ShapeCurve>,
}

impl ShapeCurveSet {
    /// Generates shape curves for every hierarchy node with at least one
    /// macro in its subtree (bottom-up, once per flow as in Algorithm 1).
    pub fn generate(design: &Design, ht: &HierarchyTree, config: &HidapConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5ca1e);
        let mut curves = HashMap::new();
        for (node_id, node) in ht.iter() {
            if node.subtree_macros == 0 {
                continue;
            }
            let macros = ht.subtree_macros(node_id, design);
            let leaf_curves: Vec<ShapeCurve> = macros
                .iter()
                .map(|&c| {
                    let cell = design.cell(c);
                    debug_assert_eq!(cell.kind, CellKind::Macro);
                    ShapeCurve::from_macro(cell.width, cell.height, true)
                })
                .collect();
            let curve = macro_packing_curve(&leaf_curves, config, &mut rng);
            curves.insert(node_id, curve);
        }
        Self { curves }
    }

    /// The shape curve of a hierarchy node (unconstrained if it has no macros).
    pub fn curve(&self, node: HierarchyNodeId) -> ShapeCurve {
        self.curves.get(&node).cloned().unwrap_or_else(ShapeCurve::unconstrained)
    }

    /// Number of explicitly stored (macro-bearing) curves.
    pub fn len(&self) -> usize {
        self.curves.len()
    }

    /// Returns `true` if no hierarchy node contains macros.
    pub fn is_empty(&self) -> bool {
        self.curves.is_empty()
    }

    /// Inserts or replaces the curve of a node (used by tests and by callers
    /// that build curves for synthetic block sets).
    pub fn insert(&mut self, node: HierarchyNodeId, curve: ShapeCurve) {
        self.curves.insert(node, curve);
    }
}

/// Builds a shape curve describing small-area slicing packings of a set of
/// hard components given by their individual shape curves.
///
/// For zero components the result is unconstrained; for one component it is
/// the component's own curve.  For more components, a simulated annealing
/// over normalized Polish expressions minimizes the packing area, and every
/// explored arrangement contributes its Pareto bounding boxes to the result.
pub fn macro_packing_curve<R: Rng + ?Sized>(
    leaves: &[ShapeCurve],
    config: &HidapConfig,
    rng: &mut R,
) -> ShapeCurve {
    match leaves.len() {
        0 => ShapeCurve::unconstrained(),
        1 => leaves[0].clone(),
        _ => {
            let mut expr = PolishExpression::chain(leaves.len(), CutDirection::Vertical);
            let mut accumulated: Vec<(i64, i64)> = Vec::new();
            let mut current_curve = compose_expression(&expr, leaves, config.shape_curve_limit);
            let mut current_cost = current_curve.min_area();
            accumulated.extend_from_slice(current_curve.points());
            let mut best_cost = current_cost;

            let iterations = config.shape_curve_effort * leaves.len();
            // Simple annealing: temperature proportional to the total macro area.
            let total_area: i128 = leaves.iter().map(ShapeCurve::min_area).sum();
            let mut temperature = (total_area as f64) * 0.5 + 1.0;
            let cooling = 0.97_f64;
            for _ in 0..iterations {
                let mut candidate = expr.clone();
                candidate.random_move(rng);
                let curve = compose_expression(&candidate, leaves, config.shape_curve_limit);
                let cost = curve.min_area();
                let delta = (cost - current_cost) as f64;
                let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
                if accept {
                    expr = candidate;
                    current_cost = cost;
                    current_curve = curve;
                    accumulated.extend_from_slice(current_curve.points());
                    best_cost = best_cost.min(cost);
                }
                temperature = (temperature * cooling).max(1.0);
            }
            ShapeCurve::from_points(accumulated).pruned(config.shape_curve_limit)
        }
    }
}

/// Composes the shape curve of the root of a slicing expression whose leaves
/// have the given curves.
pub fn compose_expression(
    expr: &PolishExpression,
    leaves: &[ShapeCurve],
    limit: usize,
) -> ShapeCurve {
    let tree = expr.to_tree();
    compose_node(&tree, tree.root(), leaves, limit)
}

fn compose_node(tree: &SlicingTree, idx: usize, leaves: &[ShapeCurve], limit: usize) -> ShapeCurve {
    match tree.node(idx) {
        SlicingNode::Leaf { block } => leaves[*block].clone(),
        SlicingNode::Internal { cut, left, right } => {
            let l = compose_node(tree, *left, leaves, limit);
            let r = compose_node(tree, *right, leaves, limit);
            let combined = match cut {
                CutDirection::Vertical => l.compose_horizontal(&r),
                CutDirection::Horizontal => l.compose_vertical(&r),
            };
            combined.pruned(limit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::DesignBuilder;

    fn config() -> HidapConfig {
        HidapConfig::fast()
    }

    #[test]
    fn empty_and_single_macro_curves() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(macro_packing_curve(&[], &config(), &mut rng).is_unconstrained());
        let single = ShapeCurve::from_macro(30, 10, true);
        let c = macro_packing_curve(std::slice::from_ref(&single), &config(), &mut rng);
        assert_eq!(c, single);
    }

    #[test]
    fn packing_curve_area_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let leaves = vec![ShapeCurve::from_macro(4, 4, true); 4];
        let c = macro_packing_curve(&leaves, &config(), &mut rng);
        // cannot be smaller than the sum of areas
        assert!(c.min_area() >= 64);
        // a 2x2 arrangement of 4x4 macros fits in 8x8 = 64 area, the annealer
        // explores enough arrangements to get close
        assert!(c.min_area() <= 128, "min area {} too large", c.min_area());
        // every stored point can actually hold the macros' total area
        for &(w, h) in c.points() {
            assert!(w as i128 * h as i128 >= 64);
        }
    }

    #[test]
    fn packing_respects_tall_macros() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let leaves =
            vec![ShapeCurve::from_macro(2, 10, false), ShapeCurve::from_macro(2, 10, false)];
        let c = macro_packing_curve(&leaves, &config(), &mut rng);
        // two non-rotatable 2x10 macros: either 4x10 or 2x20
        assert!(c.fits(4, 10));
        assert!(!c.fits(3, 10));
    }

    #[test]
    fn generate_covers_macro_nodes_only() {
        let mut b = DesignBuilder::new("t");
        b.add_macro("u_mem/ram0", "RAM", 100, 60, "u_mem");
        b.add_macro("u_mem/ram1", "RAM", 100, 60, "u_mem");
        b.add_flop("u_ctl/r", "u_ctl");
        let d = b.build();
        let ht = HierarchyTree::from_design(&d);
        let set = ShapeCurveSet::generate(&d, &ht, &config());
        // curves exist for root and u_mem, not for u_ctl
        assert_eq!(set.len(), 2);
        let u_mem = ht.find("u_mem").unwrap();
        assert!(!set.curve(u_mem).is_unconstrained());
        let u_ctl = ht.find("u_ctl").unwrap();
        assert!(set.curve(u_ctl).is_unconstrained());
        // the u_mem curve must fit two 100x60 macros side by side or stacked
        assert!(set.curve(u_mem).fits(200, 60) || set.curve(u_mem).fits(100, 120));
    }

    #[test]
    fn compose_expression_matches_manual_composition() {
        let leaves = vec![ShapeCurve::from_macro(4, 2, false), ShapeCurve::from_macro(3, 5, false)];
        let expr = PolishExpression::chain(2, CutDirection::Vertical);
        let c = compose_expression(&expr, &leaves, 16);
        assert_eq!(c, leaves[0].compose_horizontal(&leaves[1]));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let leaves = vec![ShapeCurve::from_macro(4, 4, true); 5];
        let mut rng1 = ChaCha8Rng::seed_from_u64(7);
        let mut rng2 = ChaCha8Rng::seed_from_u64(7);
        let a = macro_packing_curve(&leaves, &config(), &mut rng1);
        let b = macro_packing_curve(&leaves, &config(), &mut rng2);
        assert_eq!(a, b);
    }
}
