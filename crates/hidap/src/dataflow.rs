//! Dataflow inference for one floorplanning level (Sect. IV-D).
//!
//! Builds the block assignment for the level's blocks (plus the surrounding
//! *fixed* context: primary ports and already-placed blocks of enclosing
//! levels), constructs the dataflow graph `Gdf` and derives the affinity
//! matrix `Maff` used by layout generation.

use crate::block::BlockSet;
use crate::config::HidapConfig;
use geometry::Point;
use graphs::dataflow::DataflowConfig;
use graphs::{AffinityMatrix, BlockAssignment, DataflowGraph, SeqGraph};
use netlist::dense::DenseMap;
use netlist::design::{CellId, Design};
use serde::{Deserialize, Serialize};

/// A fixed dataflow context node: a group of cells that already has a known
/// location (a block placed at an enclosing hierarchy level).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedGroup {
    /// Display name.
    pub name: String,
    /// Known location (center of the placed block).
    pub position: Point,
    /// Cells belonging to the group.
    pub cells: Vec<CellId>,
}

/// The dataflow view of one floorplanning level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelDataflow {
    /// The dataflow graph. Nodes `0..num_movable` are the level's blocks (in
    /// [`BlockSet`] order), followed by fixed context blocks, followed by
    /// multi-bit port nodes.
    pub graph: DataflowGraph,
    /// Affinity matrix `Maff` for the configured λ and k (symmetric, flat
    /// row-major storage).
    pub affinity: AffinityMatrix,
    /// Fixed position of every dataflow node (`None` for the movable blocks).
    pub fixed_positions: Vec<Option<Point>>,
    /// Number of movable blocks.
    pub num_movable: usize,
}

impl LevelDataflow {
    /// Affinity between two dataflow nodes.
    pub fn affinity_between(&self, a: usize, b: usize) -> f64 {
        self.affinity.get(a, b)
    }

    /// Total affinity from a movable block towards all fixed nodes, weighted
    /// by nothing — a convenience for reporting.
    pub fn external_pull(&self, block: usize) -> f64 {
        self.affinity.row(block)[self.num_movable..self.graph.num_nodes()].iter().sum()
    }
}

/// Runs dataflow inference for one level.
///
/// * `blocks` — the movable blocks produced by declustering,
/// * `fixed_groups` — already-placed context (sibling blocks of enclosing
///   levels) with their positions,
/// * `gseq` — the sequential graph of the whole design (built once per flow).
pub fn dataflow_inference(
    design: &Design,
    gseq: &SeqGraph,
    blocks: &BlockSet,
    fixed_groups: &[FixedGroup],
    config: &HidapConfig,
) -> LevelDataflow {
    let num_movable = blocks.len();
    let num_assigned_blocks = num_movable + fixed_groups.len();

    // cell -> assigned block index (movable blocks first, then fixed groups),
    // as a dense per-cell store so the per-node lookups below stay flat
    let mut cell_block: DenseMap<CellId, Option<u32>> = DenseMap::with_len(design.num_cells());
    for (id, block) in blocks.iter() {
        for &c in &block.cells {
            cell_block[c] = Some(id.0 as u32);
        }
    }
    for (i, group) in fixed_groups.iter().enumerate() {
        for &c in &group.cells {
            if cell_block[c].is_none() {
                cell_block[c] = Some((num_movable + i) as u32);
            }
        }
    }

    let mut assignment = BlockAssignment::empty(gseq, num_assigned_blocks);
    assignment.block_names = blocks
        .blocks
        .iter()
        .map(|b| b.name.clone())
        .chain(fixed_groups.iter().map(|g| g.name.clone()))
        .collect();
    for (id, node) in gseq.iter() {
        // a sequential node belongs to the block that owns any of its cells
        let block = node.cells.iter().find_map(|&c| cell_block[c]);
        if let Some(b) = block {
            assignment.assign(id, b as usize);
        }
    }

    let df_config = DataflowConfig { max_latency: config.max_flow_latency, min_port_bits: 1 };
    let graph = DataflowGraph::build(gseq, &assignment, &df_config);
    let affinity = graph.affinity_matrix(config.lambda, config.score_k);

    // Fixed positions: movable blocks have none; fixed groups use their given
    // position; port nodes use the port location (or the die center when the
    // ports have not been placed yet).
    let die = design.die();
    let die_center = die.center();
    let mut fixed_positions: Vec<Option<Point>> = vec![None; graph.num_nodes()];
    for (i, group) in fixed_groups.iter().enumerate() {
        fixed_positions[num_movable + i] = Some(group.position);
    }
    for (idx, fixed_position) in fixed_positions.iter_mut().enumerate() {
        if let graphs::DataflowNode::Port { seq_node, .. } = graph.node(idx) {
            let node = gseq.node(*seq_node);
            let mut sum = Point::origin();
            let mut count = 0;
            for &p in &node.ports {
                if let Some(pos) = design.port(p).position {
                    sum = sum + pos;
                    count += 1;
                }
            }
            *fixed_position =
                Some(if count > 0 { Point::new(sum.x / count, sum.y / count) } else { die_center });
        }
    }

    LevelDataflow { graph, affinity, fixed_positions, num_movable }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decluster::hierarchical_declustering;
    use crate::shape_curves::ShapeCurveSet;
    use geometry::Rect;
    use graphs::seqgraph::SeqGraphConfig;
    use netlist::design::{DesignBuilder, PortDirection};
    use netlist::hierarchy::HierarchyTree;

    /// Two macro blocks joined by a wide register pipeline, plus an input port
    /// bus feeding block A.
    fn pipeline_design() -> Design {
        let mut b = DesignBuilder::new("t");
        let ma = b.add_macro("u_a/ram", "RAM", 100, 100, "u_a");
        let mb = b.add_macro("u_b/ram", "RAM", 100, 100, "u_b");
        for i in 0..16 {
            let f = b.add_flop(format!("u_glue/pipe_reg[{i}]"), "u_glue");
            let n0 = b.add_net(format!("a2p_{i}"));
            let n1 = b.add_net(format!("p2b_{i}"));
            b.connect_driver(n0, ma);
            b.connect_sink(n0, f);
            b.connect_driver(n1, f);
            b.connect_sink(n1, mb);
        }
        for i in 0..8 {
            let p = b.add_port(format!("din[{i}]"), PortDirection::Input);
            b.place_port(p, Point::new(0, 10 * i as i64));
            let n = b.add_net(format!("din_net_{i}"));
            b.connect_port_driver(n, p);
            b.connect_sink(n, ma);
        }
        b.set_die(Rect::new(0, 0, 1000, 1000));
        b.build()
    }

    fn level(design: &Design, lambda: f64) -> (BlockSet, LevelDataflow) {
        let config = HidapConfig { lambda, ..HidapConfig::fast() };
        let ht = HierarchyTree::from_design(design);
        let curves = ShapeCurveSet::generate(design, &ht, &config);
        let blocks = hierarchical_declustering(design, &ht, &curves, ht.root(), &config);
        let gseq = SeqGraph::from_design(design, &SeqGraphConfig { min_register_bits: 1 });
        let df = dataflow_inference(design, &gseq, &blocks, &[], &config);
        (blocks, df)
    }

    #[test]
    fn movable_blocks_come_first_and_ports_are_fixed() {
        let d = pipeline_design();
        let (blocks, df) = level(&d, 0.5);
        assert_eq!(df.num_movable, blocks.len());
        assert_eq!(df.num_movable, 2);
        // one port node (din), fixed at the average port position
        assert_eq!(df.graph.num_nodes(), 3);
        assert!(df.fixed_positions[2].is_some());
        assert!(df.fixed_positions[0].is_none());
        let port_pos = df.fixed_positions[2].unwrap();
        assert_eq!(port_pos.x, 0);
    }

    #[test]
    fn macro_flow_links_the_two_blocks() {
        let d = pipeline_design();
        let (_, df) = level(&d, 0.0); // macro flow only
        let a = 0;
        let b = 1;
        assert!(df.affinity_between(a, b) > 0.0, "macro flow should link A and B");
    }

    #[test]
    fn block_flow_links_block_to_port() {
        let d = pipeline_design();
        let (blocks, df) = level(&d, 1.0); // block flow only
        let a_idx = blocks.blocks.iter().position(|b| b.name == "u_a").unwrap();
        assert!(df.external_pull(a_idx) > 0.0, "block A should be pulled towards the din port");
    }

    #[test]
    fn fixed_groups_become_fixed_nodes() {
        let d = pipeline_design();
        let config = HidapConfig::fast();
        let ht = HierarchyTree::from_design(&d);
        let curves = ShapeCurveSet::generate(&d, &ht, &config);
        let blocks = hierarchical_declustering(&d, &ht, &curves, ht.root(), &config);
        let gseq = SeqGraph::from_design(&d, &SeqGraphConfig { min_register_bits: 1 });
        // pretend block B was already placed far away
        let b_cells = blocks.blocks.iter().find(|b| b.name == "u_b").unwrap().cells.clone();
        let fixed = vec![FixedGroup {
            name: "placed_b".into(),
            position: Point::new(900, 900),
            cells: b_cells,
        }];
        // keep only block A movable
        let mut only_a = blocks.clone();
        only_a.blocks.retain(|b| b.name == "u_a");
        let df = dataflow_inference(&d, &gseq, &only_a, &fixed, &config);
        assert_eq!(df.num_movable, 1);
        assert_eq!(df.fixed_positions[1], Some(Point::new(900, 900)));
        // A still feels affinity towards the fixed copy of B through macro flow
        assert!(df.affinity_between(0, 1) > 0.0);
    }

    #[test]
    fn affinity_matrix_is_symmetric_and_zero_diagonal() {
        let d = pipeline_design();
        let (_, df) = level(&d, 0.5);
        let n = df.graph.num_nodes();
        for i in 0..n {
            assert_eq!(df.affinity.get(i, i), 0.0);
            for j in 0..n {
                assert!((df.affinity.get(i, j) - df.affinity.get(j, i)).abs() < 1e-9);
            }
        }
    }
}
