//! The top-level HiDaP flow (Algorithm 1).

use crate::config::HidapConfig;
use crate::error::HidapError;
use crate::flipping::macro_flipping;
use crate::legalize::legalize_macros;
use crate::placement::{MacroPlacement, PlacedMacro};
use crate::recursive::RecursiveFloorplanner;
use crate::shape_curves::ShapeCurveSet;
use geometry::Orientation;
use graphs::seqgraph::SeqGraphConfig;
use graphs::{NetGraph, SeqGraph};
use netlist::design::Design;
use netlist::hierarchy::HierarchyTree;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A checkpoint the flow reports as it moves through its stages.
///
/// Probes (see [`HidapFlow::run_probed`]) receive each checkpoint in order
/// and return `true` to continue or `false` to abort the run with
/// [`HidapError::Cancelled`]. This is the hook the `placer-core` engine uses
/// for stage observability, cancellation and deadlines without this crate
/// depending on the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowStage<'a> {
    /// The hierarchy tree was built (`nodes` hierarchy levels).
    HierarchyBuilt {
        /// Number of hierarchy levels.
        nodes: usize,
    },
    /// Shape curves exist for every hierarchy level.
    ShapeCurvesReady {
        /// Number of generated curves.
        curves: usize,
    },
    /// One hierarchy level's floorplan was accepted.
    LevelFloorplanned {
        /// Recursion depth (0 = top).
        depth: usize,
        /// Hierarchical path of the node (empty for the top).
        node: &'a str,
        /// Number of blocks laid out at this level.
        blocks: usize,
    },
    /// Macro flipping chose final orientations.
    FlippingDone {
        /// Macros whose orientation differs from the default `N`.
        flipped: usize,
    },
    /// Legalization finished.
    LegalizationDone {
        /// Macros legalization had to move.
        moved: usize,
    },
}

/// A stage callback: return `false` to abort the run.
pub type FlowProbe<'a> = dyn FnMut(&FlowStage<'_>) -> bool + 'a;

/// The HiDaP macro placer.
///
/// ```
/// use hidap::{HidapConfig, HidapFlow};
/// let flow = HidapFlow::new(HidapConfig::fast().with_lambda(0.5));
/// assert_eq!(flow.config().lambda, 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct HidapFlow {
    config: HidapConfig,
}

impl HidapFlow {
    /// Creates a flow with the given configuration.
    pub fn new(config: HidapConfig) -> Self {
        Self { config }
    }

    /// The flow configuration.
    pub fn config(&self) -> &HidapConfig {
        &self.config
    }

    /// Runs the full flow on a design and returns the macro placement
    /// (Algorithm 1: hierarchy tree, shape curves, recursive block
    /// floorplanning, macro flipping), followed by a legalization pass.
    ///
    /// # Errors
    ///
    /// * [`HidapError::EmptyDie`] when the design's die has zero area,
    /// * [`HidapError::MacrosExceedDie`] when the macros cannot possibly fit,
    /// * [`HidapError::Internal`] when the configuration is invalid.
    pub fn run(&self, design: &Design) -> Result<MacroPlacement, HidapError> {
        self.run_probed(design, &mut |_| true)
    }

    /// Runs the full flow, reporting each [`FlowStage`] checkpoint to
    /// `probe`. When the probe returns `false` the run stops at that
    /// boundary with [`HidapError::Cancelled`].
    ///
    /// # Errors
    ///
    /// Everything [`HidapFlow::run`] can return, plus
    /// [`HidapError::Cancelled`] when the probe aborts the run.
    pub fn run_probed(
        &self,
        design: &Design,
        probe: &mut FlowProbe<'_>,
    ) -> Result<MacroPlacement, HidapError> {
        self.run_probed_with(design, None, None, probe)
    }

    /// [`HidapFlow::run_probed`] with optionally prebuilt circuit graphs.
    /// `gnet` must be the design's [`NetGraph`] and `gseq` the sequential
    /// graph built for this design with this configuration's
    /// `min_register_bits` — multi-design front ends fetch both from a
    /// design-keyed artifact cache so repeated runs skip the constructions
    /// entirely. `None` builds the missing graph internally (a supplied
    /// `gnet` still feeds the internal `gseq` derivation, so passing only
    /// the net graph already avoids the duplicate `NetGraph` build).
    pub fn run_probed_with(
        &self,
        design: &Design,
        gnet: Option<&NetGraph>,
        gseq: Option<&SeqGraph>,
        probe: &mut FlowProbe<'_>,
    ) -> Result<MacroPlacement, HidapError> {
        self.config.validate().map_err(HidapError::Internal)?;
        let die = design.die();
        if die.width() <= 0 || die.height() <= 0 {
            return Err(HidapError::EmptyDie);
        }
        let macro_area: i128 = design.macros().map(|m| design.cell(m).area()).sum();
        if macro_area > die.area() {
            return Err(HidapError::MacrosExceedDie { macro_area, die_area: die.area() });
        }
        if design.num_macros() == 0 {
            return Ok(MacroPlacement::default());
        }

        // Circuit abstractions, built once per flow.
        let ht = HierarchyTree::from_design(design);
        if !probe(&FlowStage::HierarchyBuilt { nodes: ht.len() }) {
            return Err(HidapError::Cancelled);
        }
        let shape_curves = ShapeCurveSet::generate(design, &ht, &self.config);
        if !probe(&FlowStage::ShapeCurvesReady { curves: shape_curves.len() }) {
            return Err(HidapError::Cancelled);
        }
        // reuse the supplied graphs, building what is missing: `from_netgraph`
        // on the same design is bit-identical to `from_design`, so every
        // combination of cached/None inputs produces the same placement
        let built_gnet;
        let gnet = match gnet {
            Some(graph) => graph,
            None => {
                built_gnet = NetGraph::from_design(design);
                &built_gnet
            }
        };
        let built_gseq;
        let gseq = match gseq {
            Some(graph) => graph,
            None => {
                built_gseq = SeqGraph::from_netgraph(
                    design,
                    gnet,
                    &SeqGraphConfig { min_register_bits: self.config.min_register_bits },
                );
                &built_gseq
            }
        };

        // Recursive block floorplanning.
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut floorplanner =
            RecursiveFloorplanner::new(design, &ht, gnet, gseq, &shape_curves, &self.config);
        if !floorplanner.floorplan_probed(ht.root(), die, &[], 0, &mut rng, probe) {
            return Err(HidapError::Cancelled);
        }
        let mut footprints = floorplanner.footprints;
        let top_blocks = floorplanner.top_blocks;

        // Any macro the recursion could not reach (e.g. isolated macros in a
        // degenerate hierarchy) falls back to the die origin and is then
        // legalized with everything else.
        for m in design.macros() {
            footprints.insert_if_absent(
                m,
                crate::legalize::MacroFootprint { location: die.lower_left(), rotated: false },
            );
        }

        let moved = legalize_macros(design, die, &mut footprints);
        if !probe(&FlowStage::LegalizationDone { moved }) {
            return Err(HidapError::Cancelled);
        }
        let orientations = macro_flipping(design, &footprints);
        let flipped = orientations.values().filter(|&&o| o != Orientation::N).count();
        if !probe(&FlowStage::FlippingDone { flipped }) {
            return Err(HidapError::Cancelled);
        }

        let mut macros: Vec<PlacedMacro> = footprints
            .iter()
            .map(|(cell, fp)| PlacedMacro {
                cell,
                location: fp.location,
                orientation: orientations.get(cell).copied().unwrap_or(Orientation::N),
            })
            .collect();
        macros.sort_by_key(|m| m.cell);
        Ok(MacroPlacement { macros, top_blocks })
    }

    /// Runs only the placement tail of the flow, seeded from a previous
    /// placement — the ECO warm-start path.
    ///
    /// Macro footprints start at the `warm` locations (macros the warm
    /// placement does not cover fall back to the die origin), then the same
    /// legalization and flipping passes as [`HidapFlow::run`] restore a
    /// legal result. Hierarchy analysis, shape curves and the recursive
    /// floorplan are skipped entirely — on a small design edit the warm
    /// locations are already near-legal, so this converges in a fraction of
    /// the full flow's work. `top_blocks` carries over from `warm` since no
    /// new block-level floorplan exists.
    ///
    /// # Errors
    ///
    /// Everything [`HidapFlow::run`] can return, plus
    /// [`HidapError::Cancelled`] when the probe aborts the run.
    pub fn run_warm(
        &self,
        design: &Design,
        warm: &MacroPlacement,
    ) -> Result<MacroPlacement, HidapError> {
        self.run_warm_probed(design, warm, &mut |_| true)
    }

    /// [`HidapFlow::run_warm`] reporting [`FlowStage::LegalizationDone`] and
    /// [`FlowStage::FlippingDone`] checkpoints to `probe` (the earlier stages
    /// do not run on the warm path).
    ///
    /// # Errors
    ///
    /// Everything [`HidapFlow::run_warm`] can return.
    pub fn run_warm_probed(
        &self,
        design: &Design,
        warm: &MacroPlacement,
        probe: &mut FlowProbe<'_>,
    ) -> Result<MacroPlacement, HidapError> {
        self.config.validate().map_err(HidapError::Internal)?;
        let die = design.die();
        if die.width() <= 0 || die.height() <= 0 {
            return Err(HidapError::EmptyDie);
        }
        let macro_area: i128 = design.macros().map(|m| design.cell(m).area()).sum();
        if macro_area > die.area() {
            return Err(HidapError::MacrosExceedDie { macro_area, die_area: die.area() });
        }
        if design.num_macros() == 0 {
            return Ok(MacroPlacement::default());
        }

        // Seed footprints from the warm placement; macros the edit introduced
        // (or that the warm result never covered) start at the die origin and
        // get a real spot during legalization.
        let mut footprints = crate::legalize::MacroFootprints::for_design(design);
        for m in design.macros() {
            let fp = match warm.placement_of(m) {
                Some(p) => crate::legalize::MacroFootprint {
                    location: p.location,
                    rotated: p.orientation.swaps_axes(),
                },
                None => {
                    crate::legalize::MacroFootprint { location: die.lower_left(), rotated: false }
                }
            };
            footprints.insert(m, fp);
        }

        let moved = legalize_macros(design, die, &mut footprints);
        if !probe(&FlowStage::LegalizationDone { moved }) {
            return Err(HidapError::Cancelled);
        }
        let orientations = macro_flipping(design, &footprints);
        let flipped = orientations.values().filter(|&&o| o != Orientation::N).count();

        let mut macros: Vec<PlacedMacro> = footprints
            .iter()
            .map(|(cell, fp)| PlacedMacro {
                cell,
                location: fp.location,
                orientation: orientations.get(cell).copied().unwrap_or(Orientation::N),
            })
            .collect();
        macros.sort_by_key(|m| m.cell);
        let placement = MacroPlacement { macros, top_blocks: warm.top_blocks.clone() };

        // Incremental legalization is best-effort: on a dense die an edit
        // can defeat both the greedy pass and the shelf fallback even though
        // the macros fit. Warm results must be legal whenever cold results
        // are, so detect the failure and transparently re-run the full flow
        // — the fallback costs cold time, never correctness. The probe sees
        // the full stage sequence after the legalization checkpoint, which
        // is the true story of the run.
        if !placement.is_legal(design) {
            return self.run_probed(design, probe);
        }

        if !probe(&FlowStage::FlippingDone { flipped }) {
            return Err(HidapError::Cancelled);
        }
        Ok(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Rect;
    use netlist::design::{DesignBuilder, PortDirection};

    /// A small SoC-like design: two memory clusters, a register pipeline and
    /// an I/O port bus.
    fn soc_design() -> Design {
        let mut b = DesignBuilder::new("soc");
        let mut left = Vec::new();
        let mut right = Vec::new();
        for i in 0..4 {
            left.push(b.add_macro(format!("u_left/mem{i}"), "RAM", 150, 100, "u_left"));
            right.push(b.add_macro(format!("u_right/mem{i}"), "RAM", 150, 100, "u_right"));
        }
        for i in 0..32 {
            let f = b.add_flop(format!("u_pipe/stage_reg[{i}]"), "u_pipe");
            let n0 = b.add_net(format!("l2p_{i}"));
            let n1 = b.add_net(format!("p2r_{i}"));
            b.connect_driver(n0, left[i % 4]);
            b.connect_sink(n0, f);
            b.connect_driver(n1, f);
            b.connect_sink(n1, right[i % 4]);
        }
        for i in 0..8 {
            let p = b.add_port(format!("din[{i}]"), PortDirection::Input);
            b.place_port(p, geometry::Point::new(0, 100 + 50 * i as i64));
            let n = b.add_net(format!("din_n_{i}"));
            b.connect_port_driver(n, p);
            b.connect_sink(n, left[i % 4]);
        }
        b.set_die(Rect::new(0, 0, 2000, 1200));
        b.build()
    }

    #[test]
    fn full_flow_produces_legal_placement() {
        let design = soc_design();
        let placement = HidapFlow::new(HidapConfig::fast()).run(&design).unwrap();
        assert_eq!(placement.macros.len(), 8);
        assert!(placement.is_legal(&design), "placement must be overlap-free and inside the die");
        assert!(!placement.top_blocks.is_empty());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let design = soc_design();
        let a = HidapFlow::new(HidapConfig::fast().with_seed(7)).run(&design).unwrap();
        let b = HidapFlow::new(HidapConfig::fast().with_seed(7)).run(&design).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_lambda_still_legal() {
        let design = soc_design();
        for lambda in [0.0, 0.2, 0.8, 1.0] {
            let placement =
                HidapFlow::new(HidapConfig::fast().with_lambda(lambda)).run(&design).unwrap();
            assert!(placement.is_legal(&design), "lambda {lambda} produced an illegal placement");
        }
    }

    #[test]
    fn empty_die_is_an_error() {
        let mut b = DesignBuilder::new("t");
        b.add_macro("m", "RAM", 10, 10, "");
        let design = b.build();
        assert_eq!(
            HidapFlow::new(HidapConfig::fast()).run(&design).unwrap_err(),
            HidapError::EmptyDie
        );
    }

    #[test]
    fn oversized_macros_are_an_error() {
        let mut b = DesignBuilder::new("t");
        b.add_macro("m", "RAM", 200, 200, "");
        b.set_die(Rect::new(0, 0, 100, 100));
        let design = b.build();
        match HidapFlow::new(HidapConfig::fast()).run(&design).unwrap_err() {
            HidapError::MacrosExceedDie { .. } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn design_without_macros_returns_empty_placement() {
        let mut b = DesignBuilder::new("t");
        b.add_comb("g", "");
        b.set_die(Rect::new(0, 0, 100, 100));
        let design = b.build();
        let placement = HidapFlow::new(HidapConfig::fast()).run(&design).unwrap();
        assert!(placement.macros.is_empty());
    }

    #[test]
    fn invalid_config_is_an_error() {
        let design = soc_design();
        let bad = HidapConfig { lambda: 2.0, ..HidapConfig::fast() };
        assert!(matches!(HidapFlow::new(bad).run(&design), Err(HidapError::Internal(_))));
    }

    #[test]
    fn probe_sees_every_stage_in_order() {
        let design = soc_design();
        let mut stages: Vec<String> = Vec::new();
        HidapFlow::new(HidapConfig::fast())
            .run_probed(&design, &mut |stage| {
                stages.push(match stage {
                    FlowStage::HierarchyBuilt { .. } => "hierarchy".into(),
                    FlowStage::ShapeCurvesReady { .. } => "curves".into(),
                    FlowStage::LevelFloorplanned { depth, .. } => format!("level{depth}"),
                    FlowStage::LegalizationDone { .. } => "legalize".into(),
                    FlowStage::FlippingDone { .. } => "flipping".into(),
                });
                true
            })
            .unwrap();
        assert_eq!(stages.first().map(String::as_str), Some("hierarchy"));
        assert_eq!(stages.get(1).map(String::as_str), Some("curves"));
        assert!(stages.iter().any(|s| s == "level0"), "{stages:?}");
        assert_eq!(stages[stages.len() - 2], "legalize");
        assert_eq!(stages[stages.len() - 1], "flipping");
    }

    #[test]
    fn probe_can_cancel_the_run() {
        let design = soc_design();
        let result = HidapFlow::new(HidapConfig::fast()).run_probed(&design, &mut |_| false);
        assert_eq!(result.unwrap_err(), HidapError::Cancelled);
        // cancelling mid-floorplan also aborts
        let mut seen = 0;
        let result = HidapFlow::new(HidapConfig::fast()).run_probed(&design, &mut |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(result.unwrap_err(), HidapError::Cancelled);
    }

    #[test]
    fn warm_run_of_a_legal_placement_is_stable_and_legal() {
        let design = soc_design();
        let flow = HidapFlow::new(HidapConfig::fast());
        let cold = flow.run(&design).unwrap();
        let warm = flow.run_warm(&design, &cold).unwrap();
        assert!(warm.is_legal(&design));
        assert_eq!(warm.macros.len(), cold.macros.len());
        assert_eq!(warm.top_blocks, cold.top_blocks, "top blocks carry over");
        // warm-starting from an already-legal placement keeps every location
        for (c, w) in cold.macros.iter().zip(&warm.macros) {
            assert_eq!(c.cell, w.cell);
            assert_eq!(c.location, w.location);
        }
        // and the path is deterministic
        assert_eq!(warm, flow.run_warm(&design, &cold).unwrap());
    }

    #[test]
    fn warm_run_covers_macros_missing_from_the_seed() {
        let design = soc_design();
        let flow = HidapFlow::new(HidapConfig::fast());
        let mut seed = flow.run(&design).unwrap();
        seed.macros.truncate(3); // pretend the edit added five new macros
        let warm = flow.run_warm(&design, &seed).unwrap();
        assert_eq!(warm.macros.len(), 8, "every design macro gets a footprint");
        assert!(warm.is_legal(&design));
    }

    #[test]
    fn warm_run_falls_back_to_the_full_flow_when_the_edit_defeats_legalization() {
        // Regression found by the ECO differential fuzzer (adv_packed,
        // seed 57366): after a batch of footprint resizes the seed
        // placement no longer fits, the remaining free space is too
        // fragmented for the greedy pass, and the mixed-height shelves of
        // the packing fallback overflow the die by one row — even though a
        // legal packing exists (the cold flow finds one). The warm path
        // must detect the illegal result and fall back to the full flow.
        let macros: [(&str, i64, i64, i64, i64, bool); 12] = [
            ("u_p0/u_mem/bank0", 50000, 40000, 108599, 65137, true),
            ("u_p0/u_mem/bank1", 50000, 40000, 6324, 154157, true),
            ("u_p1/u_mem/bank0", 50000, 40000, 100000, 0, false),
            ("u_p1/u_mem/bank1", 46116, 42036, 100000, 40000, false),
            ("u_p2/u_mem/bank0", 48406, 25029, 29201, 135919, false),
            ("u_p2/u_mem/bank1", 38971, 40861, 50000, 0, false),
            ("u_p3/u_mem/bank0", 50000, 40000, 94466, 98283, false),
            ("u_p3/u_mem/bank1", 46792, 31394, 50000, 120000, true),
            ("u_p4/u_mem/bank0", 39386, 38577, 123722, 83300, false),
            ("u_p4/u_mem/bank1", 36586, 40113, 0, 80000, true),
            ("u_p5/u_mem/bank0", 43541, 38888, 100000, 120000, false),
            ("u_p5/u_mem/bank1", 46781, 33664, 0, 120000, true),
        ];
        let mut b = DesignBuilder::new("packed_eco");
        let mut seed = MacroPlacement::default();
        for (name, w, h, x, y, flipped) in macros {
            let parent = name.rsplit_once('/').expect("hierarchical name").0;
            let cell = b.add_macro(name, "RAM", w, h, parent);
            seed.macros.push(PlacedMacro {
                cell,
                location: geometry::Point::new(x, y),
                orientation: if flipped { Orientation::FN } else { Orientation::N },
            });
        }
        b.set_die(Rect::new(0, 0, 161515, 161515));
        let design = b.build();

        let flow = HidapFlow::new(HidapConfig::fast());
        let mut stages: Vec<String> = Vec::new();
        let warm = flow
            .run_warm_probed(&design, &seed, &mut |stage| {
                stages.push(format!("{stage:?}"));
                true
            })
            .unwrap();
        assert!(warm.is_legal(&design), "the fallback produced a legal placement");
        // the fallback actually engaged: the full flow's global stages ran
        // after the incremental legalization checkpoint
        assert!(
            stages.iter().any(|s| s.starts_with("HierarchyBuilt")),
            "expected the full-flow fallback to run, saw stages {stages:?}"
        );
        // and it matches the cold flow on the same design exactly
        assert_eq!(warm, flow.run(&design).unwrap(), "the fallback IS the cold flow");
    }

    #[test]
    fn warm_run_reports_only_tail_stages() {
        let design = soc_design();
        let flow = HidapFlow::new(HidapConfig::fast());
        let cold = flow.run(&design).unwrap();
        let mut stages: Vec<&'static str> = Vec::new();
        flow.run_warm_probed(&design, &cold, &mut |stage| {
            stages.push(match stage {
                FlowStage::LegalizationDone { .. } => "legalize",
                FlowStage::FlippingDone { .. } => "flipping",
                _ => "other",
            });
            true
        })
        .unwrap();
        assert_eq!(stages, ["legalize", "flipping"]);
        // cancellation still works on the warm path
        let err = flow.run_warm_probed(&design, &cold, &mut |_| false).unwrap_err();
        assert_eq!(err, HidapError::Cancelled);
    }

    #[test]
    fn probed_run_matches_plain_run() {
        let design = soc_design();
        let plain = HidapFlow::new(HidapConfig::fast()).run(&design).unwrap();
        let probed =
            HidapFlow::new(HidapConfig::fast()).run_probed(&design, &mut |_| true).unwrap();
        assert_eq!(plain, probed);
    }
}
