//! Target-area assignment (Sect. IV-C).
//!
//! Blocks in HCG (glue logic) are not floorplanned directly; their area is
//! folded into the target area `at` of the HCB blocks.  A multi-source BFS on
//! the netlist graph starts simultaneously from the cells of every block and
//! each glue cell is assigned to the block whose cells reach it first, so
//! glue logic ends up budgeted next to the logic it talks to.

use crate::block::{BlockId, BlockSet};
use crate::config::HidapConfig;
use crate::decluster::cell_to_block_map;
use graphs::bfs::multi_source_bfs;
use graphs::NetGraph;
use netlist::design::Design;

/// Assigns glue-logic area to blocks and fills in their target areas.
///
/// Every glue cell's area is added to the `at` of the nearest block (by hops
/// in the netlist graph, searched in both directions).  Glue cells that are
/// unreachable from any block are spread proportionally to block `am`.
/// Finally every block's target area is inflated by the configured
/// whitespace fraction, which mimics the density target a physical-design
/// flow would apply.
pub fn target_area_assignment(
    design: &Design,
    gnet: &NetGraph,
    blocks: &mut BlockSet,
    config: &HidapConfig,
) {
    if blocks.is_empty() {
        return;
    }
    let cell_block = cell_to_block_map(design, blocks);

    // Sources: every cell of every block, tagged with the block id.
    let mut sources: Vec<usize> = Vec::new();
    let mut source_block: Vec<BlockId> = Vec::new();
    for (id, block) in blocks.iter() {
        for &c in &block.cells {
            sources.push(gnet.cell_node(c));
            source_block.push(id);
        }
    }

    let result = multi_source_bfs(
        gnet.num_nodes(),
        &sources,
        |n| {
            // search the netlist as an undirected graph so glue on either side
            // of a block boundary is captured
            let mut adj = gnet.successors(n).to_vec();
            adj.extend_from_slice(gnet.predecessors(n));
            adj
        },
        |n| {
            // traverse through anything that is not part of another block
            match gnet.node(n) {
                graphs::NetGraphNode::Cell(c) => cell_block[c.0 as usize].is_none(),
                graphs::NetGraphNode::Port(_) => true,
            }
        },
    );

    let mut extra_area = vec![0_i128; blocks.len()];
    let mut unassigned_area: i128 = 0;
    for &glue in &blocks.glue_cells {
        let node = gnet.cell_node(glue);
        let area = design.cell(glue).area();
        if result.reached(node) && result.source[node] != usize::MAX {
            let block = source_block[result.source[node]];
            extra_area[block.0] += area;
        } else {
            unassigned_area += area;
        }
    }

    // Spread unreachable glue proportionally to block minimum area.
    let total_min: i128 = blocks.blocks.iter().map(|b| b.min_area).sum::<i128>().max(1);
    for (i, block) in blocks.blocks.iter_mut().enumerate() {
        let share = unassigned_area * block.min_area / total_min;
        let assigned = block.min_area + extra_area[i] + share;
        block.target_area = (assigned as f64 * (1.0 + config.whitespace_frac)) as i128;
        // target area can never be below the minimum area
        block.target_area = block.target_area.max(block.min_area);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decluster::hierarchical_declustering;
    use crate::shape_curves::ShapeCurveSet;
    use netlist::design::DesignBuilder;
    use netlist::hierarchy::HierarchyTree;

    /// Two macro blocks, with glue logic wired to block A only.
    fn design_with_glue() -> Design {
        let mut b = DesignBuilder::new("t");
        let ma = b.add_macro("u_a/ram", "RAM", 100, 100, "u_a");
        let _mb = b.add_macro("u_b/ram", "RAM", 100, 100, "u_b");
        // glue: 10 cells in a chain hanging off block A's macro
        let mut prev = ma;
        for i in 0..10 {
            let g = b.add_comb(format!("u_glue/g{i}"), "u_glue");
            let n = b.add_net(format!("n{i}"));
            b.connect_driver(n, prev);
            b.connect_sink(n, g);
            prev = g;
        }
        b.build()
    }

    fn run(design: &Design, whitespace: f64) -> BlockSet {
        let ht = HierarchyTree::from_design(design);
        let config = HidapConfig { whitespace_frac: whitespace, ..HidapConfig::fast() };
        let curves = ShapeCurveSet::generate(design, &ht, &config);
        let mut blocks = hierarchical_declustering(design, &ht, &curves, ht.root(), &config);
        let gnet = NetGraph::from_design(design);
        target_area_assignment(design, &gnet, &mut blocks, &config);
        blocks
    }

    #[test]
    fn glue_goes_to_connected_block() {
        let d = design_with_glue();
        let blocks = run(&d, 0.0);
        let a = blocks.blocks.iter().find(|b| b.name == "u_a").unwrap();
        let b_blk = blocks.blocks.iter().find(|b| b.name == "u_b").unwrap();
        // A gets its macro plus all 10 glue cells, B only its macro
        assert_eq!(a.target_area, 100 * 100 + 10);
        assert_eq!(b_blk.target_area, 100 * 100);
    }

    #[test]
    fn whitespace_inflates_targets() {
        let d = design_with_glue();
        let blocks = run(&d, 0.5);
        for b in &blocks.blocks {
            assert!(b.target_area >= (b.min_area as f64 * 1.4) as i128);
        }
    }

    #[test]
    fn unconnected_glue_is_spread_proportionally() {
        let mut b = DesignBuilder::new("t");
        b.add_macro("u_a/ram", "RAM", 100, 100, "u_a");
        b.add_macro("u_b/ram", "RAM", 300, 100, "u_b");
        for i in 0..8 {
            b.add_comb(format!("u_float/g{i}"), "u_float");
        }
        let d = b.build();
        let blocks = run(&d, 0.0);
        let total_target: i128 = blocks.total_target_area();
        // all area accounted for: macros + floating glue
        assert_eq!(total_target, 100 * 100 + 300 * 100 + 8);
        let a = blocks.blocks.iter().find(|b| b.name == "u_a").unwrap();
        let b_blk = blocks.blocks.iter().find(|b| b.name == "u_b").unwrap();
        assert!(b_blk.target_area - b_blk.min_area >= a.target_area - a.min_area);
    }

    #[test]
    fn targets_never_below_min_area() {
        let d = design_with_glue();
        let blocks = run(&d, 0.0);
        for b in &blocks.blocks {
            assert!(b.target_area >= b.min_area);
        }
    }

    #[test]
    fn empty_block_set_is_noop() {
        let mut b = DesignBuilder::new("t");
        b.add_comb("g", "");
        let d = b.build();
        let gnet = NetGraph::from_design(&d);
        let mut blocks = BlockSet::default();
        target_area_assignment(&d, &gnet, &mut blocks, &HidapConfig::fast());
        assert!(blocks.is_empty());
    }
}
