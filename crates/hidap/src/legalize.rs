//! Macro legalization: removes residual overlaps after recursive floorplanning.
//!
//! The top-down area-budgeting scheme intentionally allows layouts that
//! violate block areas (with a penalty), so the macro rectangles produced by
//! the recursion can overlap slightly or stick out of the die.  This pass
//! nudges macros to the nearest legal position, processing them from largest
//! to smallest so big memories keep their intended location.

use geometry::{Dbu, Point, Rect};
use netlist::dense::DenseMap;
use netlist::design::{CellId, Design};

/// A macro footprint before orientation selection: location plus whether the
/// footprint is rotated by 90° with respect to the library cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacroFootprint {
    /// Lower-left corner.
    pub location: Point,
    /// `true` when the footprint is rotated (width and height exchanged).
    pub rotated: bool,
}

impl MacroFootprint {
    /// The placed rectangle of a macro cell with this footprint.
    pub fn rect(&self, design: &Design, cell: CellId) -> Rect {
        let c = design.cell(cell);
        let (w, h) = if self.rotated { (c.height, c.width) } else { (c.width, c.height) };
        Rect::from_size(self.location.x, self.location.y, w, h)
    }
}

/// The dense per-cell store of decided macro footprints.
///
/// Backed by a [`DenseMap`] over all cell ids (macros that have not been
/// placed yet hold an empty slot), so footprint lookups in legalization and
/// flipping are flat array reads.  Iteration visits placed macros in cell-id
/// order, which keeps every consumer deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MacroFootprints {
    slots: DenseMap<CellId, Option<MacroFootprint>>,
    placed: usize,
}

impl MacroFootprints {
    /// An empty store sized for a design's cells.
    pub fn for_design(design: &Design) -> Self {
        Self { slots: DenseMap::with_len(design.num_cells()), placed: 0 }
    }

    /// Sets (or replaces) the footprint of a macro, growing the store as
    /// needed.
    pub fn insert(&mut self, cell: CellId, footprint: MacroFootprint) {
        if self.slots.get(cell).copied().flatten().is_none() {
            self.placed += 1;
        }
        self.slots.insert(cell, Some(footprint));
    }

    /// Sets the footprint of a macro only when it has none yet.
    pub fn insert_if_absent(&mut self, cell: CellId, footprint: MacroFootprint) {
        if !self.contains(cell) {
            self.insert(cell, footprint);
        }
    }

    /// The footprint of a macro, if decided.
    #[inline]
    pub fn get(&self, cell: CellId) -> Option<MacroFootprint> {
        self.slots.get(cell).copied().flatten()
    }

    /// Whether the macro has a footprint.
    pub fn contains(&self, cell: CellId) -> bool {
        self.get(cell).is_some()
    }

    /// Number of placed macros.
    pub fn len(&self) -> usize {
        self.placed
    }

    /// Whether no macro has a footprint yet.
    pub fn is_empty(&self) -> bool {
        self.placed == 0
    }

    /// Iterates over `(cell, footprint)` of placed macros in cell-id order.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, MacroFootprint)> + '_ {
        self.slots.iter().filter_map(|(c, fp)| fp.map(|fp| (c, fp)))
    }

    /// The placed macro cells in id order.
    pub fn cells(&self) -> Vec<CellId> {
        self.iter().map(|(c, _)| c).collect()
    }
}

impl FromIterator<(CellId, MacroFootprint)> for MacroFootprints {
    fn from_iter<I: IntoIterator<Item = (CellId, MacroFootprint)>>(iter: I) -> Self {
        let mut out = Self::default();
        for (cell, fp) in iter {
            out.insert(cell, fp);
        }
        out
    }
}

/// Legalizes a set of macro footprints in place: every macro ends up inside
/// the die and no two macros overlap (provided the die can physically hold
/// them; otherwise the worst offenders are left at their clamped position).
///
/// Returns the number of macros that had to be moved.
pub fn legalize_macros(design: &Design, die: Rect, footprints: &mut MacroFootprints) -> usize {
    // Process larger macros first so they keep their intended positions; ties
    // are broken by cell id so the result is deterministic.
    let mut order: Vec<CellId> = footprints.cells();
    order.sort_by_key(|&c| (std::cmp::Reverse(design.cell(c).area()), c));

    let mut placed = PlacedIndex::new(die, order.len());
    let mut moved = 0usize;
    let mut failed = false;
    for cell in order {
        let fp = footprints.get(cell).expect("footprint present");
        let desired = fp.rect(design, cell);
        let mut rotated = fp.rotated;
        let mut legal = find_legal_position(die, desired, &placed);
        if !is_legal(die, &legal, &placed) {
            // No room for this orientation: retry with the footprint rotated
            // by 90° before giving up (narrow dies often only fit the
            // rotated variant).
            let c = design.cell(cell);
            let (w, h) = if fp.rotated { (c.width, c.height) } else { (c.height, c.width) };
            let flipped = Rect::from_size(desired.llx, desired.lly, w, h);
            let alt = find_legal_position(die, flipped, &placed);
            if is_legal(die, &alt, &placed) {
                legal = alt;
                rotated = !fp.rotated;
            } else {
                failed = true;
            }
        }
        if legal.lower_left() != desired.lower_left() || rotated != fp.rotated {
            moved += 1;
        }
        placed.insert(legal);
        footprints.insert(cell, MacroFootprint { location: legal.lower_left(), rotated });
    }
    if failed {
        // The greedy pass could not resolve every overlap (very dense
        // designs). Fall back to a shelf packing that approximately preserves
        // the intended relative positions and is legal whenever the macros
        // physically fit the die.
        shelf_pack(design, die, footprints);
    }
    moved
}

/// Packs all macros into left-to-right shelves (rows) ordered by their
/// desired vertical position, approximately preserving the intended layout.
/// Footprints are normalized to landscape orientation so shelf heights stay
/// low, which maximizes the chance of a legal packing on dense dies.
fn shelf_pack(design: &Design, die: Rect, footprints: &mut MacroFootprints) {
    let mut order: Vec<CellId> = footprints.cells();
    // visit macros roughly bottom-to-top, left-to-right of their desired spot
    order.sort_by_key(|&c| {
        let fp = footprints.get(c).expect("footprint present");
        (fp.location.y, fp.location.x, c)
    });
    let mut cursor_x = die.llx;
    let mut cursor_y = die.lly;
    let mut shelf_height: Dbu = 0;
    for cell in order {
        let c = design.cell(cell);
        // Prefer landscape (the wider side along the shelf keeps shelves low),
        // but fall back to portrait when only the rotated footprint still fits
        // the remaining width of the current shelf.
        let landscape = (c.width.max(c.height), c.width.min(c.height), c.height > c.width);
        let portrait = (c.width.min(c.height), c.width.max(c.height), c.height <= c.width);
        let remaining = die.urx - cursor_x;
        let (w, h, rotated) = if landscape.0 <= remaining || cursor_x == die.llx {
            landscape
        } else if portrait.0 <= remaining {
            portrait
        } else {
            landscape
        };
        if cursor_x + w > die.urx && cursor_x > die.llx {
            // next shelf
            cursor_x = die.llx;
            cursor_y += shelf_height;
            shelf_height = 0;
        }
        let y = cursor_y.min((die.ury - h).max(die.lly));
        let x = cursor_x.min((die.urx - w).max(die.llx));
        footprints.insert(cell, MacroFootprint { location: Point::new(x, y), rotated });
        cursor_x = x + w;
        shelf_height = shelf_height.max(h);
    }
}

/// A uniform-grid spatial index over the already-placed rectangles, replacing
/// the linear `placed.iter().all(..)` scan that made each legality check
/// O(placed) — at thousands of macros the spiral search degenerated to
/// O(macros² × ring candidates).  Queries test only the rectangles bucketed
/// over the candidate's grid span; any rectangle that actually overlaps the
/// candidate shares at least one bucket with it, so the answer is identical
/// to the full scan.
struct PlacedIndex {
    die: Rect,
    grid: usize,
    inv_w: f64,
    inv_h: f64,
    buckets: Vec<Vec<u32>>,
    rects: Vec<Rect>,
}

impl PlacedIndex {
    fn new(die: Rect, expected: usize) -> Self {
        let grid = ((expected as f64).sqrt().ceil() as usize).clamp(1, 128);
        let inv_w = grid as f64 / die.width().max(1) as f64;
        let inv_h = grid as f64 / die.height().max(1) as f64;
        Self { die, grid, inv_w, inv_h, buckets: vec![Vec::new(); grid * grid], rects: Vec::new() }
    }

    fn bucket_span(&self, rect: &Rect) -> (usize, usize, usize, usize) {
        let clamp = |v: f64| (v.max(0.0) as usize).min(self.grid - 1);
        let bx0 = clamp((rect.llx - self.die.llx) as f64 * self.inv_w);
        let bx1 = clamp((rect.urx - self.die.llx) as f64 * self.inv_w);
        let by0 = clamp((rect.lly - self.die.lly) as f64 * self.inv_h);
        let by1 = clamp((rect.ury - self.die.lly) as f64 * self.inv_h);
        (bx0, bx1, by0, by1)
    }

    fn insert(&mut self, rect: Rect) {
        let index = self.rects.len() as u32;
        self.rects.push(rect);
        let (bx0, bx1, by0, by1) = self.bucket_span(&rect);
        for bx in bx0..=bx1 {
            for by in by0..=by1 {
                self.buckets[bx * self.grid + by].push(index);
            }
        }
    }

    fn overlaps_any(&self, rect: &Rect) -> bool {
        let (bx0, bx1, by0, by1) = self.bucket_span(rect);
        for bx in bx0..=bx1 {
            for by in by0..=by1 {
                for &i in &self.buckets[bx * self.grid + by] {
                    if self.rects[i as usize].overlaps(rect) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Finds the legal position closest to `desired` for a rectangle of the same
/// size, avoiding `placed` rectangles and staying inside `die`.  Falls back
/// to a row scan of the die and, as a last resort, to the clamped desired
/// position.
fn find_legal_position(die: Rect, desired: Rect, placed: &PlacedIndex) -> Rect {
    let w = desired.width();
    let h = desired.height();
    let clamp = |p: Point| -> Point {
        Point::new(
            p.x.clamp(die.llx, (die.urx - w).max(die.llx)),
            p.y.clamp(die.lly, (die.ury - h).max(die.lly)),
        )
    };
    let origin = clamp(desired.lower_left());
    let candidate = Rect::from_size(origin.x, origin.y, w, h);
    if is_legal(die, &candidate, placed) {
        return candidate;
    }

    // Spiral (ring) search around the clamped origin.
    let step: Dbu = ((w.min(h)) / 4).max((die.width().max(die.height())) / 256).max(1);
    for ring in 1..=256 {
        let r = ring as Dbu * step;
        let mut best: Option<(Dbu, Rect)> = None;
        let mut consider = |x: Dbu, y: Dbu| {
            let p = clamp(Point::new(x, y));
            let cand = Rect::from_size(p.x, p.y, w, h);
            if is_legal(die, &cand, placed) {
                let d = p.manhattan_distance(desired.lower_left());
                if best.as_ref().map(|(bd, _)| d < *bd).unwrap_or(true) {
                    best = Some((d, cand));
                }
            }
        };
        let (ox, oy) = (origin.x, origin.y);
        let mut t = -r;
        while t <= r {
            consider(ox + t, oy - r);
            consider(ox + t, oy + r);
            consider(ox - r, oy + t);
            consider(ox + r, oy + t);
            t += step;
        }
        if let Some((_, rect)) = best {
            return rect;
        }
    }

    // Row scan fallback: first legal position scanning bottom-left to top-right.
    let scan_step = (w.min(h) / 2).max(1);
    let mut y = die.lly;
    while y + h <= die.ury {
        let mut x = die.llx;
        while x + w <= die.urx {
            let cand = Rect::from_size(x, y, w, h);
            if is_legal(die, &cand, placed) {
                return cand;
            }
            x += scan_step;
        }
        y += scan_step;
    }
    candidate
}

fn is_legal(die: Rect, rect: &Rect, placed: &PlacedIndex) -> bool {
    die.contains_rect(rect) && !placed.overlaps_any(rect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::DesignBuilder;

    fn design_with_macros(sizes: &[(i64, i64)]) -> (Design, Vec<CellId>) {
        let mut b = DesignBuilder::new("t");
        let ids: Vec<CellId> = sizes
            .iter()
            .enumerate()
            .map(|(i, &(w, h))| b.add_macro(format!("m{i}"), "RAM", w, h, ""))
            .collect();
        b.set_die(Rect::new(0, 0, 1000, 1000));
        (b.build(), ids)
    }

    fn all_legal(design: &Design, die: Rect, fps: &MacroFootprints) -> bool {
        let rects: Vec<Rect> = fps.iter().map(|(c, fp)| fp.rect(design, c)).collect();
        for (i, r) in rects.iter().enumerate() {
            if !die.contains_rect(r) {
                return false;
            }
            for other in rects.iter().skip(i + 1) {
                if r.overlaps(other) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn already_legal_placement_untouched() {
        let (d, ids) = design_with_macros(&[(100, 100), (100, 100)]);
        let mut fps = MacroFootprints::for_design(&d);
        fps.insert(ids[0], MacroFootprint { location: Point::new(0, 0), rotated: false });
        fps.insert(ids[1], MacroFootprint { location: Point::new(500, 500), rotated: false });
        let moved = legalize_macros(&d, d.die(), &mut fps);
        assert_eq!(moved, 0);
        assert_eq!(fps.get(ids[0]).unwrap().location, Point::new(0, 0));
    }

    #[test]
    fn overlapping_macros_are_separated() {
        let (d, ids) = design_with_macros(&[(200, 200), (200, 200), (200, 200)]);
        let mut fps = MacroFootprints::for_design(&d);
        for &id in &ids {
            fps.insert(id, MacroFootprint { location: Point::new(100, 100), rotated: false });
        }
        let moved = legalize_macros(&d, d.die(), &mut fps);
        assert!(moved >= 2);
        assert!(all_legal(&d, d.die(), &fps));
    }

    #[test]
    fn out_of_die_macro_is_pulled_inside() {
        let (d, ids) = design_with_macros(&[(300, 300)]);
        let mut fps = MacroFootprints::for_design(&d);
        fps.insert(ids[0], MacroFootprint { location: Point::new(900, 900), rotated: false });
        legalize_macros(&d, d.die(), &mut fps);
        assert!(all_legal(&d, d.die(), &fps));
    }

    #[test]
    fn rotated_footprint_uses_swapped_dimensions() {
        let (d, ids) = design_with_macros(&[(400, 100)]);
        let fp = MacroFootprint { location: Point::new(0, 0), rotated: true };
        let r = fp.rect(&d, ids[0]);
        assert_eq!((r.width(), r.height()), (100, 400));
    }

    #[test]
    fn clustered_drop_is_legalizable() {
        // 12 macros of 200x200 in a 1000x1000 die (48% utilization), all
        // dropped on the same spot: legalization must spread them out.
        let sizes: Vec<(i64, i64)> = (0..12).map(|_| (200, 200)).collect();
        let (d, ids) = design_with_macros(&sizes);
        let mut fps = MacroFootprints::for_design(&d);
        for &id in &ids {
            fps.insert(id, MacroFootprint { location: Point::new(400, 400), rotated: false });
        }
        legalize_macros(&d, d.die(), &mut fps);
        assert!(all_legal(&d, d.die(), &fps));
    }
}
