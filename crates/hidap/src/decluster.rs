//! Hierarchical declustering (Sect. IV-B, Algorithm 3).
//!
//! Given the hierarchy node being floorplanned, declustering explores its
//! subtree and partitions the explored hierarchy cut into:
//!
//! * **HCB** — nodes with macros or with a large area, each becoming a block,
//! * **HCG** — small cell-only nodes, the glue logic whose area is later
//!   folded into the blocks by target-area assignment.
//!
//! One practical extension over the paper's pseudo-code keeps the recursion
//! well-founded on real hierarchies: the exploration queue starts at the
//! *children* of the floorplanned node (the node itself would trivially be
//! its own block), and macro cells that live directly at an explored level
//! become single-macro blocks.

use crate::block::{Block, BlockId, BlockKind, BlockSet};
use crate::config::HidapConfig;
use crate::shape_curves::ShapeCurveSet;
use geometry::ShapeCurve;
use netlist::design::{CellKind, Design};
use netlist::hierarchy::{HierarchyNodeId, HierarchyTree};
use std::collections::VecDeque;

/// Runs hierarchical declustering below `node` and produces the partially
/// characterized block set (Γ and `am`; `at` is filled later by
/// target-area assignment).
pub fn hierarchical_declustering(
    design: &Design,
    ht: &HierarchyTree,
    shape_curves: &ShapeCurveSet,
    node: HierarchyNodeId,
    config: &HidapConfig,
) -> BlockSet {
    let total_area = ht.node(node).subtree_area.max(1);
    let open_area = (total_area as f64 * config.open_area_frac) as i128;
    let min_area = (total_area as f64 * config.min_area_frac) as i128;

    let mut hcb: Vec<HierarchyNodeId> = Vec::new();
    let mut hcg: Vec<HierarchyNodeId> = Vec::new();
    let mut direct_macro_blocks: Vec<netlist::design::CellId> = Vec::new();
    let mut glue_cells: Vec<netlist::design::CellId> = Vec::new();

    // Direct cells of the floorplanned node itself: macros become singleton
    // blocks, standard cells are glue.
    collect_direct_cells(design, ht, node, &mut direct_macro_blocks, &mut glue_cells);

    let mut queue: VecDeque<HierarchyNodeId> = ht.node(node).children.iter().copied().collect();
    while let Some(m) = queue.pop_front() {
        let n = ht.node(m);
        if n.subtree_area > open_area && n.subtree_macros == 0 {
            // Large cell-only node: keep exploring to expose structure.
            for &c in &n.children {
                queue.push_back(c);
            }
            collect_direct_cells(design, ht, m, &mut direct_macro_blocks, &mut glue_cells);
        } else if n.subtree_area > min_area || n.subtree_macros > 0 {
            hcb.push(m);
        } else {
            hcg.push(m);
        }
    }

    // Build blocks from the HCB hierarchy nodes.
    let mut blocks: Vec<Block> = Vec::new();
    for &h in &hcb {
        let cells = ht.subtree_cells(h);
        let macros: Vec<_> =
            cells.iter().copied().filter(|&c| design.cell(c).kind == CellKind::Macro).collect();
        let min_area: i128 = cells.iter().map(|&c| design.cell(c).area()).sum();
        blocks.push(Block {
            kind: BlockKind::Hierarchy(h),
            name: display_name(ht, h),
            shape: shape_curves.curve(h),
            min_area,
            target_area: min_area,
            macros,
            cells,
        });
    }
    // Singleton blocks for macros that live directly at explored levels.
    for c in direct_macro_blocks {
        let cell = design.cell(c);
        blocks.push(Block {
            kind: BlockKind::SingleMacro(c),
            name: cell.name.clone(),
            shape: ShapeCurve::from_macro(cell.width, cell.height, true),
            min_area: cell.area(),
            target_area: cell.area(),
            macros: vec![c],
            cells: vec![c],
        });
    }
    // Glue cells from HCG nodes.
    for &h in &hcg {
        glue_cells.extend(ht.subtree_cells(h));
    }

    BlockSet { blocks, glue_cells }
}

fn collect_direct_cells(
    design: &Design,
    ht: &HierarchyTree,
    node: HierarchyNodeId,
    macro_out: &mut Vec<netlist::design::CellId>,
    glue_out: &mut Vec<netlist::design::CellId>,
) {
    for &c in &ht.node(node).direct_cells {
        if design.cell(c).kind == CellKind::Macro {
            macro_out.push(c);
        } else {
            glue_out.push(c);
        }
    }
}

fn display_name(ht: &HierarchyTree, node: HierarchyNodeId) -> String {
    let path = &ht.node(node).path;
    if path.is_empty() {
        "<top>".to_string()
    } else {
        path.clone()
    }
}

/// Returns, for every block of the set, the id of the block a cell belongs
/// to (used by target-area assignment and dataflow inference).
pub fn cell_to_block_map(design: &Design, blocks: &BlockSet) -> Vec<Option<BlockId>> {
    let mut map = vec![None; design.num_cells()];
    for (id, block) in blocks.iter() {
        for &c in &block.cells {
            map[c.0 as usize] = Some(id);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::DesignBuilder;

    /// Hierarchy mirroring Fig. 1: two macro clusters and a glue cluster.
    fn fig1_like_design() -> Design {
        let mut b = DesignBuilder::new("fig1");
        for i in 0..8 {
            b.add_macro(format!("u_left/mem{i}"), "RAM", 100, 100, "u_left");
            b.add_macro(format!("u_right/mem{i}"), "RAM", 100, 100, "u_right");
        }
        for i in 0..50 {
            b.add_comb(format!("u_glue/g{i}"), "u_glue");
        }
        for i in 0..10 {
            b.add_comb(format!("top_glue{i}"), "");
        }
        b.build()
    }

    fn run(design: &Design) -> (HierarchyTree, BlockSet) {
        let ht = HierarchyTree::from_design(design);
        let curves = ShapeCurveSet::generate(design, &ht, &HidapConfig::fast());
        let blocks =
            hierarchical_declustering(design, &ht, &curves, ht.root(), &HidapConfig::fast());
        (ht, blocks)
    }

    #[test]
    fn macro_clusters_become_blocks() {
        let d = fig1_like_design();
        let (_, set) = run(&d);
        // u_left and u_right are blocks; u_glue (small, no macros) is glue.
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_macros(), 16);
        let names: Vec<&str> = set.blocks.iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"u_left"));
        assert!(names.contains(&"u_right"));
        // glue contains u_glue cells plus the top-level strays
        assert_eq!(set.glue_cells.len(), 60);
    }

    #[test]
    fn block_min_area_sums_subtree() {
        let d = fig1_like_design();
        let (_, set) = run(&d);
        let left = set.blocks.iter().find(|b| b.name == "u_left").unwrap();
        assert_eq!(left.min_area, 8 * 100 * 100);
        assert!(!left.shape.is_unconstrained());
        // the packing curve cannot beat the total macro area and should find
        // an arrangement within 50% of it
        assert!(left.shape.min_area() >= 8 * 100 * 100);
        assert!(
            left.shape.min_area() <= 12 * 100 * 100,
            "min packing area {}",
            left.shape.min_area()
        );
        assert!(left.shape.fits(1000, 1000));
    }

    #[test]
    fn direct_macros_become_singleton_blocks() {
        let mut b = DesignBuilder::new("t");
        b.add_macro("ram_top", "RAM", 50, 50, "");
        b.add_macro("u_sub/ram0", "RAM", 50, 50, "u_sub");
        b.add_macro("u_sub/ram1", "RAM", 50, 50, "u_sub");
        let d = b.build();
        let (_, set) = run(&d);
        assert_eq!(set.len(), 2);
        assert!(set.blocks.iter().any(|b| matches!(b.kind, BlockKind::SingleMacro(_))));
        assert!(set.blocks.iter().any(|b| b.name == "u_sub" && b.macro_count() == 2));
    }

    #[test]
    fn flat_macro_level_falls_back_to_one_block_per_macro() {
        // all macros under a single child node with no further hierarchy
        let mut b = DesignBuilder::new("t");
        for i in 0..4 {
            b.add_macro(format!("u_mem/ram{i}"), "RAM", 50, 50, "u_mem");
        }
        let d = b.build();
        let ht = HierarchyTree::from_design(&d);
        let curves = ShapeCurveSet::generate(&d, &ht, &HidapConfig::fast());
        let u_mem = ht.find("u_mem").unwrap();
        // recursing INTO u_mem: no children, so the fallback produces 4 blocks
        let set = hierarchical_declustering(&d, &ht, &curves, u_mem, &HidapConfig::fast());
        assert_eq!(set.len(), 4);
        assert!(set.blocks.iter().all(|b| b.macro_count() == 1));
    }

    #[test]
    fn cell_to_block_map_covers_block_cells() {
        let d = fig1_like_design();
        let (_, set) = run(&d);
        let map = cell_to_block_map(&d, &set);
        let assigned = map.iter().filter(|m| m.is_some()).count();
        assert_eq!(assigned, 16); // only the macro-cluster cells
    }

    #[test]
    fn pure_glue_design_has_no_blocks() {
        let mut b = DesignBuilder::new("t");
        for i in 0..5 {
            b.add_comb(format!("g{i}"), "");
        }
        let d = b.build();
        let (_, set) = run(&d);
        assert!(set.is_empty());
        assert_eq!(set.glue_cells.len(), 5);
    }
}
