//! Layout generation (Sect. IV-E): slicing-tree simulated annealing with
//! top-down area budgeting.
//!
//! The layout of one floorplanning level is represented by a normalized
//! Polish expression over the level's blocks.  Because block shapes are not
//! fixed a priori, the assigned region is treated as a *budget*: every cut
//! splits its rectangle proportionally to the target areas of the two
//! subtrees, so the layout always uses exactly the area it was given.  When a
//! subtree's macros do not fit in their allotted rectangle, area is moved
//! from the sibling and a penalty is charged depending on the severity of the
//! violation (target area < minimum area < macro area).
//!
//! The annealer minimizes `penalty · Σ affinity(i,j) · distance(i,j)` where
//! distance is measured between block centers (and to the fixed positions of
//! ports and already-placed context blocks).

use crate::config::HidapConfig;
use geometry::{CutDirection, Point, PolishExpression, Rect, ShapeCurve, SlicingNode, SlicingTree};
use graphs::AffinityMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A block as seen by layout generation: the ⟨Γ, am, at⟩ triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutBlock {
    /// Shape curve of the block's macros.
    pub shape: ShapeCurve,
    /// Minimum area `am` in DBU².
    pub min_area: i128,
    /// Target area `at` in DBU².
    pub target_area: i128,
}

/// The input of layout generation for one level.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutProblem {
    /// The rectangle the blocks must fill.
    pub region: Rect,
    /// The movable blocks. Their indices are dataflow nodes `0..blocks.len()`.
    pub blocks: Vec<LayoutBlock>,
    /// Symmetric affinity matrix over movable blocks followed by fixed nodes
    /// (flat row-major storage).
    pub affinity: AffinityMatrix,
    /// Position of each fixed node (entries `blocks.len()..affinity.len()`);
    /// entries for movable blocks are ignored.
    pub fixed_positions: Vec<Option<Point>>,
}

/// The result of layout generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutResult {
    /// One rectangle per movable block, filling the region exactly.
    pub rects: Vec<Rect>,
    /// Final value of the (penalized) cost function.
    pub cost: f64,
    /// Final penalty multiplier (1.0 for a fully legal layout).
    pub penalty: f64,
    /// The wirelength proxy Σ affinity · distance without the penalty.
    pub wirelength: f64,
}

/// Violation totals collected while budgeting areas top-down.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct Violations {
    /// Area by which blocks fell short of their target area.
    target_area: f64,
    /// Area by which blocks fell short of their minimum area.
    min_area: f64,
    /// Area by which macro shape curves do not fit their rectangles.
    macro_area: f64,
}

/// Generates the layout of a set of blocks by simulated annealing.
///
/// For zero blocks the result is empty; for a single block the region is
/// assigned to it directly.
pub fn generate_layout<R: Rng + ?Sized>(
    problem: &LayoutProblem,
    config: &HidapConfig,
    rng: &mut R,
) -> LayoutResult {
    let n = problem.blocks.len();
    if n == 0 {
        return LayoutResult { rects: Vec::new(), cost: 0.0, penalty: 1.0, wirelength: 0.0 };
    }
    if n == 1 {
        let rects = vec![problem.region];
        let (cost, penalty, wl) = evaluate_rects(problem, &rects, config);
        return LayoutResult { rects, cost, penalty, wirelength: wl };
    }

    let mut expr = PolishExpression::chain(n, CutDirection::Vertical);
    let (mut current_cost, mut current_rects) = evaluate_expression(problem, &expr, config);
    let mut best_cost = current_cost;
    let mut best_rects = current_rects.clone();
    let mut best_expr = expr.clone();

    // Calibrate the initial temperature from the magnitude of random move deltas.
    let mut deltas = Vec::new();
    let mut probe = expr.clone();
    for _ in 0..(4 * n).max(16) {
        probe.random_move(rng);
        let (c, _) = evaluate_expression(problem, &probe, config);
        deltas.push((c - current_cost).abs());
    }
    let avg_delta = deltas.iter().sum::<f64>() / deltas.len() as f64;
    let mut temperature =
        if avg_delta > 0.0 { -avg_delta / config.sa_initial_acceptance.ln() } else { 1.0 };

    let moves_per_step = config.sa_moves_per_block * n;
    for _ in 0..config.sa_temperature_steps {
        for _ in 0..moves_per_step {
            let mut candidate = expr.clone();
            candidate.random_move(rng);
            let (cost, rects) = evaluate_expression(problem, &candidate, config);
            let delta = cost - current_cost;
            if delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature.max(1e-9)).exp() {
                expr = candidate;
                current_cost = cost;
                current_rects = rects;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best_rects = current_rects.clone();
                    best_expr = expr.clone();
                }
            }
        }
        temperature *= config.sa_cooling;
    }

    let _ = best_expr;
    let (cost, penalty, wl) = evaluate_rects(problem, &best_rects, config);
    debug_assert!((cost - best_cost).abs() < 1e-6 || best_cost <= cost);
    LayoutResult { rects: best_rects, cost, penalty, wirelength: wl }
}

/// Evaluates a Polish expression: budgets areas top-down and computes the
/// penalized cost. Returns the cost and the block rectangles.
pub fn evaluate_expression(
    problem: &LayoutProblem,
    expr: &PolishExpression,
    config: &HidapConfig,
) -> (f64, Vec<Rect>) {
    let rects = budget_areas(problem, expr, config);
    let (cost, _, _) = evaluate_rects(problem, &rects, config);
    (cost, rects)
}

/// Computes the block rectangles implied by a Polish expression via top-down
/// area budgeting.
pub fn budget_areas(
    problem: &LayoutProblem,
    expr: &PolishExpression,
    config: &HidapConfig,
) -> Vec<Rect> {
    let tree = expr.to_tree();
    let n_nodes = tree.nodes().len();

    // Bottom-up characterization of every subtree: target area, min area, shape curve.
    let mut target = vec![0f64; n_nodes];
    let mut shapes: Vec<ShapeCurve> = vec![ShapeCurve::unconstrained(); n_nodes];
    characterize(&tree, tree.root(), problem, config, &mut target, &mut shapes);

    // The region is a budget: scale target areas so they fill it exactly.
    let region_area = problem.region.area() as f64;
    let total_target: f64 = target[tree.root()].max(1.0);
    let scale = region_area / total_target;

    let mut rects = vec![problem.region; problem.blocks.len()];
    assign(&tree, tree.root(), problem.region, &target, &shapes, scale, &mut rects);
    rects
}

fn characterize(
    tree: &SlicingTree,
    idx: usize,
    problem: &LayoutProblem,
    config: &HidapConfig,
    target: &mut [f64],
    shapes: &mut [ShapeCurve],
) {
    match tree.node(idx) {
        SlicingNode::Leaf { block } => {
            target[idx] = problem.blocks[*block].target_area.max(1) as f64;
            shapes[idx] = problem.blocks[*block].shape.clone();
        }
        SlicingNode::Internal { cut, left, right } => {
            characterize(tree, *left, problem, config, target, shapes);
            characterize(tree, *right, problem, config, target, shapes);
            target[idx] = target[*left] + target[*right];
            let combined = match cut {
                CutDirection::Vertical => shapes[*left].compose_horizontal(&shapes[*right]),
                CutDirection::Horizontal => shapes[*left].compose_vertical(&shapes[*right]),
            };
            shapes[idx] = combined.pruned(config.shape_curve_limit);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn assign(
    tree: &SlicingTree,
    idx: usize,
    rect: Rect,
    target: &[f64],
    shapes: &[ShapeCurve],
    scale: f64,
    rects: &mut [Rect],
) {
    match tree.node(idx) {
        SlicingNode::Leaf { block } => {
            rects[*block] = rect;
        }
        SlicingNode::Internal { cut, left, right } => {
            let t_left = target[*left] * scale;
            let t_right = target[*right] * scale;
            let total = (t_left + t_right).max(1.0);
            match cut {
                CutDirection::Vertical => {
                    let width = rect.width();
                    let mut w_left = ((width as f64) * t_left / total).round() as i64;
                    // Shape-curve driven adjustment: move area between the two
                    // children if a child's macros cannot fit in its share.
                    let h = rect.height();
                    let need_left = shapes[*left].min_width_for_height(h).unwrap_or(width);
                    let need_right = shapes[*right].min_width_for_height(h).unwrap_or(width);
                    if w_left < need_left {
                        w_left = need_left.min(width - need_right).max(w_left);
                    }
                    if width - w_left < need_right {
                        let w_right = need_right.min(width - need_left).max(width - w_left);
                        w_left = width - w_right;
                    }
                    let w_left = w_left.clamp(0, width);
                    let x = rect.llx + w_left;
                    let (l, r) = rect.split_vertical(x);
                    assign(tree, *left, l, target, shapes, scale, rects);
                    assign(tree, *right, r, target, shapes, scale, rects);
                }
                CutDirection::Horizontal => {
                    let height = rect.height();
                    let mut h_bottom = ((height as f64) * t_left / total).round() as i64;
                    let w = rect.width();
                    let need_bottom = shapes[*left].min_height_for_width(w).unwrap_or(height);
                    let need_top = shapes[*right].min_height_for_width(w).unwrap_or(height);
                    if h_bottom < need_bottom {
                        h_bottom = need_bottom.min(height - need_top).max(h_bottom);
                    }
                    if height - h_bottom < need_top {
                        let h_top = need_top.min(height - need_bottom).max(height - h_bottom);
                        h_bottom = height - h_top;
                    }
                    let h_bottom = h_bottom.clamp(0, height);
                    let y = rect.lly + h_bottom;
                    let (b, t) = rect.split_horizontal(y);
                    assign(tree, *left, b, target, shapes, scale, rects);
                    assign(tree, *right, t, target, shapes, scale, rects);
                }
            }
        }
    }
}

/// Evaluates a set of block rectangles: returns `(cost, penalty, wirelength)`.
pub fn evaluate_rects(
    problem: &LayoutProblem,
    rects: &[Rect],
    config: &HidapConfig,
) -> (f64, f64, f64) {
    let violations = collect_violations(problem, rects);
    let region_area = (problem.region.area() as f64).max(1.0);
    let penalty = 1.0
        + config.penalty_target_area * violations.target_area / region_area
        + config.penalty_min_area * violations.min_area / region_area
        + config.penalty_macro * violations.macro_area / region_area;
    let wirelength = wirelength_proxy(problem, rects);
    (wirelength * penalty, penalty, wirelength)
}

fn collect_violations(problem: &LayoutProblem, rects: &[Rect]) -> Violations {
    let mut v = Violations::default();
    for (block, rect) in problem.blocks.iter().zip(rects) {
        let area = rect.area() as f64;
        let target = block.target_area as f64;
        let min = block.min_area as f64;
        if area < target {
            v.target_area += target - area;
        }
        if area < min {
            v.min_area += min - area;
        }
        if !block.shape.fits(rect.width(), rect.height()) {
            // severity: how much macro area does not fit
            let macro_area = block.shape.min_area() as f64;
            let deficit = (macro_area - area).max(macro_area * 0.25);
            v.macro_area += deficit;
        }
    }
    v
}

/// The Σ affinity · distance objective over block centers and fixed nodes.
pub fn wirelength_proxy(problem: &LayoutProblem, rects: &[Rect]) -> f64 {
    let n = problem.blocks.len();
    let total_nodes = problem.affinity.len();
    let mut centers: Vec<Point> = rects.iter().map(Rect::center).collect();
    for idx in n..total_nodes {
        centers.push(
            problem
                .fixed_positions
                .get(idx)
                .copied()
                .flatten()
                .unwrap_or_else(|| problem.region.center()),
        );
    }
    let mut wl = 0.0;
    for i in 0..n {
        let row = problem.affinity.row(i);
        for j in (i + 1)..total_nodes {
            let a = row[j];
            if a > 0.0 {
                wl += a * centers[i].manhattan_distance(centers[j]) as f64;
            }
        }
    }
    wl
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn soft_block(target: i128) -> LayoutBlock {
        LayoutBlock { shape: ShapeCurve::unconstrained(), min_area: target, target_area: target }
    }

    fn hard_block(w: i64, h: i64) -> LayoutBlock {
        LayoutBlock {
            shape: ShapeCurve::from_macro(w, h, true),
            min_area: (w * h) as i128,
            target_area: (w * h) as i128,
        }
    }

    fn no_affinity(n: usize) -> (AffinityMatrix, Vec<Option<Point>>) {
        (AffinityMatrix::zeros(n), vec![None; n])
    }

    #[test]
    fn empty_and_single_block() {
        let (aff, fixed) = no_affinity(0);
        let p = LayoutProblem {
            region: Rect::new(0, 0, 100, 100),
            blocks: vec![],
            affinity: aff,
            fixed_positions: fixed,
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(generate_layout(&p, &HidapConfig::fast(), &mut rng).rects.is_empty());

        let (aff, fixed) = no_affinity(1);
        let p = LayoutProblem {
            region: Rect::new(0, 0, 100, 100),
            blocks: vec![soft_block(5000)],
            affinity: aff,
            fixed_positions: fixed,
        };
        let r = generate_layout(&p, &HidapConfig::fast(), &mut rng);
        assert_eq!(r.rects, vec![Rect::new(0, 0, 100, 100)]);
    }

    #[test]
    fn rects_partition_the_region() {
        let (aff, fixed) = no_affinity(4);
        let p = LayoutProblem {
            region: Rect::new(0, 0, 120, 90),
            blocks: vec![soft_block(2700), soft_block(2700), soft_block(2700), soft_block(2700)],
            affinity: aff,
            fixed_positions: fixed,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let r = generate_layout(&p, &HidapConfig::fast(), &mut rng);
        let total: i128 = r.rects.iter().map(Rect::area).sum();
        assert_eq!(total, 120 * 90, "area budget fully used");
        // no two rects overlap
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(!r.rects[i].overlaps(&r.rects[j]));
            }
        }
        // rects stay inside the region
        for rect in &r.rects {
            assert!(p.region.contains_rect(rect));
        }
    }

    #[test]
    fn proportional_budgeting_without_macros() {
        let (aff, fixed) = no_affinity(2);
        let p = LayoutProblem {
            region: Rect::new(0, 0, 100, 100),
            blocks: vec![soft_block(7500), soft_block(2500)],
            affinity: aff,
            fixed_positions: fixed,
        };
        let expr = PolishExpression::chain(2, CutDirection::Vertical);
        let rects = budget_areas(&p, &expr, &HidapConfig::fast());
        assert_eq!(rects[0].area(), 7500);
        assert_eq!(rects[1].area(), 2500);
    }

    #[test]
    fn macro_block_gets_enough_space() {
        // one block holds an 80x30 macro, the other is soft; naive
        // proportional split of a 100x50 region would give the macro block
        // only half the width, the shape-curve adjustment must widen it.
        let (aff, fixed) = no_affinity(2);
        let p = LayoutProblem {
            region: Rect::new(0, 0, 100, 50),
            blocks: vec![hard_block(80, 30), soft_block(2400)],
            affinity: aff,
            fixed_positions: fixed,
        };
        let expr = PolishExpression::chain(2, CutDirection::Vertical);
        let rects = budget_areas(&p, &expr, &HidapConfig::fast());
        assert!(
            p.blocks[0].shape.fits(rects[0].width(), rects[0].height()),
            "macro must fit its rect {:?}",
            rects[0]
        );
    }

    #[test]
    fn affinity_pulls_connected_blocks_together() {
        // 4 equal blocks; blocks 0 and 3 are strongly connected, the rest not.
        let n = 4;
        let mut aff = AffinityMatrix::zeros(n);
        aff.set(0, 3, 100.0);
        aff.set(3, 0, 100.0);
        let p = LayoutProblem {
            region: Rect::new(0, 0, 200, 200),
            blocks: (0..n).map(|_| soft_block(10_000)).collect(),
            affinity: aff,
            fixed_positions: vec![None; n],
        };
        let mut rng = StdRng::seed_from_u64(3);
        let r = generate_layout(&p, &HidapConfig::fast(), &mut rng);
        let d03 = r.rects[0].center_distance(&r.rects[3]);
        let d01 = r.rects[0].center_distance(&r.rects[1]);
        let d02 = r.rects[0].center_distance(&r.rects[2]);
        assert!(
            d03 <= d01.max(d02),
            "connected blocks should end up adjacent: d03={d03} d01={d01} d02={d02}"
        );
    }

    #[test]
    fn fixed_node_attracts_block() {
        // two blocks, block 0 strongly tied to a fixed node at the left edge
        let total = 3;
        let mut aff = AffinityMatrix::zeros(total);
        aff.set(0, 2, 50.0);
        aff.set(2, 0, 50.0);
        let p = LayoutProblem {
            region: Rect::new(0, 0, 300, 100),
            blocks: vec![soft_block(15_000), soft_block(15_000)],
            affinity: aff,
            fixed_positions: vec![None, None, Some(Point::new(0, 50))],
        };
        let mut rng = StdRng::seed_from_u64(4);
        let r = generate_layout(&p, &HidapConfig::fast(), &mut rng);
        assert!(
            r.rects[0].center().x <= r.rects[1].center().x,
            "block 0 should sit on the side of its fixed attractor"
        );
    }

    #[test]
    fn penalty_reported_for_infeasible_macros() {
        // a macro that simply cannot fit the region at all
        let (aff, fixed) = no_affinity(2);
        let p = LayoutProblem {
            region: Rect::new(0, 0, 100, 40),
            blocks: vec![hard_block(90, 39), hard_block(90, 39)],
            affinity: aff,
            fixed_positions: fixed,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let r = generate_layout(&p, &HidapConfig::fast(), &mut rng);
        assert!(r.penalty > 1.0, "impossible layouts must carry a penalty");
    }

    #[test]
    fn wirelength_zero_without_affinity() {
        let (aff, fixed) = no_affinity(3);
        let p = LayoutProblem {
            region: Rect::new(0, 0, 100, 100),
            blocks: vec![soft_block(3000); 3],
            affinity: aff,
            fixed_positions: fixed,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let r = generate_layout(&p, &HidapConfig::fast(), &mut rng);
        assert_eq!(r.wirelength, 0.0);
        assert_eq!(r.cost, 0.0);
    }
}
