//! Recursive block floorplanning (Algorithm 2).
//!
//! Each call floorplans the subtree of one hierarchy node inside a given
//! rectangle: declustering produces the level's blocks, target-area
//! assignment completes their ⟨Γ, am, at⟩ characterization, dataflow
//! inference derives the affinity matrix, and layout generation assigns each
//! block a rectangle.  Blocks with more than one macro recurse into their
//! rectangle; blocks with exactly one macro pin it to the corner of their
//! rectangle that minimizes the distance to the logic they talk to.

use crate::block::{Block, BlockKind, BlockSet};
use crate::config::HidapConfig;
use crate::dataflow::{dataflow_inference, FixedGroup, LevelDataflow};
use crate::decluster::hierarchical_declustering;
use crate::flow::FlowStage;
use crate::layout::{generate_layout, LayoutBlock, LayoutProblem};
use crate::legalize::{MacroFootprint, MacroFootprints};
use crate::shape_curves::ShapeCurveSet;
use crate::target_area::target_area_assignment;
use geometry::{Point, Rect};
use graphs::{NetGraph, SeqGraph};
use netlist::design::Design;
use netlist::hierarchy::{HierarchyNodeId, HierarchyTree};
use rand::Rng;

/// State shared across all levels of the recursion.
pub struct RecursiveFloorplanner<'a> {
    design: &'a Design,
    ht: &'a HierarchyTree,
    gnet: &'a NetGraph,
    gseq: &'a SeqGraph,
    shape_curves: &'a ShapeCurveSet,
    config: &'a HidapConfig,
    /// Macro footprints decided so far (dense per-cell store).
    pub footprints: MacroFootprints,
    /// Block rectangles of the topmost level (for Fig. 1a / Fig. 9d style output).
    pub top_blocks: Vec<(String, Rect)>,
}

impl<'a> RecursiveFloorplanner<'a> {
    /// Creates a floorplanner over pre-built circuit abstractions.
    pub fn new(
        design: &'a Design,
        ht: &'a HierarchyTree,
        gnet: &'a NetGraph,
        gseq: &'a SeqGraph,
        shape_curves: &'a ShapeCurveSet,
        config: &'a HidapConfig,
    ) -> Self {
        Self {
            design,
            ht,
            gnet,
            gseq,
            shape_curves,
            config,
            footprints: MacroFootprints::for_design(design),
            top_blocks: Vec::new(),
        }
    }

    /// Floorplans the subtree of `node` inside `region` (Algorithm 2).
    ///
    /// `fixed` is the already-placed context: blocks of enclosing levels and
    /// their positions. `depth` is 0 at the top call.
    pub fn floorplan<R: Rng + ?Sized>(
        &mut self,
        node: HierarchyNodeId,
        region: Rect,
        fixed: &[FixedGroup],
        depth: usize,
        rng: &mut R,
    ) {
        self.floorplan_probed(node, region, fixed, depth, rng, &mut |_| true);
    }

    /// Like [`RecursiveFloorplanner::floorplan`], but reports every accepted
    /// level floorplan to `probe` and stops early (returning `false`) when
    /// the probe asks for cancellation.
    pub fn floorplan_probed<R: Rng + ?Sized>(
        &mut self,
        node: HierarchyNodeId,
        region: Rect,
        fixed: &[FixedGroup],
        depth: usize,
        rng: &mut R,
        probe: &mut (dyn FnMut(&FlowStage<'_>) -> bool + '_),
    ) -> bool {
        // Step 1: hierarchical declustering (Sect. IV-B).
        let mut blocks =
            hierarchical_declustering(self.design, self.ht, self.shape_curves, node, self.config);
        if blocks.is_empty() || blocks.total_macros() == 0 {
            return true;
        }
        // Step 2: target-area assignment (Sect. IV-C).
        target_area_assignment(self.design, self.gnet, &mut blocks, self.config);
        // Step 3: dataflow inference (Sect. IV-D).
        let df = dataflow_inference(self.design, self.gseq, &blocks, fixed, self.config);
        // Step 4: layout generation (Sect. IV-E).
        let problem = LayoutProblem {
            region,
            blocks: blocks
                .blocks
                .iter()
                .map(|b| LayoutBlock {
                    shape: b.shape.clone(),
                    min_area: b.min_area,
                    target_area: b.target_area,
                })
                .collect(),
            affinity: df.affinity.clone(),
            fixed_positions: df.fixed_positions.clone(),
        };
        let layout = generate_layout(&problem, self.config, rng);
        if depth == 0 {
            self.top_blocks = blocks
                .blocks
                .iter()
                .zip(&layout.rects)
                .map(|(b, &r)| (b.name.clone(), r))
                .collect();
        }
        let node_path = self.ht.node(node).path.as_str();
        if !probe(&FlowStage::LevelFloorplanned {
            depth,
            node: node_path,
            blocks: blocks.blocks.len(),
        }) {
            return false;
        }

        // Step 5: recurse into multi-macro blocks, pin single-macro blocks.
        for (idx, block) in blocks.blocks.iter().enumerate() {
            let rect = layout.rects[idx];
            match block.macro_count() {
                0 => {}
                1 => self.place_single_macro(block, idx, rect, &df, &layout.rects),
                _ => {
                    let child_fixed = self.child_context(&blocks, idx, &layout.rects, fixed);
                    match block.kind {
                        BlockKind::Hierarchy(h) => {
                            if !self.floorplan_probed(h, rect, &child_fixed, depth + 1, rng, probe)
                            {
                                return false;
                            }
                        }
                        BlockKind::SingleMacro(_) => {
                            // cannot happen: single-macro blocks have macro_count 1
                            self.place_single_macro(block, idx, rect, &df, &layout.rects);
                        }
                    }
                }
            }
        }
        true
    }

    /// The fixed context passed to a child level: everything the parent level
    /// already knows (its own fixed context) plus the parent's sibling blocks
    /// at their freshly decided positions.
    fn child_context(
        &self,
        blocks: &BlockSet,
        current: usize,
        rects: &[Rect],
        fixed: &[FixedGroup],
    ) -> Vec<FixedGroup> {
        let mut out = fixed.to_vec();
        for (idx, sibling) in blocks.blocks.iter().enumerate() {
            if idx == current {
                continue;
            }
            out.push(FixedGroup {
                name: sibling.name.clone(),
                position: rects[idx].center(),
                cells: sibling.cells.clone(),
            });
        }
        out
    }

    /// Places the macro of a single-macro block in the corner of the block's
    /// rectangle that minimizes the distance to the block's dataflow pull.
    fn place_single_macro(
        &mut self,
        block: &Block,
        block_idx: usize,
        rect: Rect,
        df: &LevelDataflow,
        rects: &[Rect],
    ) {
        let cell_id = block.macros[0];
        let cell = self.design.cell(cell_id);
        let pull = self.pull_point(block_idx, df, rects, rect);

        // Candidate footprints: the four corners, unrotated and rotated.
        let mut best: Option<(i64, MacroFootprint)> = None;
        for &rotated in &[false, true] {
            let (w, h) =
                if rotated { (cell.height, cell.width) } else { (cell.width, cell.height) };
            let corners = [
                Point::new(rect.llx, rect.lly),
                Point::new(rect.urx - w, rect.lly),
                Point::new(rect.llx, rect.ury - h),
                Point::new(rect.urx - w, rect.ury - h),
            ];
            for corner in corners {
                let corner = Point::new(corner.x.max(rect.llx), corner.y.max(rect.lly));
                let fits = w <= rect.width() && h <= rect.height();
                let center = Point::new(corner.x + w / 2, corner.y + h / 2);
                let mut score = center.manhattan_distance(pull);
                if !fits {
                    // allow it (legalization will fix overlaps) but prefer fitting candidates
                    score += rect.width() + rect.height();
                }
                if best.as_ref().map(|(s, _)| score < *s).unwrap_or(true) {
                    best = Some((score, MacroFootprint { location: corner, rotated }));
                }
            }
        }
        if let Some((_, fp)) = best {
            self.footprints.insert(cell_id, fp);
        }
    }

    /// The affinity-weighted centroid of everything a block communicates
    /// with, used as the attraction point for corner placement.
    // `other` ranges over graph nodes and only indexes `rects` for the
    // movable prefix, so enumerate() over `rects` cannot replace it
    #[allow(clippy::needless_range_loop)]
    fn pull_point(
        &self,
        block_idx: usize,
        df: &LevelDataflow,
        rects: &[Rect],
        own_rect: Rect,
    ) -> Point {
        let mut sum_x = 0.0;
        let mut sum_y = 0.0;
        let mut weight = 0.0;
        for other in 0..df.graph.num_nodes() {
            if other == block_idx {
                continue;
            }
            let a = df.affinity_between(block_idx, other);
            if a <= 0.0 {
                continue;
            }
            let pos = if other < df.num_movable {
                rects[other].center()
            } else {
                df.fixed_positions[other].unwrap_or_else(|| own_rect.center())
            };
            sum_x += a * pos.x as f64;
            sum_y += a * pos.y as f64;
            weight += a;
        }
        if weight > 0.0 {
            Point::new((sum_x / weight) as i64, (sum_y / weight) as i64)
        } else {
            own_rect.center()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::seqgraph::SeqGraphConfig;
    use netlist::design::DesignBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    /// Fig. 1-style design: two clusters of 4 macros each with a register
    /// pipeline between them.
    fn two_cluster_design() -> Design {
        let mut b = DesignBuilder::new("t");
        let mut left = Vec::new();
        let mut right = Vec::new();
        for i in 0..4 {
            left.push(b.add_macro(format!("u_left/mem{i}"), "RAM", 150, 100, "u_left"));
            right.push(b.add_macro(format!("u_right/mem{i}"), "RAM", 150, 100, "u_right"));
        }
        for i in 0..16 {
            let f = b.add_flop(format!("u_glue/pipe_reg[{i}]"), "u_glue");
            let n0 = b.add_net(format!("l2p_{i}"));
            let n1 = b.add_net(format!("p2r_{i}"));
            b.connect_driver(n0, left[i % 4]);
            b.connect_sink(n0, f);
            b.connect_driver(n1, f);
            b.connect_sink(n1, right[i % 4]);
        }
        b.set_die(Rect::new(0, 0, 2000, 1000));
        b.build()
    }

    #[test]
    fn floorplan_places_every_macro() {
        let design = two_cluster_design();
        let config = HidapConfig::fast();
        let ht = HierarchyTree::from_design(&design);
        let curves = ShapeCurveSet::generate(&design, &ht, &config);
        let gnet = NetGraph::from_design(&design);
        let gseq = SeqGraph::from_design(&design, &SeqGraphConfig { min_register_bits: 1 });
        let mut fp = RecursiveFloorplanner::new(&design, &ht, &gnet, &gseq, &curves, &config);
        let mut rng = StdRng::seed_from_u64(1);
        fp.floorplan(ht.root(), design.die(), &[], 0, &mut rng);
        assert_eq!(fp.footprints.len(), 8, "all 8 macros placed");
        // the top level identified the two clusters
        assert_eq!(fp.top_blocks.len(), 2);
        // macro footprints land inside the die (legalization not yet applied,
        // but corner placement keeps them inside their block rects)
        for (cell, footprint) in fp.footprints.iter() {
            let r = footprint.rect(&design, cell);
            assert!(design.die().contains_rect(&r), "{} outside die: {r}", design.cell(cell).name);
        }
    }

    #[test]
    fn clusters_keep_their_macros_together() {
        let design = two_cluster_design();
        let config = HidapConfig::fast();
        let ht = HierarchyTree::from_design(&design);
        let curves = ShapeCurveSet::generate(&design, &ht, &config);
        let gnet = NetGraph::from_design(&design);
        let gseq = SeqGraph::from_design(&design, &SeqGraphConfig { min_register_bits: 1 });
        let mut fp = RecursiveFloorplanner::new(&design, &ht, &gnet, &gseq, &curves, &config);
        let mut rng = StdRng::seed_from_u64(2);
        fp.floorplan(ht.root(), design.die(), &[], 0, &mut rng);

        let top: HashMap<&str, Rect> =
            fp.top_blocks.iter().map(|(n, r)| (n.as_str(), *r)).collect();
        let left_rect = top["u_left"];
        for i in 0..4 {
            let cell = design.find_cell(&format!("u_left/mem{i}")).unwrap();
            let center = fp.footprints.get(cell).unwrap().rect(&design, cell).center();
            assert!(
                left_rect.contains(center),
                "macro u_left/mem{i} should stay inside its cluster rect"
            );
        }
    }

    #[test]
    fn design_without_macros_is_a_noop() {
        let mut b = DesignBuilder::new("t");
        for i in 0..10 {
            b.add_comb(format!("g{i}"), "");
        }
        b.set_die(Rect::new(0, 0, 100, 100));
        let design = b.build();
        let config = HidapConfig::fast();
        let ht = HierarchyTree::from_design(&design);
        let curves = ShapeCurveSet::generate(&design, &ht, &config);
        let gnet = NetGraph::from_design(&design);
        let gseq = SeqGraph::from_design(&design, &SeqGraphConfig { min_register_bits: 1 });
        let mut fp = RecursiveFloorplanner::new(&design, &ht, &gnet, &gseq, &curves, &config);
        let mut rng = StdRng::seed_from_u64(3);
        fp.floorplan(ht.root(), design.die(), &[], 0, &mut rng);
        assert!(fp.footprints.is_empty());
    }
}
