//! The output of the flow: macro locations and orientations.

use geometry::{Orientation, Point, Rect};
use netlist::design::{CellId, Design};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Placement of a single macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedMacro {
    /// The macro cell.
    pub cell: CellId,
    /// Lower-left corner of the (oriented) footprint.
    pub location: Point,
    /// Orientation of the macro.
    pub orientation: Orientation,
}

/// The result of a macro-placement flow: one entry per macro of the design.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MacroPlacement {
    /// Placed macros, in design macro order.
    pub macros: Vec<PlacedMacro>,
    /// Block rectangles decided at the top hierarchy level, for visualization
    /// of the block-level floorplan (Fig. 1a / Fig. 9d of the paper).
    pub top_blocks: Vec<(String, Rect)>,
}

impl MacroPlacement {
    /// Looks up the placement of a macro cell.
    pub fn placement_of(&self, cell: CellId) -> Option<&PlacedMacro> {
        self.macros.iter().find(|m| m.cell == cell)
    }

    /// The placed footprint rectangle of a macro.
    pub fn rect_of(&self, cell: CellId, design: &Design) -> Option<Rect> {
        self.placement_of(cell).map(|p| {
            let c = design.cell(cell);
            let (w, h) = p.orientation.transformed_size(c.width, c.height);
            Rect::from_size(p.location.x, p.location.y, w, h)
        })
    }

    /// Converts to a map keyed by cell id (the representation used by the
    /// DEF writer and the evaluation crate).
    pub fn to_map(&self) -> HashMap<CellId, (Point, Orientation)> {
        self.macros.iter().map(|m| (m.cell, (m.location, m.orientation))).collect()
    }

    /// Returns `true` when no two macro footprints overlap and every macro is
    /// inside the die.
    pub fn is_legal(&self, design: &Design) -> bool {
        let rects: Vec<Rect> =
            self.macros.iter().filter_map(|m| self.rect_of(m.cell, design)).collect();
        let die = design.die();
        for (i, r) in rects.iter().enumerate() {
            if !die.contains_rect(r) {
                return false;
            }
            for other in rects.iter().skip(i + 1) {
                if r.overlaps(other) {
                    return false;
                }
            }
        }
        true
    }

    /// Total overlap area between macro footprints (0 for a legal placement).
    pub fn total_overlap(&self, design: &Design) -> i128 {
        let rects: Vec<Rect> =
            self.macros.iter().filter_map(|m| self.rect_of(m.cell, design)).collect();
        let mut total = 0;
        for (i, r) in rects.iter().enumerate() {
            for other in rects.iter().skip(i + 1) {
                total += r.overlap_area(other);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::DesignBuilder;

    fn two_macro_design() -> (Design, CellId, CellId) {
        let mut b = DesignBuilder::new("t");
        let a = b.add_macro("a", "RAM", 100, 50, "");
        let c = b.add_macro("c", "RAM", 100, 50, "");
        b.set_die(Rect::new(0, 0, 1000, 1000));
        (b.build(), a, c)
    }

    #[test]
    fn legality_detects_overlap() {
        let (d, a, c) = two_macro_design();
        let mut p = MacroPlacement::default();
        p.macros.push(PlacedMacro {
            cell: a,
            location: Point::new(0, 0),
            orientation: Orientation::N,
        });
        p.macros.push(PlacedMacro {
            cell: c,
            location: Point::new(50, 10),
            orientation: Orientation::N,
        });
        assert!(!p.is_legal(&d));
        assert!(p.total_overlap(&d) > 0);
        p.macros[1].location = Point::new(200, 0);
        assert!(p.is_legal(&d));
        assert_eq!(p.total_overlap(&d), 0);
    }

    #[test]
    fn legality_detects_out_of_die() {
        let (d, a, _) = two_macro_design();
        let mut p = MacroPlacement::default();
        p.macros.push(PlacedMacro {
            cell: a,
            location: Point::new(950, 0),
            orientation: Orientation::N,
        });
        assert!(!p.is_legal(&d));
    }

    #[test]
    fn rect_respects_orientation() {
        let (d, a, _) = two_macro_design();
        let mut p = MacroPlacement::default();
        p.macros.push(PlacedMacro {
            cell: a,
            location: Point::new(0, 0),
            orientation: Orientation::W,
        });
        let r = p.rect_of(a, &d).unwrap();
        assert_eq!((r.width(), r.height()), (50, 100));
    }

    #[test]
    fn lookup_missing_macro() {
        let (_, _, c) = two_macro_design();
        let p = MacroPlacement::default();
        assert!(p.placement_of(c).is_none());
    }
}
