//! The output of the flow: macro locations and orientations.

use geometry::{Orientation, Point, Rect};
use netlist::design::{CellId, Design};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Placement of a single macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedMacro {
    /// The macro cell.
    pub cell: CellId,
    /// Lower-left corner of the (oriented) footprint.
    pub location: Point,
    /// Orientation of the macro.
    pub orientation: Orientation,
}

/// The result of a macro-placement flow: one entry per macro of the design.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MacroPlacement {
    /// Placed macros, in design macro order.
    pub macros: Vec<PlacedMacro>,
    /// Block rectangles decided at the top hierarchy level, for visualization
    /// of the block-level floorplan (Fig. 1a / Fig. 9d of the paper).
    pub top_blocks: Vec<(String, Rect)>,
}

impl MacroPlacement {
    /// Looks up the placement of a macro cell.
    ///
    /// `macros` is sorted by cell id whenever it comes out of a flow, so the
    /// lookup is a binary search; hand-built unsorted vectors fall back to a
    /// linear scan (a successful binary probe is always correct — only a miss
    /// can be a false negative on unsorted data).
    pub fn placement_of(&self, cell: CellId) -> Option<&PlacedMacro> {
        if let Ok(i) = self.macros.binary_search_by_key(&cell, |m| m.cell) {
            return Some(&self.macros[i]);
        }
        self.macros.iter().find(|m| m.cell == cell)
    }

    /// The placed footprint rectangle of a macro.
    pub fn rect_of(&self, cell: CellId, design: &Design) -> Option<Rect> {
        self.placement_of(cell).map(|p| Self::footprint_rect(p, design))
    }

    fn footprint_rect(p: &PlacedMacro, design: &Design) -> Rect {
        let c = design.cell(p.cell);
        let (w, h) = p.orientation.transformed_size(c.width, c.height);
        Rect::from_size(p.location.x, p.location.y, w, h)
    }

    /// Converts to a map keyed by cell id — the legacy interchange shape,
    /// kept for callers that still need an owned `HashMap`. Evaluation and
    /// DEF/SVG writing read a `MacroPlacement` directly through
    /// [`netlist::PlacementView`]; prefer that over materializing a map.
    pub fn to_map(&self) -> HashMap<CellId, (Point, Orientation)> {
        self.macros.iter().map(|m| (m.cell, (m.location, m.orientation))).collect()
    }

    /// All placed footprint rectangles, in `macros` order (no per-macro
    /// lookup: one pass over the vector).
    pub fn rects(&self, design: &Design) -> Vec<Rect> {
        self.macros.iter().map(|m| Self::footprint_rect(m, design)).collect()
    }

    /// Returns `true` when no two macro footprints overlap and every macro is
    /// inside the die.
    ///
    /// Runs a sweep over x-sorted rectangles instead of the naive all-pairs
    /// check: each rectangle is only compared against rectangles whose left
    /// edge starts before its right edge, so legal placements check in
    /// near-linear time after the sort.
    pub fn is_legal(&self, design: &Design) -> bool {
        let mut rects = self.rects(design);
        let die = design.die();
        // early exit: every rect must sit inside the die before any pairwise work
        if rects.iter().any(|r| !die.contains_rect(r)) {
            return false;
        }
        rects.sort_by_key(|r| (r.llx, r.lly));
        for i in 0..rects.len() {
            let r = rects[i];
            for other in &rects[i + 1..] {
                if other.llx >= r.urx {
                    break;
                }
                if r.overlaps(other) {
                    return false;
                }
            }
        }
        true
    }

    /// Total overlap area between macro footprints (0 for a legal placement),
    /// computed with the same x-sweep as [`MacroPlacement::is_legal`].
    pub fn total_overlap(&self, design: &Design) -> i128 {
        let mut rects = self.rects(design);
        rects.sort_by_key(|r| (r.llx, r.lly));
        let mut total = 0;
        for i in 0..rects.len() {
            let r = rects[i];
            for other in &rects[i + 1..] {
                if other.llx >= r.urx {
                    break;
                }
                total += r.overlap_area(other);
            }
        }
        total
    }
}

/// Zero-copy read access for the evaluation pipeline and the DEF/SVG
/// writers: lookups go through [`MacroPlacement::placement_of`] (a binary
/// search over the sorted flow output), iteration walks the entry vector.
impl netlist::PlacementView for MacroPlacement {
    fn position(&self, cell: CellId) -> Option<Point> {
        self.placement_of(cell).map(|m| m.location)
    }

    fn orientation(&self, cell: CellId) -> Option<Orientation> {
        self.placement_of(cell).map(|m| m.orientation)
    }

    fn placement(&self, cell: CellId) -> Option<(Point, Orientation)> {
        self.placement_of(cell).map(|m| (m.location, m.orientation))
    }

    fn iter_placed(&self) -> Box<dyn Iterator<Item = (CellId, Point, Orientation)> + '_> {
        Box::new(self.macros.iter().map(|m| (m.cell, m.location, m.orientation)))
    }

    fn len(&self) -> usize {
        self.macros.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::DesignBuilder;
    use netlist::PlacementView as _;

    fn two_macro_design() -> (Design, CellId, CellId) {
        let mut b = DesignBuilder::new("t");
        let a = b.add_macro("a", "RAM", 100, 50, "");
        let c = b.add_macro("c", "RAM", 100, 50, "");
        b.set_die(Rect::new(0, 0, 1000, 1000));
        (b.build(), a, c)
    }

    #[test]
    fn legality_detects_overlap() {
        let (d, a, c) = two_macro_design();
        let mut p = MacroPlacement::default();
        p.macros.push(PlacedMacro {
            cell: a,
            location: Point::new(0, 0),
            orientation: Orientation::N,
        });
        p.macros.push(PlacedMacro {
            cell: c,
            location: Point::new(50, 10),
            orientation: Orientation::N,
        });
        assert!(!p.is_legal(&d));
        assert!(p.total_overlap(&d) > 0);
        p.macros[1].location = Point::new(200, 0);
        assert!(p.is_legal(&d));
        assert_eq!(p.total_overlap(&d), 0);
    }

    #[test]
    fn legality_detects_out_of_die() {
        let (d, a, _) = two_macro_design();
        let mut p = MacroPlacement::default();
        p.macros.push(PlacedMacro {
            cell: a,
            location: Point::new(950, 0),
            orientation: Orientation::N,
        });
        assert!(!p.is_legal(&d));
    }

    #[test]
    fn rect_respects_orientation() {
        let (d, a, _) = two_macro_design();
        let mut p = MacroPlacement::default();
        p.macros.push(PlacedMacro {
            cell: a,
            location: Point::new(0, 0),
            orientation: Orientation::W,
        });
        let r = p.rect_of(a, &d).unwrap();
        assert_eq!((r.width(), r.height()), (50, 100));
    }

    #[test]
    fn lookup_missing_macro() {
        let (_, _, c) = two_macro_design();
        let p = MacroPlacement::default();
        assert!(p.placement_of(c).is_none());
    }

    #[test]
    fn lookup_works_on_unsorted_macros() {
        let (_, a, c) = two_macro_design();
        let mut p = MacroPlacement::default();
        // insert in reverse id order so binary search alone would miss
        p.macros.push(PlacedMacro {
            cell: c,
            location: Point::new(300, 0),
            orientation: Orientation::FN,
        });
        p.macros.push(PlacedMacro {
            cell: a,
            location: Point::new(0, 0),
            orientation: Orientation::N,
        });
        assert_eq!(p.placement_of(a).unwrap().location, Point::new(0, 0));
        assert_eq!(p.placement_of(c).unwrap().orientation, Orientation::FN);
    }

    #[test]
    fn to_map_and_def_agree_with_indexed_lookups() {
        let (d, a, c) = two_macro_design();
        let mut p = MacroPlacement::default();
        p.macros.push(PlacedMacro {
            cell: a,
            location: Point::new(10, 20),
            orientation: Orientation::N,
        });
        p.macros.push(PlacedMacro {
            cell: c,
            location: Point::new(400, 500),
            orientation: Orientation::FN,
        });
        // to_map agrees with placement_of for every macro
        let map = p.to_map();
        assert_eq!(map.len(), p.macros.len());
        for (&cell, &(loc, orient)) in &map {
            let found = p.placement_of(cell).expect("indexed lookup finds every mapped macro");
            assert_eq!(found.location, loc);
            assert_eq!(found.orientation, orient);
        }
        // DEF writing from to_map carries the same locations/orientations
        let entries = netlist::def::placement_entries(&d, &map, true);
        assert_eq!(entries.len(), p.macros.len());
        for entry in &entries {
            let cell = d.find_cell(&entry.name).expect("entry names a design cell");
            let found = p.placement_of(cell).expect("indexed lookup finds every DEF entry");
            assert_eq!(entry.location, found.location);
            assert_eq!(entry.orientation, found.orientation);
        }
        // the view-based DEF entries are identical to the map-based ones
        assert_eq!(netlist::def::placement_entries_from_view(&d, &p, true), entries);
    }

    #[test]
    fn placement_view_agrees_with_to_map() {
        let (_, a, c) = two_macro_design();
        let mut p = MacroPlacement::default();
        p.macros.push(PlacedMacro {
            cell: a,
            location: Point::new(10, 20),
            orientation: Orientation::FN,
        });
        p.macros.push(PlacedMacro {
            cell: c,
            location: Point::new(400, 500),
            orientation: Orientation::W,
        });
        let map = p.to_map();
        assert_eq!(p.len(), map.len());
        for (&cell, &(loc, orient)) in &map {
            assert_eq!(p.position(cell), Some(loc));
            assert_eq!(p.orientation(cell), Some(orient));
            assert_eq!(p.placement(cell), Some((loc, orient)));
        }
        let from_iter: HashMap<CellId, (Point, Orientation)> =
            p.iter_placed().map(|(cell, loc, orient)| (cell, (loc, orient))).collect();
        assert_eq!(from_iter, map);
    }
}
