//! Standard-cell placement substrate.
//!
//! A lightweight analytical placer in the spirit of quadratic placement with
//! grid-based spreading:
//!
//! 1. cells start at the centroid of the fixed objects they connect to
//!    (macros and ports), or at the die center,
//! 2. several Gauss–Seidel sweeps move every cell to the connectivity-weighted
//!    average position of its neighbours (the minimizer of the star-model
//!    quadratic wirelength),
//! 3. a spreading phase pushes cells out of over-full bins (macro bins have
//!    zero capacity) towards the nearest bins with free capacity.
//!
//! The result is *not* a legal detailed placement — it is a placement good
//! enough to measure wirelength, congestion and timing consistently across
//! macro-placement flows, which is how the paper uses its commercial placer.
//!
//! All per-cell state lives in dense id-indexed arrays and every netlist
//! traversal runs over the design's CSR [`netlist::Connectivity`] view, so
//! the Gauss–Seidel inner loop touches no hash map and no per-cell `Vec`s.
//! The sweeps maintain exact per-net position sums under each cell move
//! (Σ degree listing-visits per iteration instead of Σ degree² pin-visits),
//! which is bit-identical to rescanning every net's pins because the star
//! sums are integer arithmetic; `bench::reference` preserves the rescan
//! formulation and `bench_placer` asserts the equality at `large_soc` scale.

use geometry::{Orientation, Point, Rect};
use netlist::dense::DenseMap;
use netlist::design::{CellId, CellKind, Design};
use netlist::PlacementView;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the standard-cell placer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacerConfig {
    /// Number of Gauss–Seidel connectivity sweeps.
    pub iterations: usize,
    /// Number of spreading passes after the connectivity sweeps.
    pub spreading_passes: usize,
    /// Grid resolution (bins per die edge) used for spreading.
    pub bins: usize,
    /// Target utilization of each bin during spreading (0–1).
    pub target_utilization: f64,
    /// Random seed for tie-breaking jitter.
    pub seed: u64,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self { iterations: 12, spreading_passes: 4, bins: 32, target_utilization: 0.8, seed: 1 }
    }
}

/// The result of standard-cell placement: a location for every cell of the
/// design (macros keep their macro-placement location).
///
/// Positions live in a dense id-indexed store; cells outside the map (or with
/// an empty slot) are unplaced.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CellPlacement {
    /// Location of every cell (cell center), indexed densely by cell id.
    pub positions: DenseMap<CellId, Option<Point>>,
}

impl CellPlacement {
    /// An all-unplaced map covering `num_cells` cells.
    pub fn with_num_cells(num_cells: usize) -> Self {
        Self { positions: DenseMap::with_len(num_cells) }
    }

    /// Position of a cell.
    #[inline]
    pub fn position(&self, cell: CellId) -> Option<Point> {
        self.positions.get(cell).copied().flatten()
    }

    /// Places (or moves) a cell, growing the map as needed.
    pub fn set_position(&mut self, cell: CellId, position: Point) {
        self.positions.insert(cell, Some(position));
    }

    /// Iterates over the placed cells as `(cell, position)` in id order.
    pub fn placed(&self) -> impl Iterator<Item = (CellId, Point)> + '_ {
        self.positions.iter().filter_map(|(c, p)| p.map(|p| (c, p)))
    }

    /// Number of placed cells.
    pub fn num_placed(&self) -> usize {
        self.positions.values().filter(|p| p.is_some()).count()
    }
}

/// Places the standard cells of a design around a fixed macro placement.
///
/// `macro_placement` is any [`PlacementView`] giving each macro's lower-left
/// corner and orientation — the flow output (`hidap::MacroPlacement`), a
/// dense view or a hand-built `HashMap`.
pub fn place_standard_cells(
    design: &Design,
    macro_placement: &impl PlacementView,
    config: &PlacerConfig,
) -> CellPlacement {
    place_cells_impl(design, macro_placement, config, None).0
}

/// Warm-start variant of [`place_standard_cells`]: seeds the Gauss–Seidel
/// state from a previous [`CellPlacement`] instead of the centroid
/// initialization, and early-exits the sweep loop as soon as a sweep stops
/// improving HPWL (tracked exactly through
/// [`crate::IncrementalHpwl`] — integer deltas, no drift).
///
/// On a small ECO edit the seed is near the fixpoint, so the loop converges
/// in far fewer sweeps than the cold `config.iterations`; the second element
/// of the return value is the number of sweeps actually run. Cells the seed
/// does not cover (or covers outside the die) fall back to the cold
/// centroid-plus-jitter initialization, so a partially stale seed is safe.
/// The result is deterministic for a fixed `(design, seed placement,
/// config)` but is **not** in general bit-identical to the cold path — the
/// equality policy between warm and cold results is documented in
/// `docs/ECO.md`.
pub fn place_standard_cells_warm(
    design: &Design,
    macro_placement: &impl PlacementView,
    config: &PlacerConfig,
    warm: &CellPlacement,
) -> (CellPlacement, usize) {
    place_cells_impl(design, macro_placement, config, Some(warm))
}

fn place_cells_impl(
    design: &Design,
    macro_placement: &impl PlacementView,
    config: &PlacerConfig,
    warm: Option<&CellPlacement>,
) -> (CellPlacement, usize) {
    let die = design.die();
    let die_center = die.center();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let csr = design.connectivity();
    let n = design.num_cells();

    // Dense per-cell state: working positions, fixedness, area.
    let mut pos: Vec<Point> = vec![die_center; n];
    let mut is_fixed: Vec<bool> = vec![false; n];
    let area: Vec<i128> = design.cells().map(|(_, c)| c.area()).collect();
    // Port positions, fetched once.
    let port_pos: Vec<Option<Point>> = design.ports().map(|(_, p)| p.position).collect();

    // Fixed positions: macro centers and port locations.
    let mut macro_rects: Vec<Rect> = Vec::new();
    for (id, cell) in design.cells() {
        if cell.kind == CellKind::Macro {
            let (loc, orient) =
                macro_placement.placement(id).unwrap_or((die_center, Orientation::N));
            let (w, h) = orient.transformed_size(cell.width, cell.height);
            let rect = Rect::from_size(loc.x, loc.y, w, h);
            pos[id.0 as usize] = rect.center();
            macro_rects.push(rect);
            is_fixed[id.0 as usize] = true;
        }
    }

    // Initial positions: centroid of connected already-placed drivers
    // (macros, ports, and cells initialized earlier in this very sweep), else
    // die center with a small deterministic jitter so co-located cells can
    // spread.
    //
    // Instead of rescanning every pin of every incident net per cell
    // (Σ degree² work), per-net running sums of the placed driver positions
    // are maintained and updated as cells place — exact integer arithmetic,
    // so the result is bit-identical to the rescan.
    let num_nets = design.num_nets();
    let mut drv_sum_x = vec![0i128; num_nets];
    let mut drv_sum_y = vec![0i128; num_nets];
    let mut drv_count = vec![0i128; num_nets];
    for net in design.net_ids() {
        for &pin in csr.pins(net) {
            if !pin.is_driver() {
                continue;
            }
            let p = match pin.cell() {
                // only macros are placed before the init sweep starts
                Some(d) => is_fixed[d.0 as usize].then(|| pos[d.0 as usize]),
                None => pin.port().and_then(|p| port_pos[p.0 as usize]),
            };
            if let Some(p) = p {
                let i = net.0 as usize;
                drv_sum_x[i] += p.x as i128;
                drv_sum_y[i] += p.y as i128;
                drv_count[i] += 1;
            }
        }
    }
    for (id, cell) in design.cells() {
        if cell.kind == CellKind::Macro {
            continue;
        }
        // Warm seed: adopt the previous position (no jitter draw — the RNG
        // is only consulted for cells the seed does not cover, keeping the
        // warm path deterministic for a fixed seed placement).
        if let Some(w) = warm.and_then(|w| w.position(id)).filter(|p| die.contains(*p)) {
            pos[id.0 as usize] = w;
            for &net in csr.fanout(id) {
                let i = net.0 as usize;
                drv_sum_x[i] += w.x as i128;
                drv_sum_y[i] += w.y as i128;
                drv_count[i] += 1;
            }
            continue;
        }
        let mut sum = (0i128, 0i128);
        let mut count = 0i128;
        for &net in csr.nets_of(id) {
            sum.0 += drv_sum_x[net.0 as usize];
            sum.1 += drv_sum_y[net.0 as usize];
            count += drv_count[net.0 as usize];
        }
        let base = if count > 0 {
            Point::new((sum.0 / count) as i64, (sum.1 / count) as i64)
        } else {
            die_center
        };
        let jitter_x = rng.gen_range(-(die.width() / 64).max(1)..=(die.width() / 64).max(1));
        let jitter_y = rng.gen_range(-(die.height() / 64).max(1)..=(die.height() / 64).max(1));
        let placed_at = die.clamp_point(base.translated(jitter_x, jitter_y));
        pos[id.0 as usize] = placed_at;
        // this cell's driver pins now count for cells initialized after it
        for &net in csr.fanout(id) {
            let i = net.0 as usize;
            drv_sum_x[i] += placed_at.x as i128;
            drv_sum_y[i] += placed_at.y as i128;
            drv_count[i] += 1;
        }
    }

    // Gauss–Seidel sweeps over the star wirelength model: every cell moves to
    // the average position of the other pins on its nets. The sums are exact
    // integer arithmetic, so pin order inside a net does not affect the
    // result — which is what makes the incremental formulation below
    // bit-identical to a per-cell rescan of every net's pins.
    //
    // Per net, `S_n` = Σ positions of all its pins (every cell pin at its
    // current working position, plus the placed ports) and `C_n` = that pin
    // count. A cell's star target is Σ_n (S_n − occ·p_cell) / Σ_n (C_n − occ)
    // over its incident net listings, where `occ` is how many pins the cell
    // itself has on the net; after the move, each incident net's sum shifts
    // by the position delta once per pin. This turns the sweep from
    // Σ degree² pin visits per iteration into Σ degree listing visits.
    let mut net_sum_x = vec![0i128; num_nets];
    let mut net_sum_y = vec![0i128; num_nets];
    let mut net_count = vec![0i128; num_nets];
    for net in design.net_ids() {
        for &pin in csr.pins(net) {
            let p = match pin.cell() {
                Some(c) => Some(pos[c.0 as usize]),
                None => pin.port().and_then(|p| port_pos[p.0 as usize]),
            };
            if let Some(p) = p {
                let i = net.0 as usize;
                net_sum_x[i] += p.x as i128;
                net_sum_y[i] += p.y as i128;
                net_count[i] += 1;
            }
        }
    }
    // occurrences of the owning cell on each of its incident net listings
    // (flat, aligned with the concatenation of `nets_of(cell)` slices): a
    // cell that both drives and sinks a net has occ 2 on both listings
    let occ: Vec<i128> = {
        let mut occ = Vec::with_capacity(csr.num_pins());
        for id in design.cell_ids() {
            let listings = csr.nets_of(id);
            for &net in listings {
                occ.push(listings.iter().filter(|&&m| m == net).count() as i128);
            }
        }
        occ
    };
    let mut occ_start = vec![0usize; n + 1];
    for id in 0..n {
        occ_start[id + 1] = occ_start[id] + csr.nets_of(CellId(id as u32)).len();
    }
    // Warm runs track the exact HPWL of the working positions through an
    // incremental session, so a sweep that stops improving ends the loop
    // early; cold runs keep the fixed iteration count (bit-identical to the
    // pre-warm-start formulation).
    let mut hpwl_session = warm.map(|_| {
        let seed = CellPlacement { positions: pos.iter().map(|&p| Some(p)).collect() };
        crate::wirelength::IncrementalHpwl::new(design, &seed)
    });
    let mut sweeps_run = 0usize;
    for _ in 0..config.iterations {
        sweeps_run += 1;
        let mut sweep_delta: i128 = 0;
        let mut moved_any = false;
        for id in 0..n {
            if is_fixed[id] {
                continue;
            }
            let listings = csr.nets_of(CellId(id as u32));
            let old = pos[id];
            let mut sum = (0i128, 0i128);
            let mut count = 0i128;
            for (j, &net) in listings.iter().enumerate() {
                let o = occ[occ_start[id] + j];
                let i = net.0 as usize;
                sum.0 += net_sum_x[i] - o * old.x as i128;
                sum.1 += net_sum_y[i] - o * old.y as i128;
                count += net_count[i] - o;
            }
            if count > 0 {
                let target = Point::new((sum.0 / count) as i64, (sum.1 / count) as i64);
                let new = die.clamp_point(target);
                if new != old {
                    let dx = (new.x - old.x) as i128;
                    let dy = (new.y - old.y) as i128;
                    // one update per listing = one update per pin of the cell
                    for &net in listings {
                        let i = net.0 as usize;
                        net_sum_x[i] += dx;
                        net_sum_y[i] += dy;
                    }
                    pos[id] = new;
                    moved_any = true;
                    if let Some(h) = hpwl_session.as_mut() {
                        sweep_delta += h.move_cell(CellId(id as u32), new);
                    }
                }
            }
        }
        if hpwl_session.is_some() && (!moved_any || sweep_delta >= 0) {
            break;
        }
    }

    // Spreading: push cells out of over-full bins (macros occupy capacity).
    spread(die, &mut pos, &is_fixed, &area, &macro_rects, config);

    (CellPlacement { positions: pos.into_iter().map(Some).collect() }, sweeps_run)
}

fn spread(
    die: Rect,
    pos: &mut [Point],
    is_fixed: &[bool],
    area: &[i128],
    macro_rects: &[Rect],
    config: &PlacerConfig,
) {
    let bins = config.bins.max(2);
    let bin_w = (die.width() as f64 / bins as f64).max(1.0);
    let bin_h = (die.height() as f64 / bins as f64).max(1.0);
    let bin_area = bin_w * bin_h;

    // Free capacity per bin: bin area minus macro overlap, times utilization.
    let mut capacity = vec![vec![0.0f64; bins]; bins];
    for (bx, row) in capacity.iter_mut().enumerate() {
        for (by, cap) in row.iter_mut().enumerate() {
            let bin_rect = Rect::new(
                die.llx + (bx as f64 * bin_w) as i64,
                die.lly + (by as f64 * bin_h) as i64,
                die.llx + ((bx + 1) as f64 * bin_w) as i64,
                die.lly + ((by + 1) as f64 * bin_h) as i64,
            );
            let macro_overlap: f64 =
                macro_rects.iter().map(|m| m.overlap_area(&bin_rect) as f64).sum();
            *cap = ((bin_area - macro_overlap) * config.target_utilization).max(0.0);
        }
    }

    let bin_of = |p: Point| -> (usize, usize) {
        let bx = (((p.x - die.llx) as f64 / bin_w) as usize).min(bins - 1);
        let by = (((p.y - die.lly) as f64 / bin_h) as usize).min(bins - 1);
        (bx, by)
    };

    for _ in 0..config.spreading_passes {
        // Usage and membership per bin, accumulated in cell-id order.
        let mut usage = vec![vec![0.0f64; bins]; bins];
        let mut members: Vec<Vec<CellId>> = vec![Vec::new(); bins * bins];
        for id in 0..pos.len() {
            if is_fixed[id] {
                continue;
            }
            let b = bin_of(pos[id]);
            usage[b.0][b.1] += area[id] as f64;
            members[b.0 * bins + b.1].push(CellId(id as u32));
        }
        // Move cells from over-full bins to the nearest bin with headroom.
        let mut moved_any = false;
        for bx in 0..bins {
            for by in 0..bins {
                let over = usage[bx][by] - capacity[bx][by];
                if over <= 0.0 {
                    continue;
                }
                // move the smallest cells first until the bin fits
                let mut cells = std::mem::take(&mut members[bx * bins + by]);
                cells.sort_by_key(|&c| area[c.0 as usize]);
                let mut to_free = over;
                // The nearest-bin search only depends on the free room of
                // *other* bins, and moves out of this bin change exactly one
                // of them (the target). So the search result stays valid
                // until the cached target runs out of room — re-searching
                // per moved cell (O(moved × bins²) at scale) returns the
                // same bin bit for bit.
                let mut cached_target: Option<(usize, usize)> = None;
                for cell in cells {
                    if to_free <= 0.0 {
                        break;
                    }
                    let target = match cached_target {
                        Some((tx, ty)) if capacity[tx][ty] - usage[tx][ty] > 0.0 => Some((tx, ty)),
                        _ => {
                            cached_target = nearest_bin_with_room(&usage, &capacity, bins, bx, by);
                            cached_target
                        }
                    };
                    if let Some((tx, ty)) = target {
                        let target_center = Point::new(
                            die.llx + ((tx as f64 + 0.5) * bin_w) as i64,
                            die.lly + ((ty as f64 + 0.5) * bin_h) as i64,
                        );
                        let cell_area = area[cell.0 as usize] as f64;
                        usage[bx][by] -= cell_area;
                        usage[tx][ty] += cell_area;
                        to_free -= cell_area;
                        pos[cell.0 as usize] = die.clamp_point(target_center);
                        moved_any = true;
                    } else {
                        break;
                    }
                }
            }
        }
        if !moved_any {
            break;
        }
    }
}

fn nearest_bin_with_room(
    usage: &[Vec<f64>],
    capacity: &[Vec<f64>],
    bins: usize,
    bx: usize,
    by: usize,
) -> Option<(usize, usize)> {
    for radius in 1..bins {
        let mut best: Option<(f64, (usize, usize))> = None;
        let lo_x = bx.saturating_sub(radius);
        let hi_x = (bx + radius).min(bins - 1);
        let lo_y = by.saturating_sub(radius);
        let hi_y = (by + radius).min(bins - 1);
        for tx in lo_x..=hi_x {
            for ty in lo_y..=hi_y {
                if tx.abs_diff(bx).max(ty.abs_diff(by)) != radius {
                    continue;
                }
                let room = capacity[tx][ty] - usage[tx][ty];
                if room > 0.0 {
                    let d = (tx.abs_diff(bx) + ty.abs_diff(by)) as f64;
                    if best.as_ref().map(|(bd, _)| d < *bd).unwrap_or(true) {
                        best = Some((d, (tx, ty)));
                    }
                }
            }
        }
        if let Some((_, b)) = best {
            return Some(b);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::{DesignBuilder, PortDirection};
    use std::collections::HashMap;

    fn design_with_macro_and_cells() -> (Design, CellId) {
        let mut b = DesignBuilder::new("t");
        let m = b.add_macro("ram", "RAM", 200, 200, "");
        let p = b.add_port("in", PortDirection::Input);
        b.place_port(p, Point::new(0, 500));
        // a chain of cells from the port to the macro
        let mut prev_net = b.add_net("n_in");
        b.connect_port_driver(prev_net, p);
        for i in 0..10 {
            let c = b.add_comb(format!("c{i}"), "");
            b.connect_sink(prev_net, c);
            let n = b.add_net(format!("n{i}"));
            b.connect_driver(n, c);
            prev_net = n;
        }
        b.connect_sink(prev_net, m);
        b.set_die(Rect::new(0, 0, 1000, 1000));
        (b.build(), m)
    }

    #[test]
    fn all_cells_get_positions_inside_die() {
        let (d, m) = design_with_macro_and_cells();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(700, 400), Orientation::N));
        let placement = place_standard_cells(&d, &mp, &PlacerConfig::default());
        assert_eq!(placement.positions.len(), d.num_cells());
        assert_eq!(placement.num_placed(), d.num_cells());
        for (_, p) in placement.placed() {
            assert!(d.die().contains(p));
        }
    }

    #[test]
    fn macro_keeps_its_center() {
        let (d, m) = design_with_macro_and_cells();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(700, 400), Orientation::N));
        let placement = place_standard_cells(&d, &mp, &PlacerConfig::default());
        assert_eq!(placement.position(m).unwrap(), Point::new(800, 500));
    }

    #[test]
    fn chain_cells_sit_between_port_and_macro() {
        let (d, m) = design_with_macro_and_cells();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(800, 400), Orientation::N));
        let placement = place_standard_cells(&d, &mp, &PlacerConfig::default());
        // the middle of the chain should be strictly between the port (x=0)
        // and the macro center (x=900)
        let mid = d.find_cell("c5").unwrap();
        let p = placement.position(mid).unwrap();
        assert!(p.x > 0 && p.x < 900, "chain cell at {p}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (d, m) = design_with_macro_and_cells();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(700, 400), Orientation::N));
        let a = place_standard_cells(&d, &mp, &PlacerConfig::default());
        let b = place_standard_cells(&d, &mp, &PlacerConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn unplaced_cells_report_none() {
        let (d, m) = design_with_macro_and_cells();
        let placement = CellPlacement::with_num_cells(d.num_cells());
        assert_eq!(placement.position(m), None);
        assert_eq!(placement.num_placed(), 0);
        let mut placement = placement;
        placement.set_position(m, Point::new(1, 2));
        assert_eq!(placement.position(m), Some(Point::new(1, 2)));
        assert_eq!(placement.num_placed(), 1);
    }

    #[test]
    fn warm_start_is_deterministic_and_converges_early() {
        let (d, m) = design_with_macro_and_cells();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(700, 400), Orientation::N));
        let cfg = PlacerConfig::default();
        let cold = place_standard_cells(&d, &mp, &cfg);
        let (warm_a, sweeps_a) = place_standard_cells_warm(&d, &mp, &cfg, &cold);
        let (warm_b, sweeps_b) = place_standard_cells_warm(&d, &mp, &cfg, &cold);
        assert_eq!(warm_a, warm_b, "warm start is deterministic for a fixed seed placement");
        assert_eq!(sweeps_a, sweeps_b);
        assert!(
            sweeps_a < cfg.iterations,
            "a converged seed must early-exit the sweep loop (ran {sweeps_a} of {})",
            cfg.iterations
        );
        assert_eq!(warm_a.num_placed(), d.num_cells());
        for (_, p) in warm_a.placed() {
            assert!(d.die().contains(p));
        }
    }

    #[test]
    fn warm_start_falls_back_on_uncovered_cells() {
        let (d, m) = design_with_macro_and_cells();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(700, 400), Orientation::N));
        // a seed that covers nothing (and one out-of-die position) still
        // places every cell
        let mut stale = CellPlacement::with_num_cells(d.num_cells());
        stale.set_position(d.find_cell("c0").unwrap(), Point::new(-5000, -5000));
        let (warm, sweeps) = place_standard_cells_warm(&d, &mp, &PlacerConfig::default(), &stale);
        assert_eq!(warm.num_placed(), d.num_cells());
        assert!(sweeps >= 1);
        for (_, p) in warm.placed() {
            assert!(d.die().contains(p));
        }
    }

    #[test]
    fn spreading_reduces_peak_bin_usage() {
        // many unconnected cells all start at the die center; spreading must
        // distribute them across bins
        let mut b = DesignBuilder::new("t");
        for i in 0..500 {
            b.add_comb(format!("c{i}"), "");
        }
        b.set_die(Rect::new(0, 0, 320, 320));
        let d = b.build();
        let cfg = PlacerConfig { bins: 8, target_utilization: 0.5, ..Default::default() };
        let no_macros: HashMap<CellId, (Point, Orientation)> = HashMap::new();
        let placement = place_standard_cells(&d, &no_macros, &cfg);
        // count cells per bin
        let mut counts = vec![vec![0usize; 8]; 8];
        for (_, p) in placement.placed() {
            let bx = ((p.x as f64 / 40.0) as usize).min(7);
            let by = ((p.y as f64 / 40.0) as usize).min(7);
            counts[bx][by] += 1;
        }
        let peak = counts.iter().flatten().copied().max().unwrap();
        assert!(peak < 500, "cells must not all stay in one bin (peak {peak})");
    }
}
