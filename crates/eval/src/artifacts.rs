//! The typed, byte-budgeted cache of design-derived artifacts.
//!
//! Every expensive structure the flow derives from a design — the bit-level
//! netlist graph `Gnet` ([`graphs::NetGraph`]) and the clustered sequential
//! graph `Gseq` ([`graphs::SeqGraph`]) — lives in one [`ArtifactCache`],
//! keyed by **design identity × artifact kind × construction config** and
//! bounded by a **byte budget** instead of an entry count (one SoC-sized
//! design can out-weigh a hundred small ones, so counting entries bounds
//! nothing). Artifact sizes come from [`netlist::HeapSize`].
//!
//! Ownership model: the cache *owns* its artifacts (`Arc`-shared); callers
//! *borrow* them. Eviction drops the cache's reference only — a flow holding
//! an `Arc<SeqGraph>` keeps using it unchanged, and the next fetch of an
//! evicted artifact rebuilds it from the design, bit-identically (every
//! construction is a pure function of the keyed inputs). Eviction therefore
//! affects timing, never results.
//!
//! The `Gseq` path layers on the `Gnet` path: a sequential-graph miss first
//! fetches the netlist graph through the same cache (building and caching it
//! on a miss) and derives `Gseq` from it — so one warm `NetGraph` serves
//! both the hidap flow's dataflow analysis and every `Gseq` variant, and a
//! "zero NetGraph builds" CI gate can watch a single per-kind miss counter.
//!
//! Per-kind hit/miss/eviction counters and resident-byte totals are exposed
//! through [`ArtifactCache::stats`] for benchmarks, CI gates and the CLI's
//! `--manifest` summary.

use crate::metrics::DesignKey;
use graphs::seqgraph::SeqGraphConfig;
use graphs::{NetGraph, SeqGraph};
use netlist::design::Design;
use netlist::HeapSize;
use std::sync::{Arc, Mutex};

/// The kinds of design-derived artifacts the cache can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// The bit-level netlist connectivity graph `Gnet`.
    NetGraph,
    /// The clustered sequential graph `Gseq`.
    SeqGraph,
}

impl ArtifactKind {
    /// Human-readable kind name (`Gnet` / `Gseq`), for reports.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::NetGraph => "Gnet",
            ArtifactKind::SeqGraph => "Gseq",
        }
    }
}

/// Hit/miss/eviction counters of one artifact kind. A *miss* is a build:
/// `misses` counts how many times this kind's constructor actually ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Fetches served from the cache.
    pub hits: u64,
    /// Fetches that had to build the artifact.
    pub misses: u64,
    /// Entries dropped to stay under the byte budget (or by explicit
    /// design eviction).
    pub evictions: u64,
}

/// A point-in-time snapshot of the cache: per-kind counters plus the
/// resident-byte accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactCacheStats {
    /// Sequential-graph (`Gseq`) counters.
    pub seq: KindStats,
    /// Netlist-graph (`Gnet`) counters.
    pub net: KindStats,
    /// Artifacts currently held.
    pub entries: usize,
    /// Bytes currently held ([`netlist::HeapSize`] accounting).
    pub resident_bytes: usize,
    /// The configured byte budget.
    pub budget_bytes: usize,
}

impl ArtifactCacheStats {
    /// Total fetches served from the cache, across kinds.
    pub fn hits(&self) -> u64 {
        self.seq.hits + self.net.hits
    }

    /// Total fetches that had to build, across kinds.
    pub fn misses(&self) -> u64 {
        self.seq.misses + self.net.misses
    }

    /// Total evictions, across kinds.
    pub fn evictions(&self) -> u64 {
        self.seq.evictions + self.net.evictions
    }
}

/// One cache slot identity: the design, the kind, and (for `Gseq`) the
/// construction config — a flow requesting a pruned graph and the evaluation
/// requesting the full one cache independently.
#[derive(Debug, Clone, PartialEq)]
struct ArtifactKey {
    design: DesignKey,
    kind: ArtifactKind,
    /// `Some` for sequential graphs, `None` for the config-less `Gnet`.
    seq_config: Option<SeqGraphConfig>,
}

/// A cached artifact (the cache's owning reference).
#[derive(Debug, Clone)]
enum ArtifactValue {
    Net(Arc<NetGraph>),
    Seq(Arc<SeqGraph>),
}

#[derive(Debug)]
struct Entry {
    key: ArtifactKey,
    value: ArtifactValue,
    /// [`HeapSize`] bytes of the artifact plus its key, fixed at insert.
    bytes: usize,
}

/// The guarded LRU state: entries ordered least- to most-recently used.
#[derive(Debug)]
struct ArtifactLru {
    entries: Vec<Entry>,
    budget: usize,
    resident: usize,
    seq: KindStats,
    net: KindStats,
}

/// A cheap-clone, thread-safe, byte-budgeted LRU of design-derived
/// artifacts. See the [module docs](self) for the ownership model.
///
/// Clones share the same cache (an `Arc` around the guarded state), which is
/// how a [`crate::Evaluator`], the per-worker clones of a parallel sweep,
/// and every context of a multi-design store end up fetching from one pool.
///
/// The first fetch of an artifact builds it while holding the lock, so
/// concurrent workers wait for one build instead of duplicating it. When an
/// insert pushes the resident bytes over the budget, least-recently-used
/// entries are evicted until the cache fits again — except the entry just
/// touched, so a single artifact larger than the whole budget still serves
/// its design (the budget degenerates to "keep the hottest artifact only").
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    inner: Arc<Mutex<ArtifactLru>>,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ArtifactCache {
    /// The default byte budget (256 MiB) — roomy for test fleets, small
    /// enough that a long-lived service cannot grow without bound.
    pub const DEFAULT_BUDGET_BYTES: usize = 256 << 20;

    /// An empty cache with the default byte budget.
    pub fn new() -> Self {
        Self::with_budget(Self::DEFAULT_BUDGET_BYTES)
    }

    /// An empty cache bounded by `budget` bytes of resident artifacts.
    ///
    /// A budget of 0 keeps exactly the most-recently-used artifact.
    pub fn with_budget(budget: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(ArtifactLru {
                entries: Vec::new(),
                budget,
                resident: 0,
                seq: KindStats::default(),
                net: KindStats::default(),
            })),
        }
    }

    /// The netlist graph `Gnet` of `design`, built on first use and cached.
    pub fn get_or_build_net(&self, design: &Design) -> Arc<NetGraph> {
        let key = DesignKey::of(design);
        let mut lru = self.inner.lock().expect("artifact cache lock");
        let net = lru.net_graph(&key, design);
        lru.enforce_budget();
        net
    }

    /// The sequential graph `Gseq` of `design` under an explicit
    /// construction config. A miss first fetches `Gnet` through this cache
    /// (counting a `net` hit or miss), then derives `Gseq` from it —
    /// bit-identical to `SeqGraph::from_design`, one `NetGraph` build per
    /// design instead of one per variant.
    pub fn get_or_build_seq(&self, design: &Design, config: &SeqGraphConfig) -> Arc<SeqGraph> {
        let key = DesignKey::of(design);
        let mut lru = self.inner.lock().expect("artifact cache lock");
        let seq_key = ArtifactKey {
            design: key.clone(),
            kind: ArtifactKind::SeqGraph,
            seq_config: Some(*config),
        };
        if let Some(ArtifactValue::Seq(gseq)) = lru.touch(&seq_key) {
            lru.seq.hits += 1;
            return gseq;
        }
        let gnet = lru.net_graph(&key, design);
        let gseq = Arc::new(SeqGraph::from_netgraph(design, &gnet, config));
        lru.seq.misses += 1;
        lru.insert(seq_key, ArtifactValue::Seq(gseq.clone()));
        lru.enforce_budget();
        gseq
    }

    /// The sequential graph of `design` under the default construction
    /// config (the evaluation pipeline's graph).
    pub fn get_or_build(&self, design: &Design) -> Arc<SeqGraph> {
        self.get_or_build_seq(design, &SeqGraphConfig::default())
    }

    /// Drops every artifact of the design behind `key` (all kinds, all
    /// configs) and returns how many entries were removed. Used by design
    /// stores when they evict the design itself.
    pub fn evict_design(&self, key: &DesignKey) -> usize {
        let mut lru = self.inner.lock().expect("artifact cache lock");
        let mut removed = 0;
        let mut i = 0;
        while i < lru.entries.len() {
            if lru.entries[i].key.design == *key {
                let entry = lru.entries.remove(i);
                lru.note_eviction(&entry);
                removed += 1;
            } else {
                i += 1;
            }
        }
        removed
    }

    /// Whether any artifact of this kind is cached for the design behind
    /// `key` (any config). Does not touch recency or the counters.
    pub fn contains(&self, kind: ArtifactKind, key: &DesignKey) -> bool {
        self.inner
            .lock()
            .expect("artifact cache lock")
            .entries
            .iter()
            .any(|e| e.key.kind == kind && e.key.design == *key)
    }

    /// A snapshot of the per-kind counters and byte accounting.
    pub fn stats(&self) -> ArtifactCacheStats {
        let lru = self.inner.lock().expect("artifact cache lock");
        ArtifactCacheStats {
            seq: lru.seq,
            net: lru.net,
            entries: lru.entries.len(),
            resident_bytes: lru.resident,
            budget_bytes: lru.budget,
        }
    }

    /// Number of artifacts currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("artifact cache lock").entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently held.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().expect("artifact cache lock").resident
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.inner.lock().expect("artifact cache lock").budget
    }
}

impl ArtifactLru {
    /// Looks a key up; on a hit, refreshes recency and returns the value.
    fn touch(&mut self, key: &ArtifactKey) -> Option<ArtifactValue> {
        let pos = self.entries.iter().position(|e| e.key == *key)?;
        let entry = self.entries.remove(pos);
        let value = entry.value.clone();
        self.entries.push(entry);
        Some(value)
    }

    /// The `Gnet` of `design` (counting a hit or a miss), inserted on a
    /// miss. Shared by the public `Gnet` fetch and the `Gseq` miss path.
    fn net_graph(&mut self, key: &DesignKey, design: &Design) -> Arc<NetGraph> {
        let net_key =
            ArtifactKey { design: key.clone(), kind: ArtifactKind::NetGraph, seq_config: None };
        if let Some(ArtifactValue::Net(gnet)) = self.touch(&net_key) {
            self.net.hits += 1;
            return gnet;
        }
        let gnet = Arc::new(NetGraph::from_design(design));
        self.net.misses += 1;
        self.insert(net_key, ArtifactValue::Net(gnet.clone()));
        gnet
    }

    /// Appends an entry at the most-recent end, accounting its bytes.
    fn insert(&mut self, key: ArtifactKey, value: ArtifactValue) {
        let bytes = std::mem::size_of::<Entry>()
            + key.design.name().len()
            + match &value {
                ArtifactValue::Net(g) => g.resident_bytes(),
                ArtifactValue::Seq(g) => g.resident_bytes(),
            };
        self.resident += bytes;
        self.entries.push(Entry { key, value, bytes });
    }

    /// Evicts least-recently-used entries until the cache fits its budget,
    /// always keeping the most-recent entry.
    fn enforce_budget(&mut self) {
        while self.resident > self.budget && self.entries.len() > 1 {
            let entry = self.entries.remove(0);
            self.note_eviction(&entry);
        }
    }

    /// Books an eviction: byte accounting plus the per-kind counter.
    fn note_eviction(&mut self, entry: &Entry) {
        self.resident -= entry.bytes;
        match entry.key.kind {
            ArtifactKind::NetGraph => self.net.evictions += 1,
            ArtifactKind::SeqGraph => self.seq.evictions += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Rect;
    use netlist::design::DesignBuilder;

    /// Small designs with distinct identities, for LRU tests.
    fn keyed_designs() -> Vec<Design> {
        ["da", "db", "dc"]
            .iter()
            .map(|name| {
                let mut b = DesignBuilder::new(*name);
                let m = b.add_macro(format!("{name}_ram"), "RAM", 50_000, 50_000, "");
                let f = b.add_flop(format!("{name}_reg[0]"), "");
                let n = b.add_net("n");
                b.connect_driver(n, f);
                b.connect_sink(n, m);
                b.set_die(Rect::new(0, 0, 400_000, 400_000));
                b.build()
            })
            .collect()
    }

    /// The resident bytes one design's `Gnet` + default `Gseq` occupy.
    fn bytes_per_design(design: &Design) -> usize {
        let probe = ArtifactCache::with_budget(usize::MAX);
        probe.get_or_build(design);
        probe.resident_bytes()
    }

    #[test]
    fn seq_fetch_counts_hits_and_misses_and_caches_the_net_graph() {
        let designs = keyed_designs();
        let cache = ArtifactCache::new();
        assert!(cache.is_empty());
        let first = cache.get_or_build(&designs[0]);
        let stats = cache.stats();
        assert_eq!((stats.seq.hits, stats.seq.misses), (0, 1));
        // the Gseq build pulled Gnet through the cache: one net miss
        assert_eq!((stats.net.hits, stats.net.misses), (0, 1));
        assert_eq!(stats.entries, 2);
        let again = cache.get_or_build(&designs[0]);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(cache.stats().seq.hits, 1);
        // a seq hit does not touch the net counters
        assert_eq!(cache.stats().net.hits, 0);
        // fetching the net graph explicitly is a hit now
        let key = DesignKey::of(&designs[0]);
        assert!(cache.contains(ArtifactKind::NetGraph, &key));
        cache.get_or_build_net(&designs[0]);
        assert_eq!(cache.stats().net.hits, 1);
    }

    #[test]
    fn seq_variants_cache_independently_but_share_one_net_graph() {
        let designs = keyed_designs();
        let cache = ArtifactCache::new();
        let full = cache.get_or_build_seq(&designs[0], &SeqGraphConfig { min_register_bits: 1 });
        let pruned = cache.get_or_build_seq(&designs[0], &SeqGraphConfig { min_register_bits: 8 });
        assert!(!Arc::ptr_eq(&full, &pruned), "distinct configs are distinct entries");
        let stats = cache.stats();
        assert_eq!(stats.seq.misses, 2);
        // the second variant reused the first's Gnet
        assert_eq!((stats.net.misses, stats.net.hits), (1, 1));
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn cached_seq_graph_is_bit_identical_to_a_direct_build() {
        let designs = keyed_designs();
        let cache = ArtifactCache::new();
        let cfg = SeqGraphConfig::default();
        let cached = cache.get_or_build_seq(&designs[0], &cfg);
        assert_eq!(*cached, SeqGraph::from_design(&designs[0], &cfg));
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_first() {
        let designs = keyed_designs();
        let per_design = bytes_per_design(&designs[0]);
        // room for two designs' worth of artifacts (the designs are
        // near-identical in size), plus slack for name-length differences
        let cache = ArtifactCache::with_budget(2 * per_design + per_design / 2);
        cache.get_or_build(&designs[0]);
        cache.get_or_build(&designs[1]);
        // touch both of design 0's artifacts so design 1's entries become
        // the eviction candidates (recency is per entry, not per design)
        cache.get_or_build(&designs[0]);
        cache.get_or_build_net(&designs[0]);
        cache.get_or_build(&designs[2]);
        let (k0, k1, k2) =
            (DesignKey::of(&designs[0]), DesignKey::of(&designs[1]), DesignKey::of(&designs[2]));
        assert!(cache.contains(ArtifactKind::SeqGraph, &k0));
        assert!(!cache.contains(ArtifactKind::SeqGraph, &k1), "LRU design was evicted");
        assert!(cache.contains(ArtifactKind::SeqGraph, &k2));
        assert!(cache.stats().evictions() >= 2, "design 1's Gnet and Gseq both left");
        assert!(cache.resident_bytes() <= cache.budget_bytes());
        // re-requesting the evicted design rebuilds it (a fresh miss)
        let misses = cache.stats().seq.misses;
        cache.get_or_build(&designs[1]);
        assert_eq!(cache.stats().seq.misses, misses + 1);
    }

    #[test]
    fn zero_budget_keeps_only_the_most_recent_artifact() {
        let designs = keyed_designs();
        let cache = ArtifactCache::with_budget(0);
        let a = cache.get_or_build(&designs[0]);
        // the Gseq insert evicted the Gnet that preceded it
        assert_eq!(cache.len(), 1);
        let again = cache.get_or_build(&designs[0]);
        assert!(Arc::ptr_eq(&a, &again), "the hottest artifact still serves its design");
        cache.get_or_build(&designs[1]);
        assert_eq!(cache.len(), 1);
        assert!(!cache.contains(ArtifactKind::SeqGraph, &DesignKey::of(&designs[0])));
    }

    #[test]
    fn evict_design_removes_every_kind_and_config() {
        let designs = keyed_designs();
        let cache = ArtifactCache::new();
        cache.get_or_build_seq(&designs[0], &SeqGraphConfig { min_register_bits: 1 });
        cache.get_or_build_seq(&designs[0], &SeqGraphConfig { min_register_bits: 8 });
        cache.get_or_build(&designs[1]);
        let key = DesignKey::of(&designs[0]);
        assert_eq!(cache.evict_design(&key), 3, "two Gseq variants + one Gnet");
        assert!(!cache.contains(ArtifactKind::SeqGraph, &key));
        assert!(!cache.contains(ArtifactKind::NetGraph, &key));
        assert!(cache.contains(ArtifactKind::SeqGraph, &DesignKey::of(&designs[1])));
        let stats = cache.stats();
        assert_eq!(stats.evictions(), 3);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn clones_share_one_pool() {
        let designs = keyed_designs();
        let cache = ArtifactCache::new();
        let clone = cache.clone();
        let a = cache.get_or_build(&designs[0]);
        let b = clone.get_or_build(&designs[0]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(clone.stats().seq.hits, 1);
    }

    #[test]
    fn resident_bytes_track_inserts_and_evictions() {
        let designs = keyed_designs();
        let cache = ArtifactCache::new();
        assert_eq!(cache.resident_bytes(), 0);
        cache.get_or_build(&designs[0]);
        let after_one = cache.resident_bytes();
        assert!(after_one > 0);
        cache.get_or_build(&designs[1]);
        assert!(cache.resident_bytes() > after_one);
        cache.evict_design(&DesignKey::of(&designs[0]));
        cache.evict_design(&DesignKey::of(&designs[1]));
        assert_eq!(cache.resident_bytes(), 0, "accounting returns to zero when emptied");
    }
}
