//! The typed, byte-budgeted cache of design-derived artifacts.
//!
//! Every expensive structure the flow derives from a design — the bit-level
//! netlist graph `Gnet` ([`graphs::NetGraph`]) and the clustered sequential
//! graph `Gseq` ([`graphs::SeqGraph`]) — lives in one [`ArtifactCache`],
//! keyed by **design identity × artifact kind × construction config** and
//! bounded by a **byte budget** instead of an entry count (one SoC-sized
//! design can out-weigh a hundred small ones, so counting entries bounds
//! nothing). Artifact sizes come from [`netlist::HeapSize`].
//!
//! Ownership model: the cache *owns* its artifacts (`Arc`-shared); callers
//! *borrow* them. Eviction drops the cache's reference only — a flow holding
//! an `Arc<SeqGraph>` keeps using it unchanged, and the next fetch of an
//! evicted artifact rebuilds it from the design, bit-identically (every
//! construction is a pure function of the keyed inputs). Eviction therefore
//! affects timing, never results.
//!
//! The `Gseq` path layers on the `Gnet` path: a sequential-graph miss first
//! fetches the netlist graph through the same cache (building and caching it
//! on a miss) and derives `Gseq` from it — so one warm `NetGraph` serves
//! both the hidap flow's dataflow analysis and every `Gseq` variant, and a
//! "zero NetGraph builds" CI gate can watch a single per-kind miss counter.
//!
//! Per-kind hit/miss/spill/revive/eviction counters and resident-byte totals
//! are exposed through [`ArtifactCache::stats`] for benchmarks, CI gates and
//! the CLI's `--manifest` summary.
//!
//! # The three tiers (see `docs/MEMORY.md`)
//!
//! With a spill directory attached ([`ArtifactCache::with_spill_tier`]),
//! eviction demotes the artifact to a content-addressed disk file instead of
//! discarding it, and a later miss *revives* it by deserialization before
//! falling back to reconstruction — resident → spilled → rebuilt. A revive
//! is counted separately from a miss (`misses` still means "the constructor
//! ran"), so a "zero graph rebuilds" gate keeps watching the miss counters.
//!
//! # Cost-aware eviction
//!
//! Eviction is not flat LRU: each entry records the wall time its
//! construction (or revival) took, and the victim is the entry with the
//! lowest *build-nanoseconds per resident byte* — the cheapest entry to
//! regain relative to the bytes it frees. An expensive `Gseq` is therefore
//! pinned while a cheap same-size `Gnet` is shed first; ties fall back to
//! least-recently-used, and the most-recently-touched entry is never the
//! victim. Measured time feeds *only* this choice — eviction affects
//! timing, never results.

use crate::metrics::DesignKey;
use crate::spill::SpillTier;
use graphs::seqgraph::SeqGraphConfig;
use graphs::{NetGraph, SeqGraph};
use netlist::design::Design;
use netlist::HeapSize;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The kinds of design-derived artifacts the cache can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// The bit-level netlist connectivity graph `Gnet`.
    NetGraph,
    /// The clustered sequential graph `Gseq`.
    SeqGraph,
}

impl ArtifactKind {
    /// Human-readable kind name (`Gnet` / `Gseq`), for reports.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::NetGraph => "Gnet",
            ArtifactKind::SeqGraph => "Gseq",
        }
    }
}

/// Hit/miss/spill/revive/eviction counters of one artifact kind. A *miss*
/// is a build: `misses` counts how many times this kind's constructor
/// actually ran — a revive from the disk spill tier is **not** a miss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Fetches served from the cache.
    pub hits: u64,
    /// Fetches that had to build the artifact.
    pub misses: u64,
    /// Entries dropped to stay under the byte budget (or by explicit
    /// design eviction).
    pub evictions: u64,
    /// Evictions that demoted the artifact to the disk spill tier.
    pub spills: u64,
    /// Fetches served by deserializing a spilled artifact instead of
    /// rebuilding it.
    pub revives: u64,
}

/// A point-in-time snapshot of the cache: per-kind counters plus the
/// resident-byte accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactCacheStats {
    /// Sequential-graph (`Gseq`) counters.
    pub seq: KindStats,
    /// Netlist-graph (`Gnet`) counters.
    pub net: KindStats,
    /// Artifacts currently held.
    pub entries: usize,
    /// Bytes currently held ([`netlist::HeapSize`] accounting).
    pub resident_bytes: usize,
    /// The configured byte budget.
    pub budget_bytes: usize,
}

impl ArtifactCacheStats {
    /// Total fetches served from the cache, across kinds.
    pub fn hits(&self) -> u64 {
        self.seq.hits + self.net.hits
    }

    /// Total fetches that had to build, across kinds.
    pub fn misses(&self) -> u64 {
        self.seq.misses + self.net.misses
    }

    /// Total evictions, across kinds.
    pub fn evictions(&self) -> u64 {
        self.seq.evictions + self.net.evictions
    }

    /// Total artifacts demoted to the disk spill tier, across kinds.
    pub fn spills(&self) -> u64 {
        self.seq.spills + self.net.spills
    }

    /// Total fetches served by deserializing a spilled artifact, across
    /// kinds.
    pub fn revives(&self) -> u64 {
        self.seq.revives + self.net.revives
    }
}

/// One cache slot identity: the design, the kind, and (for `Gseq`) the
/// construction config — a flow requesting a pruned graph and the evaluation
/// requesting the full one cache independently.
#[derive(Debug, Clone, PartialEq)]
struct ArtifactKey {
    design: DesignKey,
    kind: ArtifactKind,
    /// `Some` for sequential graphs, `None` for the config-less `Gnet`.
    seq_config: Option<SeqGraphConfig>,
}

impl ArtifactKey {
    /// The content address of this key in the spill tier: the file stem
    /// (kind prefix + 16 hex digits) and the fingerprint written into the
    /// file header, folding the design identity and the construction config.
    fn spill_identity(&self) -> (String, u64) {
        let mut h = netlist::Fnv1a::new();
        h.write_u64(self.design.fingerprint());
        h.write_sep();
        match self.seq_config {
            None => h.write_sep(),
            Some(cfg) => h.write_u64(cfg.min_register_bits),
        }
        let fp = h.finish();
        let prefix = match self.kind {
            ArtifactKind::NetGraph => "gnet",
            ArtifactKind::SeqGraph => "gseq",
        };
        (format!("{prefix}-{fp:016x}"), fp)
    }
}

/// A cached artifact (the cache's owning reference).
#[derive(Debug, Clone)]
enum ArtifactValue {
    Net(Arc<NetGraph>),
    Seq(Arc<SeqGraph>),
}

#[derive(Debug)]
struct Entry {
    key: ArtifactKey,
    value: ArtifactValue,
    /// [`HeapSize`] bytes of the artifact plus its key, fixed at insert.
    bytes: usize,
    /// Measured wall nanoseconds the artifact's construction (or revival)
    /// took — the numerator of the cost-aware eviction ratio.
    cost_nanos: u64,
}

impl Entry {
    /// Build-nanoseconds per resident byte: the cost-aware eviction metric.
    /// Lower means cheaper to regain per byte freed — evicted first.
    fn cost_per_byte(&self) -> f64 {
        self.cost_nanos as f64 / self.bytes.max(1) as f64
    }
}

/// The guarded LRU state: entries ordered least- to most-recently used.
#[derive(Debug)]
struct ArtifactLru {
    entries: Vec<Entry>,
    budget: usize,
    resident: usize,
    seq: KindStats,
    net: KindStats,
    /// The disk spill tier, when one is attached (`None` = evictions
    /// discard).
    spill: Option<SpillTier>,
}

/// A cheap-clone, thread-safe, byte-budgeted LRU of design-derived
/// artifacts. See the [module docs](self) for the ownership model.
///
/// Clones share the same cache (an `Arc` around the guarded state), which is
/// how a [`crate::Evaluator`], the per-worker clones of a parallel sweep,
/// and every context of a multi-design store end up fetching from one pool.
///
/// The first fetch of an artifact builds it while holding the lock, so
/// concurrent workers wait for one build instead of duplicating it. When an
/// insert pushes the resident bytes over the budget, least-recently-used
/// entries are evicted until the cache fits again — except the entry just
/// touched, so a single artifact larger than the whole budget still serves
/// its design (the budget degenerates to "keep the hottest artifact only").
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    inner: Arc<Mutex<ArtifactLru>>,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ArtifactCache {
    /// The default byte budget (256 MiB) — roomy for test fleets, small
    /// enough that a long-lived service cannot grow without bound.
    pub const DEFAULT_BUDGET_BYTES: usize = 256 << 20;

    /// An empty cache with the default byte budget.
    pub fn new() -> Self {
        Self::with_budget(Self::DEFAULT_BUDGET_BYTES)
    }

    /// An empty cache bounded by `budget` bytes of resident artifacts.
    ///
    /// A budget of 0 keeps exactly the most-recently-used artifact.
    pub fn with_budget(budget: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(ArtifactLru {
                entries: Vec::new(),
                budget,
                resident: 0,
                seq: KindStats::default(),
                net: KindStats::default(),
                spill: None,
            })),
        }
    }

    /// Attaches a disk spill tier: evictions demote artifacts to
    /// content-addressed files under the tier's directory, and misses try
    /// deserialization before rebuilding (see the [module docs](self)).
    pub fn with_spill_tier(self, tier: SpillTier) -> Self {
        self.inner.lock().expect("artifact cache lock").spill = Some(tier);
        self
    }

    /// The attached spill tier, if any (clones address the same directory).
    pub fn spill_tier(&self) -> Option<SpillTier> {
        self.inner.lock().expect("artifact cache lock").spill.clone()
    }

    /// The netlist graph `Gnet` of `design`, built on first use and cached.
    pub fn get_or_build_net(&self, design: &Design) -> Arc<NetGraph> {
        let key = DesignKey::of(design);
        let mut lru = self.inner.lock().expect("artifact cache lock");
        let net = lru.net_graph(&key, design);
        lru.enforce_budget();
        net
    }

    /// The sequential graph `Gseq` of `design` under an explicit
    /// construction config. A miss first fetches `Gnet` through this cache
    /// (counting a `net` hit or miss), then derives `Gseq` from it —
    /// bit-identical to `SeqGraph::from_design`, one `NetGraph` build per
    /// design instead of one per variant.
    pub fn get_or_build_seq(&self, design: &Design, config: &SeqGraphConfig) -> Arc<SeqGraph> {
        let key = DesignKey::of(design);
        let mut lru = self.inner.lock().expect("artifact cache lock");
        let seq_key = ArtifactKey {
            design: key.clone(),
            kind: ArtifactKind::SeqGraph,
            seq_config: Some(*config),
        };
        if let Some(ArtifactValue::Seq(gseq)) = lru.touch(&seq_key) {
            lru.seq.hits += 1;
            return gseq;
        }
        // spilled? revive by deserialization — no Gnet needed, no miss
        if let Some((ArtifactValue::Seq(gseq), cost)) = lru.revive(&seq_key) {
            lru.seq.revives += 1;
            lru.insert(seq_key, ArtifactValue::Seq(gseq.clone()), cost);
            lru.enforce_budget();
            return gseq;
        }
        let gnet = lru.net_graph(&key, design);
        // timing feeds only the eviction policy, never a result
        let start = Instant::now(); // lint:allow(wall-clock): eviction-cost measurement
        let gseq = Arc::new(SeqGraph::from_netgraph(design, &gnet, config));
        let cost = start.elapsed().as_nanos() as u64;
        lru.seq.misses += 1;
        lru.insert(seq_key, ArtifactValue::Seq(gseq.clone()), cost);
        lru.enforce_budget();
        gseq
    }

    /// The sequential graph of `design` under the default construction
    /// config (the evaluation pipeline's graph).
    pub fn get_or_build(&self, design: &Design) -> Arc<SeqGraph> {
        self.get_or_build_seq(design, &SeqGraphConfig::default())
    }

    /// Drops every artifact of the design behind `key` (all kinds, all
    /// configs) and returns how many entries were removed. Used by design
    /// stores when they evict the design itself.
    pub fn evict_design(&self, key: &DesignKey) -> usize {
        let mut lru = self.inner.lock().expect("artifact cache lock");
        let mut removed = 0;
        let mut i = 0;
        while i < lru.entries.len() {
            if lru.entries[i].key.design == *key {
                let entry = lru.entries.remove(i);
                lru.evict(entry);
                removed += 1;
            } else {
                i += 1;
            }
        }
        removed
    }

    /// Whether any artifact of this kind is cached for the design behind
    /// `key` (any config). Does not touch recency or the counters.
    pub fn contains(&self, kind: ArtifactKind, key: &DesignKey) -> bool {
        self.inner
            .lock()
            .expect("artifact cache lock")
            .entries
            .iter()
            .any(|e| e.key.kind == kind && e.key.design == *key)
    }

    /// A snapshot of the per-kind counters and byte accounting.
    pub fn stats(&self) -> ArtifactCacheStats {
        let lru = self.inner.lock().expect("artifact cache lock");
        ArtifactCacheStats {
            seq: lru.seq,
            net: lru.net,
            entries: lru.entries.len(),
            resident_bytes: lru.resident,
            budget_bytes: lru.budget,
        }
    }

    /// Number of artifacts currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("artifact cache lock").entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently held.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().expect("artifact cache lock").resident
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.inner.lock().expect("artifact cache lock").budget
    }

    /// Test hook: pins the recorded build cost of every currently resident
    /// entry matching `kind` and `key` (any config), making the cost-aware
    /// eviction order deterministic under test.
    #[cfg(test)]
    fn set_cost(&self, kind: ArtifactKind, key: &DesignKey, cost_nanos: u64) {
        let mut lru = self.inner.lock().expect("artifact cache lock");
        for entry in &mut lru.entries {
            if entry.key.kind == kind && entry.key.design == *key {
                entry.cost_nanos = cost_nanos;
            }
        }
    }
}

impl ArtifactLru {
    /// Looks a key up; on a hit, refreshes recency and returns the value.
    fn touch(&mut self, key: &ArtifactKey) -> Option<ArtifactValue> {
        let pos = self.entries.iter().position(|e| e.key == *key)?;
        let entry = self.entries.remove(pos);
        let value = entry.value.clone();
        self.entries.push(entry);
        Some(value)
    }

    /// The `Gnet` of `design` (counting a hit, a revive or a miss), inserted
    /// when absent. Shared by the public `Gnet` fetch and the `Gseq` miss
    /// path.
    fn net_graph(&mut self, key: &DesignKey, design: &Design) -> Arc<NetGraph> {
        let net_key =
            ArtifactKey { design: key.clone(), kind: ArtifactKind::NetGraph, seq_config: None };
        if let Some(ArtifactValue::Net(gnet)) = self.touch(&net_key) {
            self.net.hits += 1;
            return gnet;
        }
        if let Some((ArtifactValue::Net(gnet), cost)) = self.revive(&net_key) {
            self.net.revives += 1;
            self.insert(net_key, ArtifactValue::Net(gnet.clone()), cost);
            return gnet;
        }
        // timing feeds only the eviction policy, never a result
        let start = Instant::now(); // lint:allow(wall-clock): eviction-cost measurement
        let gnet = Arc::new(NetGraph::from_design(design));
        let cost = start.elapsed().as_nanos() as u64;
        self.net.misses += 1;
        self.insert(net_key, ArtifactValue::Net(gnet.clone()), cost);
        gnet
    }

    /// Tries the disk spill tier for `key`: on a validated decode, returns
    /// the artifact and the wall nanoseconds the revival took (its eviction
    /// cost — a revived entry is as cheap to regain as one deserialization).
    /// Any failure (no tier, no file, corrupt file, decode error) is `None`
    /// and the caller falls back to a rebuild.
    fn revive(&mut self, key: &ArtifactKey) -> Option<(ArtifactValue, u64)> {
        let tier = self.spill.as_ref()?;
        let (stem, fp) = key.spill_identity();
        let start = Instant::now(); // lint:allow(wall-clock): eviction-cost measurement
        let payload = tier.load(&stem, fp)?;
        let value = match key.kind {
            ArtifactKind::NetGraph => ArtifactValue::Net(Arc::new(NetGraph::decode(&payload)?)),
            ArtifactKind::SeqGraph => ArtifactValue::Seq(Arc::new(SeqGraph::decode(&payload)?)),
        };
        Some((value, start.elapsed().as_nanos() as u64))
    }

    /// Appends an entry at the most-recent end, accounting its bytes.
    fn insert(&mut self, key: ArtifactKey, value: ArtifactValue, cost_nanos: u64) {
        let bytes = std::mem::size_of::<Entry>()
            + key.design.name().len()
            + match &value {
                ArtifactValue::Net(g) => g.resident_bytes(),
                ArtifactValue::Seq(g) => g.resident_bytes(),
            };
        self.resident += bytes;
        self.entries.push(Entry { key, value, bytes, cost_nanos });
    }

    /// Evicts entries until the cache fits its budget, always keeping the
    /// most-recent entry. The victim each round is the entry cheapest to
    /// regain per byte freed (lowest [`Entry::cost_per_byte`]); ties go to
    /// the least recently used.
    fn enforce_budget(&mut self) {
        while self.resident > self.budget && self.entries.len() > 1 {
            let victim = self.cheapest_victim();
            let entry = self.entries.remove(victim);
            self.evict(entry);
        }
    }

    /// Index of the eviction victim: lowest cost-per-byte among every entry
    /// but the most-recent one; the earliest (least recently used) entry
    /// wins ties.
    fn cheapest_victim(&self) -> usize {
        let candidates = &self.entries[..self.entries.len() - 1];
        let mut best = 0;
        let mut best_ratio = f64::INFINITY;
        for (i, entry) in candidates.iter().enumerate() {
            let ratio = entry.cost_per_byte();
            if ratio < best_ratio {
                best = i;
                best_ratio = ratio;
            }
        }
        best
    }

    /// Books an eviction: demote to the spill tier when one is attached
    /// (counting a spill if the file lands), then the byte accounting and
    /// the per-kind eviction counter.
    fn evict(&mut self, entry: Entry) {
        if let Some(tier) = &self.spill {
            let (stem, fp) = entry.key.spill_identity();
            let mut payload = Vec::new();
            match &entry.value {
                ArtifactValue::Net(g) => g.encode(&mut payload),
                ArtifactValue::Seq(g) => g.encode(&mut payload),
            }
            if tier.store(&stem, fp, &payload) {
                match entry.key.kind {
                    ArtifactKind::NetGraph => self.net.spills += 1,
                    ArtifactKind::SeqGraph => self.seq.spills += 1,
                }
            }
        }
        self.resident -= entry.bytes;
        match entry.key.kind {
            ArtifactKind::NetGraph => self.net.evictions += 1,
            ArtifactKind::SeqGraph => self.seq.evictions += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Rect;
    use netlist::design::DesignBuilder;

    /// Small designs with distinct identities, for LRU tests.
    fn keyed_designs() -> Vec<Design> {
        ["da", "db", "dc"]
            .iter()
            .map(|name| {
                let mut b = DesignBuilder::new(*name);
                let m = b.add_macro(format!("{name}_ram"), "RAM", 50_000, 50_000, "");
                let f = b.add_flop(format!("{name}_reg[0]"), "");
                let n = b.add_net("n");
                b.connect_driver(n, f);
                b.connect_sink(n, m);
                b.set_die(Rect::new(0, 0, 400_000, 400_000));
                b.build()
            })
            .collect()
    }

    /// The resident bytes one design's `Gnet` + default `Gseq` occupy.
    fn bytes_per_design(design: &Design) -> usize {
        let probe = ArtifactCache::with_budget(usize::MAX);
        probe.get_or_build(design);
        probe.resident_bytes()
    }

    #[test]
    fn seq_fetch_counts_hits_and_misses_and_caches_the_net_graph() {
        let designs = keyed_designs();
        let cache = ArtifactCache::new();
        assert!(cache.is_empty());
        let first = cache.get_or_build(&designs[0]);
        let stats = cache.stats();
        assert_eq!((stats.seq.hits, stats.seq.misses), (0, 1));
        // the Gseq build pulled Gnet through the cache: one net miss
        assert_eq!((stats.net.hits, stats.net.misses), (0, 1));
        assert_eq!(stats.entries, 2);
        let again = cache.get_or_build(&designs[0]);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(cache.stats().seq.hits, 1);
        // a seq hit does not touch the net counters
        assert_eq!(cache.stats().net.hits, 0);
        // fetching the net graph explicitly is a hit now
        let key = DesignKey::of(&designs[0]);
        assert!(cache.contains(ArtifactKind::NetGraph, &key));
        cache.get_or_build_net(&designs[0]);
        assert_eq!(cache.stats().net.hits, 1);
    }

    #[test]
    fn seq_variants_cache_independently_but_share_one_net_graph() {
        let designs = keyed_designs();
        let cache = ArtifactCache::new();
        let full = cache.get_or_build_seq(&designs[0], &SeqGraphConfig { min_register_bits: 1 });
        let pruned = cache.get_or_build_seq(&designs[0], &SeqGraphConfig { min_register_bits: 8 });
        assert!(!Arc::ptr_eq(&full, &pruned), "distinct configs are distinct entries");
        let stats = cache.stats();
        assert_eq!(stats.seq.misses, 2);
        // the second variant reused the first's Gnet
        assert_eq!((stats.net.misses, stats.net.hits), (1, 1));
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn cached_seq_graph_is_bit_identical_to_a_direct_build() {
        let designs = keyed_designs();
        let cache = ArtifactCache::new();
        let cfg = SeqGraphConfig::default();
        let cached = cache.get_or_build_seq(&designs[0], &cfg);
        assert_eq!(*cached, SeqGraph::from_design(&designs[0], &cfg));
    }

    #[test]
    fn byte_budget_evicts_cheapest_per_byte_first() {
        let designs = keyed_designs();
        let per_design = bytes_per_design(&designs[0]);
        // room for two designs' worth of artifacts (the designs are
        // near-identical in size), plus slack for name-length differences
        let cache = ArtifactCache::with_budget(2 * per_design + per_design / 2);
        cache.get_or_build(&designs[0]);
        cache.get_or_build(&designs[1]);
        let (k0, k1, k2) =
            (DesignKey::of(&designs[0]), DesignKey::of(&designs[1]), DesignKey::of(&designs[2]));
        // pin costs: design 0 was *older* but expensive to build, design 1
        // newer but free — the cost-aware policy must shed design 1 first,
        // where flat LRU would have shed design 0
        for kind in [ArtifactKind::NetGraph, ArtifactKind::SeqGraph] {
            cache.set_cost(kind, &k0, u64::MAX / 2);
            cache.set_cost(kind, &k1, 0);
        }
        cache.get_or_build(&designs[2]);
        assert!(cache.contains(ArtifactKind::SeqGraph, &k0), "expensive entries are pinned");
        assert!(!cache.contains(ArtifactKind::SeqGraph, &k1), "cheapest-per-byte was evicted");
        assert!(cache.contains(ArtifactKind::SeqGraph, &k2));
        assert!(cache.stats().evictions() >= 2, "design 1's Gnet and Gseq both left");
        assert!(cache.resident_bytes() <= cache.budget_bytes());
        // re-requesting the evicted design rebuilds it (a fresh miss —
        // no spill tier is attached here)
        let misses = cache.stats().seq.misses;
        cache.get_or_build(&designs[1]);
        assert_eq!(cache.stats().seq.misses, misses + 1);
    }

    #[test]
    fn expensive_gseq_is_pinned_while_cheap_gnet_is_shed() {
        let designs = keyed_designs();
        let cache = ArtifactCache::with_budget(usize::MAX);
        cache.get_or_build(&designs[0]);
        cache.get_or_build(&designs[1]);
        let (k0, k1) = (DesignKey::of(&designs[0]), DesignKey::of(&designs[1]));
        // every Gnet free to rebuild, every Gseq expensive
        for k in [&k0, &k1] {
            cache.set_cost(ArtifactKind::NetGraph, k, 0);
            cache.set_cost(ArtifactKind::SeqGraph, k, u64::MAX / 2);
        }
        // shrink the budget one entry at a time and watch the victim order:
        // both cheap Gnets must go (oldest first) before any pinned Gseq
        let shrink = || {
            let mut lru = cache.inner.lock().expect("artifact cache lock");
            lru.budget = lru.resident - 1;
            lru.enforce_budget();
        };
        shrink();
        assert!(!cache.contains(ArtifactKind::NetGraph, &k0), "oldest cheap Gnet goes first");
        assert!(cache.contains(ArtifactKind::NetGraph, &k1));
        shrink();
        assert!(!cache.contains(ArtifactKind::NetGraph, &k1), "second cheap Gnet next");
        assert!(cache.contains(ArtifactKind::SeqGraph, &k0), "expensive Gseq still pinned");
        shrink();
        assert!(!cache.contains(ArtifactKind::SeqGraph, &k0), "only then the older Gseq");
        assert!(cache.contains(ArtifactKind::SeqGraph, &k1));
    }

    fn spill_scratch(test: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hidap-artifacts-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn evicted_artifacts_spill_and_revive_bit_identically() {
        let designs = keyed_designs();
        let dir = spill_scratch("revive");
        let cache = ArtifactCache::new().with_spill_tier(crate::SpillTier::new(&dir));
        let cfg = SeqGraphConfig::default();
        let fresh_seq = cache.get_or_build_seq(&designs[0], &cfg);
        let fresh_net = cache.get_or_build_net(&designs[0]);
        let key = DesignKey::of(&designs[0]);
        assert_eq!(cache.evict_design(&key), 2);
        let stats = cache.stats();
        assert_eq!((stats.net.spills, stats.seq.spills), (1, 1), "both kinds spilled");

        // the next fetch revives from disk: no rebuild (misses frozen)
        let revived_seq = cache.get_or_build_seq(&designs[0], &cfg);
        let revived_net = cache.get_or_build_net(&designs[0]);
        let stats = cache.stats();
        assert_eq!((stats.net.misses, stats.seq.misses), (1, 1), "zero graph rebuilds");
        assert_eq!((stats.net.revives, stats.seq.revives), (1, 1));
        assert_eq!(*revived_seq, *fresh_seq, "revived Gseq is bit-identical");
        assert_eq!(*revived_net, *fresh_net, "revived Gnet is bit-identical");
        assert_eq!(*revived_seq, SeqGraph::from_design(&designs[0], &cfg));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spill_files_degrade_to_a_counted_rebuild_miss() {
        let designs = keyed_designs();
        let dir = spill_scratch("corrupt");
        let cache = ArtifactCache::new().with_spill_tier(crate::SpillTier::new(&dir));
        cache.get_or_build(&designs[0]);
        cache.evict_design(&DesignKey::of(&designs[0]));
        assert_eq!(cache.stats().spills(), 2);
        // truncate every spill file in place
        for entry in std::fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
            let bytes = std::fs::read(entry.path()).unwrap();
            std::fs::write(entry.path(), &bytes[..bytes.len() / 2]).unwrap();
        }
        let revived = cache.get_or_build(&designs[0]);
        let stats = cache.stats();
        assert_eq!(stats.revives(), 0, "corrupt files revive nothing");
        assert_eq!((stats.net.misses, stats.seq.misses), (2, 2), "degraded to a rebuild miss");
        assert_eq!(*revived, SeqGraph::from_design(&designs[0], &SeqGraphConfig::default()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_spill_dir_runs_like_no_spill_at_all() {
        let designs = keyed_designs();
        let root = spill_scratch("unwritable");
        std::fs::create_dir_all(&root).unwrap();
        let anchor = root.join("anchor");
        std::fs::write(&anchor, b"").unwrap();
        // the spill "directory" nests under a regular file: every store and
        // load fails, and the cache must behave exactly like spill-less
        let cache =
            ArtifactCache::new().with_spill_tier(crate::SpillTier::new(anchor.join("nested")));
        cache.get_or_build(&designs[0]);
        cache.evict_design(&DesignKey::of(&designs[0]));
        let stats = cache.stats();
        assert_eq!(stats.spills(), 0, "nothing lands on disk");
        assert_eq!(stats.evictions(), 2, "evictions still happen");
        cache.get_or_build(&designs[0]);
        let stats = cache.stats();
        assert_eq!(stats.revives(), 0);
        assert_eq!((stats.net.misses, stats.seq.misses), (2, 2), "rebuild misses as usual");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn zero_budget_keeps_only_the_most_recent_artifact() {
        let designs = keyed_designs();
        let cache = ArtifactCache::with_budget(0);
        let a = cache.get_or_build(&designs[0]);
        // the Gseq insert evicted the Gnet that preceded it
        assert_eq!(cache.len(), 1);
        let again = cache.get_or_build(&designs[0]);
        assert!(Arc::ptr_eq(&a, &again), "the hottest artifact still serves its design");
        cache.get_or_build(&designs[1]);
        assert_eq!(cache.len(), 1);
        assert!(!cache.contains(ArtifactKind::SeqGraph, &DesignKey::of(&designs[0])));
    }

    #[test]
    fn evict_design_removes_every_kind_and_config() {
        let designs = keyed_designs();
        let cache = ArtifactCache::new();
        cache.get_or_build_seq(&designs[0], &SeqGraphConfig { min_register_bits: 1 });
        cache.get_or_build_seq(&designs[0], &SeqGraphConfig { min_register_bits: 8 });
        cache.get_or_build(&designs[1]);
        let key = DesignKey::of(&designs[0]);
        assert_eq!(cache.evict_design(&key), 3, "two Gseq variants + one Gnet");
        assert!(!cache.contains(ArtifactKind::SeqGraph, &key));
        assert!(!cache.contains(ArtifactKind::NetGraph, &key));
        assert!(cache.contains(ArtifactKind::SeqGraph, &DesignKey::of(&designs[1])));
        let stats = cache.stats();
        assert_eq!(stats.evictions(), 3);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn clones_share_one_pool() {
        let designs = keyed_designs();
        let cache = ArtifactCache::new();
        let clone = cache.clone();
        let a = cache.get_or_build(&designs[0]);
        let b = clone.get_or_build(&designs[0]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(clone.stats().seq.hits, 1);
    }

    #[test]
    fn resident_bytes_track_inserts_and_evictions() {
        let designs = keyed_designs();
        let cache = ArtifactCache::new();
        assert_eq!(cache.resident_bytes(), 0);
        cache.get_or_build(&designs[0]);
        let after_one = cache.resident_bytes();
        assert!(after_one > 0);
        cache.get_or_build(&designs[1]);
        assert!(cache.resident_bytes() > after_one);
        cache.evict_design(&DesignKey::of(&designs[0]));
        cache.evict_design(&DesignKey::of(&designs[1]));
        assert_eq!(cache.resident_bytes(), 0, "accounting returns to zero when emptied");
    }
}
