//! The disk spill tier: content-addressed artifact files under one
//! directory.
//!
//! When a byte budget forces the [`crate::ArtifactCache`] (or a design
//! store) to evict a derived structure, the spill tier demotes it to disk
//! instead of discarding it outright: a later miss tries deserialization
//! before falling back to reconstruction. Spilling is **off by default**
//! and enabled by pointing a cache or store at a directory (the CLI's
//! `--spill-dir`).
//!
//! # File format
//!
//! One artifact per file, named `<stem>.spill` where the stem is a kind
//! prefix plus the 16-hex-digit identity fingerprint (e.g.
//! `gseq-1f00ba….spill`). Each file is:
//!
//! | field        | size | contents                                   |
//! |--------------|------|--------------------------------------------|
//! | magic        | 4    | `HSPL`                                     |
//! | version      | 4    | format version (little-endian `u32`)       |
//! | fingerprint  | 8    | the identity the caller will ask for       |
//! | payload\_len | 8    | byte length of the payload                 |
//! | payload      | n    | codec-encoded artifact ([`netlist::codec`])|
//! | checksum     | 8    | FNV-1a of the payload                      |
//!
//! Files are written to a `.tmp` sibling and renamed into place, so a crash
//! mid-write never leaves a half-written `.spill` file under the final name.
//!
//! # Failure model
//!
//! Every failure — unwritable directory, truncated or corrupt file, magic or
//! version or fingerprint mismatch, checksum mismatch — is reported as
//! "absent" (`false` / `None`), **never** an error or a panic: the caches
//! above degrade to a rebuild miss, identical to running without a spill
//! directory. Spilling therefore affects timing, never results.

// lint:allow(fs-scope): this module IS the spill tier — the one place
// deterministic crates touch the filesystem (see docs/MEMORY.md).

use netlist::codec::{put_u32, put_u64, Reader};
use netlist::Fnv1a;
use std::fs;
use std::path::{Path, PathBuf};

/// `HSPL` as a little-endian `u32`.
const MAGIC: u32 = u32::from_le_bytes(*b"HSPL");
/// Format version; bumped on any layout change so stale files from an older
/// build read as absent instead of mis-decoding.
const VERSION: u32 = 1;
/// Header bytes before the payload: magic + version + fingerprint + length.
const HEADER_LEN: usize = 24;

/// A handle on one spill directory. Cheap to clone (a `PathBuf`); clones
/// address the same files, so the artifact cache and the design store of one
/// service share a directory.
#[derive(Debug, Clone)]
pub struct SpillTier {
    dir: PathBuf,
}

impl SpillTier {
    /// A spill tier rooted at `dir`. The directory is created lazily on the
    /// first store, so constructing a tier never touches the filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The directory this tier files artifacts under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes `payload` under `<stem>.spill`, framed and checksummed, via a
    /// temp-file rename. Returns whether the file landed; any filesystem
    /// failure returns `false` (the entry is simply not spilled).
    pub fn store(&self, stem: &str, fingerprint: u64, payload: &[u8]) -> bool {
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
        put_u32(&mut buf, MAGIC);
        put_u32(&mut buf, VERSION);
        put_u64(&mut buf, fingerprint);
        put_u64(&mut buf, payload.len() as u64);
        buf.extend_from_slice(payload);
        let mut h = Fnv1a::new();
        h.write_bytes(payload);
        put_u64(&mut buf, h.finish());

        if fs::create_dir_all(&self.dir).is_err() {
            return false;
        }
        let tmp = self.dir.join(format!("{stem}.tmp"));
        if fs::write(&tmp, &buf).is_err() {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        fs::rename(&tmp, self.dir.join(format!("{stem}.spill"))).is_ok()
    }

    /// Reads and validates `<stem>.spill`, returning its payload. `None` on
    /// any failure: missing file, short file, wrong magic/version, a
    /// fingerprint other than the one asked for, a length that disagrees
    /// with the file size, or a checksum mismatch.
    pub fn load(&self, stem: &str, fingerprint: u64) -> Option<Vec<u8>> {
        let bytes = fs::read(self.dir.join(format!("{stem}.spill"))).ok()?;
        let mut r = Reader::new(&bytes);
        if r.take_u32()? != MAGIC || r.take_u32()? != VERSION || r.take_u64()? != fingerprint {
            return None;
        }
        let len = r.take_u64()? as usize;
        if r.remaining() != len.checked_add(8)? {
            return None;
        }
        let payload = &bytes[HEADER_LEN..HEADER_LEN + len];
        let mut h = Fnv1a::new();
        h.write_bytes(payload);
        let mut tail = Reader::new(&bytes[HEADER_LEN + len..]);
        if tail.take_u64()? != h.finish() {
            return None;
        }
        Some(payload.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hidap-spill-{}-{test}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = scratch_dir("roundtrip");
        let tier = SpillTier::new(&dir);
        let payload = b"the artifact bytes".to_vec();
        assert!(tier.store("gnet-00ff", 0xff00, &payload));
        assert_eq!(tier.load("gnet-00ff", 0xff00), Some(payload));
        // no leftover temp files after a clean store
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(stray.is_empty(), "temp file leaked: {stray:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_and_wrong_fingerprint_read_as_absent() {
        let dir = scratch_dir("absent");
        let tier = SpillTier::new(&dir);
        assert_eq!(tier.load("gnet-0000", 0), None);
        assert!(tier.store("gnet-0001", 1, b"x"));
        assert_eq!(tier.load("gnet-0001", 2), None, "fingerprint mismatch");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_reads_as_absent() {
        let dir = scratch_dir("truncate");
        let tier = SpillTier::new(&dir);
        assert!(tier.store("csr-0abc", 42, b"payload bytes"));
        let path = dir.join("csr-0abc.spill");
        let full = fs::read(&path).unwrap();
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            assert_eq!(tier.load("csr-0abc", 42), None, "cut at {cut}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_payload_and_trailing_garbage_read_as_absent() {
        let dir = scratch_dir("corrupt");
        let tier = SpillTier::new(&dir);
        assert!(tier.store("seed-0abc", 7, b"some payload"));
        let path = dir.join("seed-0abc.spill");
        let full = fs::read(&path).unwrap();
        for flip in 0..full.len() {
            let mut bad = full.clone();
            bad[flip] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            assert_eq!(tier.load("seed-0abc", 7), None, "flip at {flip}");
        }
        let mut padded = full.clone();
        padded.push(0);
        fs::write(&path, &padded).unwrap();
        assert_eq!(tier.load("seed-0abc", 7), None, "trailing garbage");
        fs::write(&path, &full).unwrap();
        assert!(tier.load("seed-0abc", 7).is_some(), "pristine file still loads");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_directory_degrades_to_not_spilled() {
        // a path under a regular file can never be created as a directory
        let file = scratch_dir("unwritable-anchor");
        fs::create_dir_all(&file).unwrap();
        let anchor = file.join("anchor");
        fs::write(&anchor, b"").unwrap();
        let tier = SpillTier::new(anchor.join("nested"));
        assert!(!tier.store("gnet-0000", 0, b"x"));
        assert_eq!(tier.load("gnet-0000", 0), None);
        let _ = fs::remove_dir_all(&file);
    }
}
