//! Static timing estimation on the sequential graph.
//!
//! Every edge of [`graphs::SeqGraph`] represents a single-cycle path between
//! two sequential elements (register array, macro or port).  Its delay is
//! modeled as a fixed logic delay plus a wire delay proportional to the
//! Manhattan distance between the placed positions of its endpoints — a
//! lumped-RC, buffered-wire approximation.  The slack of the edge is
//! `clock_period − delay`; the report aggregates:
//!
//! * **WNS%** — the worst negative slack as a percentage of the clock period
//!   (0 when all paths meet timing, negative otherwise, as in Table III),
//! * **TNS** — the sum of negative endpoint slacks (in picoseconds).

use crate::placer::CellPlacement;
use geometry::Point;
use graphs::{SeqGraph, SeqNodeId};
use netlist::dense::DenseMap;
use netlist::design::Design;
use serde::{Deserialize, Serialize};

/// Configuration of the timing estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Clock period in picoseconds.
    pub clock_period_ps: f64,
    /// Fixed logic delay charged to every register-to-register stage, in ps.
    pub stage_delay_ps: f64,
    /// Wire delay per DBU of Manhattan distance, in ps (buffered-wire slope).
    pub wire_delay_ps_per_dbu: f64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self { clock_period_ps: 1000.0, stage_delay_ps: 350.0, wire_delay_ps_per_dbu: 0.002 }
    }
}

/// The timing report of a placed design.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimingReport {
    /// Worst slack in picoseconds (positive when timing is met).
    pub worst_slack_ps: f64,
    /// Worst negative slack as a percentage of the clock period (≤ 0).
    pub wns_percent: f64,
    /// Total negative slack in picoseconds (≤ 0), summed over endpoints.
    pub tns_ps: f64,
    /// Number of timing endpoints with negative slack.
    pub failing_endpoints: usize,
    /// Number of stage edges analyzed.
    pub analyzed_edges: usize,
}

/// Runs the timing estimate for a placed design.
///
/// Node positions come from the standard-cell placement (the centroid of a
/// register array's bits) and fall back to the die center when unknown.
pub fn estimate_timing(
    design: &Design,
    gseq: &SeqGraph,
    placement: &CellPlacement,
    config: &TimingConfig,
) -> TimingReport {
    let die_center = design.die().center();
    let positions: DenseMap<SeqNodeId, Point> = DenseMap::from_fn(gseq.num_nodes(), |id| {
        node_position(design, gseq, id, placement).unwrap_or(die_center)
    });

    let mut worst_slack = f64::INFINITY;
    let mut analyzed = 0usize;
    // worst slack per endpoint (target node) for the TNS aggregation
    let mut endpoint_slack: Vec<f64> = vec![f64::INFINITY; gseq.num_nodes()];
    for src in 0..gseq.num_nodes() {
        for &(dst, _bits) in gseq.successors(SeqNodeId(src as u32)) {
            let dist = positions[SeqNodeId(src as u32)]
                .manhattan_distance(positions[SeqNodeId(dst as u32)]) as f64;
            let delay = config.stage_delay_ps + config.wire_delay_ps_per_dbu * dist;
            let slack = config.clock_period_ps - delay;
            worst_slack = worst_slack.min(slack);
            endpoint_slack[dst] = endpoint_slack[dst].min(slack);
            analyzed += 1;
        }
    }
    if analyzed == 0 {
        return TimingReport { worst_slack_ps: config.clock_period_ps, ..Default::default() };
    }
    let mut tns = 0.0;
    let mut failing = 0usize;
    for &s in &endpoint_slack {
        if s.is_finite() && s < 0.0 {
            tns += s;
            failing += 1;
        }
    }
    TimingReport {
        worst_slack_ps: worst_slack,
        wns_percent: (worst_slack.min(0.0) / config.clock_period_ps) * 100.0,
        tns_ps: tns,
        failing_endpoints: failing,
        analyzed_edges: analyzed,
    }
}

/// The placed position of a sequential node: mean of its member cell
/// positions (or port positions).
fn node_position(
    design: &Design,
    gseq: &SeqGraph,
    id: SeqNodeId,
    placement: &CellPlacement,
) -> Option<Point> {
    let node = gseq.node(id);
    let mut sum = (0i128, 0i128);
    let mut count = 0i128;
    for &c in &node.cells {
        if let Some(p) = placement.position(c) {
            sum.0 += p.x as i128;
            sum.1 += p.y as i128;
            count += 1;
        }
    }
    for &p in &node.ports {
        if let Some(pos) = design.port(p).position {
            sum.0 += pos.x as i128;
            sum.1 += pos.y as i128;
            count += 1;
        }
    }
    (count > 0).then(|| Point::new((sum.0 / count) as i64, (sum.1 / count) as i64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Rect;
    use graphs::seqgraph::SeqGraphConfig;
    use netlist::design::{CellId, Design, DesignBuilder};

    /// Two registers connected through one combinational stage.
    fn reg_to_reg(die: i64) -> (Design, CellId, CellId) {
        let mut b = DesignBuilder::new("t");
        let r0 = b.add_flop("r0_reg[0]", "");
        let r1 = b.add_flop("r1_reg[0]", "");
        let n = b.add_net("n");
        b.connect_driver(n, r0);
        b.connect_sink(n, r1);
        b.set_die(Rect::new(0, 0, die, die));
        (b.build(), r0, r1)
    }

    fn placement(pairs: &[(CellId, Point)]) -> CellPlacement {
        let mut p = CellPlacement::default();
        for &(c, pos) in pairs {
            p.set_position(c, pos);
        }
        p
    }

    #[test]
    fn short_path_meets_timing() {
        let (d, r0, r1) = reg_to_reg(1000);
        let gseq = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        let p = placement(&[(r0, Point::new(0, 0)), (r1, Point::new(100, 0))]);
        let report = estimate_timing(&d, &gseq, &p, &TimingConfig::default());
        assert!(report.worst_slack_ps > 0.0);
        assert_eq!(report.wns_percent, 0.0);
        assert_eq!(report.tns_ps, 0.0);
        assert_eq!(report.failing_endpoints, 0);
    }

    #[test]
    fn long_path_violates_timing() {
        let (d, r0, r1) = reg_to_reg(1_000_000);
        let gseq = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        let p = placement(&[(r0, Point::new(0, 0)), (r1, Point::new(900_000, 900_000))]);
        let report = estimate_timing(&d, &gseq, &p, &TimingConfig::default());
        assert!(report.worst_slack_ps < 0.0);
        assert!(report.wns_percent < 0.0);
        assert!(report.tns_ps < 0.0);
        assert_eq!(report.failing_endpoints, 1);
    }

    #[test]
    fn closer_placement_improves_slack() {
        let (d, r0, r1) = reg_to_reg(1_000_000);
        let gseq = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        let far = placement(&[(r0, Point::new(0, 0)), (r1, Point::new(800_000, 800_000))]);
        let near = placement(&[(r0, Point::new(0, 0)), (r1, Point::new(100_000, 0))]);
        let cfg = TimingConfig::default();
        let far_r = estimate_timing(&d, &gseq, &far, &cfg);
        let near_r = estimate_timing(&d, &gseq, &near, &cfg);
        assert!(near_r.worst_slack_ps > far_r.worst_slack_ps);
    }

    #[test]
    fn empty_design_reports_clean_timing() {
        let d = DesignBuilder::new("t").build();
        let gseq = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        let report =
            estimate_timing(&d, &gseq, &CellPlacement::default(), &TimingConfig::default());
        assert_eq!(report.analyzed_edges, 0);
        assert_eq!(report.wns_percent, 0.0);
    }

    #[test]
    fn tns_accumulates_multiple_failing_endpoints() {
        let mut b = DesignBuilder::new("t");
        let src = b.add_flop("src_reg[0]", "");
        let d1 = b.add_flop("far1_reg[0]", "");
        let d2 = b.add_flop("far2_reg[0]", "");
        let n1 = b.add_net("n1");
        let n2 = b.add_net("n2");
        b.connect_driver(n1, src);
        b.connect_sink(n1, d1);
        b.connect_driver(n2, src);
        b.connect_sink(n2, d2);
        b.set_die(Rect::new(0, 0, 2_000_000, 2_000_000));
        let d = b.build();
        let gseq = SeqGraph::from_design(&d, &SeqGraphConfig::default());
        let p = placement(&[
            (src, Point::new(0, 0)),
            (d1, Point::new(1_500_000, 0)),
            (d2, Point::new(0, 1_500_000)),
        ]);
        let report = estimate_timing(&d, &gseq, &p, &TimingConfig::default());
        assert_eq!(report.failing_endpoints, 2);
        assert!(report.tns_ps < report.worst_slack_ps, "TNS accumulates both endpoints");
    }
}
