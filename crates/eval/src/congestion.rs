//! RUDY-style global-routing congestion estimation.
//!
//! Each net spreads a routing demand of `(w + h) · wire_pitch` uniformly over
//! its bounding box (the RUDY model).  Demand is accumulated on a grid of
//! bins whose capacity is derived from the bin area and the number of routing
//! tracks per unit length; bins covered by macros lose most of their capacity.
//! The reported `GRC%` is the percentage of bins whose demand exceeds their
//! capacity, matching the "global routing overflow percentage" of Table III.

use crate::placer::CellPlacement;
use geometry::{Point, Rect};
use netlist::design::{CellKind, Design};
use netlist::PlacementView;
use serde::{Deserialize, Serialize};

/// Configuration of the congestion estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CongestionConfig {
    /// Number of bins per die edge.
    pub bins: usize,
    /// Routing supply per DBU of bin edge (tracks per DBU summed over layers).
    pub supply_per_dbu: f64,
    /// Wire pitch in DBU (demand contributed per DBU of wire).
    pub wire_pitch: f64,
    /// Fraction of routing capacity that survives over a macro (over-the-cell
    /// routing on upper layers).
    pub macro_capacity_fraction: f64,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        // The supply constant is calibrated so that the synthetic c1–c8
        // workloads land in the single-digit to low-double-digit GRC% range
        // the paper reports, with congested floorplans clearly separated from
        // clean ones.
        Self { bins: 32, supply_per_dbu: 0.55, wire_pitch: 1.0, macro_capacity_fraction: 0.2 }
    }
}

/// The congestion map and its summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionMap {
    /// Bins per edge.
    pub bins: usize,
    /// Demand / capacity ratio per bin (row-major, `[x][y]` flattened as `x * bins + y`).
    pub utilization: Vec<f64>,
    /// Percentage of bins whose demand exceeds capacity.
    pub overflow_percent: f64,
    /// Peak demand / capacity ratio.
    pub peak_utilization: f64,
}

impl CongestionMap {
    /// Utilization of bin `(x, y)`.
    pub fn at(&self, x: usize, y: usize) -> f64 {
        self.utilization[x * self.bins + y]
    }
}

/// Estimates global-routing congestion for a placed design.
pub fn estimate_congestion(
    design: &Design,
    placement: &CellPlacement,
    macro_placement: &impl PlacementView,
    config: &CongestionConfig,
) -> CongestionMap {
    let port_pos: Vec<Option<Point>> = design.ports().map(|(_, p)| p.position).collect();
    estimate_congestion_with_ports(design, placement, macro_placement, config, &port_pos)
}

/// [`estimate_congestion`] with a caller-provided port-position buffer (the
/// `Evaluator` session reuses one across candidates).
pub(crate) fn estimate_congestion_with_ports(
    design: &Design,
    placement: &CellPlacement,
    macro_placement: &impl PlacementView,
    config: &CongestionConfig,
    port_pos: &[Option<Point>],
) -> CongestionMap {
    let die = design.die();
    let bins = config.bins.max(2);
    let bin_w = (die.width() as f64 / bins as f64).max(1.0);
    let bin_h = (die.height() as f64 / bins as f64).max(1.0);

    // capacity per bin
    let mut capacity = vec![0.0f64; bins * bins];
    let macro_rects: Vec<Rect> = design
        .cells()
        .filter(|(_, c)| c.kind == CellKind::Macro)
        .filter_map(|(id, c)| {
            macro_placement.placement(id).map(|(loc, orient)| {
                let (w, h) = orient.transformed_size(c.width, c.height);
                Rect::from_size(loc.x, loc.y, w, h)
            })
        })
        .collect();
    for bx in 0..bins {
        for by in 0..bins {
            let rect = bin_rect(die, bins, bx, by);
            let base = (rect.width() + rect.height()) as f64 * config.supply_per_dbu;
            let macro_overlap: f64 = macro_rects.iter().map(|m| m.overlap_area(&rect) as f64).sum();
            let frac_covered = (macro_overlap / (rect.area() as f64).max(1.0)).min(1.0);
            capacity[bx * bins + by] =
                base * (1.0 - frac_covered * (1.0 - config.macro_capacity_fraction));
        }
    }

    // demand per bin (RUDY), walking the flat CSR net→pin arrays
    let csr = design.connectivity();
    let mut demand = vec![0.0f64; bins * bins];
    for net in design.net_ids() {
        let Some(bb) = crate::wirelength::net_bounding_box(csr, net, placement, port_pos) else {
            continue;
        };
        let wire = (bb.width() + bb.height()) as f64 * config.wire_pitch;
        let bb_area = (bb.area() as f64).max(1.0);
        let density = wire / bb_area; // demand per unit area

        let x0 = bin_index(bb.llx - die.llx, bin_w, bins);
        let x1 = bin_index(bb.urx - die.llx, bin_w, bins);
        let y0 = bin_index(bb.lly - die.lly, bin_h, bins);
        let y1 = bin_index(bb.ury - die.lly, bin_h, bins);
        for bx in x0..=x1 {
            for by in y0..=y1 {
                let rect = bin_rect(die, bins, bx, by);
                let overlap = rect.overlap_area(&bb).max(if bb.area() == 0 { 1 } else { 0 }) as f64;
                demand[bx * bins + by] += density * overlap;
            }
        }
    }

    let mut overflow = 0usize;
    let mut peak: f64 = 0.0;
    let mut utilization = vec![0.0f64; bins * bins];
    for i in 0..bins * bins {
        let u = if capacity[i] > 0.0 {
            demand[i] / capacity[i]
        } else if demand[i] > 0.0 {
            2.0
        } else {
            0.0
        };
        utilization[i] = u;
        if u > 1.0 {
            overflow += 1;
        }
        peak = peak.max(u);
    }
    CongestionMap {
        bins,
        utilization,
        overflow_percent: 100.0 * overflow as f64 / (bins * bins) as f64,
        peak_utilization: peak,
    }
}

fn bin_rect(die: Rect, bins: usize, bx: usize, by: usize) -> Rect {
    let bin_w = die.width() as f64 / bins as f64;
    let bin_h = die.height() as f64 / bins as f64;
    Rect::new(
        die.llx + (bx as f64 * bin_w) as i64,
        die.lly + (by as f64 * bin_h) as i64,
        die.llx + ((bx + 1) as f64 * bin_w) as i64,
        die.lly + ((by + 1) as f64 * bin_h) as i64,
    )
}

fn bin_index(offset: i64, bin_size: f64, bins: usize) -> usize {
    ((offset as f64 / bin_size) as usize).min(bins - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Orientation;
    use netlist::design::{CellId, DesignBuilder};
    use std::collections::HashMap;

    fn no_macros() -> HashMap<CellId, (Point, Orientation)> {
        HashMap::new()
    }

    fn chain_design(n: usize, die: Rect) -> Design {
        let mut b = DesignBuilder::new("t");
        let mut prev = b.add_comb("c0", "");
        for i in 1..n {
            let c = b.add_comb(format!("c{i}"), "");
            let net = b.add_net(format!("n{i}"));
            b.connect_driver(net, prev);
            b.connect_sink(net, c);
            prev = c;
        }
        b.set_die(die);
        b.build()
    }

    #[test]
    fn empty_placement_has_no_congestion() {
        let d = chain_design(4, Rect::new(0, 0, 1000, 1000));
        let placement = CellPlacement::default();
        let map = estimate_congestion(&d, &placement, &no_macros(), &CongestionConfig::default());
        assert_eq!(map.overflow_percent, 0.0);
        assert_eq!(map.peak_utilization, 0.0);
    }

    #[test]
    fn concentrated_nets_create_local_congestion() {
        // many cells in one corner connected pairwise produce demand there
        let mut b = DesignBuilder::new("t");
        let mut cells = Vec::new();
        for i in 0..40 {
            cells.push(b.add_comb(format!("c{i}"), ""));
        }
        for i in 0..39 {
            let n = b.add_net(format!("n{i}"));
            b.connect_driver(n, cells[i]);
            b.connect_sink(n, cells[i + 1]);
        }
        b.set_die(Rect::new(0, 0, 3200, 3200));
        let d = b.build();
        let mut placement = CellPlacement::default();
        for (i, &c) in cells.iter().enumerate() {
            placement
                .set_position(c, Point::new(10 + (i as i64 % 5) * 20, 10 + (i as i64 / 5) * 10));
        }
        let cfg = CongestionConfig { bins: 8, supply_per_dbu: 0.001, ..Default::default() };
        let map = estimate_congestion(&d, &placement, &no_macros(), &cfg);
        // the corner bin is the congested one
        assert!(map.at(0, 0) > map.at(7, 7));
        assert!(map.peak_utilization > 0.0);
    }

    #[test]
    fn spread_placement_less_congested_than_clustered() {
        let d = chain_design(50, Rect::new(0, 0, 3200, 3200));
        let ids: Vec<CellId> = d.cell_ids().collect();
        // clustered placement
        let mut clustered = CellPlacement::default();
        for (i, &c) in ids.iter().enumerate() {
            clustered
                .set_position(c, Point::new(50 + (i as i64 % 7) * 10, 50 + (i as i64 / 7) * 10));
        }
        // spread placement
        let mut spread = CellPlacement::default();
        for (i, &c) in ids.iter().enumerate() {
            spread.set_position(c, Point::new((i as i64 * 61) % 3200, (i as i64 * 97) % 3200));
        }
        let cfg = CongestionConfig { bins: 8, supply_per_dbu: 0.0005, ..Default::default() };
        let c_map = estimate_congestion(&d, &clustered, &no_macros(), &cfg);
        let s_map = estimate_congestion(&d, &spread, &no_macros(), &cfg);
        assert!(c_map.peak_utilization > s_map.peak_utilization);
    }

    #[test]
    fn macros_reduce_capacity_under_them() {
        let mut b = DesignBuilder::new("t");
        let m = b.add_macro("ram", "RAM", 1600, 1600, "");
        let a = b.add_comb("a", "");
        let c = b.add_comb("c", "");
        let n = b.add_net("n");
        b.connect_driver(n, a);
        b.connect_sink(n, c);
        b.set_die(Rect::new(0, 0, 3200, 3200));
        let d = b.build();
        let mut placement = CellPlacement::default();
        placement.set_position(a, Point::new(0, 0));
        placement.set_position(c, Point::new(3199, 3199));
        placement.set_position(m, Point::new(800, 800));
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(0, 0), Orientation::N));
        let cfg = CongestionConfig { bins: 8, supply_per_dbu: 0.0004, ..Default::default() };
        let with_macro = estimate_congestion(&d, &placement, &mp, &cfg);
        let without_macro = estimate_congestion(&d, &placement, &no_macros(), &cfg);
        // the same demand over reduced capacity gives higher utilization
        assert!(with_macro.peak_utilization >= without_macro.peak_utilization);
    }
}
