//! Evaluation substrate for macro-placement flows.
//!
//! The paper measures every floorplan *after standard-cell placement with the
//! same commercial tool*, reporting wirelength, global-routing congestion and
//! timing (Table III).  This crate provides an equivalent, self-contained
//! measurement pipeline so that the three flows of the reproduction (HiDaP,
//! the IndEDA-style baseline and the handFP proxy) are compared under
//! identical conditions:
//!
//! * [`placer`] — a quadratic-style standard-cell placer with grid-based
//!   spreading that treats the placed macros as obstacles,
//! * [`wirelength`] — half-perimeter wirelength (HPWL) of the full netlist,
//! * [`congestion`] — a RUDY-style global-routing demand estimate with a
//!   per-bin capacity, reporting the overflow percentage (GRC%),
//! * [`timing`] — a lumped-RC static timing estimate on the sequential graph,
//!   reporting WNS (as a percentage of the clock period) and TNS,
//! * [`density`] — standard-cell density maps (the Fig. 9 visualization),
//! * [`visualize`] — SVG renderings of floorplans, density maps and dataflow
//!   graphs (the paper's interactive visualization tool, as static output),
//! * [`metrics`] — the [`Evaluator`] session driving all of the above,
//! * [`artifacts`] — the typed, byte-budgeted [`ArtifactCache`] of
//!   design-derived graphs (`Gnet`, `Gseq`) behind every session and store,
//!   with cost-aware eviction (build time weighed against bytes),
//! * [`spill`] — the optional disk spill tier beneath the cache: evicted
//!   artifacts demote to content-addressed files and revive by
//!   deserialization instead of reconstruction (see `docs/MEMORY.md`).
//!
//! Placements enter the pipeline through the dense, id-indexed
//! [`netlist::PlacementView`] trait: flow outputs evaluate directly
//! (`evaluator.evaluate(&design, &placement)`), with no intermediate
//! `HashMap`. Build one [`Evaluator`] per sweep — it caches the sequential
//! graph and its scratch buffers across candidates.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]

pub mod artifacts;
pub mod congestion;
pub mod density;
pub mod metrics;
pub mod placer;
pub mod spill;
pub mod timing;
pub mod visualize;
pub mod wirelength;

pub use artifacts::{ArtifactCache, ArtifactCacheStats, ArtifactKind, KindStats};
pub use congestion::{CongestionConfig, CongestionMap};
pub use density::DensityMap;
pub use metrics::{DesignKey, EvalConfig, Evaluator, PlacementMetrics};
pub use placer::{place_standard_cells, place_standard_cells_warm, CellPlacement, PlacerConfig};
pub use spill::SpillTier;
pub use timing::{TimingConfig, TimingReport};
pub use wirelength::{total_hpwl, Hpwl, IncrementalHpwl};
