//! SVG visualization of floorplans, density maps and dataflow graphs.
//!
//! The paper mentions an interactive graphic tool used to show back-end
//! engineers the block-level dataflow of a design (Fig. 9d).  This module
//! provides a static equivalent: self-contained SVG renderings of
//!
//! * a macro placement on the die ([`floorplan_svg`]),
//! * a standard-cell density heat map ([`density_svg`]),
//! * a block-level floorplan with dataflow affinity edges ([`dataflow_svg`]).
//!
//! The output is plain SVG text; no external dependencies are needed and the
//! files open in any browser.

use crate::density::DensityMap;
use geometry::{Point, Rect};
use netlist::design::Design;
use netlist::PlacementView;
use std::fmt::Write as _;

/// Canvas width of the generated SVGs in pixels (height follows the die
/// aspect ratio).
const CANVAS_WIDTH: f64 = 800.0;

struct Canvas {
    die: Rect,
    width: f64,
    height: f64,
    body: String,
}

impl Canvas {
    fn new(die: Rect) -> Self {
        let aspect = die.height() as f64 / die.width().max(1) as f64;
        Self { die, width: CANVAS_WIDTH, height: CANVAS_WIDTH * aspect, body: String::new() }
    }

    fn x(&self, x: i64) -> f64 {
        (x - self.die.llx) as f64 / self.die.width().max(1) as f64 * self.width
    }

    /// SVG y axis points down; flip so the die's lower-left is bottom-left.
    fn y(&self, y: i64) -> f64 {
        self.height - (y - self.die.lly) as f64 / self.die.height().max(1) as f64 * self.height
    }

    fn rect(&mut self, r: Rect, fill: &str, stroke: &str, label: Option<&str>) {
        let x = self.x(r.llx);
        let y = self.y(r.ury);
        let w = self.x(r.urx) - x;
        let h = self.y(r.lly) - y;
        let _ = writeln!(
            self.body,
            r#"  <rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="{fill}" stroke="{stroke}" stroke-width="1"/>"#
        );
        if let Some(text) = label {
            let cx = x + w / 2.0;
            let cy = y + h / 2.0;
            let size = (w.min(h) / 6.0).clamp(6.0, 16.0);
            let _ = writeln!(
                self.body,
                r##"  <text x="{cx:.1}" y="{cy:.1}" font-size="{size:.0}" text-anchor="middle" dominant-baseline="middle" fill="#202020">{}</text>"##,
                xml_escape(text)
            );
        }
    }

    fn line(&mut self, a: Point, b: Point, width: f64, color: &str) {
        let _ = writeln!(
            self.body,
            r#"  <line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{color}" stroke-width="{width:.1}" stroke-linecap="round" opacity="0.7"/>"#,
            self.x(a.x),
            self.y(a.y),
            self.x(b.x),
            self.y(b.y),
        );
    }

    fn finish(self, title: &str) -> String {
        format!(
            concat!(
                r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}">"#,
                "\n  <title>{title}</title>\n",
                r##"  <rect x="0" y="0" width="{w:.0}" height="{h:.0}" fill="#fafafa" stroke="#404040" stroke-width="2"/>"##,
                "\n{body}</svg>\n"
            ),
            w = self.width,
            h = self.height,
            title = xml_escape(title),
            body = self.body,
        )
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders a macro placement as SVG: macros as dark rectangles with their
/// instance names, ports as small circles on the boundary.
///
/// Accepts any [`PlacementView`] — the flow output renders directly, no
/// intermediate map.
pub fn floorplan_svg(design: &Design, macro_placement: &impl PlacementView, title: &str) -> String {
    let mut canvas = Canvas::new(design.die());
    for (id, loc, orient) in macro_placement.iter_placed() {
        let cell = design.cell(id);
        let (w, h) = orient.transformed_size(cell.width, cell.height);
        let rect = Rect::from_size(loc.x, loc.y, w, h);
        let short = cell.name.rsplit('/').next().unwrap_or(&cell.name);
        canvas.rect(rect, "#7a8ba8", "#2c3d57", Some(short));
    }
    for (_, port) in design.ports() {
        if let Some(pos) = port.position {
            let x = canvas.x(pos.x);
            let y = canvas.y(pos.y);
            let _ = writeln!(
                canvas.body,
                r##"  <circle cx="{x:.1}" cy="{y:.1}" r="3" fill="#c0392b"/>"##
            );
        }
    }
    canvas.finish(title)
}

/// Renders a density map as an SVG heat map (white → red).
pub fn density_svg(die: Rect, density: &DensityMap, title: &str) -> String {
    let mut canvas = Canvas::new(die);
    let bins = density.bins;
    let peak = density.peak().max(1e-12);
    let bin_w = die.width() as f64 / bins as f64;
    let bin_h = die.height() as f64 / bins as f64;
    for bx in 0..bins {
        for by in 0..bins {
            let v = (density.at(bx, by) / peak).clamp(0.0, 1.0);
            let red = 255;
            let other = (255.0 * (1.0 - v)) as u8;
            let rect = Rect::new(
                die.llx + (bx as f64 * bin_w) as i64,
                die.lly + (by as f64 * bin_h) as i64,
                die.llx + ((bx + 1) as f64 * bin_w) as i64,
                die.lly + ((by + 1) as f64 * bin_h) as i64,
            );
            let fill = format!("#{red:02x}{other:02x}{other:02x}");
            canvas.rect(rect, &fill, "none", None);
        }
    }
    canvas.finish(title)
}

/// Renders a block-level floorplan with dataflow affinity edges between block
/// centers — the equivalent of the paper's Fig. 9d. `affinity[i][j]` controls
/// the edge thickness; edges below `min_affinity` are omitted.
pub fn dataflow_svg(
    die: Rect,
    blocks: &[(String, Rect)],
    affinity: &[Vec<f64>],
    min_affinity: f64,
    title: &str,
) -> String {
    let mut canvas = Canvas::new(die);
    let palette =
        ["#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462", "#b3de69", "#fccde5"];
    for (i, (name, rect)) in blocks.iter().enumerate() {
        canvas.rect(*rect, palette[i % palette.len()], "#404040", Some(name));
    }
    // affinity edges, thickness proportional to the affinity
    let max_aff = affinity.iter().flatten().copied().fold(0.0_f64, f64::max).max(1e-12);
    for i in 0..blocks.len().min(affinity.len()) {
        for j in (i + 1)..blocks.len().min(affinity.len()) {
            let a = affinity[i][j];
            if a < min_affinity {
                continue;
            }
            let width = 1.0 + 7.0 * (a / max_aff);
            canvas.line(blocks[i].1.center(), blocks[j].1.center(), width, "#d35400");
        }
    }
    canvas.finish(title)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::CellPlacement;
    use geometry::Orientation;
    use netlist::design::{CellId, DesignBuilder, PortDirection};
    use std::collections::HashMap;

    fn design() -> (Design, CellId) {
        let mut b = DesignBuilder::new("t");
        let m = b.add_macro("u_mem/ram0", "RAM", 200, 100, "u_mem");
        let p = b.add_port("clk", PortDirection::Input);
        b.place_port(p, Point::new(0, 500));
        b.set_die(Rect::new(0, 0, 1000, 1000));
        (b.build(), m)
    }

    #[test]
    fn floorplan_svg_contains_macro_and_port() {
        let (d, m) = design();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(100, 100), Orientation::N));
        let svg = floorplan_svg(&d, &mp, "test floorplan");
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("ram0"));
        assert!(svg.contains("circle"));
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn density_svg_has_one_cell_per_bin() {
        let (d, _) = design();
        let no_macros: HashMap<CellId, (Point, Orientation)> = HashMap::new();
        let density = DensityMap::compute(&d, &CellPlacement::default(), &no_macros, 4);
        let svg = density_svg(d.die(), &density, "density");
        assert_eq!(svg.matches("<rect").count(), 1 + 16); // background + bins
    }

    #[test]
    fn dataflow_svg_draws_edges_above_threshold() {
        let die = Rect::new(0, 0, 1000, 1000);
        let blocks = vec![
            ("A".to_string(), Rect::new(0, 0, 400, 400)),
            ("B".to_string(), Rect::new(600, 600, 1000, 1000)),
            ("X".to_string(), Rect::new(0, 600, 400, 1000)),
        ];
        let affinity = vec![vec![0.0, 50.0, 0.1], vec![50.0, 0.0, 0.0], vec![0.1, 0.0, 0.0]];
        let svg = dataflow_svg(die, &blocks, &affinity, 1.0, "gdf");
        assert_eq!(svg.matches("<line").count(), 1, "only the A-B edge is above threshold");
        assert!(svg.contains(">A<"));
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(xml_escape("a<b>&c"), "a&lt;b&gt;&amp;c");
    }
}
