//! Half-perimeter wirelength (HPWL).

use crate::placer::CellPlacement;
use geometry::{Point, Rect};
use netlist::design::Design;
use serde::{Deserialize, Serialize};

/// Wirelength report.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Hpwl {
    /// Total half-perimeter wirelength in DBU.
    pub dbu: i128,
    /// Number of nets with at least two placed pins.
    pub routed_nets: usize,
}

impl Hpwl {
    /// Wirelength in meters for a given number of DBU per micron.
    pub fn meters(&self, dbu_per_micron: i64) -> f64 {
        self.dbu as f64 / dbu_per_micron as f64 * 1e-6
    }
}

/// Computes the total HPWL of a design for a full cell placement.
///
/// Every net contributes the half perimeter of the bounding box of its pin
/// locations (cell centers and port positions). Nets with fewer than two
/// placed pins contribute nothing.
pub fn total_hpwl(design: &Design, placement: &CellPlacement) -> Hpwl {
    let mut total: i128 = 0;
    let mut routed = 0usize;
    for (_, net) in design.nets() {
        let mut points: Vec<Point> = Vec::with_capacity(net.degree());
        if let Some(c) = net.driver_cell {
            if let Some(p) = placement.position(c) {
                points.push(p);
            }
        }
        for &c in &net.sink_cells {
            if let Some(p) = placement.position(c) {
                points.push(p);
            }
        }
        if let Some(p) = net.driver_port {
            if let Some(pos) = design.port(p).position {
                points.push(pos);
            }
        }
        for &p in &net.sink_ports {
            if let Some(pos) = design.port(p).position {
                points.push(pos);
            }
        }
        if points.len() < 2 {
            continue;
        }
        if let Some(bb) = Rect::bounding_box(points) {
            total += (bb.width() + bb.height()) as i128;
            routed += 1;
        }
    }
    Hpwl { dbu: total, routed_nets: routed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::{DesignBuilder, PortDirection};
    use std::collections::HashMap;

    #[test]
    fn hpwl_of_two_pin_net() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_comb("a", "");
        let c = b.add_comb("c", "");
        let n = b.add_net("n");
        b.connect_driver(n, a);
        b.connect_sink(n, c);
        let d = b.build();
        let mut placement = CellPlacement::default();
        placement.positions.insert(a, Point::new(0, 0));
        placement.positions.insert(c, Point::new(30, 40));
        let wl = total_hpwl(&d, &placement);
        assert_eq!(wl.dbu, 70);
        assert_eq!(wl.routed_nets, 1);
    }

    #[test]
    fn hpwl_includes_port_positions() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_comb("a", "");
        let p = b.add_port("in", PortDirection::Input);
        b.place_port(p, Point::new(100, 0));
        let n = b.add_net("n");
        b.connect_port_driver(n, p);
        b.connect_sink(n, a);
        let d = b.build();
        let mut placement = CellPlacement::default();
        placement.positions.insert(a, Point::new(0, 50));
        let wl = total_hpwl(&d, &placement);
        assert_eq!(wl.dbu, 150);
    }

    #[test]
    fn multi_pin_net_uses_bounding_box() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_comb("a", "");
        let c1 = b.add_comb("c1", "");
        let c2 = b.add_comb("c2", "");
        let n = b.add_net("n");
        b.connect_driver(n, a);
        b.connect_sink(n, c1);
        b.connect_sink(n, c2);
        let d = b.build();
        let mut placement = CellPlacement::default();
        placement.positions.insert(a, Point::new(0, 0));
        placement.positions.insert(c1, Point::new(10, 100));
        placement.positions.insert(c2, Point::new(50, 20));
        let wl = total_hpwl(&d, &placement);
        assert_eq!(wl.dbu, 50 + 100);
    }

    #[test]
    fn unplaced_pins_are_skipped() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_comb("a", "");
        let c = b.add_comb("c", "");
        let n = b.add_net("n");
        b.connect_driver(n, a);
        b.connect_sink(n, c);
        let d = b.build();
        let placement = CellPlacement { positions: HashMap::new() };
        let wl = total_hpwl(&d, &placement);
        assert_eq!(wl.dbu, 0);
        assert_eq!(wl.routed_nets, 0);
    }

    #[test]
    fn meters_conversion() {
        let wl = Hpwl { dbu: 2_000_000_000, routed_nets: 1 };
        // 2e9 DBU at 1000 DBU/µm = 2e6 µm = 2 m
        assert!((wl.meters(1000) - 2.0).abs() < 1e-9);
    }
}
