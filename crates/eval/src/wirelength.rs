//! Half-perimeter wirelength (HPWL).

use crate::placer::CellPlacement;
use geometry::Point;
use netlist::design::Design;
use serde::{Deserialize, Serialize};

/// Wirelength report.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Hpwl {
    /// Total half-perimeter wirelength in DBU.
    pub dbu: i128,
    /// Number of nets with at least two placed pins.
    pub routed_nets: usize,
}

impl Hpwl {
    /// Wirelength in meters for a given number of DBU per micron.
    pub fn meters(&self, dbu_per_micron: i64) -> f64 {
        self.dbu as f64 / dbu_per_micron as f64 * 1e-6
    }
}

/// The bounding box of a net's placed pins (cell centers from `placement`,
/// port positions from the prefetched `port_pos` slice), accumulated
/// incrementally over the design's CSR [`netlist::Connectivity`] view — no
/// per-net point buffer and no hash lookups.
///
/// Returns `None` for nets with fewer than two placed pins (they contribute
/// neither wirelength nor routing demand).
pub(crate) fn net_bounding_box(
    csr: &netlist::Connectivity,
    net: netlist::NetId,
    placement: &CellPlacement,
    port_pos: &[Option<Point>],
) -> Option<geometry::Rect> {
    let mut min_x = i64::MAX;
    let mut max_x = i64::MIN;
    let mut min_y = i64::MAX;
    let mut max_y = i64::MIN;
    let mut pins = 0usize;
    for &pin in csr.pins(net) {
        let p = if let Some(c) = pin.cell() {
            placement.position(c)
        } else {
            pin.port().and_then(|p| port_pos[p.0 as usize])
        };
        let Some(p) = p else { continue };
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
        pins += 1;
    }
    (pins >= 2).then(|| geometry::Rect::new(min_x, min_y, max_x, max_y))
}

/// Computes the total HPWL of a design for a full cell placement.
///
/// Every net contributes the half perimeter of the bounding box of its pin
/// locations (cell centers and port positions). Nets with fewer than two
/// placed pins contribute nothing.
pub fn total_hpwl(design: &Design, placement: &CellPlacement) -> Hpwl {
    let csr = design.connectivity();
    let port_pos: Vec<Option<Point>> = design.ports().map(|(_, p)| p.position).collect();
    let mut total: i128 = 0;
    let mut routed = 0usize;
    for net in design.net_ids() {
        let Some(bb) = net_bounding_box(csr, net, placement, &port_pos) else { continue };
        total += (bb.width() + bb.height()) as i128;
        routed += 1;
    }
    Hpwl { dbu: total, routed_nets: routed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::{DesignBuilder, PortDirection};

    #[test]
    fn hpwl_of_two_pin_net() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_comb("a", "");
        let c = b.add_comb("c", "");
        let n = b.add_net("n");
        b.connect_driver(n, a);
        b.connect_sink(n, c);
        let d = b.build();
        let mut placement = CellPlacement::default();
        placement.set_position(a, Point::new(0, 0));
        placement.set_position(c, Point::new(30, 40));
        let wl = total_hpwl(&d, &placement);
        assert_eq!(wl.dbu, 70);
        assert_eq!(wl.routed_nets, 1);
    }

    #[test]
    fn hpwl_includes_port_positions() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_comb("a", "");
        let p = b.add_port("in", PortDirection::Input);
        b.place_port(p, Point::new(100, 0));
        let n = b.add_net("n");
        b.connect_port_driver(n, p);
        b.connect_sink(n, a);
        let d = b.build();
        let mut placement = CellPlacement::default();
        placement.set_position(a, Point::new(0, 50));
        let wl = total_hpwl(&d, &placement);
        assert_eq!(wl.dbu, 150);
    }

    #[test]
    fn multi_pin_net_uses_bounding_box() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_comb("a", "");
        let c1 = b.add_comb("c1", "");
        let c2 = b.add_comb("c2", "");
        let n = b.add_net("n");
        b.connect_driver(n, a);
        b.connect_sink(n, c1);
        b.connect_sink(n, c2);
        let d = b.build();
        let mut placement = CellPlacement::default();
        placement.set_position(a, Point::new(0, 0));
        placement.set_position(c1, Point::new(10, 100));
        placement.set_position(c2, Point::new(50, 20));
        let wl = total_hpwl(&d, &placement);
        assert_eq!(wl.dbu, 50 + 100);
    }

    #[test]
    fn unplaced_pins_are_skipped() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_comb("a", "");
        let c = b.add_comb("c", "");
        let n = b.add_net("n");
        b.connect_driver(n, a);
        b.connect_sink(n, c);
        let d = b.build();
        let placement = CellPlacement::default();
        let wl = total_hpwl(&d, &placement);
        assert_eq!(wl.dbu, 0);
        assert_eq!(wl.routed_nets, 0);
    }

    #[test]
    fn meters_conversion() {
        let wl = Hpwl { dbu: 2_000_000_000, routed_nets: 1 };
        // 2e9 DBU at 1000 DBU/µm = 2e6 µm = 2 m
        assert!((wl.meters(1000) - 2.0).abs() < 1e-9);
    }
}
