//! Half-perimeter wirelength (HPWL): the one-shot [`total_hpwl`] and the
//! [`IncrementalHpwl`] session that maintains per-net bounding boxes under
//! single-cell moves for annealing-style loops.

use crate::placer::CellPlacement;
use geometry::Point;
use netlist::design::{CellId, Design};
use netlist::{Connectivity, NetId};
use serde::{Deserialize, Serialize};

/// Wirelength report.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Hpwl {
    /// Total half-perimeter wirelength in DBU.
    pub dbu: i128,
    /// Number of nets with at least two placed pins.
    pub routed_nets: usize,
}

impl Hpwl {
    /// Wirelength in meters for a given number of DBU per micron.
    pub fn meters(&self, dbu_per_micron: i64) -> f64 {
        self.dbu as f64 / dbu_per_micron as f64 * 1e-6
    }
}

/// The bounding box of a net's placed pins (cell centers from `placement`,
/// port positions from the prefetched `port_pos` slice), accumulated
/// incrementally over the design's CSR [`netlist::Connectivity`] view — no
/// per-net point buffer and no hash lookups.
///
/// Returns `None` for nets with fewer than two placed pins (they contribute
/// neither wirelength nor routing demand).
pub(crate) fn net_bounding_box(
    csr: &netlist::Connectivity,
    net: netlist::NetId,
    placement: &CellPlacement,
    port_pos: &[Option<Point>],
) -> Option<geometry::Rect> {
    let mut min_x = i64::MAX;
    let mut max_x = i64::MIN;
    let mut min_y = i64::MAX;
    let mut max_y = i64::MIN;
    let mut pins = 0usize;
    for &pin in csr.pins(net) {
        let p = if let Some(c) = pin.cell() {
            placement.position(c)
        } else {
            pin.port().and_then(|p| port_pos[p.0 as usize])
        };
        let Some(p) = p else { continue };
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
        pins += 1;
    }
    (pins >= 2).then(|| geometry::Rect::new(min_x, min_y, max_x, max_y))
}

/// Computes the total HPWL of a design for a full cell placement.
///
/// Every net contributes the half perimeter of the bounding box of its pin
/// locations (cell centers and port positions). Nets with fewer than two
/// placed pins contribute nothing.
pub fn total_hpwl(design: &Design, placement: &CellPlacement) -> Hpwl {
    let port_pos: Vec<Option<Point>> = design.ports().map(|(_, p)| p.position).collect();
    total_hpwl_with_ports(design, placement, &port_pos)
}

/// [`total_hpwl`] with a caller-provided port-position buffer (the
/// `Evaluator` session reuses one across candidates).
pub(crate) fn total_hpwl_with_ports(
    design: &Design,
    placement: &CellPlacement,
    port_pos: &[Option<Point>],
) -> Hpwl {
    let csr = design.connectivity();
    let mut total: i128 = 0;
    let mut routed = 0usize;
    for net in design.net_ids() {
        let Some(bb) = net_bounding_box(csr, net, placement, port_pos) else { continue };
        total += (bb.width() + bb.height()) as i128;
        routed += 1;
    }
    Hpwl { dbu: total, routed_nets: routed }
}

/// Per-net state of an [`IncrementalHpwl`] session: the bounding box of the
/// placed pins and the net's current half-perimeter contribution.
#[derive(Debug, Clone, Copy, Default)]
struct NetBox {
    /// Half-perimeter contribution (0 when fewer than two pins are placed).
    contrib: i128,
    /// Whether the net currently counts as routed (≥ 2 placed pins).
    routed: bool,
}

/// Incremental HPWL over the design's CSR connectivity: per-net bounding
/// boxes are maintained under single-cell moves, so an annealing-style loop
/// pays `O(Σ degree(nets of moved cell))` per move instead of recomputing
/// every net.
///
/// The running total is **bit-identical** to [`total_hpwl`] over the same
/// positions at every step (each touched net's box is recomputed exactly from
/// its pins — no floating-point accumulation, no shrink approximation).
///
/// # Example
///
/// ```
/// use eval::{total_hpwl, CellPlacement, IncrementalHpwl};
/// use geometry::Point;
/// use netlist::design::DesignBuilder;
///
/// let mut b = DesignBuilder::new("t");
/// let a = b.add_comb("a", "");
/// let c = b.add_comb("c", "");
/// let n = b.add_net("n");
/// b.connect_driver(n, a);
/// b.connect_sink(n, c);
/// let design = b.build();
/// let mut placement = CellPlacement::with_num_cells(design.num_cells());
/// placement.set_position(a, Point::new(0, 0));
/// placement.set_position(c, Point::new(30, 40));
///
/// let mut inc = IncrementalHpwl::new(&design, &placement);
/// assert_eq!(inc.hpwl().dbu, 70);
/// let delta = inc.move_cell(c, Point::new(10, 10));
/// assert_eq!(delta, -50);
/// placement.set_position(c, Point::new(10, 10));
/// assert_eq!(inc.hpwl(), total_hpwl(&design, &placement));
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalHpwl<'d> {
    csr: &'d Connectivity,
    /// Current cell centers (the mutable side of the session).
    positions: Vec<Option<Point>>,
    /// Port positions, fixed for the session.
    port_pos: Vec<Option<Point>>,
    boxes: Vec<NetBox>,
    total_dbu: i128,
    routed_nets: usize,
}

impl<'d> IncrementalHpwl<'d> {
    /// Starts a session from a full cell placement.
    pub fn new(design: &'d Design, placement: &CellPlacement) -> Self {
        let csr = design.connectivity();
        let mut positions = vec![None; design.num_cells()];
        for (cell, pos) in placement.placed() {
            if let Some(slot) = positions.get_mut(cell.0 as usize) {
                *slot = Some(pos);
            }
        }
        let port_pos: Vec<Option<Point>> = design.ports().map(|(_, p)| p.position).collect();
        let mut session = Self {
            csr,
            positions,
            port_pos,
            boxes: vec![NetBox::default(); design.num_nets()],
            total_dbu: 0,
            routed_nets: 0,
        };
        for net in design.net_ids() {
            session.recompute_net(net);
        }
        session
    }

    /// The current total, matching [`total_hpwl`] bit for bit.
    pub fn hpwl(&self) -> Hpwl {
        Hpwl { dbu: self.total_dbu, routed_nets: self.routed_nets }
    }

    /// The current position of a cell.
    pub fn position(&self, cell: CellId) -> Option<Point> {
        self.positions.get(cell.0 as usize).copied().flatten()
    }

    /// Moves (or places) a cell and returns the signed HPWL delta in DBU.
    pub fn move_cell(&mut self, cell: CellId, position: Point) -> i128 {
        let before = self.total_dbu;
        self.positions[cell.0 as usize] = Some(position);
        self.update_nets_of(cell);
        self.total_dbu - before
    }

    /// Removes a cell's position and returns the signed HPWL delta in DBU.
    pub fn unplace_cell(&mut self, cell: CellId) -> i128 {
        let before = self.total_dbu;
        self.positions[cell.0 as usize] = None;
        self.update_nets_of(cell);
        self.total_dbu - before
    }

    fn update_nets_of(&mut self, cell: CellId) {
        // `csr` outlives `self`, so the net slice does not borrow `self`
        let csr = self.csr;
        for &net in csr.nets_of(cell) {
            self.recompute_net(net);
        }
    }

    /// Recomputes one net's bounding box from its pins, replacing its
    /// contribution in the running total.
    fn recompute_net(&mut self, net: NetId) {
        let old = self.boxes[net.0 as usize];
        self.total_dbu -= old.contrib;
        self.routed_nets -= usize::from(old.routed);

        let mut min_x = i64::MAX;
        let mut max_x = i64::MIN;
        let mut min_y = i64::MAX;
        let mut max_y = i64::MIN;
        let mut pins = 0usize;
        for &pin in self.csr.pins(net) {
            let p = match pin.cell() {
                Some(c) => self.positions[c.0 as usize],
                None => pin.port().and_then(|p| self.port_pos[p.0 as usize]),
            };
            let Some(p) = p else { continue };
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
            pins += 1;
        }
        let new = if pins >= 2 {
            NetBox { contrib: ((max_x - min_x) + (max_y - min_y)) as i128, routed: true }
        } else {
            NetBox::default()
        };
        self.total_dbu += new.contrib;
        self.routed_nets += usize::from(new.routed);
        self.boxes[net.0 as usize] = new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::{DesignBuilder, PortDirection};

    #[test]
    fn hpwl_of_two_pin_net() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_comb("a", "");
        let c = b.add_comb("c", "");
        let n = b.add_net("n");
        b.connect_driver(n, a);
        b.connect_sink(n, c);
        let d = b.build();
        let mut placement = CellPlacement::default();
        placement.set_position(a, Point::new(0, 0));
        placement.set_position(c, Point::new(30, 40));
        let wl = total_hpwl(&d, &placement);
        assert_eq!(wl.dbu, 70);
        assert_eq!(wl.routed_nets, 1);
    }

    #[test]
    fn hpwl_includes_port_positions() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_comb("a", "");
        let p = b.add_port("in", PortDirection::Input);
        b.place_port(p, Point::new(100, 0));
        let n = b.add_net("n");
        b.connect_port_driver(n, p);
        b.connect_sink(n, a);
        let d = b.build();
        let mut placement = CellPlacement::default();
        placement.set_position(a, Point::new(0, 50));
        let wl = total_hpwl(&d, &placement);
        assert_eq!(wl.dbu, 150);
    }

    #[test]
    fn multi_pin_net_uses_bounding_box() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_comb("a", "");
        let c1 = b.add_comb("c1", "");
        let c2 = b.add_comb("c2", "");
        let n = b.add_net("n");
        b.connect_driver(n, a);
        b.connect_sink(n, c1);
        b.connect_sink(n, c2);
        let d = b.build();
        let mut placement = CellPlacement::default();
        placement.set_position(a, Point::new(0, 0));
        placement.set_position(c1, Point::new(10, 100));
        placement.set_position(c2, Point::new(50, 20));
        let wl = total_hpwl(&d, &placement);
        assert_eq!(wl.dbu, 50 + 100);
    }

    #[test]
    fn unplaced_pins_are_skipped() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_comb("a", "");
        let c = b.add_comb("c", "");
        let n = b.add_net("n");
        b.connect_driver(n, a);
        b.connect_sink(n, c);
        let d = b.build();
        let placement = CellPlacement::default();
        let wl = total_hpwl(&d, &placement);
        assert_eq!(wl.dbu, 0);
        assert_eq!(wl.routed_nets, 0);
    }

    #[test]
    fn meters_conversion() {
        let wl = Hpwl { dbu: 2_000_000_000, routed_nets: 1 };
        // 2e9 DBU at 1000 DBU/µm = 2e6 µm = 2 m
        assert!((wl.meters(1000) - 2.0).abs() < 1e-9);
    }
}
