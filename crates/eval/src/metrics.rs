//! One-call evaluation pipeline: place the standard cells, then measure
//! wirelength, congestion, timing and density — the columns of Table III.

use crate::congestion::{estimate_congestion, CongestionConfig, CongestionMap};
use crate::density::DensityMap;
use crate::placer::{place_standard_cells, CellPlacement, PlacerConfig};
use crate::timing::{estimate_timing, TimingConfig, TimingReport};
use crate::wirelength::{total_hpwl, Hpwl};
use geometry::{Orientation, Point};
use graphs::seqgraph::SeqGraphConfig;
use graphs::SeqGraph;
use netlist::design::{CellId, Design};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the whole evaluation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Standard-cell placer settings.
    pub placer: PlacerConfig,
    /// Congestion estimator settings.
    pub congestion: CongestionConfig,
    /// Timing estimator settings.
    pub timing: TimingConfig,
    /// Density-map resolution (bins per edge).
    pub density_bins: usize,
    /// DBU per micron, used to report wirelength in meters.
    pub dbu_per_micron: i64,
}

impl EvalConfig {
    /// A sensible default (32-bin grids, 1000 DBU/µm).
    pub fn standard() -> Self {
        Self {
            placer: PlacerConfig::default(),
            congestion: CongestionConfig::default(),
            timing: TimingConfig::default(),
            density_bins: 32,
            dbu_per_micron: 1000,
        }
    }
}

/// The metrics of one placed flow — one row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementMetrics {
    /// Half-perimeter wirelength.
    pub hpwl: Hpwl,
    /// Wirelength in meters.
    pub wirelength_m: f64,
    /// Global-routing congestion.
    pub congestion: CongestionMap,
    /// Timing report.
    pub timing: TimingReport,
    /// Standard-cell density map.
    pub density: DensityMap,
    /// The standard-cell placement used for the measurements.
    pub cell_placement: CellPlacement,
}

impl PlacementMetrics {
    /// Convenience accessor matching the Table III column "GRC%".
    pub fn grc_percent(&self) -> f64 {
        self.congestion.overflow_percent
    }

    /// Convenience accessor matching the Table III column "WNS%".
    pub fn wns_percent(&self) -> f64 {
        self.timing.wns_percent
    }

    /// Convenience accessor matching the Table III column "TNS" (in ns).
    pub fn tns_ns(&self) -> f64 {
        self.timing.tns_ps / 1000.0
    }
}

/// Evaluates a macro placement: places the standard cells around it with the
/// shared placer, then measures every Table III metric.
pub fn evaluate_placement(
    design: &Design,
    macro_placement: &HashMap<CellId, (Point, Orientation)>,
    config: &EvalConfig,
) -> PlacementMetrics {
    let cell_placement = place_standard_cells(design, macro_placement, &config.placer);
    let hpwl = total_hpwl(design, &cell_placement);
    let congestion =
        estimate_congestion(design, &cell_placement, macro_placement, &config.congestion);
    let gseq = SeqGraph::from_design(design, &SeqGraphConfig::default());
    let timing = estimate_timing(design, &gseq, &cell_placement, &config.timing);
    let density =
        DensityMap::compute(design, &cell_placement, macro_placement, config.density_bins);
    PlacementMetrics {
        wirelength_m: hpwl.meters(config.dbu_per_micron),
        hpwl,
        congestion,
        timing,
        density,
        cell_placement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Rect;
    use netlist::design::DesignBuilder;

    /// A macro and a register bank talking to it, placed either near or far.
    fn design() -> (Design, CellId) {
        let mut b = DesignBuilder::new("t");
        let m = b.add_macro("ram", "RAM", 50_000, 50_000, "");
        for i in 0..32 {
            let f = b.add_flop(format!("data_reg[{i}]"), "");
            let n = b.add_net(format!("n{i}"));
            b.connect_driver(n, f);
            b.connect_sink(n, m);
        }
        b.set_die(Rect::new(0, 0, 400_000, 400_000));
        (b.build(), m)
    }

    #[test]
    fn pipeline_produces_all_metrics() {
        let (d, m) = design();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(10_000, 10_000), Orientation::N));
        let metrics = evaluate_placement(&d, &mp, &EvalConfig::standard());
        assert!(metrics.hpwl.dbu > 0);
        assert!(metrics.wirelength_m > 0.0);
        assert!(metrics.grc_percent() >= 0.0);
        assert!(metrics.wns_percent() <= 0.0);
        assert!(metrics.density.peak() >= 0.0);
        assert_eq!(metrics.cell_placement.positions.len(), d.num_cells());
    }

    #[test]
    fn corner_macro_far_from_everything_hurts_wirelength() {
        let (d, m) = design();
        // ports pull nothing here; the registers gravitate to the macro, so
        // compare a centered macro against one pushed to the far corner with
        // registers anchored by an added port on the left edge.
        let mut b = DesignBuilder::new("t2");
        let m2 = b.add_macro("ram", "RAM", 50_000, 50_000, "");
        let p = b.add_port("io", netlist::design::PortDirection::Input);
        b.place_port(p, Point::new(0, 200_000));
        for i in 0..32 {
            let f = b.add_flop(format!("data_reg[{i}]"), "");
            let n = b.add_net(format!("n{i}"));
            let n2 = b.add_net(format!("p{i}"));
            b.connect_driver(n, f);
            b.connect_sink(n, m2);
            b.connect_port_driver(n2, p);
            b.connect_sink(n2, f);
        }
        b.set_die(Rect::new(0, 0, 400_000, 400_000));
        let d2 = b.build();

        let mut near = HashMap::new();
        near.insert(m2, (Point::new(20_000, 175_000), Orientation::N));
        let mut far = HashMap::new();
        far.insert(m2, (Point::new(350_000, 0), Orientation::N));
        let cfg = EvalConfig::standard();
        let near_m = evaluate_placement(&d2, &near, &cfg);
        let far_m = evaluate_placement(&d2, &far, &cfg);
        assert!(near_m.hpwl.dbu < far_m.hpwl.dbu, "macro near its port should give lower HPWL");
        let _ = (d, m);
    }

    #[test]
    fn metrics_are_deterministic() {
        let (d, m) = design();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(10_000, 10_000), Orientation::N));
        let a = evaluate_placement(&d, &mp, &EvalConfig::standard());
        let b = evaluate_placement(&d, &mp, &EvalConfig::standard());
        assert_eq!(a.hpwl, b.hpwl);
        assert_eq!(a.timing, b.timing);
    }
}
