//! The evaluation session: an [`Evaluator`] that places the standard cells,
//! then measures wirelength, congestion, timing and density — the columns of
//! Table III — for any number of candidate placements.

use crate::artifacts::ArtifactCache;
use crate::congestion::{estimate_congestion_with_ports, CongestionConfig, CongestionMap};
use crate::density::DensityMap;
use crate::placer::{place_standard_cells, CellPlacement, PlacerConfig};
use crate::timing::{estimate_timing, TimingConfig, TimingReport};
use crate::wirelength::{total_hpwl_with_ports, Hpwl};
use geometry::Point;
use graphs::SeqGraph;
use netlist::design::Design;
use netlist::PlacementView;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of the whole evaluation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Standard-cell placer settings.
    pub placer: PlacerConfig,
    /// Congestion estimator settings.
    pub congestion: CongestionConfig,
    /// Timing estimator settings.
    pub timing: TimingConfig,
    /// Density-map resolution (bins per edge).
    pub density_bins: usize,
    /// DBU per micron, used to report wirelength in meters.
    pub dbu_per_micron: i64,
}

impl EvalConfig {
    /// A sensible default (32-bin grids, 1000 DBU/µm).
    pub fn standard() -> Self {
        Self {
            placer: PlacerConfig::default(),
            congestion: CongestionConfig::default(),
            timing: TimingConfig::default(),
            density_bins: 32,
            dbu_per_micron: 1000,
        }
    }
}

/// The metrics of one placed flow — one row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementMetrics {
    /// Half-perimeter wirelength.
    pub hpwl: Hpwl,
    /// Wirelength in meters.
    pub wirelength_m: f64,
    /// Global-routing congestion.
    pub congestion: CongestionMap,
    /// Timing report.
    pub timing: TimingReport,
    /// Standard-cell density map.
    pub density: DensityMap,
    /// The standard-cell placement used for the measurements.
    pub cell_placement: CellPlacement,
}

impl PlacementMetrics {
    /// Convenience accessor matching the Table III column "GRC%".
    pub fn grc_percent(&self) -> f64 {
        self.congestion.overflow_percent
    }

    /// Convenience accessor matching the Table III column "WNS%".
    pub fn wns_percent(&self) -> f64 {
        self.timing.wns_percent
    }

    /// Convenience accessor matching the Table III column "TNS" (in ns).
    pub fn tns_ns(&self) -> f64 {
        self.timing.tns_ps / 1000.0
    }
}

/// The identity of a design for the purposes of design-keyed caches and
/// stores: the name, every id-family size, a build-time hash of the full
/// connectivity, and a hash of everything else `Gseq` construction reads —
/// the kinds and names of the sequential elements (flop/macro/port names
/// drive the array clustering). Two designs differing in any of these get
/// distinct keys, so a shared session never reuses a stale graph.
///
/// Keys are cheap to compare and hash, and hold no reference to the design,
/// so multi-design services can use them to intern designs and to index
/// shared artifact caches (see [`ArtifactCache`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DesignKey {
    name: String,
    num_cells: usize,
    num_nets: usize,
    num_ports: usize,
    num_macros: usize,
    /// Build-time hash of the full cell↔net incidence
    /// ([`netlist::Connectivity::fingerprint`]): designs that collide on
    /// name and counts but differ in wiring still get distinct keys.
    connectivity: u64,
    /// [`Design::seq_name_fingerprint`]: the kind and name of every
    /// sequential cell and every port — the inputs of `Gseq`'s name-based
    /// array clustering.
    seq_names: u64,
}

impl DesignKey {
    /// The identity key of a design (builds and caches the design's
    /// connectivity view if it was not materialized yet).
    pub fn of(design: &Design) -> Self {
        Self {
            name: design.name().to_string(),
            num_cells: design.num_cells(),
            num_nets: design.num_nets(),
            num_ports: design.num_ports(),
            num_macros: design.num_macros(),
            connectivity: design.connectivity().fingerprint(),
            seq_names: design.seq_name_fingerprint(),
        }
    }

    /// The design (top module) name the key was taken from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A single `u64` folding every identity field — the content address the
    /// disk spill tier files artifacts under ([`crate::spill`]). Two designs
    /// share it exactly when their keys are equal (modulo 64-bit hash
    /// collisions, which the spill tier tolerates: a revived artifact is
    /// verified against its design before use).
    pub fn fingerprint(&self) -> u64 {
        let mut h = netlist::Fnv1a::new();
        h.write_bytes(self.name.as_bytes());
        h.write_sep();
        h.write_u64(self.num_cells as u64);
        h.write_u64(self.num_nets as u64);
        h.write_u64(self.num_ports as u64);
        h.write_u64(self.num_macros as u64);
        h.write_u64(self.connectivity);
        h.write_u64(self.seq_names);
        h.finish()
    }
}

/// An evaluation session: owns the [`EvalConfig`], the cached sequential
/// graph and reusable scratch buffers, and measures any number of candidate
/// placements through [`Evaluator::evaluate`].
///
/// Build one per sweep and reuse it — every candidate after the first skips
/// the `Gseq` reconstruction that dominated the old per-call evaluation
/// path. Cloning an `Evaluator` shares the graph cache
/// (but not the scratch buffers), so per-worker clones in a parallel sweep
/// still build `Gseq` only once.
///
/// # Example
///
/// ```
/// use eval::{EvalConfig, Evaluator};
/// use geometry::{Orientation, Point, Rect};
/// use netlist::design::DesignBuilder;
/// use netlist::DenseMacroPlacementView;
///
/// let mut b = DesignBuilder::new("t");
/// let m = b.add_macro("ram", "RAM", 50_000, 50_000, "");
/// for i in 0..8 {
///     let f = b.add_flop(format!("d_reg[{i}]"), "");
///     let n = b.add_net(format!("n{i}"));
///     b.connect_driver(n, f);
///     b.connect_sink(n, m);
/// }
/// b.set_die(Rect::new(0, 0, 400_000, 400_000));
/// let design = b.build();
///
/// // Build the session once, evaluate a whole sweep of candidates through
/// // it: the sequential graph is constructed on the first call only.
/// let mut evaluator = Evaluator::new(EvalConfig::standard());
/// let mut best: Option<(i128, Point)> = None;
/// for x in [10_000, 150_000, 300_000] {
///     let mut candidate = DenseMacroPlacementView::with_num_cells(design.num_cells());
///     candidate.place(m, Point::new(x, 10_000), Orientation::N);
///     let metrics = evaluator.evaluate(&design, &candidate);
///     if best.map(|(wl, _)| metrics.hpwl.dbu < wl).unwrap_or(true) {
///         best = Some((metrics.hpwl.dbu, Point::new(x, 10_000)));
///     }
/// }
/// assert!(best.is_some());
/// ```
#[derive(Debug)]
pub struct Evaluator {
    config: EvalConfig,
    cache: ArtifactCache,
    /// Scratch: port positions, refilled (not reallocated) per candidate.
    scratch_ports: Vec<Option<Point>>,
}

impl Clone for Evaluator {
    fn clone(&self) -> Self {
        Self { config: self.config, cache: self.cache.clone(), scratch_ports: Vec::new() }
    }
}

impl Evaluator {
    /// A session with the given configuration and a fresh artifact cache.
    pub fn new(config: EvalConfig) -> Self {
        Self { config, cache: ArtifactCache::new(), scratch_ports: Vec::new() }
    }

    /// A session with the standard configuration ([`EvalConfig::standard`]).
    pub fn standard() -> Self {
        Self::new(EvalConfig::standard())
    }

    /// A session sharing an existing artifact cache (used by sweep front
    /// ends so all workers of a batch reuse one `Gseq`, and by design stores
    /// so every session of a service fetches from one pool).
    pub fn with_cache(config: EvalConfig, cache: ArtifactCache) -> Self {
        Self { config, cache, scratch_ports: Vec::new() }
    }

    /// The session configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// The session's shared artifact cache (clone it into sibling sessions).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The cached sequential graph of `design`, building it if needed.
    pub fn seq_graph(&self, design: &Design) -> Arc<SeqGraph> {
        self.cache.get_or_build(design)
    }

    /// Evaluates a macro placement: places the standard cells around it with
    /// the shared placer, then measures every Table III metric.
    ///
    /// Accepts any [`PlacementView`]; flow outputs evaluate directly, with no
    /// intermediate map.
    pub fn evaluate(
        &mut self,
        design: &Design,
        macro_placement: &impl PlacementView,
    ) -> PlacementMetrics {
        let cell_placement = place_standard_cells(design, macro_placement, &self.config.placer);
        self.finish_evaluation(design, macro_placement, cell_placement)
    }

    /// Warm-start evaluation: like [`Evaluator::evaluate`] but the
    /// standard-cell placer seeds its Gauss–Seidel state from a previous
    /// [`CellPlacement`] (see [`crate::place_standard_cells_warm`]),
    /// converging in far fewer sweeps on small ECO edits. Returns the
    /// metrics and the number of sweeps the placer actually ran.
    pub fn evaluate_warm(
        &mut self,
        design: &Design,
        macro_placement: &impl PlacementView,
        warm: &CellPlacement,
    ) -> (PlacementMetrics, usize) {
        let (cell_placement, sweeps) = crate::placer::place_standard_cells_warm(
            design,
            macro_placement,
            &self.config.placer,
            warm,
        );
        (self.finish_evaluation(design, macro_placement, cell_placement), sweeps)
    }

    /// Measures every Table III metric over an already-computed cell
    /// placement (the shared tail of the cold and warm evaluation paths).
    fn finish_evaluation(
        &mut self,
        design: &Design,
        macro_placement: &impl PlacementView,
        cell_placement: CellPlacement,
    ) -> PlacementMetrics {
        let config = self.config;
        self.scratch_ports.clear();
        self.scratch_ports.extend(design.ports().map(|(_, p)| p.position));
        let hpwl = total_hpwl_with_ports(design, &cell_placement, &self.scratch_ports);
        let congestion = estimate_congestion_with_ports(
            design,
            &cell_placement,
            macro_placement,
            &config.congestion,
            &self.scratch_ports,
        );
        let gseq = self.seq_graph(design);
        let timing = estimate_timing(design, &gseq, &cell_placement, &config.timing);
        let density =
            DensityMap::compute(design, &cell_placement, macro_placement, config.density_bins);
        PlacementMetrics {
            wirelength_m: hpwl.meters(config.dbu_per_micron),
            hpwl,
            congestion,
            timing,
            density,
            cell_placement,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::{Orientation, Rect};
    use netlist::design::{CellId, DesignBuilder};
    use std::collections::HashMap;

    /// A macro and a register bank talking to it, placed either near or far.
    fn design() -> (Design, CellId) {
        let mut b = DesignBuilder::new("t");
        let m = b.add_macro("ram", "RAM", 50_000, 50_000, "");
        for i in 0..32 {
            let f = b.add_flop(format!("data_reg[{i}]"), "");
            let n = b.add_net(format!("n{i}"));
            b.connect_driver(n, f);
            b.connect_sink(n, m);
        }
        b.set_die(Rect::new(0, 0, 400_000, 400_000));
        (b.build(), m)
    }

    #[test]
    fn pipeline_produces_all_metrics() {
        let (d, m) = design();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(10_000, 10_000), Orientation::N));
        let metrics = Evaluator::standard().evaluate(&d, &mp);
        assert!(metrics.hpwl.dbu > 0);
        assert!(metrics.wirelength_m > 0.0);
        assert!(metrics.grc_percent() >= 0.0);
        assert!(metrics.wns_percent() <= 0.0);
        assert!(metrics.density.peak() >= 0.0);
        assert_eq!(metrics.cell_placement.positions.len(), d.num_cells());
    }

    #[test]
    fn corner_macro_far_from_everything_hurts_wirelength() {
        let (d, m) = design();
        // ports pull nothing here; the registers gravitate to the macro, so
        // compare a centered macro against one pushed to the far corner with
        // registers anchored by an added port on the left edge.
        let mut b = DesignBuilder::new("t2");
        let m2 = b.add_macro("ram", "RAM", 50_000, 50_000, "");
        let p = b.add_port("io", netlist::design::PortDirection::Input);
        b.place_port(p, Point::new(0, 200_000));
        for i in 0..32 {
            let f = b.add_flop(format!("data_reg[{i}]"), "");
            let n = b.add_net(format!("n{i}"));
            let n2 = b.add_net(format!("p{i}"));
            b.connect_driver(n, f);
            b.connect_sink(n, m2);
            b.connect_port_driver(n2, p);
            b.connect_sink(n2, f);
        }
        b.set_die(Rect::new(0, 0, 400_000, 400_000));
        let d2 = b.build();

        let mut near = HashMap::new();
        near.insert(m2, (Point::new(20_000, 175_000), Orientation::N));
        let mut far = HashMap::new();
        far.insert(m2, (Point::new(350_000, 0), Orientation::N));
        // one session across two candidates of the same design
        let mut evaluator = Evaluator::standard();
        let near_m = evaluator.evaluate(&d2, &near);
        let far_m = evaluator.evaluate(&d2, &far);
        assert!(near_m.hpwl.dbu < far_m.hpwl.dbu, "macro near its port should give lower HPWL");
        let _ = (d, m);
    }

    #[test]
    fn metrics_are_deterministic_across_sessions() {
        let (d, m) = design();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(10_000, 10_000), Orientation::N));
        let mut evaluator = Evaluator::standard();
        let a = evaluator.evaluate(&d, &mp);
        let b = evaluator.evaluate(&d, &mp);
        assert_eq!(a.hpwl, b.hpwl);
        assert_eq!(a.timing, b.timing);
        // a throwaway one-shot session produces bit-identical metrics
        let one_shot = Evaluator::new(EvalConfig::standard()).evaluate(&d, &mp);
        assert_eq!(one_shot, a);
    }

    #[test]
    fn session_cache_is_invalidated_across_designs() {
        let (d, m) = design();
        // a different design with the same name but different shape: the
        // macro feeds two distinct register arrays → two stage edges
        let mut b = DesignBuilder::new("t");
        let m2 = b.add_macro("ram2", "RAM", 50_000, 50_000, "");
        let f = b.add_flop("q_reg[0]", "");
        let g = b.add_flop("r_reg[0]", "");
        let n = b.add_net("n");
        let n2 = b.add_net("n2");
        b.connect_driver(n, m2);
        b.connect_sink(n, f);
        b.connect_driver(n2, m2);
        b.connect_sink(n2, g);
        b.set_die(Rect::new(0, 0, 400_000, 400_000));
        let d2 = b.build();

        let mut evaluator = Evaluator::standard();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(10_000, 10_000), Orientation::N));
        let first = evaluator.evaluate(&d, &mp);
        let mut mp2 = HashMap::new();
        mp2.insert(m2, (Point::new(10_000, 10_000), Orientation::N));
        let second = evaluator.evaluate(&d2, &mp2);
        // a stale cached graph would report the first design's edge count
        assert_eq!(first.timing.analyzed_edges, 1); // data_reg → ram
        assert_eq!(second.timing.analyzed_edges, 2); // ram2 → {q_reg, r_reg}
                                                     // and a fresh session on d2 agrees with the shared-session result
        assert_eq!(Evaluator::standard().evaluate(&d2, &mp2), second);
    }

    #[test]
    fn session_cache_rebuilds_for_rewired_design_with_identical_counts() {
        // same name, same cell/net/port/pin counts — only the wiring differs:
        // the macro's output either stays inside one array or fans out to two
        let build = |split: bool| {
            let mut b = DesignBuilder::new("t");
            let m = b.add_macro("ram", "RAM", 50_000, 50_000, "");
            let f = b.add_flop("q_reg[0]", "");
            let g = b.add_flop(if split { "r_reg[0]" } else { "q_reg[1]" }, "");
            let n = b.add_net("n");
            let n2 = b.add_net("n2");
            b.connect_driver(n, m);
            b.connect_sink(n, f);
            b.connect_driver(n2, m);
            b.connect_sink(n2, g);
            b.set_die(Rect::new(0, 0, 400_000, 400_000));
            (b.build(), m)
        };
        let (one_array, m1) = build(false);
        let (two_arrays, m2) = build(true);
        let mut mp = HashMap::new();
        mp.insert(m1, (Point::new(10_000, 10_000), Orientation::N));
        let mut evaluator = Evaluator::standard();
        let first = evaluator.evaluate(&one_array, &mp);
        let mut mp2 = HashMap::new();
        mp2.insert(m2, (Point::new(10_000, 10_000), Orientation::N));
        let second = evaluator.evaluate(&two_arrays, &mp2);
        // a stale cached graph would leave the edge count at 1
        assert_eq!(first.timing.analyzed_edges, 1); // ram → q_reg (2 bits)
        assert_eq!(second.timing.analyzed_edges, 2); // ram → {q_reg, r_reg}
    }

    #[test]
    fn cloned_sessions_share_the_graph_cache() {
        let (d, m) = design();
        let evaluator = Evaluator::standard();
        let gseq = evaluator.seq_graph(&d);
        let clone = evaluator.clone();
        assert!(Arc::ptr_eq(&gseq, &clone.seq_graph(&d)));
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(10_000, 10_000), Orientation::N));
        let mut a = evaluator;
        let mut b = clone;
        assert_eq!(a.evaluate(&d, &mp), b.evaluate(&d, &mp));
    }
}
