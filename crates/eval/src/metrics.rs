//! The evaluation session: an [`Evaluator`] that places the standard cells,
//! then measures wirelength, congestion, timing and density — the columns of
//! Table III — for any number of candidate placements.

use crate::congestion::{estimate_congestion_with_ports, CongestionConfig, CongestionMap};
use crate::density::DensityMap;
use crate::placer::{place_standard_cells, CellPlacement, PlacerConfig};
use crate::timing::{estimate_timing, TimingConfig, TimingReport};
use crate::wirelength::{total_hpwl_with_ports, Hpwl};
use geometry::Point;
use graphs::seqgraph::SeqGraphConfig;
use graphs::SeqGraph;
use netlist::design::Design;
use netlist::PlacementView;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// Configuration of the whole evaluation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Standard-cell placer settings.
    pub placer: PlacerConfig,
    /// Congestion estimator settings.
    pub congestion: CongestionConfig,
    /// Timing estimator settings.
    pub timing: TimingConfig,
    /// Density-map resolution (bins per edge).
    pub density_bins: usize,
    /// DBU per micron, used to report wirelength in meters.
    pub dbu_per_micron: i64,
}

impl EvalConfig {
    /// A sensible default (32-bin grids, 1000 DBU/µm).
    pub fn standard() -> Self {
        Self {
            placer: PlacerConfig::default(),
            congestion: CongestionConfig::default(),
            timing: TimingConfig::default(),
            density_bins: 32,
            dbu_per_micron: 1000,
        }
    }
}

/// The metrics of one placed flow — one row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementMetrics {
    /// Half-perimeter wirelength.
    pub hpwl: Hpwl,
    /// Wirelength in meters.
    pub wirelength_m: f64,
    /// Global-routing congestion.
    pub congestion: CongestionMap,
    /// Timing report.
    pub timing: TimingReport,
    /// Standard-cell density map.
    pub density: DensityMap,
    /// The standard-cell placement used for the measurements.
    pub cell_placement: CellPlacement,
}

impl PlacementMetrics {
    /// Convenience accessor matching the Table III column "GRC%".
    pub fn grc_percent(&self) -> f64 {
        self.congestion.overflow_percent
    }

    /// Convenience accessor matching the Table III column "WNS%".
    pub fn wns_percent(&self) -> f64 {
        self.timing.wns_percent
    }

    /// Convenience accessor matching the Table III column "TNS" (in ns).
    pub fn tns_ns(&self) -> f64 {
        self.timing.tns_ps / 1000.0
    }
}

/// The identity of a design for the purposes of design-keyed caches and
/// stores: the name, every id-family size, a build-time hash of the full
/// connectivity, and a hash of everything else `Gseq` construction reads —
/// the kinds and names of the sequential elements (flop/macro/port names
/// drive the array clustering). Two designs differing in any of these get
/// distinct keys, so a shared session never reuses a stale graph.
///
/// Keys are cheap to compare and hash, and hold no reference to the design,
/// so multi-design services can use them to intern designs and to index
/// shared artifact caches (see [`SeqGraphCache`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DesignKey {
    name: String,
    num_cells: usize,
    num_nets: usize,
    num_ports: usize,
    num_macros: usize,
    /// Build-time hash of the full cell↔net incidence
    /// ([`netlist::Connectivity::fingerprint`]): designs that collide on
    /// name and counts but differ in wiring still get distinct keys.
    connectivity: u64,
    /// [`Design::seq_name_fingerprint`]: the kind and name of every
    /// sequential cell and every port — the inputs of `Gseq`'s name-based
    /// array clustering.
    seq_names: u64,
}

impl DesignKey {
    /// The identity key of a design (builds and caches the design's
    /// connectivity view if it was not materialized yet).
    pub fn of(design: &Design) -> Self {
        Self {
            name: design.name().to_string(),
            num_cells: design.num_cells(),
            num_nets: design.num_nets(),
            num_ports: design.num_ports(),
            num_macros: design.num_macros(),
            connectivity: design.connectivity().fingerprint(),
            seq_names: design.seq_name_fingerprint(),
        }
    }

    /// The design (top module) name the key was taken from.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A cheap-clone, thread-safe, bounded LRU cache of sequential graphs keyed
/// by [`DesignKey`] — the per-design artifact an evaluation session shares
/// across candidates, worker threads, and (through a design store) across
/// the heterogeneous jobs of a multi-design service.
///
/// The first evaluation of a design builds `Gseq` (holding the lock, so
/// concurrent workers wait instead of duplicating the build); every later
/// evaluation of the same design reuses the `Arc`. When more distinct
/// designs than `capacity` flow through the cache, the least-recently-used
/// graph is evicted. Hit/miss counters expose reuse to benchmarks and CI
/// assertions.
#[derive(Debug, Clone)]
pub struct SeqGraphCache {
    inner: Arc<Mutex<SeqGraphLru>>,
}

/// One LRU slot identity: the design plus the graph-construction config
/// (flows may request a different register-width threshold than the
/// evaluation default; both variants cache independently).
#[derive(Debug, Clone, PartialEq)]
struct SeqGraphKey {
    design: DesignKey,
    config: SeqGraphConfig,
}

/// The guarded LRU state: entries ordered least- to most-recently used.
#[derive(Debug)]
struct SeqGraphLru {
    entries: Vec<(SeqGraphKey, Arc<SeqGraph>)>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Default for SeqGraphCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SeqGraphCache {
    /// The default number of designs kept ([`SeqGraphCache::new`]).
    pub const DEFAULT_CAPACITY: usize = 8;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache keeping at most `capacity` designs (clamped to ≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(SeqGraphLru {
                entries: Vec::new(),
                capacity: capacity.max(1),
                hits: 0,
                misses: 0,
            })),
        }
    }

    /// The sequential graph of `design` under the default construction
    /// config (the evaluation pipeline's graph), built on first use and
    /// cached.
    pub fn get_or_build(&self, design: &Design) -> Arc<SeqGraph> {
        self.get_or_build_with(design, &SeqGraphConfig::default())
    }

    /// The sequential graph of `design` under an explicit construction
    /// config. Each `(design, config)` pair caches independently, so a flow
    /// requesting a pruned graph (`min_register_bits > 1`) and the
    /// evaluation requesting the full one both stay warm.
    pub fn get_or_build_with(&self, design: &Design, config: &SeqGraphConfig) -> Arc<SeqGraph> {
        let key = SeqGraphKey { design: DesignKey::of(design), config: *config };
        let mut lru = self.inner.lock().expect("seq-graph cache lock");
        if let Some(pos) = lru.entries.iter().position(|(k, _)| *k == key) {
            lru.hits += 1;
            // refresh recency: move the entry to the most-recent end
            let entry = lru.entries.remove(pos);
            let gseq = entry.1.clone();
            lru.entries.push(entry);
            return gseq;
        }
        let gseq = Arc::new(SeqGraph::from_design(design, config));
        lru.misses += 1;
        lru.entries.push((key, gseq.clone()));
        if lru.entries.len() > lru.capacity {
            lru.entries.remove(0);
        }
        gseq
    }

    /// Whether a graph for this design (under any construction config) is
    /// currently cached. Does not touch recency or the counters.
    pub fn contains(&self, key: &DesignKey) -> bool {
        self.inner
            .lock()
            .expect("seq-graph cache lock")
            .entries
            .iter()
            .any(|(k, _)| k.design == *key)
    }

    /// The cached design keys, least- to most-recently used (a design cached
    /// under several construction configs appears once per config).
    pub fn keys(&self) -> Vec<DesignKey> {
        let lru = self.inner.lock().expect("seq-graph cache lock");
        lru.entries.iter().map(|(k, _)| k.design.clone()).collect()
    }

    /// Number of designs currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("seq-graph cache lock").entries.len()
    }

    /// Whether no design is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The maximum number of designs kept.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("seq-graph cache lock").capacity
    }

    /// Number of [`SeqGraphCache::get_or_build`] calls served from the cache.
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("seq-graph cache lock").hits
    }

    /// Number of [`SeqGraphCache::get_or_build`] calls that had to build.
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("seq-graph cache lock").misses
    }
}

/// An evaluation session: owns the [`EvalConfig`], the cached sequential
/// graph and reusable scratch buffers, and measures any number of candidate
/// placements through [`Evaluator::evaluate`].
///
/// Build one per sweep and reuse it — every candidate after the first skips
/// the `Gseq` reconstruction that dominated the old per-call evaluation
/// path. Cloning an `Evaluator` shares the graph cache
/// (but not the scratch buffers), so per-worker clones in a parallel sweep
/// still build `Gseq` only once.
///
/// # Example
///
/// ```
/// use eval::{EvalConfig, Evaluator};
/// use geometry::{Orientation, Point, Rect};
/// use netlist::design::DesignBuilder;
/// use netlist::DenseMacroPlacementView;
///
/// let mut b = DesignBuilder::new("t");
/// let m = b.add_macro("ram", "RAM", 50_000, 50_000, "");
/// for i in 0..8 {
///     let f = b.add_flop(format!("d_reg[{i}]"), "");
///     let n = b.add_net(format!("n{i}"));
///     b.connect_driver(n, f);
///     b.connect_sink(n, m);
/// }
/// b.set_die(Rect::new(0, 0, 400_000, 400_000));
/// let design = b.build();
///
/// // Build the session once, evaluate a whole sweep of candidates through
/// // it: the sequential graph is constructed on the first call only.
/// let mut evaluator = Evaluator::new(EvalConfig::standard());
/// let mut best: Option<(i128, Point)> = None;
/// for x in [10_000, 150_000, 300_000] {
///     let mut candidate = DenseMacroPlacementView::with_num_cells(design.num_cells());
///     candidate.place(m, Point::new(x, 10_000), Orientation::N);
///     let metrics = evaluator.evaluate(&design, &candidate);
///     if best.map(|(wl, _)| metrics.hpwl.dbu < wl).unwrap_or(true) {
///         best = Some((metrics.hpwl.dbu, Point::new(x, 10_000)));
///     }
/// }
/// assert!(best.is_some());
/// ```
#[derive(Debug)]
pub struct Evaluator {
    config: EvalConfig,
    cache: SeqGraphCache,
    /// Scratch: port positions, refilled (not reallocated) per candidate.
    scratch_ports: Vec<Option<Point>>,
}

impl Clone for Evaluator {
    fn clone(&self) -> Self {
        Self { config: self.config, cache: self.cache.clone(), scratch_ports: Vec::new() }
    }
}

impl Evaluator {
    /// A session with the given configuration and a fresh graph cache.
    pub fn new(config: EvalConfig) -> Self {
        Self { config, cache: SeqGraphCache::new(), scratch_ports: Vec::new() }
    }

    /// A session with the standard configuration ([`EvalConfig::standard`]).
    pub fn standard() -> Self {
        Self::new(EvalConfig::standard())
    }

    /// A session sharing an existing graph cache (used by sweep front ends so
    /// all workers of a batch reuse one `Gseq`).
    pub fn with_cache(config: EvalConfig, cache: SeqGraphCache) -> Self {
        Self { config, cache, scratch_ports: Vec::new() }
    }

    /// The session configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// The session's shared graph cache (clone it into sibling sessions).
    pub fn cache(&self) -> &SeqGraphCache {
        &self.cache
    }

    /// The cached sequential graph of `design`, building it if needed.
    pub fn seq_graph(&self, design: &Design) -> Arc<SeqGraph> {
        self.cache.get_or_build(design)
    }

    /// Evaluates a macro placement: places the standard cells around it with
    /// the shared placer, then measures every Table III metric.
    ///
    /// Accepts any [`PlacementView`]; flow outputs evaluate directly, with no
    /// intermediate map.
    pub fn evaluate(
        &mut self,
        design: &Design,
        macro_placement: &impl PlacementView,
    ) -> PlacementMetrics {
        let config = self.config;
        let cell_placement = place_standard_cells(design, macro_placement, &config.placer);
        self.scratch_ports.clear();
        self.scratch_ports.extend(design.ports().map(|(_, p)| p.position));
        let hpwl = total_hpwl_with_ports(design, &cell_placement, &self.scratch_ports);
        let congestion = estimate_congestion_with_ports(
            design,
            &cell_placement,
            macro_placement,
            &config.congestion,
            &self.scratch_ports,
        );
        let gseq = self.seq_graph(design);
        let timing = estimate_timing(design, &gseq, &cell_placement, &config.timing);
        let density =
            DensityMap::compute(design, &cell_placement, macro_placement, config.density_bins);
        PlacementMetrics {
            wirelength_m: hpwl.meters(config.dbu_per_micron),
            hpwl,
            congestion,
            timing,
            density,
            cell_placement,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::{Orientation, Rect};
    use netlist::design::{CellId, DesignBuilder};
    use std::collections::HashMap;

    /// A macro and a register bank talking to it, placed either near or far.
    fn design() -> (Design, CellId) {
        let mut b = DesignBuilder::new("t");
        let m = b.add_macro("ram", "RAM", 50_000, 50_000, "");
        for i in 0..32 {
            let f = b.add_flop(format!("data_reg[{i}]"), "");
            let n = b.add_net(format!("n{i}"));
            b.connect_driver(n, f);
            b.connect_sink(n, m);
        }
        b.set_die(Rect::new(0, 0, 400_000, 400_000));
        (b.build(), m)
    }

    #[test]
    fn pipeline_produces_all_metrics() {
        let (d, m) = design();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(10_000, 10_000), Orientation::N));
        let metrics = Evaluator::standard().evaluate(&d, &mp);
        assert!(metrics.hpwl.dbu > 0);
        assert!(metrics.wirelength_m > 0.0);
        assert!(metrics.grc_percent() >= 0.0);
        assert!(metrics.wns_percent() <= 0.0);
        assert!(metrics.density.peak() >= 0.0);
        assert_eq!(metrics.cell_placement.positions.len(), d.num_cells());
    }

    #[test]
    fn corner_macro_far_from_everything_hurts_wirelength() {
        let (d, m) = design();
        // ports pull nothing here; the registers gravitate to the macro, so
        // compare a centered macro against one pushed to the far corner with
        // registers anchored by an added port on the left edge.
        let mut b = DesignBuilder::new("t2");
        let m2 = b.add_macro("ram", "RAM", 50_000, 50_000, "");
        let p = b.add_port("io", netlist::design::PortDirection::Input);
        b.place_port(p, Point::new(0, 200_000));
        for i in 0..32 {
            let f = b.add_flop(format!("data_reg[{i}]"), "");
            let n = b.add_net(format!("n{i}"));
            let n2 = b.add_net(format!("p{i}"));
            b.connect_driver(n, f);
            b.connect_sink(n, m2);
            b.connect_port_driver(n2, p);
            b.connect_sink(n2, f);
        }
        b.set_die(Rect::new(0, 0, 400_000, 400_000));
        let d2 = b.build();

        let mut near = HashMap::new();
        near.insert(m2, (Point::new(20_000, 175_000), Orientation::N));
        let mut far = HashMap::new();
        far.insert(m2, (Point::new(350_000, 0), Orientation::N));
        // one session across two candidates of the same design
        let mut evaluator = Evaluator::standard();
        let near_m = evaluator.evaluate(&d2, &near);
        let far_m = evaluator.evaluate(&d2, &far);
        assert!(near_m.hpwl.dbu < far_m.hpwl.dbu, "macro near its port should give lower HPWL");
        let _ = (d, m);
    }

    #[test]
    fn metrics_are_deterministic_across_sessions() {
        let (d, m) = design();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(10_000, 10_000), Orientation::N));
        let mut evaluator = Evaluator::standard();
        let a = evaluator.evaluate(&d, &mp);
        let b = evaluator.evaluate(&d, &mp);
        assert_eq!(a.hpwl, b.hpwl);
        assert_eq!(a.timing, b.timing);
        // a throwaway one-shot session produces bit-identical metrics
        let one_shot = Evaluator::new(EvalConfig::standard()).evaluate(&d, &mp);
        assert_eq!(one_shot, a);
    }

    #[test]
    fn session_cache_is_invalidated_across_designs() {
        let (d, m) = design();
        // a different design with the same name but different shape: the
        // macro feeds two distinct register arrays → two stage edges
        let mut b = DesignBuilder::new("t");
        let m2 = b.add_macro("ram2", "RAM", 50_000, 50_000, "");
        let f = b.add_flop("q_reg[0]", "");
        let g = b.add_flop("r_reg[0]", "");
        let n = b.add_net("n");
        let n2 = b.add_net("n2");
        b.connect_driver(n, m2);
        b.connect_sink(n, f);
        b.connect_driver(n2, m2);
        b.connect_sink(n2, g);
        b.set_die(Rect::new(0, 0, 400_000, 400_000));
        let d2 = b.build();

        let mut evaluator = Evaluator::standard();
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(10_000, 10_000), Orientation::N));
        let first = evaluator.evaluate(&d, &mp);
        let mut mp2 = HashMap::new();
        mp2.insert(m2, (Point::new(10_000, 10_000), Orientation::N));
        let second = evaluator.evaluate(&d2, &mp2);
        // a stale cached graph would report the first design's edge count
        assert_eq!(first.timing.analyzed_edges, 1); // data_reg → ram
        assert_eq!(second.timing.analyzed_edges, 2); // ram2 → {q_reg, r_reg}
                                                     // and a fresh session on d2 agrees with the shared-session result
        assert_eq!(Evaluator::standard().evaluate(&d2, &mp2), second);
    }

    #[test]
    fn session_cache_rebuilds_for_rewired_design_with_identical_counts() {
        // same name, same cell/net/port/pin counts — only the wiring differs:
        // the macro's output either stays inside one array or fans out to two
        let build = |split: bool| {
            let mut b = DesignBuilder::new("t");
            let m = b.add_macro("ram", "RAM", 50_000, 50_000, "");
            let f = b.add_flop("q_reg[0]", "");
            let g = b.add_flop(if split { "r_reg[0]" } else { "q_reg[1]" }, "");
            let n = b.add_net("n");
            let n2 = b.add_net("n2");
            b.connect_driver(n, m);
            b.connect_sink(n, f);
            b.connect_driver(n2, m);
            b.connect_sink(n2, g);
            b.set_die(Rect::new(0, 0, 400_000, 400_000));
            (b.build(), m)
        };
        let (one_array, m1) = build(false);
        let (two_arrays, m2) = build(true);
        let mut mp = HashMap::new();
        mp.insert(m1, (Point::new(10_000, 10_000), Orientation::N));
        let mut evaluator = Evaluator::standard();
        let first = evaluator.evaluate(&one_array, &mp);
        let mut mp2 = HashMap::new();
        mp2.insert(m2, (Point::new(10_000, 10_000), Orientation::N));
        let second = evaluator.evaluate(&two_arrays, &mp2);
        // a stale cached graph would leave the edge count at 1
        assert_eq!(first.timing.analyzed_edges, 1); // ram → q_reg (2 bits)
        assert_eq!(second.timing.analyzed_edges, 2); // ram → {q_reg, r_reg}
    }

    /// Three small designs with distinct identities, for LRU tests.
    fn keyed_designs() -> Vec<Design> {
        ["da", "db", "dc"]
            .iter()
            .map(|name| {
                let mut b = DesignBuilder::new(*name);
                let m = b.add_macro(format!("{name}_ram"), "RAM", 50_000, 50_000, "");
                let f = b.add_flop(format!("{name}_reg[0]"), "");
                let n = b.add_net("n");
                b.connect_driver(n, f);
                b.connect_sink(n, m);
                b.set_die(Rect::new(0, 0, 400_000, 400_000));
                b.build()
            })
            .collect()
    }

    #[test]
    fn lru_counts_hits_and_misses() {
        let designs = keyed_designs();
        let cache = SeqGraphCache::with_capacity(4);
        assert!(cache.is_empty());
        let first = cache.get_or_build(&designs[0]);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let again = cache.get_or_build(&designs[0]);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        cache.get_or_build(&designs[1]);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let designs = keyed_designs();
        let cache = SeqGraphCache::with_capacity(2);
        cache.get_or_build(&designs[0]);
        cache.get_or_build(&designs[1]);
        // touch design 0 so design 1 becomes the eviction candidate
        cache.get_or_build(&designs[0]);
        cache.get_or_build(&designs[2]); // evicts design 1
        assert!(cache.contains(&DesignKey::of(&designs[0])));
        assert!(!cache.contains(&DesignKey::of(&designs[1])));
        assert!(cache.contains(&DesignKey::of(&designs[2])));
        assert_eq!(
            cache.keys().iter().map(DesignKey::name).collect::<Vec<_>>(),
            vec!["da", "dc"],
            "LRU order is least- to most-recent"
        );
        // re-requesting the evicted design rebuilds it (a fresh miss)
        let misses = cache.misses();
        cache.get_or_build(&designs[1]);
        assert_eq!(cache.misses(), misses + 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_one_cache_holds_the_last_design_only() {
        let designs = keyed_designs();
        let cache = SeqGraphCache::with_capacity(1);
        assert_eq!(cache.capacity(), 1);
        let a = cache.get_or_build(&designs[0]);
        let a_again = cache.get_or_build(&designs[0]);
        assert!(Arc::ptr_eq(&a, &a_again), "same design is served from the single slot");
        cache.get_or_build(&designs[1]);
        assert_eq!(cache.len(), 1);
        assert!(!cache.contains(&DesignKey::of(&designs[0])));
        // zero capacity is clamped to one slot
        assert_eq!(SeqGraphCache::with_capacity(0).capacity(), 1);
    }

    #[test]
    fn cloned_sessions_share_the_graph_cache() {
        let (d, m) = design();
        let evaluator = Evaluator::standard();
        let gseq = evaluator.seq_graph(&d);
        let clone = evaluator.clone();
        assert!(Arc::ptr_eq(&gseq, &clone.seq_graph(&d)));
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(10_000, 10_000), Orientation::N));
        let mut a = evaluator;
        let mut b = clone;
        assert_eq!(a.evaluate(&d, &mp), b.evaluate(&d, &mp));
    }
}
