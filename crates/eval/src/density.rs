//! Standard-cell density maps (the Fig. 9 visualization).

use crate::placer::CellPlacement;
use geometry::Rect;
use netlist::design::{CellKind, Design};
use netlist::PlacementView;
use serde::{Deserialize, Serialize};

/// A grid of standard-cell density (cell area per bin area).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityMap {
    /// Bins per die edge.
    pub bins: usize,
    /// Density per bin, row-major (`[x][y]` flattened as `x * bins + y`).
    pub density: Vec<f64>,
}

impl DensityMap {
    /// Computes the density map for a placed design. Bins covered by macros
    /// have their free area reduced accordingly, so a bin fully covered by a
    /// macro with cells squeezed next to it shows up as a density peak.
    pub fn compute(
        design: &Design,
        placement: &CellPlacement,
        macro_placement: &impl PlacementView,
        bins: usize,
    ) -> Self {
        let die = design.die();
        let bins = bins.max(2);
        let bin_w = (die.width() as f64 / bins as f64).max(1.0);
        let bin_h = (die.height() as f64 / bins as f64).max(1.0);
        let bin_area = bin_w * bin_h;

        let macro_rects: Vec<Rect> = design
            .cells()
            .filter(|(_, c)| c.kind == CellKind::Macro)
            .filter_map(|(id, c)| {
                macro_placement.placement(id).map(|(loc, orient)| {
                    let (w, h) = orient.transformed_size(c.width, c.height);
                    Rect::from_size(loc.x, loc.y, w, h)
                })
            })
            .collect();

        let mut cell_area = vec![0.0f64; bins * bins];
        for (id, cell) in design.cells() {
            if cell.kind == CellKind::Macro {
                continue;
            }
            let Some(p) = placement.position(id) else { continue };
            let bx = (((p.x - die.llx) as f64 / bin_w) as usize).min(bins - 1);
            let by = (((p.y - die.lly) as f64 / bin_h) as usize).min(bins - 1);
            cell_area[bx * bins + by] += cell.area() as f64;
        }

        let mut density = vec![0.0f64; bins * bins];
        for bx in 0..bins {
            for by in 0..bins {
                let rect = Rect::new(
                    die.llx + (bx as f64 * bin_w) as i64,
                    die.lly + (by as f64 * bin_h) as i64,
                    die.llx + ((bx + 1) as f64 * bin_w) as i64,
                    die.lly + ((by + 1) as f64 * bin_h) as i64,
                );
                let macro_overlap: f64 =
                    macro_rects.iter().map(|m| m.overlap_area(&rect) as f64).sum();
                let free = (bin_area - macro_overlap).max(bin_area * 0.01);
                density[bx * bins + by] = cell_area[bx * bins + by] / free;
            }
        }
        Self { bins, density }
    }

    /// Density at bin `(x, y)`.
    pub fn at(&self, x: usize, y: usize) -> f64 {
        self.density[x * self.bins + y]
    }

    /// The maximum bin density (the "peak cell density" the paper discusses
    /// around Fig. 9).
    pub fn peak(&self) -> f64 {
        self.density.iter().copied().fold(0.0, f64::max)
    }

    /// The mean bin density.
    pub fn mean(&self) -> f64 {
        self.density.iter().sum::<f64>() / self.density.len() as f64
    }

    /// Renders the map as a compact ASCII heatmap (one character per bin),
    /// useful for the figure-reproduction binaries.
    pub fn to_ascii(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let peak = self.peak().max(1e-12);
        let mut out = String::new();
        for y in (0..self.bins).rev() {
            for x in 0..self.bins {
                let v = (self.at(x, y) / peak * (SHADES.len() - 1) as f64).round() as usize;
                out.push(SHADES[v.min(SHADES.len() - 1)] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::{Orientation, Point};
    use netlist::design::{CellId, DesignBuilder};
    use std::collections::HashMap;

    fn no_macros() -> HashMap<CellId, (Point, Orientation)> {
        HashMap::new()
    }

    #[test]
    fn density_concentrates_where_cells_are() {
        let mut b = DesignBuilder::new("t");
        let mut cells = Vec::new();
        for i in 0..100 {
            cells.push(b.add_comb(format!("c{i}"), ""));
        }
        b.set_die(Rect::new(0, 0, 800, 800));
        let d = b.build();
        let mut placement = CellPlacement::default();
        for &c in &cells {
            placement.set_position(c, Point::new(50, 50));
        }
        let map = DensityMap::compute(&d, &placement, &no_macros(), 8);
        assert!(map.at(0, 0) > 0.0);
        assert_eq!(map.at(7, 7), 0.0);
        assert_eq!(map.peak(), map.at(0, 0));
        assert!(map.mean() < map.peak());
    }

    #[test]
    fn macro_coverage_raises_density_of_squeezed_cells() {
        let mut b = DesignBuilder::new("t");
        let m = b.add_macro("ram", "RAM", 90, 90, "");
        let c = b.add_comb("c", "");
        b.set_die(Rect::new(0, 0, 800, 800));
        let d = b.build();
        let mut placement = CellPlacement::default();
        placement.set_position(c, Point::new(50, 50));
        placement.set_position(m, Point::new(45, 45));
        let mut mp = HashMap::new();
        mp.insert(m, (Point::new(0, 0), Orientation::N));
        let with_macro = DensityMap::compute(&d, &placement, &mp, 8);
        let without = DensityMap::compute(&d, &placement, &no_macros(), 8);
        assert!(with_macro.at(0, 0) > without.at(0, 0));
    }

    #[test]
    fn ascii_rendering_has_one_row_per_bin() {
        let mut b = DesignBuilder::new("t");
        b.add_comb("c", "");
        b.set_die(Rect::new(0, 0, 100, 100));
        let d = b.build();
        let map = DensityMap::compute(&d, &CellPlacement::default(), &no_macros(), 4);
        let art = map.to_ascii();
        assert_eq!(art.lines().count(), 4);
        assert!(art.lines().all(|l| l.chars().count() == 4));
    }
}
