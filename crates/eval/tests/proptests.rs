//! Property-based tests of the evaluation-session API:
//!
//! * [`eval::IncrementalHpwl`] deltas applied over random single-cell move
//!   sequences stay bit-identical to a full [`eval::total_hpwl`] recompute,
//! * `hidap::MacroPlacement` read through [`netlist::PlacementView`] agrees
//!   with its legacy `to_map()` interchange on every macro, and the
//!   [`eval::Evaluator`] produces bit-identical metrics through either.

use eval::{CellPlacement, Evaluator, IncrementalHpwl};
use geometry::{Orientation, Point, Rect};
use hidap::{MacroPlacement, PlacedMacro};
use netlist::design::{CellId, Design, DesignBuilder, PortDirection};
use netlist::PlacementView;
use proptest::prelude::*;

const DIE: i64 = 10_000;

/// A random flat design: `num_cells` combinational cells, a couple of placed
/// ports, and random driver→sinks nets over them.
fn arbitrary_design() -> impl Strategy<Value = Design> {
    (
        2usize..12, // cells
        0usize..3,  // ports
        prop::collection::vec(
            (0usize..12, prop::collection::vec(0usize..14, 1..4)), // nets
            1..16,
        ),
    )
        .prop_map(|(num_cells, num_ports, nets)| {
            let mut b = DesignBuilder::new("prop");
            let cells: Vec<CellId> =
                (0..num_cells).map(|i| b.add_comb(format!("c{i}"), "")).collect();
            let ports: Vec<_> =
                (0..num_ports).map(|i| b.add_port(format!("p{i}"), PortDirection::Input)).collect();
            for (i, &p) in ports.iter().enumerate() {
                b.place_port(p, Point::new(0, (i as i64 + 1) * DIE / 4));
            }
            for (n, (driver, sinks)) in nets.into_iter().enumerate() {
                let net = b.add_net(format!("n{n}"));
                // indexes past the cell count address the ports (if any)
                let driver_cell = cells[driver % num_cells];
                b.connect_driver(net, driver_cell);
                for s in sinks {
                    if s < num_cells {
                        if cells[s] != driver_cell {
                            b.connect_sink(net, cells[s]);
                        }
                    } else if !ports.is_empty() {
                        b.connect_port_sink(net, ports[s % ports.len()]);
                    }
                }
            }
            b.set_die(Rect::new(0, 0, DIE, DIE));
            b.build()
        })
}

fn any_orientation() -> impl Strategy<Value = Orientation> {
    prop::sample::select(vec![
        Orientation::N,
        Orientation::S,
        Orientation::W,
        Orientation::E,
        Orientation::FN,
        Orientation::FS,
        Orientation::FW,
        Orientation::FE,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Incremental deltas over a random move sequence stay bit-identical to
    /// a full recompute after every single move.
    #[test]
    fn incremental_hpwl_matches_full_recompute(
        design in arbitrary_design(),
        initial in prop::collection::vec((any::<bool>(), 0i64..DIE, 0i64..DIE), 12),
        moves in prop::collection::vec((0usize..12, 0i64..DIE, 0i64..DIE, any::<bool>()), 1..24),
    ) {
        // initial placement: some cells placed, some not
        let mut placement = CellPlacement::with_num_cells(design.num_cells());
        for (i, (placed, x, y)) in initial.iter().enumerate().take(design.num_cells()) {
            if *placed {
                placement.set_position(CellId(i as u32), Point::new(*x, *y));
            }
        }
        let mut inc = IncrementalHpwl::new(&design, &placement);
        prop_assert_eq!(inc.hpwl(), eval::total_hpwl(&design, &placement));

        for (cell, x, y, place) in moves {
            let cell = CellId((cell % design.num_cells()) as u32);
            let before = inc.hpwl().dbu;
            let delta = if place {
                let pos = Point::new(x, y);
                placement.set_position(cell, pos);
                inc.move_cell(cell, pos)
            } else {
                placement.positions.insert(cell, None);
                inc.unplace_cell(cell)
            };
            let full = eval::total_hpwl(&design, &placement);
            prop_assert_eq!(inc.hpwl(), full, "after moving {:?}", cell);
            prop_assert_eq!(before + delta, full.dbu, "delta of {:?}", cell);
            prop_assert_eq!(inc.position(cell), placement.position(cell));
        }
    }

    /// `MacroPlacement` read as a `PlacementView` agrees with `to_map()` on
    /// every macro, and the evaluator cannot tell the two apart.
    #[test]
    fn macro_placement_view_agrees_with_to_map(
        entries in prop::collection::vec(
            (0i64..DIE / 2, 0i64..DIE / 2, any_orientation()),
            1..6,
        ),
        shuffle in any::<bool>(),
    ) {
        let mut b = DesignBuilder::new("prop");
        let macros: Vec<CellId> = (0..entries.len())
            .map(|i| b.add_macro(format!("m{i}"), "RAM", 100, 80, ""))
            .collect();
        for i in 1..macros.len() {
            let n = b.add_net(format!("n{i}"));
            b.connect_driver(n, macros[i - 1]);
            b.connect_sink(n, macros[i]);
        }
        b.set_die(Rect::new(0, 0, DIE, DIE));
        let design = b.build();

        let mut placement = MacroPlacement::default();
        for (&cell, &(x, y, orient)) in macros.iter().zip(&entries) {
            placement.macros.push(PlacedMacro {
                cell,
                location: Point::new(x, y),
                orientation: orient,
            });
        }
        if shuffle {
            // hand-built vectors need not be sorted by cell id
            placement.macros.reverse();
        }

        let map = placement.to_map();
        prop_assert_eq!(PlacementView::len(&placement), map.len());
        for (&cell, &(loc, orient)) in &map {
            prop_assert_eq!(placement.placement(cell), Some((loc, orient)));
            prop_assert_eq!(placement.position(cell), Some(loc));
            prop_assert_eq!(placement.orientation(cell), Some(orient));
        }
        let mut from_iter: Vec<_> = placement.iter_placed().collect();
        from_iter.sort_by_key(|&(c, _, _)| c);
        let mut from_map: Vec<_> = map.iter().map(|(&c, &(l, o))| (c, l, o)).collect();
        from_map.sort_by_key(|&(c, _, _)| c);
        prop_assert_eq!(from_iter, from_map);

        // the evaluator produces bit-identical metrics through either view
        let mut evaluator = Evaluator::standard();
        prop_assert_eq!(
            evaluator.evaluate(&design, &placement),
            evaluator.evaluate(&design, &map)
        );
    }
}
