//! Property-based tests of the netlist model and the file-format writers/parsers.

use geometry::{Orientation, Point, Rect};
use netlist::arrays::{group_by_array, split_array_name};
use netlist::def::{parse_def, write_def, PlacementEntry};
use netlist::design::{DesignBuilder, PortDirection};
use netlist::hierarchy::HierarchyTree;
use proptest::prelude::*;

fn arb_identifier() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}"
}

proptest! {
    #[test]
    fn split_array_name_base_is_prefix(base in arb_identifier(), idx in 0u32..512) {
        // bracketed form always splits
        let b1 = split_array_name(&format!("{base}[{idx}]"));
        prop_assert_eq!(&b1.base, &base);
        prop_assert_eq!(b1.index, Some(idx));
        // escaped underscore form splits too
        let b2 = split_array_name(&format!("{base}_{idx}_"));
        prop_assert_eq!(&b2.base, &base);
        // the base never grows
        prop_assert!(b1.base.len() <= base.len() + 1);
    }

    #[test]
    fn grouping_is_a_partition(names in prop::collection::vec(arb_identifier(), 1..20), width in 1usize..8) {
        // expand every name into `width` bits
        let items: Vec<(String, usize)> = names
            .iter()
            .enumerate()
            .flat_map(|(i, n)| (0..width).map(move |b| (format!("{n}[{b}]"), i * width + b)))
            .collect();
        let total = items.len();
        let groups = group_by_array(items);
        let grouped: usize = groups.iter().map(|g| g.width()).sum();
        prop_assert_eq!(grouped, total, "every bit lands in exactly one group");
        // all bits of one base name are in one group
        for g in &groups {
            prop_assert!(g.width() % width == 0);
        }
    }

    #[test]
    fn def_write_parse_roundtrip(
        entries in prop::collection::vec(
            (0i64..100_000, 0i64..100_000, prop::sample::select(Orientation::ALL.to_vec()), any::<bool>()),
            1..20,
        ),
        die_w in 1000i64..1_000_000,
        die_h in 1000i64..1_000_000,
    ) {
        let placements: Vec<PlacementEntry> = entries
            .iter()
            .enumerate()
            .map(|(i, &(x, y, orientation, fixed))| PlacementEntry {
                name: format!("u_blk/macro_{i}"),
                cell: format!("RAM_{i}"),
                location: Point::new(x, y),
                orientation,
                fixed,
            })
            .collect();
        let pins = vec![("clk".to_string(), Point::new(0, die_h / 2))];
        let text = write_def("prop_design", 1000, Rect::new(0, 0, die_w, die_h), &placements, &pins);
        let parsed = parse_def(&text).expect("writer output must parse");
        prop_assert_eq!(parsed.design.as_str(), "prop_design");
        prop_assert_eq!(parsed.die, Rect::new(0, 0, die_w, die_h));
        prop_assert_eq!(parsed.components.len(), placements.len());
        for p in &placements {
            let c = parsed.find_component(&p.name).expect("component present");
            prop_assert_eq!(c.location, p.location);
            prop_assert_eq!(c.orientation, p.orientation);
        }
    }

    #[test]
    fn hierarchy_tree_counts_are_consistent(
        paths in prop::collection::vec(
            prop::collection::vec(arb_identifier(), 0..4),
            1..30,
        ),
        macro_mask in prop::collection::vec(any::<bool>(), 30),
    ) {
        let mut b = DesignBuilder::new("prop");
        for (i, segments) in paths.iter().enumerate() {
            let path = segments.join("/");
            let name = if path.is_empty() { format!("cell{i}") } else { format!("{path}/cell{i}") };
            if macro_mask[i % macro_mask.len()] {
                b.add_macro(name, "RAM", 10, 10, path);
            } else {
                b.add_comb(name, path);
            }
        }
        let design = b.build();
        let ht = HierarchyTree::from_design(&design);
        let root = ht.node(ht.root());
        // root subtree counts match the design totals
        prop_assert_eq!(root.subtree_cells, design.num_cells());
        prop_assert_eq!(root.subtree_macros, design.num_macros());
        prop_assert_eq!(root.subtree_area, design.total_cell_area());
        // every node's subtree count equals the sum over children plus direct cells
        for (id, node) in ht.iter() {
            let child_sum: usize = node.children.iter().map(|&c| ht.node(c).subtree_cells).sum();
            prop_assert_eq!(node.subtree_cells, child_sum + node.direct_cells.len());
            prop_assert_eq!(ht.subtree_cells(id).len(), node.subtree_cells);
        }
    }

    #[test]
    fn design_builder_always_produces_consistent_netlists(
        num_cells in 2usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..80),
        seed_ports in 0usize..4,
    ) {
        let mut b = DesignBuilder::new("prop");
        let ids: Vec<_> = (0..num_cells).map(|i| {
            if i % 5 == 0 {
                b.add_macro(format!("m{i}"), "RAM", 20, 20, "u_mem")
            } else if i % 3 == 0 {
                b.add_flop(format!("r{i}_reg[0]"), "u_dp")
            } else {
                b.add_comb(format!("g{i}"), "u_ctl")
            }
        }).collect();
        for (i, &(from, to)) in edges.iter().enumerate() {
            let (from, to) = (from % num_cells, to % num_cells);
            if from == to { continue; }
            let n = b.add_net(format!("n{i}"));
            b.connect_driver(n, ids[from]);
            b.connect_sink(n, ids[to]);
        }
        for p in 0..seed_ports {
            let port = b.add_port(format!("io{p}"), PortDirection::Input);
            let n = b.add_net(format!("ion{p}"));
            b.connect_port_driver(n, port);
            b.connect_sink(n, ids[p % num_cells]);
        }
        let design = b.build();
        prop_assert!(design.validate().is_ok());
    }

    #[test]
    fn csr_traversal_matches_the_vec_walks(
        num_cells in 2usize..32,
        edges in prop::collection::vec((0usize..32, 0usize..32, any::<bool>()), 0..96),
        num_ports in 0usize..6,
    ) {
        // Build a random design mixing cell→cell nets, multi-sink nets
        // (every third edge reuses the previous net) and port connections.
        let mut b = DesignBuilder::new("prop");
        let ids: Vec<_> = (0..num_cells).map(|i| {
            if i % 4 == 0 {
                b.add_macro(format!("m{i}"), "RAM", 20, 20, "u_mem")
            } else {
                b.add_comb(format!("g{i}"), "u_ctl")
            }
        }).collect();
        for (i, &(from, to, reuse)) in edges.iter().enumerate() {
            let (from, to) = (from % num_cells, to % num_cells);
            if from == to { continue; }
            let net_name = if reuse && i > 0 { format!("n{}", i - 1) } else { format!("n{i}") };
            let n = b.add_net(net_name);
            b.connect_driver(n, ids[from]);
            b.connect_sink(n, ids[to]);
        }
        for p in 0..num_ports {
            let n = b.add_net(format!("pn{p}"));
            if p % 2 == 0 {
                let port = b.add_port(format!("in{p}"), PortDirection::Input);
                b.connect_port_driver(n, port);
                b.connect_sink(n, ids[p % num_cells]);
            } else {
                let port = b.add_port(format!("out{p}"), PortDirection::Output);
                b.connect_driver(n, ids[p % num_cells]);
                b.connect_port_sink(n, port);
            }
        }
        let design = b.build();
        let csr = design.connectivity();

        // cell→net: the CSR fanin/fanout slices equal the per-cell Vecs,
        // and nets_of is exactly the fanin ++ fanout chain.
        for (id, cell) in design.cells() {
            prop_assert_eq!(csr.fanin(id), cell.fanin.as_slice());
            prop_assert_eq!(csr.fanout(id), cell.fanout.as_slice());
            let chained: Vec<_> = cell.fanin.iter().chain(cell.fanout.iter()).copied().collect();
            prop_assert_eq!(csr.nets_of(id), chained.as_slice());
        }

        // net→pin: the CSR pin walk visits exactly the same (net, pin,
        // driver?) triples, in the canonical order, as the Net field walk.
        for (id, net) in design.nets() {
            prop_assert_eq!(csr.degree(id), net.degree());
            // legacy walk encoded as (is_port, index, is_driver)
            let mut legacy: Vec<(bool, u32, bool)> = Vec::new();
            if let Some(c) = net.driver_cell {
                legacy.push((false, c.0, true));
            }
            legacy.extend(net.sink_cells.iter().map(|c| (false, c.0, false)));
            if let Some(p) = net.driver_port {
                legacy.push((true, p.0, true));
            }
            legacy.extend(net.sink_ports.iter().map(|p| (true, p.0, false)));
            let csr_walk: Vec<(bool, u32, bool)> = csr
                .pins(id)
                .iter()
                .map(|pin| {
                    let idx = pin.cell().map(|c| c.0).or_else(|| pin.port().map(|p| p.0));
                    (pin.is_port(), idx.expect("pin is a cell or a port"), pin.is_driver())
                })
                .collect();
            prop_assert_eq!(csr_walk, legacy);
        }
    }
}
