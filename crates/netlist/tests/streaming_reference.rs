//! Bit-identity of the streaming parsers against the pre-streaming reference
//! implementations.
//!
//! The `reference_*` modules below are verbatim copies of the Verilog/LEF/DEF
//! parsers as they were before the streaming rewrite (token vectors of owned
//! `String`s, `HashMap` module tables and port maps).  Every test parses the
//! same input with both and asserts the resulting designs are bit-identical:
//! the full `Design`/`LefFile`/`DefFile` structures, the CSR connectivity
//! arrays, and the design fingerprints.

use netlist::design::Design;
use netlist::verilog::ElaborateOptions;
use proptest::prelude::*;

#[allow(dead_code, unused_imports)]
mod reference_verilog {

    use netlist::design::{CellKind, Design, DesignBuilder, PortDirection};
    use netlist::error::ParseError;
    use netlist::library::Library;
    use netlist::verilog::ElaborateOptions;
    use std::collections::HashMap;

    /// A port declaration: name, direction, optional (msb, lsb) range.
    type PortDecl = (String, PortDirection, Option<(i64, i64)>);

    /// A parsed (unflattened) Verilog module.
    #[derive(Debug, Clone, Default)]
    struct Module {
        name: String,
        /// port name -> (direction, msb, lsb) ; scalar ports have msb == lsb == None
        ports: Vec<PortDecl>,
        /// wire name -> optional range
        wires: HashMap<String, Option<(i64, i64)>>,
        instances: Vec<Instance>,
    }

    #[derive(Debug, Clone)]
    struct Instance {
        cell: String,
        name: String,
        /// (port, net expression) pairs
        connections: Vec<(String, String)>,
    }

    /// Tokenizer output.
    #[derive(Debug, Clone, PartialEq)]
    enum Token {
        Ident(String),
        Symbol(char),
        Number(String),
    }

    fn tokenize(text: &str) -> Result<Vec<(usize, Token)>, ParseError> {
        let mut tokens = Vec::new();
        let mut chars = text.char_indices().peekable();
        let mut line = 1usize;
        while let Some(&(_, c)) = chars.peek() {
            match c {
                '\n' => {
                    line += 1;
                    chars.next();
                }
                c if c.is_whitespace() => {
                    chars.next();
                }
                '/' => {
                    chars.next();
                    match chars.peek() {
                        Some(&(_, '/')) => {
                            for (_, c2) in chars.by_ref() {
                                if c2 == '\n' {
                                    line += 1;
                                    break;
                                }
                            }
                        }
                        Some(&(_, '*')) => {
                            chars.next();
                            let mut prev = ' ';
                            for (_, c2) in chars.by_ref() {
                                if c2 == '\n' {
                                    line += 1;
                                }
                                if prev == '*' && c2 == '/' {
                                    break;
                                }
                                prev = c2;
                            }
                        }
                        _ => tokens.push((line, Token::Symbol('/'))),
                    }
                }
                '\\' => {
                    // escaped identifier: `\name with specials ` terminated by whitespace
                    chars.next();
                    let mut ident = String::new();
                    while let Some(&(_, c2)) = chars.peek() {
                        if c2.is_whitespace() {
                            break;
                        }
                        ident.push(c2);
                        chars.next();
                    }
                    tokens.push((line, Token::Ident(ident)));
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut ident = String::new();
                    while let Some(&(_, c2)) = chars.peek() {
                        if c2.is_alphanumeric() || c2 == '_' || c2 == '$' {
                            ident.push(c2);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    tokens.push((line, Token::Ident(ident)));
                }
                c if c.is_ascii_digit() => {
                    let mut num = String::new();
                    while let Some(&(_, c2)) = chars.peek() {
                        if c2.is_alphanumeric() || c2 == '\'' || c2 == '_' {
                            num.push(c2);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    tokens.push((line, Token::Number(num)));
                }
                '(' | ')' | '[' | ']' | '{' | '}' | ',' | ';' | ':' | '.' | '=' | '-' | '+' => {
                    tokens.push((line, Token::Symbol(c)));
                    chars.next();
                }
                other => {
                    return Err(ParseError::at_line(
                        line,
                        format!("unexpected character '{other}'"),
                    ));
                }
            }
        }
        Ok(tokens)
    }

    struct Parser {
        tokens: Vec<(usize, Token)>,
        pos: usize,
    }

    impl Parser {
        fn peek(&self) -> Option<&Token> {
            self.tokens.get(self.pos).map(|(_, t)| t)
        }

        fn line(&self) -> usize {
            self.tokens
                .get(self.pos.min(self.tokens.len().saturating_sub(1)))
                .map(|(l, _)| *l)
                .unwrap_or(0)
        }

        fn next(&mut self) -> Option<Token> {
            let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
            self.pos += 1;
            t
        }

        fn expect_symbol(&mut self, c: char) -> Result<(), ParseError> {
            match self.next() {
                Some(Token::Symbol(s)) if s == c => Ok(()),
                other => Err(ParseError::at_line(
                    self.line(),
                    format!("expected '{c}', found {other:?}"),
                )),
            }
        }

        fn expect_ident(&mut self) -> Result<String, ParseError> {
            match self.next() {
                Some(Token::Ident(s)) => Ok(s),
                other => Err(ParseError::at_line(
                    self.line(),
                    format!("expected identifier, found {other:?}"),
                )),
            }
        }

        fn eat_symbol(&mut self, c: char) -> bool {
            if self.peek() == Some(&Token::Symbol(c)) {
                self.pos += 1;
                true
            } else {
                false
            }
        }

        /// Parses `[msb:lsb]` if present.
        fn parse_range(&mut self) -> Result<Option<(i64, i64)>, ParseError> {
            if !self.eat_symbol('[') {
                return Ok(None);
            }
            let msb = self.parse_int()?;
            self.expect_symbol(':')?;
            let lsb = self.parse_int()?;
            self.expect_symbol(']')?;
            Ok(Some((msb, lsb)))
        }

        fn parse_int(&mut self) -> Result<i64, ParseError> {
            let mut negative = false;
            if self.eat_symbol('-') {
                negative = true;
            }
            match self.next() {
                Some(Token::Number(n)) => {
                    let v: i64 = n.parse().map_err(|_| {
                        ParseError::at_line(self.line(), format!("invalid integer '{n}'"))
                    })?;
                    Ok(if negative { -v } else { v })
                }
                other => Err(ParseError::at_line(
                    self.line(),
                    format!("expected integer, found {other:?}"),
                )),
            }
        }

        /// Parses a net expression: `name`, `name[3]`, `name[7:4]`, or a
        /// concatenation `{a, b[3], ...}`. Returns the list of bit-level net names.
        fn parse_net_expr(&mut self) -> Result<Vec<String>, ParseError> {
            if self.eat_symbol('{') {
                let mut nets = Vec::new();
                loop {
                    nets.extend(self.parse_net_expr()?);
                    if !self.eat_symbol(',') {
                        break;
                    }
                }
                self.expect_symbol('}')?;
                return Ok(nets);
            }
            match self.next() {
                Some(Token::Ident(base)) => {
                    if self.eat_symbol('[') {
                        let a = self.parse_int()?;
                        if self.eat_symbol(':') {
                            let b = self.parse_int()?;
                            self.expect_symbol(']')?;
                            // bits are listed in source order, i.e. from `a` to `b`
                            let v: Vec<String> = if a >= b {
                                (b..=a).rev().map(|i| format!("{base}[{i}]")).collect()
                            } else {
                                (a..=b).map(|i| format!("{base}[{i}]")).collect()
                            };
                            Ok(v)
                        } else {
                            self.expect_symbol(']')?;
                            Ok(vec![format!("{base}[{a}]")])
                        }
                    } else {
                        Ok(vec![base])
                    }
                }
                Some(Token::Number(n)) => {
                    // constant like 1'b0 — treat as an anonymous tie net
                    Ok(vec![format!("__const_{n}")])
                }
                other => Err(ParseError::at_line(
                    self.line(),
                    format!("expected net expression, found {other:?}"),
                )),
            }
        }
    }

    /// Parses Verilog source text into the module table.
    fn parse_modules(text: &str) -> Result<HashMap<String, Module>, ParseError> {
        let tokens = tokenize(text)?;
        let mut p = Parser { tokens, pos: 0 };
        let mut modules = HashMap::new();
        while let Some(tok) = p.peek().cloned() {
            match tok {
                Token::Ident(kw) if kw == "module" => {
                    p.next();
                    let m = parse_module(&mut p)?;
                    modules.insert(m.name.clone(), m);
                }
                _ => {
                    p.next();
                }
            }
        }
        Ok(modules)
    }

    fn parse_module(p: &mut Parser) -> Result<Module, ParseError> {
        let name = p.expect_ident()?;
        let mut module = Module { name, ..Default::default() };
        // Header port list. ANSI-style declarations (`input [1:0] a, output y`)
        // are recorded directly; non-ANSI headers only list names and the
        // directions come from declarations in the body.
        if p.eat_symbol('(') {
            let mut dir: Option<PortDirection> = None;
            let mut range: Option<(i64, i64)> = None;
            loop {
                if p.eat_symbol(')') {
                    break;
                }
                match p.peek().cloned() {
                    Some(Token::Ident(kw)) if kw == "input" || kw == "output" || kw == "inout" => {
                        p.next();
                        dir = Some(match kw.as_str() {
                            "input" => PortDirection::Input,
                            "output" => PortDirection::Output,
                            _ => PortDirection::Inout,
                        });
                        if p.peek() == Some(&Token::Ident("wire".to_string()))
                            || p.peek() == Some(&Token::Ident("reg".to_string()))
                        {
                            p.next();
                        }
                        range = p.parse_range()?;
                    }
                    Some(Token::Ident(pname)) => {
                        p.next();
                        if let Some(d) = dir {
                            module.ports.push((pname.clone(), d, range));
                            module.wires.insert(pname, range);
                        }
                    }
                    _ => {
                        p.next();
                    }
                }
            }
        }
        p.expect_symbol(';')?;

        loop {
            let tok = p
                .peek()
                .cloned()
                .ok_or_else(|| ParseError::new("unexpected end of file in module"))?;
            match tok {
                Token::Ident(kw) if kw == "endmodule" => {
                    p.next();
                    break;
                }
                Token::Ident(kw) if kw == "input" || kw == "output" || kw == "inout" => {
                    p.next();
                    let dir = match kw.as_str() {
                        "input" => PortDirection::Input,
                        "output" => PortDirection::Output,
                        _ => PortDirection::Inout,
                    };
                    // optional `wire` keyword
                    if p.peek() == Some(&Token::Ident("wire".to_string())) {
                        p.next();
                    }
                    let range = p.parse_range()?;
                    loop {
                        let pname = p.expect_ident()?;
                        module.ports.push((pname.clone(), dir, range));
                        module.wires.insert(pname, range);
                        if !p.eat_symbol(',') {
                            break;
                        }
                    }
                    p.expect_symbol(';')?;
                }
                Token::Ident(kw) if kw == "wire" || kw == "tri" => {
                    p.next();
                    let range = p.parse_range()?;
                    loop {
                        let wname = p.expect_ident()?;
                        module.wires.insert(wname, range);
                        if !p.eat_symbol(',') {
                            break;
                        }
                    }
                    p.expect_symbol(';')?;
                }
                Token::Ident(kw)
                    if kw == "assign"
                        || kw == "parameter"
                        || kw == "supply0"
                        || kw == "supply1" =>
                {
                    // skip to semicolon
                    p.next();
                    while let Some(t) = p.next() {
                        if t == Token::Symbol(';') {
                            break;
                        }
                    }
                }
                Token::Ident(cell) => {
                    p.next();
                    let inst_name = p.expect_ident()?;
                    p.expect_symbol('(')?;
                    let mut connections = Vec::new();
                    if !p.eat_symbol(')') {
                        loop {
                            p.expect_symbol('.')?;
                            let port = p.expect_ident()?;
                            // port may itself have an index suffix like .D[3] — not
                            // legal Verilog but seen in some netlists; handled by
                            // parse_net_expr style indexing of the port name.
                            let port = if p.peek() == Some(&Token::Symbol('[')) {
                                p.next();
                                let i = p.parse_int()?;
                                p.expect_symbol(']')?;
                                format!("{port}[{i}]")
                            } else {
                                port
                            };
                            p.expect_symbol('(')?;
                            let nets = if p.peek() == Some(&Token::Symbol(')')) {
                                Vec::new() // unconnected pin: .X()
                            } else {
                                p.parse_net_expr()?
                            };
                            p.expect_symbol(')')?;
                            // expand multi-bit connections into port[i] names
                            if nets.len() <= 1 {
                                connections.push((
                                    port.clone(),
                                    nets.first().cloned().unwrap_or_default(),
                                ));
                            } else {
                                for (i, n) in nets.iter().enumerate() {
                                    let bit = nets.len() - 1 - i;
                                    connections.push((format!("{port}[{bit}]"), n.clone()));
                                }
                            }
                            if !p.eat_symbol(',') {
                                break;
                            }
                        }
                        p.expect_symbol(')')?;
                    }
                    p.expect_symbol(';')?;
                    module.instances.push(Instance { cell, name: inst_name, connections });
                }
                _ => {
                    p.next();
                }
            }
        }
        Ok(module)
    }

    /// Parses structural Verilog text and flattens it into a [`Design`].
    ///
    /// `top` selects the top module; pass `None` to use the unique module that is
    /// never instantiated by another one.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input, unknown top module, or if the
    /// top module cannot be inferred.
    pub fn parse_verilog(
        text: &str,
        top: Option<&str>,
        opts: &ElaborateOptions,
    ) -> Result<Design, ParseError> {
        let modules = parse_modules(text)?;
        if modules.is_empty() {
            return Err(ParseError::new("no modules found"));
        }
        let top_name = match top {
            Some(t) => {
                if !modules.contains_key(t) {
                    return Err(ParseError::new(format!("top module '{t}' not found")));
                }
                t.to_string()
            }
            None => infer_top(&modules)?,
        };
        let mut builder = DesignBuilder::new(top_name.clone());
        // top-level ports
        let top_module = &modules[&top_name];
        for (pname, dir, range) in &top_module.ports {
            match range {
                Some((msb, lsb)) => {
                    let (hi, lo) = ((*msb).max(*lsb), (*msb).min(*lsb));
                    for i in lo..=hi {
                        builder.add_port(format!("{pname}[{i}]"), *dir);
                    }
                }
                None => {
                    builder.add_port(pname.clone(), *dir);
                }
            }
        }
        let mut ctx = Flattener { modules: &modules, opts, builder };
        ctx.flatten(&top_name, "", &HashMap::new())?;
        let mut design = ctx.builder.build();
        design.bind_library(&opts.library);
        connect_top_ports(&mut design);
        Ok(design)
    }

    /// After flattening, nets named exactly like a top-level port are attached to it.
    fn connect_top_ports(design: &mut Design) {
        let pairs: Vec<(netlist::design::PortId, netlist::design::NetId, PortDirection)> = design
            .ports()
            .filter_map(|(pid, port)| {
                design.find_net(&port.name).map(|nid| (pid, nid, port.direction))
            })
            .collect();
        for (pid, nid, dir) in pairs {
            // fix up both directions of the association
            {
                let port = design.port_mut(pid);
                port.net = Some(nid);
            }
            let net = design.net_mut(nid);
            match dir {
                PortDirection::Input => net.driver_port = Some(pid),
                _ => {
                    if !net.sink_ports.contains(&pid) {
                        net.sink_ports.push(pid);
                    }
                }
            }
        }
    }

    fn infer_top(modules: &HashMap<String, Module>) -> Result<String, ParseError> {
        let mut instantiated: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for m in modules.values() {
            for inst in &m.instances {
                instantiated.insert(inst.cell.as_str());
            }
        }
        let candidates: Vec<&String> =
            modules.keys().filter(|k| !instantiated.contains(k.as_str())).collect();
        match candidates.len() {
            1 => Ok(candidates[0].clone()),
            0 => Err(ParseError::new("could not infer top module (cyclic instantiation?)")),
            _ => Err(ParseError::new(format!(
                "multiple top candidates: {}; pass one explicitly",
                candidates.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
            ))),
        }
    }

    struct Flattener<'a> {
        modules: &'a HashMap<String, Module>,
        opts: &'a ElaborateOptions,
        builder: DesignBuilder,
    }

    impl<'a> Flattener<'a> {
        /// Recursively instantiates `module_name` under hierarchical prefix `path`.
        /// `port_map` maps the module's local net names to global net names.
        fn flatten(
            &mut self,
            module_name: &str,
            path: &str,
            port_map: &HashMap<String, String>,
        ) -> Result<(), ParseError> {
            let module = self.modules.get(module_name).expect("checked by caller");
            for inst in &module.instances {
                let inst_path = if path.is_empty() {
                    inst.name.clone()
                } else {
                    format!("{path}/{}", inst.name)
                };
                if let Some(child) = self.modules.get(&inst.cell) {
                    // hierarchical instance: build a port map for the child
                    let mut child_map: HashMap<String, String> = HashMap::new();
                    for (port, net) in &inst.connections {
                        if net.is_empty() {
                            continue;
                        }
                        // When a vectored child port is connected to a bare bus
                        // name, expand the connection bit by bit so nested levels
                        // resolve individual bits consistently.
                        let child_range =
                            child.ports.iter().find(|(n, _, _)| n == port).and_then(|(_, _, r)| *r);
                        if let (Some((msb, lsb)), false) = (child_range, net.contains('[')) {
                            let (hi, lo) = (msb.max(lsb), msb.min(lsb));
                            for i in lo..=hi {
                                let global =
                                    self.resolve_net(path, port_map, &format!("{net}[{i}]"));
                                child_map.insert(format!("{port}[{i}]"), global);
                            }
                            continue;
                        }
                        let global = self.resolve_net(path, port_map, net);
                        child_map.insert(port.clone(), global);
                    }
                    self.flatten(&inst.cell, &inst_path, &child_map)?;
                } else {
                    // leaf cell
                    let kind = self.classify(&inst.cell);
                    let (w, h) = match self.opts.library.find_macro(&inst.cell) {
                        Some(m) => (m.width, m.height),
                        None => (1, 1),
                    };
                    let cell_id = self.builder.add_cell(
                        inst_path.clone(),
                        inst.cell.clone(),
                        kind,
                        w,
                        h,
                        path,
                    );
                    for (port, net) in &inst.connections {
                        if net.is_empty() {
                            continue;
                        }
                        let global = self.resolve_net(path, port_map, net);
                        let net_id = self.builder.add_net(global);
                        if is_output_pin(port) {
                            self.builder.connect_driver(net_id, cell_id);
                        } else {
                            self.builder.connect_sink(net_id, cell_id);
                        }
                    }
                }
            }
            Ok(())
        }

        fn classify(&self, cell: &str) -> CellKind {
            if let Some(m) = self.opts.library.find_macro(cell) {
                if m.is_block {
                    return CellKind::Macro;
                }
            }
            if self.opts.flop_prefixes.iter().any(|p| cell.starts_with(p.as_str())) {
                CellKind::Flop
            } else {
                CellKind::Comb
            }
        }

        /// Maps a local net name to a global one: through the port map if the net
        /// is a port of the enclosing module, otherwise by prefixing the path.
        fn resolve_net(&self, path: &str, port_map: &HashMap<String, String>, net: &str) -> String {
            if let Some(global) = port_map.get(net) {
                return global.clone();
            }
            if net.starts_with("__const_") {
                return net.to_string();
            }
            if path.is_empty() {
                net.to_string()
            } else {
                format!("{path}/{net}")
            }
        }
    }

    /// Heuristic classification of a pin name as an output.
    fn is_output_pin(pin: &str) -> bool {
        let base = pin.split('[').next().unwrap_or(pin);
        if matches!(
            base,
            "Q" | "QN"
                | "Z"
                | "ZN"
                | "Y"
                | "O"
                | "OUT"
                | "out"
                | "q"
                | "DOUT"
                | "RDATA"
                | "dout"
                | "rdata"
        ) {
            return true;
        }
        // numbered variants such as Q0, Z12, OUT3 (used by netlist writers that
        // enumerate output pins)
        for prefix in ["Q", "Z", "OUT", "DOUT"] {
            if let Some(rest) = base.strip_prefix(prefix) {
                if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()) {
                    return true;
                }
            }
        }
        false
    }
}

#[allow(dead_code, unused_imports)]
mod reference_lef {

    use geometry::{Dbu, Point};
    use netlist::error::ParseError;
    use netlist::lef::LefFile;
    use netlist::library::{Library, MacroDef, PinDef};

    /// Parses LEF text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on structurally malformed input (unterminated macro
    /// blocks, malformed numbers in `SIZE` statements, ...). Unknown statements
    /// are skipped, matching how LEF readers typically behave.
    pub fn parse_lef(text: &str) -> Result<LefFile, ParseError> {
        let mut dbu_per_micron: i64 = 1000;
        let mut library = Library::new();

        let tokens = lex(text);
        let mut i = 0usize;
        while i < tokens.len() {
            match tokens[i].1.as_str() {
                "UNITS" => {
                    // UNITS DATABASE MICRONS <n> ; ... END UNITS
                    let mut j = i + 1;
                    while j < tokens.len() && tokens[j].1 != "END" {
                        if tokens[j].1 == "MICRONS" && j + 1 < tokens.len() {
                            dbu_per_micron = tokens[j + 1].1.parse::<f64>().map_err(|_| {
                                ParseError::at_line(
                                    tokens[j + 1].0,
                                    "invalid DATABASE MICRONS value",
                                )
                            })? as i64;
                        }
                        j += 1;
                    }
                    // skip "END UNITS"
                    if j < tokens.len() {
                        j += 1;
                        if tokens.get(j).map(|t| t.1.as_str()) == Some("UNITS") {
                            j += 1;
                        }
                    }
                    i = j;
                }
                "MACRO" => {
                    let (def, next) = parse_macro(&tokens, i, dbu_per_micron)?;
                    library.add_macro(def);
                    i = next;
                }
                _ => i += 1,
            }
        }
        Ok(LefFile { dbu_per_micron, library })
    }

    /// Lexes into (line, token) pairs, splitting on whitespace and treating `;` as
    /// its own token.
    fn lex(text: &str) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = match line.find('#') {
                Some(pos) => &line[..pos],
                None => line,
            };
            for raw in line.split_whitespace() {
                if raw == ";" {
                    out.push((lineno + 1, ";".to_string()));
                } else if let Some(stripped) = raw.strip_suffix(';') {
                    if !stripped.is_empty() {
                        out.push((lineno + 1, stripped.to_string()));
                    }
                    out.push((lineno + 1, ";".to_string()));
                } else {
                    out.push((lineno + 1, raw.to_string()));
                }
            }
        }
        out
    }

    fn parse_macro(
        tokens: &[(usize, String)],
        start: usize,
        dbu: i64,
    ) -> Result<(MacroDef, usize), ParseError> {
        let name = tokens
            .get(start + 1)
            .ok_or_else(|| ParseError::at_line(tokens[start].0, "MACRO without a name"))?
            .1
            .clone();
        let mut def =
            MacroDef { name: name.clone(), width: 0, height: 0, is_block: false, pins: Vec::new() };
        let mut i = start + 2;
        while i < tokens.len() {
            match tokens[i].1.as_str() {
                "CLASS" => {
                    if let Some(t) = tokens.get(i + 1) {
                        def.is_block = t.1 == "BLOCK" || t.1 == "RING";
                    }
                    i += 2;
                }
                "SIZE" => {
                    // SIZE w BY h ;
                    let w = parse_micron(tokens, i + 1, dbu)?;
                    if tokens.get(i + 2).map(|t| t.1.as_str()) != Some("BY") {
                        return Err(ParseError::at_line(tokens[i].0, "SIZE missing BY keyword"));
                    }
                    let h = parse_micron(tokens, i + 3, dbu)?;
                    def.width = w;
                    def.height = h;
                    i += 4;
                }
                "PIN" => {
                    let (pin, next) = parse_pin(tokens, i, dbu)?;
                    def.pins.push(pin);
                    i = next;
                }
                "END" => {
                    // END <name> terminates the macro; a bare END belongs to a nested block we skipped.
                    if tokens.get(i + 1).map(|t| t.1.as_str()) == Some(name.as_str()) {
                        return Ok((def, i + 2));
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        Err(ParseError::at_line(tokens[start].0, format!("unterminated MACRO {name}")))
    }

    fn parse_pin(
        tokens: &[(usize, String)],
        start: usize,
        dbu: i64,
    ) -> Result<(PinDef, usize), ParseError> {
        let name = tokens
            .get(start + 1)
            .ok_or_else(|| ParseError::at_line(tokens[start].0, "PIN without a name"))?
            .1
            .clone();
        let mut offset = Point::origin();
        let mut have_rect = false;
        let mut i = start + 2;
        while i < tokens.len() {
            match tokens[i].1.as_str() {
                "RECT" => {
                    let x1 = parse_micron(tokens, i + 1, dbu)?;
                    let y1 = parse_micron(tokens, i + 2, dbu)?;
                    let x2 = parse_micron(tokens, i + 3, dbu)?;
                    let y2 = parse_micron(tokens, i + 4, dbu)?;
                    if !have_rect {
                        offset = Point::new((x1 + x2) / 2, (y1 + y2) / 2);
                        have_rect = true;
                    }
                    i += 5;
                }
                "END" => {
                    if tokens.get(i + 1).map(|t| t.1.as_str()) == Some(name.as_str()) {
                        return Ok((PinDef { name, offset }, i + 2));
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        Err(ParseError::at_line(tokens[start].0, format!("unterminated PIN {name}")))
    }

    fn parse_micron(tokens: &[(usize, String)], idx: usize, dbu: i64) -> Result<Dbu, ParseError> {
        let (line, t) = tokens
            .get(idx)
            .ok_or_else(|| ParseError::new("unexpected end of file in numeric field"))?;
        let v: f64 =
            t.parse().map_err(|_| ParseError::at_line(*line, format!("invalid number '{t}'")))?;
        Ok((v * dbu as f64).round() as Dbu)
    }
}

#[allow(dead_code, unused_imports)]
mod reference_def {

    use geometry::{Dbu, Orientation, Point, Rect};
    use netlist::def::{DefComponent, DefFile, DefPin, PlaceStatus};
    use netlist::error::ParseError;
    use std::collections::HashMap;

    /// Parses DEF text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] when required numeric fields are malformed or
    /// sections are not terminated.
    pub fn parse_def(text: &str) -> Result<DefFile, ParseError> {
        let mut def = DefFile { dbu_per_micron: 1000, ..Default::default() };
        let tokens = lex(text);
        let mut i = 0usize;
        while i < tokens.len() {
            match tokens[i].1.as_str() {
                "DESIGN" => {
                    if let Some(t) = tokens.get(i + 1) {
                        def.design = t.1.clone();
                    }
                    i += 2;
                }
                "UNITS" => {
                    // UNITS DISTANCE MICRONS n ;
                    if let Some(pos) =
                        (i..tokens.len().min(i + 6)).find(|&j| tokens[j].1 == "MICRONS")
                    {
                        def.dbu_per_micron = parse_int(&tokens, pos + 1)?;
                        i = pos + 2;
                    } else {
                        i += 1;
                    }
                }
                "DIEAREA" => {
                    // DIEAREA ( x1 y1 ) ( x2 y2 ) ;
                    let nums = collect_numbers(&tokens, i + 1, 4)?;
                    def.die = Rect::new(nums[0], nums[1], nums[2], nums[3]);
                    i += 1;
                }
                "COMPONENTS" => {
                    let (components, next) = parse_components(&tokens, i)?;
                    def.components = components;
                    i = next;
                }
                "PINS" => {
                    let (pins, next) = parse_pins(&tokens, i)?;
                    def.pins = pins;
                    i = next;
                }
                _ => i += 1,
            }
        }
        Ok(def)
    }

    fn lex(text: &str) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = match line.find('#') {
                Some(pos) => &line[..pos],
                None => line,
            };
            for raw in line.split_whitespace() {
                let raw = raw.trim();
                if raw.is_empty() {
                    continue;
                }
                if raw != ";" && raw.ends_with(';') {
                    out.push((lineno + 1, raw.trim_end_matches(';').to_string()));
                    out.push((lineno + 1, ";".to_string()));
                } else {
                    out.push((lineno + 1, raw.to_string()));
                }
            }
        }
        out
    }

    fn parse_int(tokens: &[(usize, String)], idx: usize) -> Result<i64, ParseError> {
        let (line, t) = tokens.get(idx).ok_or_else(|| ParseError::new("unexpected end of DEF"))?;
        t.parse::<f64>()
            .map(|v| v.round() as i64)
            .map_err(|_| ParseError::at_line(*line, format!("invalid number '{t}'")))
    }

    /// Collects the next `count` numeric tokens, skipping parentheses.
    fn collect_numbers(
        tokens: &[(usize, String)],
        start: usize,
        count: usize,
    ) -> Result<Vec<Dbu>, ParseError> {
        let mut nums = Vec::with_capacity(count);
        let mut i = start;
        while nums.len() < count && i < tokens.len() {
            let t = &tokens[i].1;
            if t == "(" || t == ")" {
                i += 1;
                continue;
            }
            if t == ";" {
                break;
            }
            nums.push(parse_int(tokens, i)?);
            i += 1;
        }
        if nums.len() < count {
            return Err(ParseError::new("not enough numeric fields"));
        }
        Ok(nums)
    }

    fn parse_components(
        tokens: &[(usize, String)],
        start: usize,
    ) -> Result<(Vec<DefComponent>, usize), ParseError> {
        let mut components = Vec::new();
        let mut i = start + 1;
        // optional count then ';'
        while i < tokens.len() && tokens[i].1 != ";" {
            i += 1;
        }
        i += 1;
        while i < tokens.len() {
            if tokens[i].1 == "END" && tokens.get(i + 1).map(|t| t.1.as_str()) == Some("COMPONENTS")
            {
                return Ok((components, i + 2));
            }
            if tokens[i].1 == "-" {
                let name = tokens
                    .get(i + 1)
                    .ok_or_else(|| ParseError::at_line(tokens[i].0, "component without a name"))?
                    .1
                    .clone();
                let cell = tokens
                    .get(i + 2)
                    .ok_or_else(|| ParseError::at_line(tokens[i].0, "component without a cell"))?
                    .1
                    .clone();
                let mut comp = DefComponent {
                    name,
                    cell,
                    status: PlaceStatus::Unplaced,
                    location: Point::origin(),
                    orientation: Orientation::N,
                };
                i += 3;
                while i < tokens.len() && tokens[i].1 != ";" {
                    match tokens[i].1.as_str() {
                        "+" => i += 1,
                        "PLACED" | "FIXED" => {
                            comp.status = if tokens[i].1 == "FIXED" {
                                PlaceStatus::Fixed
                            } else {
                                PlaceStatus::Placed
                            };
                            let nums = collect_numbers(tokens, i + 1, 2)?;
                            comp.location = Point::new(nums[0], nums[1]);
                            // orientation is the token following the closing paren
                            let mut j = i + 1;
                            let mut seen = 0;
                            while j < tokens.len() && seen < 2 {
                                if tokens[j].1.parse::<f64>().is_ok() {
                                    seen += 1;
                                }
                                j += 1;
                            }
                            while j < tokens.len() && (tokens[j].1 == ")" || tokens[j].1 == "(") {
                                j += 1;
                            }
                            if let Some(o) =
                                tokens.get(j).and_then(|t| Orientation::from_def_name(&t.1))
                            {
                                comp.orientation = o;
                                i = j + 1;
                            } else {
                                i = j;
                            }
                        }
                        "UNPLACED" => {
                            comp.status = PlaceStatus::Unplaced;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                components.push(comp);
                i += 1; // skip ';'
            } else {
                i += 1;
            }
        }
        Err(ParseError::new("unterminated COMPONENTS section"))
    }

    fn parse_pins(
        tokens: &[(usize, String)],
        start: usize,
    ) -> Result<(Vec<DefPin>, usize), ParseError> {
        let mut pins = Vec::new();
        let mut i = start + 1;
        while i < tokens.len() && tokens[i].1 != ";" {
            i += 1;
        }
        i += 1;
        while i < tokens.len() {
            if tokens[i].1 == "END" && tokens.get(i + 1).map(|t| t.1.as_str()) == Some("PINS") {
                return Ok((pins, i + 2));
            }
            if tokens[i].1 == "-" {
                let name = tokens
                    .get(i + 1)
                    .ok_or_else(|| ParseError::at_line(tokens[i].0, "pin without a name"))?
                    .1
                    .clone();
                let mut pin = DefPin { name, location: None };
                i += 2;
                while i < tokens.len() && tokens[i].1 != ";" {
                    if tokens[i].1 == "PLACED" || tokens[i].1 == "FIXED" {
                        let nums = collect_numbers(tokens, i + 1, 2)?;
                        pin.location = Some(Point::new(nums[0], nums[1]));
                    }
                    i += 1;
                }
                pins.push(pin);
                i += 1;
            } else {
                i += 1;
            }
        }
        Err(ParseError::new("unterminated PINS section"))
    }
}

/// Asserts the two designs are bit-identical: the full structure, the CSR
/// connectivity arrays, and every fingerprint.
fn assert_designs_identical(streaming: &Design, reference: &Design) {
    assert_eq!(streaming, reference, "design structures differ");
    assert_eq!(
        streaming.seq_name_fingerprint(),
        reference.seq_name_fingerprint(),
        "seq name fingerprints differ"
    );
    assert_eq!(
        streaming.geometry_fingerprint(),
        reference.geometry_fingerprint(),
        "geometry fingerprints differ"
    );
    let cs = streaming.connectivity();
    let cr = reference.connectivity();
    assert_eq!(cs.fingerprint(), cr.fingerprint(), "connectivity fingerprints differ");
    assert_eq!(cs.num_cells(), cr.num_cells());
    assert_eq!(cs.num_nets(), cr.num_nets());
    assert_eq!(cs.num_pins(), cr.num_pins());
    for id in streaming.cell_ids() {
        assert_eq!(cs.nets_of(id), cr.nets_of(id), "CSR rows differ at cell {id:?}");
    }
    for id in streaming.net_ids() {
        assert_eq!(cs.pins(id), cr.pins(id), "CSR pin rows differ at net {id:?}");
    }
    // name→id lookups agree for every element
    for (id, cell) in streaming.cells() {
        assert_eq!(streaming.find_cell(&cell.name), Some(id));
    }
}

fn testdata(name: &str) -> String {
    let path = format!("{}/../../testdata/serve/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn verilog_streaming_matches_reference_on_testdata() {
    for file in ["serve_small.v", "serve_large.v"] {
        let text = testdata(file);
        for lef in ["serve_small.lef", "serve_large.lef"] {
            let lef_text = testdata(lef);
            let library = netlist::lef::parse_lef(&lef_text).unwrap().library;
            let opts = ElaborateOptions { library, ..ElaborateOptions::default() };
            let streaming = netlist::verilog::parse_verilog(&text, None, &opts).unwrap();
            let reference = reference_verilog::parse_verilog(&text, None, &opts).unwrap();
            assert_designs_identical(&streaming, &reference);
        }
    }
}

#[test]
fn lef_streaming_matches_reference_on_testdata() {
    for file in ["serve_small.lef", "serve_large.lef"] {
        let text = testdata(file);
        let streaming = netlist::lef::parse_lef(&text).unwrap();
        let reference = reference_lef::parse_lef(&text).unwrap();
        assert_eq!(streaming, reference, "{file}");
    }
}

#[test]
fn def_streaming_matches_reference_on_written_def() {
    // build a DEF via the writer from a parsed design, then compare parsers
    let text = testdata("serve_small.v");
    let lef = netlist::lef::parse_lef(&testdata("serve_small.lef")).unwrap();
    let opts = ElaborateOptions { library: lef.library, ..ElaborateOptions::default() };
    let design = netlist::verilog::parse_verilog(&text, None, &opts).unwrap();
    let placements: Vec<netlist::def::PlacementEntry> = design
        .macros()
        .enumerate()
        .map(|(i, id)| netlist::def::PlacementEntry {
            name: design.cell(id).name.clone(),
            cell: design.cell(id).lib_cell.clone(),
            location: geometry::Point::new(i as i64 * 1000, i as i64 * 500),
            orientation: geometry::Orientation::N,
            fixed: i % 2 == 0,
        })
        .collect();
    let def_text = netlist::def::write_def(
        design.name(),
        1000,
        geometry::Rect::new(0, 0, 500_000, 400_000),
        &placements,
        &[("clk".to_string(), geometry::Point::new(0, 200_000))],
    );
    let streaming = netlist::def::parse_def(&def_text).unwrap();
    let reference = reference_def::parse_def(&def_text).unwrap();
    assert_eq!(streaming, reference);
}

/// A random hierarchical netlist: leaf cells wired through bus and scalar
/// nets inside a `sub` module instantiated (twice) by `top`, with escaped
/// identifiers, concatenations, comments and unconnected pins sprinkled in.
fn build_random_verilog(
    gates: &[(u8, u8, u8)],
    bus_width: usize,
    use_escaped: bool,
    blank_comment: bool,
) -> String {
    let mut src = String::new();
    if blank_comment {
        src.push_str("// header comment\n/* block\n comment */\n");
    }
    let w = bus_width.max(1);
    src.push_str(&format!("module sub (input [{}:0] a, input clk, output y);\n", w - 1));
    if use_escaped {
        src.push_str("  wire \\esc$wire ;\n");
        src.push_str("  BUF e0 (.A(a[0]), .Y(\\esc$wire ));\n");
    }
    for (i, &(kind, src_bit, dst_bit)) in gates.iter().enumerate() {
        let cell = match kind % 4 {
            0 => "AND2",
            1 => "DFFX1",
            2 => "INVX2",
            _ => "RAM16",
        };
        let sb = (src_bit as usize) % w;
        let db = (dst_bit as usize) % w;
        match kind % 3 {
            0 => src.push_str(&format!("  {cell} g{i} (.A(a[{sb}]), .B(a[{db}]), .Y(n{i}));\n")),
            1 => src.push_str(&format!(
                "  {cell} g{i} (.D({{a[{sb}], a[{db}]}}), .CK(clk), .Q(n{i}));\n"
            )),
            _ => src.push_str(&format!(
                "  {cell} g{i} (.A(n{}), .E(), .Y(n{i}));\n",
                i.saturating_sub(1)
            )),
        }
    }
    src.push_str(&format!("  BUF gy (.A(n{}), .Y(y));\n", gates.len().saturating_sub(1)));
    src.push_str("endmodule\n\n");
    src.push_str(&format!(
        "module top (input [{}:0] bus, input clk, output o1, output o2);\n",
        w - 1
    ));
    src.push_str("  sub u0 (.a(bus), .clk(clk), .y(o1));\n");
    src.push_str(&format!("  sub u1 (.a({{bus[{}:0]}}), .clk(clk), .y(o2));\n", w - 1));
    src.push_str("endmodule\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn verilog_streaming_matches_reference_on_random_workloads(
        gates in prop::collection::vec((0u8..12, 0u8..16, 0u8..16), 1..24),
        bus_width in 1usize..9,
        use_escaped in any::<bool>(),
        blank_comment in any::<bool>(),
    ) {
        let src = build_random_verilog(&gates, bus_width, use_escaped, blank_comment);
        let opts = ElaborateOptions::default();
        let streaming = netlist::verilog::parse_verilog(&src, Some("top"), &opts)
            .expect("generated netlist parses (streaming)");
        let reference = reference_verilog::parse_verilog(&src, Some("top"), &opts)
            .expect("generated netlist parses (reference)");
        assert_designs_identical(&streaming, &reference);
    }

    #[test]
    fn lef_streaming_matches_reference_on_random_libraries(
        macros in prop::collection::vec(
            (1u32..2000, 1u32..2000, any::<bool>(), 0usize..4),
            1..12,
        ),
        dbu in prop::sample::select(vec![100i64, 1000, 2000]),
    ) {
        let mut src = format!("VERSION 5.8 ;\nUNITS\n  DATABASE MICRONS {dbu} ;\nEND UNITS\n");
        for (i, &(w, h, block, pins)) in macros.iter().enumerate() {
            src.push_str(&format!("MACRO M{i}\n"));
            src.push_str(&format!("  CLASS {} ;\n", if block { "BLOCK" } else { "CORE" }));
            src.push_str(&format!("  SIZE {}.{} BY {} ;\n", w / 10, w % 10, h));
            for p in 0..pins {
                src.push_str(&format!(
                    "  PIN P{p}\n    PORT\n      RECT {p}.0 0.0 {p}.5 1.0 ;\n    END\n  END P{p}\n"
                ));
            }
            src.push_str(&format!("END M{i}\n"));
        }
        let streaming = netlist::lef::parse_lef(&src).expect("streaming");
        let reference = reference_lef::parse_lef(&src).expect("reference");
        prop_assert_eq!(streaming, reference);
    }

    #[test]
    fn def_streaming_matches_reference_on_random_defs(
        comps in prop::collection::vec(
            (0i64..100_000, 0i64..100_000, 0usize..3, prop::sample::select(geometry::Orientation::ALL.to_vec())),
            1..16,
        ),
        npins in 0usize..4,
    ) {
        let mut src = String::from("VERSION 5.8 ;\nDESIGN rnd ;\nUNITS DISTANCE MICRONS 1000 ;\n");
        src.push_str("DIEAREA ( 0 0 ) ( 900000 700000 ) ;\n");
        src.push_str(&format!("COMPONENTS {} ;\n", comps.len()));
        for (i, &(x, y, status, orient)) in comps.iter().enumerate() {
            match status {
                0 => src.push_str(&format!("- inst{i} CELL{i} + PLACED ( {x} {y} ) {orient} ;\n")),
                1 => src.push_str(&format!("- inst{i} CELL{i} + FIXED ( {x} {y} ) {orient} ;\n")),
                _ => src.push_str(&format!("- inst{i} CELL{i} + UNPLACED ;\n")),
            }
        }
        src.push_str("END COMPONENTS\n");
        src.push_str(&format!("PINS {npins} ;\n"));
        for p in 0..npins {
            src.push_str(&format!("- pin{p} + NET pin{p} + PLACED ( {} {} ) N ;\n", p * 100, p * 50));
        }
        src.push_str("END PINS\nEND DESIGN\n");
        let streaming = netlist::def::parse_def(&src).expect("streaming");
        let reference = reference_def::parse_def(&src).expect("reference");
        prop_assert_eq!(streaming, reference);
    }
}
