//! Resident-byte accounting for design-derived structures.
//!
//! A long-lived placement service holds many designs and many derived
//! artifacts (CSR views, netlist graphs, sequential graphs). Bounding that
//! memory by *entry count* is meaningless when one design is a hundred times
//! the size of another, so every cached structure reports its resident bytes
//! through [`HeapSize`] and the caches budget in bytes instead.
//!
//! The numbers are *accounting* sizes, not allocator ground truth: a
//! container reports `capacity × size_of::<element>()` for its buffer plus
//! the heap bytes owned by each element, and hash maps are estimated from
//! their capacity. That is exact for the flat arrays dominating this
//! workspace (CSR offsets, dense maps, adjacency lists) and close enough for
//! the string-keyed indexes, while staying allocator-independent and fully
//! deterministic.
//!
//! # Example
//!
//! ```
//! use netlist::HeapSize;
//!
//! let v: Vec<u32> = Vec::with_capacity(8);
//! assert_eq!(v.heap_bytes(), 8 * 4);
//! assert_eq!(v.resident_bytes(), std::mem::size_of::<Vec<u32>>() + 32);
//! ```

use std::collections::{BTreeMap, HashMap};
use std::mem::size_of;
use std::sync::Arc;

/// Types that can report the heap memory they own.
///
/// Implementors return the bytes of every owned heap allocation, recursively,
/// *excluding* the inline `size_of::<Self>()` bytes (so that a containing
/// `Vec<T>` does not double-count its elements' inline parts, which already
/// live in the vector's buffer).
pub trait HeapSize {
    /// Owned heap bytes, excluding `size_of::<Self>()`.
    fn heap_bytes(&self) -> usize;

    /// Total resident bytes: the value itself plus everything it owns.
    fn resident_bytes(&self) -> usize
    where
        Self: Sized,
    {
        size_of::<Self>() + self.heap_bytes()
    }
}

/// Plain-old-data types own no heap memory.
macro_rules! impl_heap_size_pod {
    ($($ty:ty),*) => {$(
        impl HeapSize for $ty {
            #[inline]
            fn heap_bytes(&self) -> usize {
                0
            }
        }
    )*};
}

impl_heap_size_pod!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char);

// The id families, pin references and geometry primitives are plain words.
impl_heap_size_pod!(
    crate::design::CellId,
    crate::design::NetId,
    crate::design::PortId,
    crate::design::CellKind,
    crate::design::PortDirection,
    crate::connectivity::PinRef,
    crate::hierarchy::HierarchyNodeId,
    geometry::Point,
    geometry::Rect,
    geometry::Orientation
);

impl HeapSize for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * size_of::<T>() + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_bytes)
    }
}

impl<T: HeapSize> HeapSize for Box<T> {
    fn heap_bytes(&self) -> usize {
        size_of::<T>() + self.as_ref().heap_bytes()
    }
}

/// An `Arc` reports the full size of its pointee: shared artifacts are
/// accounted once per cache entry, which is what a budget needs to bound the
/// worst case (every entry's last reference is the cache's).
impl<T: HeapSize> HeapSize for Arc<T> {
    fn heap_bytes(&self) -> usize {
        size_of::<T>() + self.as_ref().heap_bytes()
    }
}

impl<A: HeapSize, B: HeapSize> HeapSize for (A, B) {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes()
    }
}

/// Estimated from the length: one `(K, V)` slot per entry plus two words
/// of amortized node overhead (B-tree nodes hold ~11 entries and keep
/// edge pointers), plus per-entry owned heap. Iteration is in key order,
/// so the accounting itself is deterministic.
impl<K: HeapSize, V: HeapSize> HeapSize for BTreeMap<K, V> {
    fn heap_bytes(&self) -> usize {
        self.len() * (size_of::<K>() + size_of::<V>() + 2 * size_of::<usize>())
            + self.iter().map(|(k, v)| k.heap_bytes() + v.heap_bytes()).sum::<usize>()
    }
}

/// Estimated from the capacity: `(K, V)` slots plus one control byte per
/// slot (the shape of a swiss-table layout), plus per-entry owned heap.
impl<K: HeapSize, V: HeapSize, S> HeapSize for HashMap<K, V, S> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * (size_of::<K>() + size_of::<V>() + 1)
            // lint:allow(hash-iter): summing per-entry heap bytes is order-independent
            + self.iter().map(|(k, v)| k.heap_bytes() + v.heap_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pods_own_nothing() {
        assert_eq!(42u32.heap_bytes(), 0);
        assert_eq!(42u32.resident_bytes(), 4);
        assert_eq!(1.5f64.resident_bytes(), 8);
    }

    #[test]
    fn strings_report_capacity() {
        let s = String::with_capacity(100);
        assert_eq!(s.heap_bytes(), 100);
    }

    #[test]
    fn vectors_recurse_into_elements() {
        let v = vec![String::from("abcd"), String::from("efgh")];
        let expected = v.capacity() * size_of::<String>() + v[0].capacity() + v[1].capacity();
        assert_eq!(v.heap_bytes(), expected);
        // nested vectors count both buffers
        let vv: Vec<Vec<u64>> = vec![Vec::with_capacity(4)];
        assert_eq!(vv.heap_bytes(), vv.capacity() * size_of::<Vec<u64>>() + 4 * 8);
    }

    #[test]
    fn option_and_arc() {
        assert_eq!(None::<String>.heap_bytes(), 0);
        assert_eq!(Some(String::with_capacity(7)).heap_bytes(), 7);
        let a = Arc::new(vec![1u32, 2, 3]);
        assert_eq!(a.heap_bytes(), size_of::<Vec<u32>>() + a.capacity() * 4);
    }

    #[test]
    fn hashmap_scales_with_capacity() {
        let mut m: HashMap<u32, u64> = HashMap::new();
        assert_eq!(m.heap_bytes(), 0);
        m.insert(1, 2);
        assert!(m.heap_bytes() > size_of::<u32>() + size_of::<u64>());
    }
}
