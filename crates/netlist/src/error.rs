//! Error type shared by the Verilog, LEF and DEF parsers.

use std::fmt;

/// An error produced while parsing a physical-design text format.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint:allow(heap-size): error-path type; reported and dropped, never cached
pub struct ParseError {
    /// 1-based line number where the problem was detected, if known.
    pub line: Option<usize>,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    /// Creates an error without line information.
    pub fn new(message: impl Into<String>) -> Self {
        Self { line: None, message: message.into() }
    }

    /// Creates an error pointing at a 1-based line number.
    pub fn at_line(line: usize, message: impl Into<String>) -> Self {
        Self { line: Some(line), message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        assert_eq!(ParseError::new("unexpected token").to_string(), "unexpected token");
        assert_eq!(
            ParseError::at_line(12, "missing semicolon").to_string(),
            "line 12: missing semicolon"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseError>();
    }
}
