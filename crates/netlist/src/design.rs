//! The flattened circuit model with hierarchy annotations.
//!
//! A [`Design`] holds every cell of the circuit (macros, flops, combinational
//! gates), the primary ports, and the nets connecting them.  Each cell keeps
//! the hierarchical path of the module instance it belongs to, which is what
//! the [`crate::hierarchy::HierarchyTree`] is built from.

use crate::connectivity::Connectivity;
use crate::names::NameTable;
use geometry::{Dbu, Point, Rect};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Identifier of a cell inside a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub u32);

/// Identifier of a primary port inside a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortId(pub u32);

/// Identifier of a net inside a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub u32);

/// What kind of circuit element a cell is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// A hard macro (memory, analog block, ...), with fixed footprint.
    Macro,
    /// A sequential standard cell (flip-flop / register bit).
    Flop,
    /// A combinational standard cell.
    Comb,
}

/// Direction of a primary port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDirection {
    /// Input port: drives logic inside the design.
    Input,
    /// Output port: driven by logic inside the design.
    Output,
    /// Bidirectional port.
    Inout,
}

/// A cell instance of the design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Full hierarchical instance name (e.g. `u_core/u_alu/add_42`).
    pub name: String,
    /// Library cell / macro name (e.g. `RAM256x32`, `DFFX1`, `NAND2X1`).
    pub lib_cell: String,
    /// Kind of the cell.
    pub kind: CellKind,
    /// Footprint width in DBU (0 for standard cells until a library is bound).
    pub width: Dbu,
    /// Footprint height in DBU.
    pub height: Dbu,
    /// Hierarchical module path the instance lives in (e.g. `u_core/u_alu`).
    /// The empty string denotes the top level.
    pub hier_path: String,
    /// Nets attached to this cell as a sink (inputs).
    pub fanin: Vec<NetId>,
    /// Nets driven by this cell (outputs).
    pub fanout: Vec<NetId>,
}

impl Cell {
    /// Cell footprint area in DBU².
    pub fn area(&self) -> i128 {
        self.width as i128 * self.height as i128
    }
}

/// A primary port of the design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Port name (e.g. `axi_rdata[31]`).
    pub name: String,
    /// Direction.
    pub direction: PortDirection,
    /// Fixed location of the port on the die boundary, if known.
    pub position: Option<Point>,
    /// Net attached to the port.
    pub net: Option<NetId>,
}

/// A net of the design (single driver, multiple sinks).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Driving cell, if the net is driven by a cell.
    pub driver_cell: Option<CellId>,
    /// Driving port, if the net is driven by a primary input.
    pub driver_port: Option<PortId>,
    /// Cells reading this net.
    pub sink_cells: Vec<CellId>,
    /// Primary outputs reading this net.
    pub sink_ports: Vec<PortId>,
}

impl Net {
    /// Number of pins on the net (driver + sinks).
    pub fn degree(&self) -> usize {
        usize::from(self.driver_cell.is_some())
            + usize::from(self.driver_port.is_some())
            + self.sink_cells.len()
            + self.sink_ports.len()
    }
}

/// The circuit: cells, ports and nets, plus the die outline.
///
/// Construct one through [`DesignBuilder`] or one of the parsers
/// ([`crate::verilog`], [`crate::def`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Design {
    name: String,
    cells: Vec<Cell>,
    ports: Vec<Port>,
    nets: Vec<Net>,
    die: Rect,
    connectivity: ConnectivityCache,
    derived: DerivedCache,
}

/// Lazily-built CSR cache. Compares equal to everything so a design that has
/// materialized its view still equals a pristine copy, and clones share
/// nothing (the clone rebuilds on first use).
#[derive(Debug, Default)]
struct ConnectivityCache(OnceLock<Connectivity>);

impl Clone for ConnectivityCache {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for ConnectivityCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// Lazily-built derived state: the compact name→id indexes (seeded by the
/// builder, rebuilt on demand after mutation) and the two identity
/// fingerprints, which design-keyed stores recompute per fetch and would
/// otherwise walk every cell each time.  Same equality/clone semantics as
/// [`ConnectivityCache`]: derived state never distinguishes designs.
#[derive(Debug, Default)]
struct DerivedCache {
    cell_names: OnceLock<NameTable>,
    port_names: OnceLock<NameTable>,
    net_names: OnceLock<NameTable>,
    seq_names: OnceLock<u64>,
    geometry: OnceLock<u64>,
}

impl Clone for DerivedCache {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for DerivedCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Design {
    /// The design (top module) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The die outline. Defaults to a zero rectangle until set.
    pub fn die(&self) -> Rect {
        self.die
    }

    /// Sets the die outline. Invalidates the cached geometry fingerprint.
    pub fn set_die(&mut self, die: Rect) {
        self.derived.geometry.take();
        self.die = die;
    }

    /// Number of cells (macros + flops + combinational).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of primary ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Cell accessor.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this design.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0 as usize]
    }

    /// Mutable cell accessor. Invalidates the cached connectivity view, the
    /// cell name index and the cached fingerprints.
    pub fn cell_mut(&mut self, id: CellId) -> &mut Cell {
        self.connectivity.0.take();
        self.derived.cell_names.take();
        self.derived.seq_names.take();
        self.derived.geometry.take();
        &mut self.cells[id.0 as usize]
    }

    /// Port accessor.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.0 as usize]
    }

    /// Mutable port accessor. Invalidates the cached connectivity view, the
    /// port name index and the cached fingerprints.
    pub fn port_mut(&mut self, id: PortId) -> &mut Port {
        self.connectivity.0.take();
        self.derived.port_names.take();
        self.derived.seq_names.take();
        self.derived.geometry.take();
        &mut self.ports[id.0 as usize]
    }

    /// Net accessor.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Mutable net accessor. Invalidates the cached connectivity view and the
    /// net name index.
    pub fn net_mut(&mut self, id: NetId) -> &mut Net {
        self.connectivity.0.take();
        self.derived.net_names.take();
        &mut self.nets[id.0 as usize]
    }

    /// Raw mutable cell accessor with **no** cache invalidation.  Reserved
    /// for [`crate::edit`], which invalidates exactly the derived state the
    /// edit kind can affect instead of the blanket invalidation of
    /// [`Design::cell_mut`].
    pub(crate) fn cell_raw_mut(&mut self, id: CellId) -> &mut Cell {
        &mut self.cells[id.0 as usize]
    }

    /// Raw mutable port accessor with **no** cache invalidation (see
    /// [`Design::cell_raw_mut`]).
    pub(crate) fn port_raw_mut(&mut self, id: PortId) -> &mut Port {
        &mut self.ports[id.0 as usize]
    }

    /// Raw mutable net accessor with **no** cache invalidation (see
    /// [`Design::cell_raw_mut`]).
    pub(crate) fn net_raw_mut(&mut self, id: NetId) -> &mut Net {
        &mut self.nets[id.0 as usize]
    }

    /// Drops the cached geometry fingerprint only.
    pub(crate) fn invalidate_geometry(&mut self) {
        self.derived.geometry.take();
    }

    /// Drops the cached CSR connectivity view only.
    pub(crate) fn invalidate_wiring(&mut self) {
        self.connectivity.0.take();
    }

    /// The flat CSR connectivity view of the design (see
    /// [`crate::connectivity`]), built on first use and cached.
    ///
    /// Mutable accessors ([`Design::cell_mut`], [`Design::net_mut`],
    /// [`Design::port_mut`]) invalidate the cache, so the view always
    /// reflects the current incidence.
    pub fn connectivity(&self) -> &Connectivity {
        self.connectivity.0.get_or_init(|| Connectivity::build(self))
    }

    /// The cached CSR view, if one has been materialized — without building
    /// it. The spill tier uses this at eviction time: only an already-built
    /// view is worth writing to disk.
    pub fn cached_connectivity(&self) -> Option<&Connectivity> {
        self.connectivity.0.get()
    }

    /// Seeds the CSR cache with a pre-built view (e.g. one revived from the
    /// disk spill tier) instead of rebuilding it on first use. The view is
    /// verified against the design first — its fingerprint must equal the
    /// streamed [`Connectivity::fingerprint_of`] of the current wiring — so
    /// a stale or foreign view can never be installed. Returns whether the
    /// view was accepted (`false` when it fails verification or a view is
    /// already cached).
    pub fn install_connectivity(&self, view: Connectivity) -> bool {
        if view.fingerprint() != Connectivity::fingerprint_of(self) {
            return false;
        }
        self.connectivity.0.set(view).is_ok()
    }

    /// Looks a cell up by its hierarchical instance name.
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        let table = self
            .derived
            .cell_names
            .get_or_init(|| NameTable::build(self.cells.iter().map(|c| c.name.as_str())));
        table
            .find(NameTable::hash_name(name), |id| self.cells[id as usize].name == name)
            .map(CellId)
    }

    /// Looks a port up by name.
    pub fn find_port(&self, name: &str) -> Option<PortId> {
        let table = self
            .derived
            .port_names
            .get_or_init(|| NameTable::build(self.ports.iter().map(|p| p.name.as_str())));
        table
            .find(NameTable::hash_name(name), |id| self.ports[id as usize].name == name)
            .map(PortId)
    }

    /// Looks a net up by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        let table = self
            .derived
            .net_names
            .get_or_init(|| NameTable::build(self.nets.iter().map(|n| n.name.as_str())));
        table.find(NameTable::hash_name(name), |id| self.nets[id as usize].name == name).map(NetId)
    }

    /// Iterates over all cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len() as u32).map(CellId)
    }

    /// Iterates over all port ids.
    pub fn port_ids(&self) -> impl Iterator<Item = PortId> + '_ {
        (0..self.ports.len() as u32).map(PortId)
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> + '_ {
        self.cells.iter().enumerate().map(|(i, c)| (CellId(i as u32), c))
    }

    /// Iterates over `(id, port)` pairs.
    pub fn ports(&self) -> impl Iterator<Item = (PortId, &Port)> + '_ {
        self.ports.iter().enumerate().map(|(i, p)| (PortId(i as u32), p))
    }

    /// Iterates over `(id, net)` pairs.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> + '_ {
        self.nets.iter().enumerate().map(|(i, n)| (NetId(i as u32), n))
    }

    /// Iterates over the ids of all macro cells.
    pub fn macros(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells().filter(|(_, c)| c.kind == CellKind::Macro).map(|(id, _)| id)
    }

    /// Iterates over the ids of all sequential (flop) cells.
    pub fn flops(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells().filter(|(_, c)| c.kind == CellKind::Flop).map(|(id, _)| id)
    }

    /// Number of macro cells.
    pub fn num_macros(&self) -> usize {
        self.macros().count()
    }

    /// Sum of all cell areas (macros plus standard cells), in DBU².
    pub fn total_cell_area(&self) -> i128 {
        self.cells.iter().map(Cell::area).sum()
    }

    /// FNV-1a over the kind and name of every sequential (non-combinational)
    /// cell and every primary port — the name-based clustering inputs of
    /// sequential-graph construction. Combinational cells are collapsed by
    /// that construction, so their names cannot affect the graph.
    ///
    /// Together with [`crate::Connectivity::fingerprint`] (wiring identity)
    /// and the id-family counts, this is one of the fingerprint hooks
    /// design-keyed caches and stores use to identify a design without
    /// holding a reference to it.
    ///
    /// Computed on first use and cached (stores and artifact caches key every
    /// fetch by it, so the walk must not be O(cells) per fetch); mutable
    /// accessors touching cells or ports invalidate the cache.
    pub fn seq_name_fingerprint(&self) -> u64 {
        *self.derived.seq_names.get_or_init(|| {
            let mut h = crate::hash::Fnv1a::new();
            // a separator after every field so concatenations cannot collide
            let mut eat = |bytes: &[u8]| {
                h.write_bytes(bytes);
                h.write_sep();
            };
            for (_, cell) in self.cells() {
                if cell.kind != CellKind::Comb {
                    eat(&[cell.kind as u8]);
                    eat(cell.name.as_bytes());
                }
            }
            for (_, port) in self.ports() {
                eat(port.name.as_bytes());
            }
            h.finish()
        })
    }

    /// FNV-1a over everything geometric: the die rectangle, every cell's
    /// footprint, and every port position. Two designs that wire identically
    /// but differ in any physical input (LEF footprints, DEF die or port
    /// placement) get distinct geometry fingerprints — the hook design
    /// stores use so such designs never alias to one interned entry.
    ///
    /// Computed on first use and cached; [`Design::set_die`],
    /// [`Design::bind_library`] and the mutable cell/port accessors
    /// invalidate the cache.
    pub fn geometry_fingerprint(&self) -> u64 {
        *self.derived.geometry.get_or_init(|| {
            let mut h = crate::hash::Fnv1a::new();
            for edge in [self.die.llx, self.die.lly, self.die.urx, self.die.ury] {
                h.write_i64(edge);
            }
            for (_, cell) in self.cells() {
                h.write_i64(cell.width);
                h.write_i64(cell.height);
            }
            for (_, port) in self.ports() {
                match port.position {
                    Some(p) => {
                        h.write_i64(p.x);
                        h.write_i64(p.y);
                    }
                    None => h.write_sep(),
                }
            }
            h.finish()
        })
    }

    /// Binds footprints from a library: every cell whose `lib_cell` is found
    /// in the library gets its width/height (and macro kind) updated.
    /// Invalidates the cached fingerprints (footprints are geometry; a kind
    /// flip to `Macro` changes the sequential-name walk).
    pub fn bind_library(&mut self, library: &crate::library::Library) {
        self.derived.geometry.take();
        self.derived.seq_names.take();
        for cell in &mut self.cells {
            if let Some(m) = library.find_macro(&cell.lib_cell) {
                cell.width = m.width;
                cell.height = m.height;
                if m.is_block {
                    cell.kind = CellKind::Macro;
                }
            }
        }
    }

    /// Consistency check used by tests and debug builds: every net reference
    /// from a cell exists and points back, and vice versa.
    pub fn validate(&self) -> Result<(), String> {
        for (id, cell) in self.cells() {
            for &n in cell.fanout.iter() {
                let net = self
                    .nets
                    .get(n.0 as usize)
                    .ok_or_else(|| format!("cell {} fanout dangling", cell.name))?;
                if net.driver_cell != Some(id) {
                    return Err(format!("net {} does not list {} as driver", net.name, cell.name));
                }
            }
            for &n in cell.fanin.iter() {
                let net = self
                    .nets
                    .get(n.0 as usize)
                    .ok_or_else(|| format!("cell {} fanin dangling", cell.name))?;
                if !net.sink_cells.contains(&id) {
                    return Err(format!("net {} does not list {} as sink", net.name, cell.name));
                }
            }
        }
        for (id, net) in self.nets() {
            if let Some(c) = net.driver_cell {
                if !self.cell(c).fanout.contains(&id) {
                    return Err(format!("driver of net {} does not reference it", net.name));
                }
            }
            for &c in &net.sink_cells {
                if !self.cell(c).fanin.contains(&id) {
                    return Err(format!("sink of net {} does not reference it", net.name));
                }
            }
        }
        Ok(())
    }
}

impl crate::heap_size::HeapSize for Cell {
    fn heap_bytes(&self) -> usize {
        self.name.heap_bytes()
            + self.lib_cell.heap_bytes()
            + self.hier_path.heap_bytes()
            + self.fanin.heap_bytes()
            + self.fanout.heap_bytes()
    }
}

impl crate::heap_size::HeapSize for Port {
    fn heap_bytes(&self) -> usize {
        self.name.heap_bytes()
    }
}

impl crate::heap_size::HeapSize for Net {
    fn heap_bytes(&self) -> usize {
        self.name.heap_bytes() + self.sink_cells.heap_bytes() + self.sink_ports.heap_bytes()
    }
}

/// A design's resident bytes cover the cell/port/net stores, the
/// materialized name indexes, and — when it has been materialized — the
/// cached CSR connectivity view, so an interned design is accounted with
/// everything that travels with it.
impl crate::heap_size::HeapSize for Design {
    fn heap_bytes(&self) -> usize {
        self.name.heap_bytes()
            + self.cells.heap_bytes()
            + self.ports.heap_bytes()
            + self.nets.heap_bytes()
            + self.derived.cell_names.get().map_or(0, |t| t.heap_bytes())
            + self.derived.port_names.get().map_or(0, |t| t.heap_bytes())
            + self.derived.net_names.get().map_or(0, |t| t.heap_bytes())
            + self.connectivity.0.get().map_or(0, |csr| csr.resident_bytes())
    }
}

/// Incremental builder for a [`Design`].
///
/// The builder keeps name → id indexes so that parsers and generators can
/// attach connectivity in any order.  The indexes are the same compact
/// [`NameTable`]s the finished design uses (hash + id slots verified against
/// the cell/port/net stores — no duplicated name `String`s), and
/// [`DesignBuilder::build`] hands them to the design, so streaming parsers
/// never materialize an intermediate name `HashMap`.
#[derive(Debug, Clone, Default)]
// lint:allow(heap-size): builder is consumed by build(); only the Design it produces
// is ever interned and accounted
pub struct DesignBuilder {
    name: String,
    cells: Vec<Cell>,
    ports: Vec<Port>,
    nets: Vec<Net>,
    die: Rect,
    cell_index: NameTable,
    port_index: NameTable,
    net_index: NameTable,
}

impl DesignBuilder {
    /// Creates an empty builder for a design called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), ..Default::default() }
    }

    /// Sets the die outline.
    pub fn set_die(&mut self, die: Rect) -> &mut Self {
        self.die = die;
        self
    }

    /// Adds a macro cell and returns its id.
    pub fn add_macro(
        &mut self,
        name: impl Into<String>,
        lib_cell: impl Into<String>,
        width: Dbu,
        height: Dbu,
        hier_path: impl Into<String>,
    ) -> CellId {
        self.add_cell(name, lib_cell, CellKind::Macro, width, height, hier_path)
    }

    /// Adds a flip-flop cell (unit footprint until a library is bound).
    pub fn add_flop(&mut self, name: impl Into<String>, hier_path: impl Into<String>) -> CellId {
        self.add_cell(name, "DFF", CellKind::Flop, 1, 1, hier_path)
    }

    /// Adds a combinational cell (unit footprint until a library is bound).
    pub fn add_comb(&mut self, name: impl Into<String>, hier_path: impl Into<String>) -> CellId {
        self.add_cell(name, "COMB", CellKind::Comb, 1, 1, hier_path)
    }

    /// Adds a cell with explicit kind and footprint; returns its id.
    ///
    /// If a cell with the same name already exists its id is returned and the
    /// existing cell is left untouched.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        lib_cell: impl Into<String>,
        kind: CellKind,
        width: Dbu,
        height: Dbu,
        hier_path: impl Into<String>,
    ) -> CellId {
        let name = name.into();
        let hash = NameTable::hash_name(&name);
        if let Some(id) = self.cell_index.find(hash, |id| self.cells[id as usize].name == name) {
            return CellId(id);
        }
        let id = CellId(self.cells.len() as u32);
        self.cells.push(Cell {
            name,
            lib_cell: lib_cell.into(),
            kind,
            width,
            height,
            hier_path: hier_path.into(),
            fanin: Vec::new(),
            fanout: Vec::new(),
        });
        self.cell_index.insert(hash, id.0);
        id
    }

    /// Adds a primary port; returns its id.
    pub fn add_port(&mut self, name: impl Into<String>, direction: PortDirection) -> PortId {
        let name = name.into();
        let hash = NameTable::hash_name(&name);
        if let Some(id) = self.port_index.find(hash, |id| self.ports[id as usize].name == name) {
            return PortId(id);
        }
        let id = PortId(self.ports.len() as u32);
        self.ports.push(Port { name, direction, position: None, net: None });
        self.port_index.insert(hash, id.0);
        id
    }

    /// Fixes a port position on the die boundary.
    pub fn place_port(&mut self, port: PortId, position: Point) -> &mut Self {
        self.ports[port.0 as usize].position = Some(position);
        self
    }

    /// Adds (or finds) a net by name; returns its id.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        let hash = NameTable::hash_name(&name);
        if let Some(id) = self.net_index.find(hash, |id| self.nets[id as usize].name == name) {
            return NetId(id);
        }
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { name, ..Default::default() });
        self.net_index.insert(hash, id.0);
        id
    }

    /// Marks `cell` as the driver of `net`.
    pub fn connect_driver(&mut self, net: NetId, cell: CellId) -> &mut Self {
        let n = &mut self.nets[net.0 as usize];
        if n.driver_cell != Some(cell) {
            n.driver_cell = Some(cell);
            self.cells[cell.0 as usize].fanout.push(net);
        }
        self
    }

    /// Marks `cell` as a sink of `net`.
    pub fn connect_sink(&mut self, net: NetId, cell: CellId) -> &mut Self {
        let n = &mut self.nets[net.0 as usize];
        if !n.sink_cells.contains(&cell) {
            n.sink_cells.push(cell);
            self.cells[cell.0 as usize].fanin.push(net);
        }
        self
    }

    /// Connects a primary port as the driver of `net` (for input ports).
    pub fn connect_port_driver(&mut self, net: NetId, port: PortId) -> &mut Self {
        self.nets[net.0 as usize].driver_port = Some(port);
        self.ports[port.0 as usize].net = Some(net);
        self
    }

    /// Connects a primary port as a sink of `net` (for output ports).
    pub fn connect_port_sink(&mut self, net: NetId, port: PortId) -> &mut Self {
        let n = &mut self.nets[net.0 as usize];
        if !n.sink_ports.contains(&port) {
            n.sink_ports.push(port);
        }
        self.ports[port.0 as usize].net = Some(net);
        self
    }

    /// Number of cells added so far.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Finalizes the builder into an immutable [`Design`], seeding the
    /// design's name indexes with the builder's (no rebuild on first
    /// `find_*`).
    pub fn build(self) -> Design {
        let derived = DerivedCache::default();
        let _ = derived.cell_names.set(self.cell_index);
        let _ = derived.port_names.set(self.port_index);
        let _ = derived.net_names.set(self.net_index);
        Design {
            name: self.name,
            cells: self.cells,
            ports: self.ports,
            nets: self.nets,
            die: self.die,
            connectivity: ConnectivityCache::default(),
            derived,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_design() -> Design {
        let mut b = DesignBuilder::new("top");
        let m = b.add_macro("u_mem/ram0", "RAM16", 200, 100, "u_mem");
        let f = b.add_flop("u_ctl/state_reg", "u_ctl");
        let g = b.add_comb("u_ctl/and_1", "u_ctl");
        let p = b.add_port("clk_en", PortDirection::Input);
        let n1 = b.add_net("u_ctl/state");
        let n2 = b.add_net("clk_en_net");
        b.connect_driver(n1, f);
        b.connect_sink(n1, m);
        b.connect_sink(n1, g);
        b.connect_port_driver(n2, p);
        b.connect_sink(n2, f);
        b.set_die(Rect::new(0, 0, 1000, 1000));
        b.build()
    }

    #[test]
    fn builder_constructs_consistent_design() {
        let d = small_design();
        assert_eq!(d.num_cells(), 3);
        assert_eq!(d.num_nets(), 2);
        assert_eq!(d.num_ports(), 1);
        assert_eq!(d.num_macros(), 1);
        d.validate().expect("consistent design");
    }

    #[test]
    fn lookup_by_name() {
        let d = small_design();
        let m = d.find_cell("u_mem/ram0").unwrap();
        assert_eq!(d.cell(m).kind, CellKind::Macro);
        assert_eq!(d.cell(m).area(), 20000);
        assert!(d.find_cell("missing").is_none());
        assert!(d.find_net("u_ctl/state").is_some());
        assert!(d.find_port("clk_en").is_some());
    }

    #[test]
    fn duplicate_names_return_same_id() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_flop("f1", "");
        let a2 = b.add_flop("f1", "");
        assert_eq!(a, a2);
        let n = b.add_net("n");
        let n2 = b.add_net("n");
        assert_eq!(n, n2);
    }

    #[test]
    fn net_degree_counts_all_pins() {
        let d = small_design();
        let n = d.find_net("u_ctl/state").unwrap();
        assert_eq!(d.net(n).degree(), 3);
        let n2 = d.find_net("clk_en_net").unwrap();
        assert_eq!(d.net(n2).degree(), 2);
    }

    #[test]
    fn total_area_sums_cells() {
        let d = small_design();
        assert_eq!(d.total_cell_area(), 20000 + 1 + 1);
    }

    #[test]
    fn seq_name_fingerprint_tracks_sequential_names_only() {
        let d = small_design();
        assert_eq!(d.seq_name_fingerprint(), small_design().seq_name_fingerprint());
        // renaming a combinational cell leaves the fingerprint unchanged
        let mut comb_renamed = small_design();
        comb_renamed.cell_mut(d.find_cell("u_ctl/and_1").unwrap()).name = "u_ctl/and_X".into();
        assert_eq!(d.seq_name_fingerprint(), comb_renamed.seq_name_fingerprint());
        // renaming a flop changes it
        let mut flop_renamed = small_design();
        flop_renamed.cell_mut(d.find_cell("u_ctl/state_reg").unwrap()).name = "u_ctl/other".into();
        assert_ne!(d.seq_name_fingerprint(), flop_renamed.seq_name_fingerprint());
        // renaming a port changes it
        let mut port_renamed = small_design();
        port_renamed.port_mut(d.find_port("clk_en").unwrap()).name = "clk_dis".into();
        assert_ne!(d.seq_name_fingerprint(), port_renamed.seq_name_fingerprint());
    }

    #[test]
    fn name_lookup_tracks_renames() {
        let mut d = small_design();
        let m = d.find_cell("u_mem/ram0").unwrap();
        d.cell_mut(m).name = "u_mem/ram_renamed".into();
        assert_eq!(d.find_cell("u_mem/ram_renamed"), Some(m));
        assert!(d.find_cell("u_mem/ram0").is_none());
        let p = d.find_port("clk_en").unwrap();
        d.port_mut(p).name = "clk_en2".into();
        assert_eq!(d.find_port("clk_en2"), Some(p));
        let n = d.find_net("clk_en_net").unwrap();
        d.net_mut(n).name = "clk_net".into();
        assert_eq!(d.find_net("clk_net"), Some(n));
        assert!(d.find_net("clk_en_net").is_none());
    }

    #[test]
    fn cached_fingerprints_invalidate_on_mutation() {
        let mut d = small_design();
        let seq = d.seq_name_fingerprint();
        let geo = d.geometry_fingerprint();
        // cached: repeated calls agree
        assert_eq!(d.seq_name_fingerprint(), seq);
        assert_eq!(d.geometry_fingerprint(), geo);
        // die changes geometry only
        d.set_die(Rect::new(0, 0, 2000, 2000));
        assert_ne!(d.geometry_fingerprint(), geo);
        assert_eq!(d.seq_name_fingerprint(), seq);
        // resizing a cell through cell_mut changes geometry
        let geo2 = d.geometry_fingerprint();
        let m = d.find_cell("u_mem/ram0").unwrap();
        d.cell_mut(m).width += 10;
        assert_ne!(d.geometry_fingerprint(), geo2);
    }

    #[test]
    fn bind_library_invalidates_fingerprints() {
        use crate::library::{Library, MacroDef};
        let mut d = small_design();
        let seq = d.seq_name_fingerprint();
        let geo = d.geometry_fingerprint();
        let mut lib = Library::new();
        // binding flips the DFF cell to a block macro with a real footprint
        lib.add_macro(MacroDef {
            name: "DFF".into(),
            width: 50,
            height: 60,
            is_block: true,
            pins: Vec::new(),
        });
        d.bind_library(&lib);
        assert_ne!(d.geometry_fingerprint(), geo, "footprints changed");
        assert_ne!(d.seq_name_fingerprint(), seq, "a flop became a macro");
    }

    #[test]
    fn duplicate_connection_not_added_twice() {
        let mut b = DesignBuilder::new("t");
        let f = b.add_flop("f", "");
        let g = b.add_comb("g", "");
        let n = b.add_net("n");
        b.connect_driver(n, f);
        b.connect_sink(n, g);
        b.connect_sink(n, g);
        let d = b.build();
        assert_eq!(d.net(n).sink_cells.len(), 1);
        d.validate().unwrap();
    }
}
