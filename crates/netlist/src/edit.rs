//! The ECO design-mutation API: typed edits applied through [`Design`].
//!
//! Engineering-change-order (ECO) traffic mutates a design that downstream
//! stores and caches already fingerprinted.  Ad-hoc mutation through the
//! blanket accessors ([`Design::cell_mut`], ...) is correct but maximally
//! pessimistic: every touch drops the cached CSR view and both fingerprints,
//! so a pure footprint resize looks identical to a rewire.  This module
//! gives edits a *type* so the invalidation can be exact:
//!
//! * [`DesignEdit`] — the closed set of supported edit kinds, each with a
//!   statically known [`EditEffect`] (which derived state it can invalidate).
//! * [`Design::apply_edits`] — applies a script in order, invalidating only
//!   what each edit kind can affect, and returns an [`EditLog`].
//! * [`EditLog`] — which id families were touched plus the
//!   [`FingerprintDiff`] of the three identity fingerprints, the input to
//!   selective artifact invalidation (a pure-geometry diff keeps `Gnet` /
//!   `Gseq` warm; a wiring diff drops them).
//! * [`parse_edit_script`] / [`format_edit_script`] — the textual edit-script
//!   form used by the `--serve` wire protocol's `replace` command.
//!
//! The invalidation matrix (which edit kinds can change which fingerprints)
//! is documented in `docs/ECO.md` and pinned by the unit tests below.

use crate::design::{CellId, CellKind, Design, NetId, PortId};
use geometry::{Dbu, Point, Rect};
use serde::{Deserialize, Serialize};

/// One typed ECO edit.
///
/// Ids refer to the design the edit is applied to; the textual script form
/// (see [`parse_edit_script`]) uses names instead and resolves them at parse
/// time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DesignEdit {
    /// Resizes a cell footprint (macro resize is the classic ECO).  Pure
    /// geometry: wiring and sequential names are untouched.
    ResizeCell {
        /// The cell to resize.
        cell: CellId,
        /// New footprint width in DBU (must be positive).
        width: Dbu,
        /// New footprint height in DBU (must be positive).
        height: Dbu,
    },
    /// Moves a macro to a new location in the *placement seed*.  The design
    /// itself stores no locations, so this edit changes no design state and
    /// no fingerprint — it parameterizes the warm-start placement of a
    /// `replace` job (the engine moves the macro's footprint in the seed
    /// before legalization).
    MoveMacro {
        /// The macro to move (must be [`CellKind::Macro`]).
        cell: CellId,
        /// Target lower-left corner of the footprint, in DBU.
        to: Point,
    },
    /// Replaces a net's cell pins: the driver and the full sink list.
    /// Port pins of the net are preserved.  This is a wiring edit: the CSR
    /// view and the connectivity fingerprint change.
    RewireNet {
        /// The net to rewire.
        net: NetId,
        /// New driving cell (`None` leaves the net cell-driverless, e.g.
        /// when a primary input drives it).
        driver: Option<CellId>,
        /// New sink cells (deduplicated in order).
        sinks: Vec<CellId>,
    },
    /// Swaps a cell's library master: new `lib_cell` name and footprint,
    /// same [`CellKind`].  Pure geometry — the master name is not part of
    /// any identity fingerprint.
    SwapMaster {
        /// The cell whose master changes.
        cell: CellId,
        /// New library master name.
        lib_cell: String,
        /// Footprint width of the new master in DBU (must be positive).
        width: Dbu,
        /// Footprint height of the new master in DBU (must be positive).
        height: Dbu,
    },
    /// Moves a primary port to a new boundary position without renaming it
    /// (the "rename-safe" port move): the sequential-name fingerprint is
    /// untouched, only geometry changes.
    MovePort {
        /// The port to move.
        port: PortId,
        /// New position (`None` un-places the port).
        to: Option<Point>,
    },
    /// Replaces the die outline.  Pure geometry.
    SetDie {
        /// The new die rectangle (must be non-empty).
        die: Rect,
    },
}

/// The derived state an edit kind can invalidate, known statically.
///
/// `true` means "may change", not "always changes" — e.g. a rewire that
/// reinstalls the same pins leaves the connectivity fingerprint equal.  The
/// authoritative per-application answer is the [`FingerprintDiff`] in the
/// [`EditLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditEffect {
    /// May change the CSR view / connectivity fingerprint.
    pub wiring: bool,
    /// May change the sequential-name fingerprint.
    pub seq_names: bool,
    /// May change the geometry fingerprint.
    pub geometry: bool,
    /// Parameterizes the warm-start placement seed (no design state).
    pub placement_seed: bool,
}

impl DesignEdit {
    /// The static effect class of this edit kind (the invalidation matrix
    /// row; see `docs/ECO.md`).
    pub fn effect(&self) -> EditEffect {
        let none =
            EditEffect { wiring: false, seq_names: false, geometry: false, placement_seed: false };
        match self {
            DesignEdit::ResizeCell { .. }
            | DesignEdit::SwapMaster { .. }
            | DesignEdit::MovePort { .. }
            | DesignEdit::SetDie { .. } => EditEffect { geometry: true, ..none },
            DesignEdit::MoveMacro { .. } => EditEffect { placement_seed: true, ..none },
            DesignEdit::RewireNet { .. } => EditEffect { wiring: true, ..none },
        }
    }
}

/// Why an edit could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// A cell id does not belong to the design.
    UnknownCell(CellId),
    /// A net id does not belong to the design.
    UnknownNet(NetId),
    /// A port id does not belong to the design.
    UnknownPort(PortId),
    /// [`DesignEdit::MoveMacro`] targeted a non-macro cell.
    NotAMacro(CellId),
    /// A footprint or die dimension was not positive.
    BadDimensions(String),
    /// The textual edit script could not be parsed.
    Script(String),
}

impl std::fmt::Display for EditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditError::UnknownCell(c) => write!(f, "edit references unknown cell id {}", c.0),
            EditError::UnknownNet(n) => write!(f, "edit references unknown net id {}", n.0),
            EditError::UnknownPort(p) => write!(f, "edit references unknown port id {}", p.0),
            EditError::NotAMacro(c) => {
                write!(f, "move targets cell id {} which is not a macro", c.0)
            }
            EditError::BadDimensions(msg) => write!(f, "bad dimensions: {msg}"),
            EditError::Script(msg) => write!(f, "bad edit script: {msg}"),
        }
    }
}

impl std::error::Error for EditError {}

/// Before/after values of the three identity fingerprints across an edit
/// batch — the selective-invalidation contract between the edit API and
/// design stores / artifact caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FingerprintDiff {
    /// Connectivity (wiring) fingerprint before the batch.
    pub connectivity_before: u64,
    /// Connectivity (wiring) fingerprint after the batch.
    pub connectivity_after: u64,
    /// Sequential-name fingerprint before the batch.
    pub seq_names_before: u64,
    /// Sequential-name fingerprint after the batch.
    pub seq_names_after: u64,
    /// Geometry fingerprint before the batch.
    pub geometry_before: u64,
    /// Geometry fingerprint after the batch.
    pub geometry_after: u64,
}

impl FingerprintDiff {
    /// Whether the wiring identity changed.
    pub fn wiring_changed(&self) -> bool {
        self.connectivity_before != self.connectivity_after
    }

    /// Whether the sequential-name identity changed.
    pub fn seq_names_changed(&self) -> bool {
        self.seq_names_before != self.seq_names_after
    }

    /// Whether the geometry fingerprint changed.
    pub fn geometry_changed(&self) -> bool {
        self.geometry_before != self.geometry_after
    }

    /// Whether the artifact-cache identity (wiring or sequential names)
    /// changed.  When `false`, every `Gnet`/`Gseq` keyed by the old identity
    /// is still valid for the edited design.
    pub fn identity_changed(&self) -> bool {
        self.wiring_changed() || self.seq_names_changed()
    }

    /// Whether the batch was pure geometry (possibly plus placement-seed
    /// moves): artifact caches stay warm.
    pub fn is_pure_geometry(&self) -> bool {
        !self.identity_changed()
    }
}

/// What an applied edit batch touched: the id families and the fingerprint
/// diff.  Produced by [`Design::apply_edits`].
#[derive(Debug, Clone, PartialEq)]
pub struct EditLog {
    /// Number of edits applied.
    pub applied: usize,
    /// Cells touched by any edit, deduplicated, in first-touch order.
    pub touched_cells: Vec<CellId>,
    /// Nets touched by any edit (rewired nets), deduplicated.
    pub touched_nets: Vec<NetId>,
    /// Ports touched by any edit, deduplicated.
    pub touched_ports: Vec<PortId>,
    /// Whether the die outline was replaced.
    pub die_touched: bool,
    /// Whether any edit parameterizes the warm-start placement seed
    /// ([`DesignEdit::MoveMacro`]).
    pub placement_seed: bool,
    /// Before/after identity fingerprints across the whole batch.
    pub diff: FingerprintDiff,
}

impl EditLog {
    fn touch_cell(&mut self, c: CellId) {
        if !self.touched_cells.contains(&c) {
            self.touched_cells.push(c);
        }
    }

    fn touch_net(&mut self, n: NetId) {
        if !self.touched_nets.contains(&n) {
            self.touched_nets.push(n);
        }
    }

    fn touch_port(&mut self, p: PortId) {
        if !self.touched_ports.contains(&p) {
            self.touched_ports.push(p);
        }
    }
}

impl Design {
    /// Applies an edit script in order with per-kind exact cache
    /// invalidation, returning the [`EditLog`].
    ///
    /// The whole batch is validated *before* anything is applied, so an
    /// error leaves the design unchanged.  Fingerprints are forced before
    /// and after so the log's [`FingerprintDiff`] is authoritative; the
    /// design's internal caches are dropped only for the state each edit
    /// kind can actually affect (a [`DesignEdit::ResizeCell`] keeps the CSR
    /// view and the sequential-name fingerprint warm).
    pub fn apply_edits(&mut self, edits: &[DesignEdit]) -> Result<EditLog, EditError> {
        for edit in edits {
            self.check_edit(edit)?;
        }
        let mut log = EditLog {
            applied: 0,
            touched_cells: Vec::new(),
            touched_nets: Vec::new(),
            touched_ports: Vec::new(),
            die_touched: false,
            placement_seed: false,
            diff: FingerprintDiff {
                connectivity_before: self.connectivity().fingerprint(),
                connectivity_after: 0,
                seq_names_before: self.seq_name_fingerprint(),
                seq_names_after: 0,
                geometry_before: self.geometry_fingerprint(),
                geometry_after: 0,
            },
        };
        for edit in edits {
            self.apply_one(edit, &mut log);
            log.applied += 1;
        }
        log.diff.connectivity_after = self.connectivity().fingerprint();
        log.diff.seq_names_after = self.seq_name_fingerprint();
        log.diff.geometry_after = self.geometry_fingerprint();
        Ok(log)
    }

    fn check_cell(&self, cell: CellId) -> Result<(), EditError> {
        if (cell.0 as usize) < self.num_cells() {
            Ok(())
        } else {
            Err(EditError::UnknownCell(cell))
        }
    }

    fn check_edit(&self, edit: &DesignEdit) -> Result<(), EditError> {
        match edit {
            DesignEdit::ResizeCell { cell, width, height } => {
                self.check_cell(*cell)?;
                if *width <= 0 || *height <= 0 {
                    return Err(EditError::BadDimensions(format!(
                        "resize to {width}x{height} (both sides must be positive)"
                    )));
                }
            }
            DesignEdit::MoveMacro { cell, .. } => {
                self.check_cell(*cell)?;
                if self.cell(*cell).kind != CellKind::Macro {
                    return Err(EditError::NotAMacro(*cell));
                }
            }
            DesignEdit::RewireNet { net, driver, sinks } => {
                if (net.0 as usize) >= self.num_nets() {
                    return Err(EditError::UnknownNet(*net));
                }
                if let Some(d) = driver {
                    self.check_cell(*d)?;
                }
                for s in sinks {
                    self.check_cell(*s)?;
                }
            }
            DesignEdit::SwapMaster { cell, width, height, .. } => {
                self.check_cell(*cell)?;
                if *width <= 0 || *height <= 0 {
                    return Err(EditError::BadDimensions(format!(
                        "swap to {width}x{height} (both sides must be positive)"
                    )));
                }
            }
            DesignEdit::MovePort { port, .. } => {
                if (port.0 as usize) >= self.num_ports() {
                    return Err(EditError::UnknownPort(*port));
                }
            }
            DesignEdit::SetDie { die } => {
                if die.width() <= 0 || die.height() <= 0 {
                    return Err(EditError::BadDimensions(format!(
                        "die {}x{} (must be non-empty)",
                        die.width(),
                        die.height()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Applies one pre-validated edit, invalidating exactly what its kind
    /// can affect.
    fn apply_one(&mut self, edit: &DesignEdit, log: &mut EditLog) {
        match edit {
            DesignEdit::ResizeCell { cell, width, height } => {
                self.invalidate_geometry();
                let c = self.cell_raw_mut(*cell);
                c.width = *width;
                c.height = *height;
                log.touch_cell(*cell);
            }
            DesignEdit::MoveMacro { cell, .. } => {
                // No design state: consumed by the warm-start seed.
                log.touch_cell(*cell);
                log.placement_seed = true;
            }
            DesignEdit::RewireNet { net, driver, sinks } => {
                self.invalidate_wiring();
                // Detach the old cell pins (cross-references both ways).
                let old = self.net(*net).clone();
                if let Some(d) = old.driver_cell {
                    self.cell_raw_mut(d).fanout.retain(|n| n != net);
                    log.touch_cell(d);
                }
                for s in old.sink_cells {
                    self.cell_raw_mut(s).fanin.retain(|n| n != net);
                    log.touch_cell(s);
                }
                // Attach the new pins.
                let mut new_sinks: Vec<CellId> = Vec::with_capacity(sinks.len());
                for &s in sinks {
                    if !new_sinks.contains(&s) {
                        new_sinks.push(s);
                    }
                }
                {
                    let n = self.net_raw_mut(*net);
                    n.driver_cell = *driver;
                    n.sink_cells = new_sinks.clone();
                }
                if let Some(d) = *driver {
                    self.cell_raw_mut(d).fanout.push(*net);
                    log.touch_cell(d);
                }
                for s in new_sinks {
                    self.cell_raw_mut(s).fanin.push(*net);
                    log.touch_cell(s);
                }
                log.touch_net(*net);
            }
            DesignEdit::SwapMaster { cell, lib_cell, width, height } => {
                self.invalidate_geometry();
                let c = self.cell_raw_mut(*cell);
                c.lib_cell = lib_cell.clone();
                c.width = *width;
                c.height = *height;
                log.touch_cell(*cell);
            }
            DesignEdit::MovePort { port, to } => {
                self.invalidate_geometry();
                self.port_raw_mut(*port).position = *to;
                log.touch_port(*port);
            }
            DesignEdit::SetDie { die } => {
                // set_die already invalidates geometry only.
                self.set_die(*die);
                log.die_touched = true;
            }
        }
    }
}

/// Serializes an edit script to its textual wire form (the inverse of
/// [`parse_edit_script`]): one `;`-separated clause per edit, ids rendered
/// as the design's names.
pub fn format_edit_script(edits: &[DesignEdit], design: &Design) -> String {
    let mut out = Vec::with_capacity(edits.len());
    for edit in edits {
        out.push(match edit {
            DesignEdit::ResizeCell { cell, width, height } => {
                format!("resize {} {} {}", design.cell(*cell).name, width, height)
            }
            DesignEdit::MoveMacro { cell, to } => {
                format!("move {} {} {}", design.cell(*cell).name, to.x, to.y)
            }
            DesignEdit::RewireNet { net, driver, sinks } => {
                let d = match driver {
                    Some(c) => design.cell(*c).name.clone(),
                    None => "-".into(),
                };
                let s = if sinks.is_empty() {
                    "-".into()
                } else {
                    sinks
                        .iter()
                        .map(|c| design.cell(*c).name.as_str())
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!("rewire {} {} {}", design.net(*net).name, d, s)
            }
            DesignEdit::SwapMaster { cell, lib_cell, width, height } => {
                format!("swap {} {} {} {}", design.cell(*cell).name, lib_cell, width, height)
            }
            DesignEdit::MovePort { port, to } => match to {
                Some(p) => format!("move_port {} {} {}", design.port(*port).name, p.x, p.y),
                None => format!("unplace_port {}", design.port(*port).name),
            },
            DesignEdit::SetDie { die } => {
                format!("die {} {} {} {}", die.llx, die.lly, die.urx, die.ury)
            }
        });
    }
    out.join("; ")
}

/// Parses the textual edit-script form used by the `replace` wire command.
///
/// Clauses are `;`-separated, tokens whitespace-separated, names resolved
/// against `design`:
///
/// ```text
/// resize <cell> <w> <h>; move <macro> <x> <y>; swap <cell> <lib> <w> <h>;
/// move_port <port> <x> <y>; unplace_port <port>;
/// rewire <net> <driver-cell|-> <sink,sink,...|->; die <llx> <lly> <urx> <ury>
/// ```
pub fn parse_edit_script(script: &str, design: &Design) -> Result<Vec<DesignEdit>, EditError> {
    let mut edits = Vec::new();
    for clause in script.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = clause.split_whitespace().collect();
        let bad = |msg: String| EditError::Script(format!("`{clause}`: {msg}"));
        let arity = |want: usize| -> Result<(), EditError> {
            if tokens.len() == want {
                Ok(())
            } else {
                Err(bad(format!("expected {} tokens, got {}", want, tokens.len())))
            }
        };
        let int = |tok: &str| -> Result<i64, EditError> {
            tok.parse::<i64>().map_err(|_| bad(format!("`{tok}` is not an integer")))
        };
        let cell = |name: &str| -> Result<CellId, EditError> {
            design.find_cell(name).ok_or_else(|| bad(format!("unknown cell `{name}`")))
        };
        edits.push(match tokens[0] {
            "resize" => {
                arity(4)?;
                DesignEdit::ResizeCell {
                    cell: cell(tokens[1])?,
                    width: int(tokens[2])?,
                    height: int(tokens[3])?,
                }
            }
            "move" => {
                arity(4)?;
                DesignEdit::MoveMacro {
                    cell: cell(tokens[1])?,
                    to: Point::new(int(tokens[2])?, int(tokens[3])?),
                }
            }
            "swap" => {
                arity(5)?;
                DesignEdit::SwapMaster {
                    cell: cell(tokens[1])?,
                    lib_cell: tokens[2].to_string(),
                    width: int(tokens[3])?,
                    height: int(tokens[4])?,
                }
            }
            "move_port" => {
                arity(4)?;
                let port = design
                    .find_port(tokens[1])
                    .ok_or_else(|| bad(format!("unknown port `{}`", tokens[1])))?;
                DesignEdit::MovePort {
                    port,
                    to: Some(Point::new(int(tokens[2])?, int(tokens[3])?)),
                }
            }
            "unplace_port" => {
                arity(2)?;
                let port = design
                    .find_port(tokens[1])
                    .ok_or_else(|| bad(format!("unknown port `{}`", tokens[1])))?;
                DesignEdit::MovePort { port, to: None }
            }
            "rewire" => {
                arity(4)?;
                let net = design
                    .find_net(tokens[1])
                    .ok_or_else(|| bad(format!("unknown net `{}`", tokens[1])))?;
                let driver = if tokens[2] == "-" { None } else { Some(cell(tokens[2])?) };
                let sinks = if tokens[3] == "-" {
                    Vec::new()
                } else {
                    tokens[3].split(',').map(&cell).collect::<Result<Vec<_>, _>>()?
                };
                DesignEdit::RewireNet { net, driver, sinks }
            }
            "die" => {
                arity(5)?;
                DesignEdit::SetDie {
                    die: Rect::new(
                        int(tokens[1])?,
                        int(tokens[2])?,
                        int(tokens[3])?,
                        int(tokens[4])?,
                    ),
                }
            }
            verb => return Err(bad(format!("unknown edit verb `{verb}`"))),
        });
    }
    Ok(edits)
}

/// Fingerprints are plain words; only the touched-id lists own heap.
impl crate::heap_size::HeapSize for EditLog {
    fn heap_bytes(&self) -> usize {
        self.touched_cells.heap_bytes()
            + self.touched_nets.heap_bytes()
            + self.touched_ports.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{DesignBuilder, PortDirection};

    fn eco_design() -> Design {
        let mut b = DesignBuilder::new("eco");
        let m = b.add_macro("u_mem/ram0", "RAM16", 200, 100, "u_mem");
        let m2 = b.add_macro("u_mem/ram1", "RAM16", 200, 100, "u_mem");
        let f = b.add_flop("u_ctl/state_reg", "u_ctl");
        let g = b.add_comb("u_ctl/and_1", "u_ctl");
        let p = b.add_port("clk_en", PortDirection::Input);
        b.place_port(p, Point::new(0, 500));
        let n1 = b.add_net("u_ctl/state");
        let n2 = b.add_net("clk_en_net");
        b.connect_driver(n1, f);
        b.connect_sink(n1, m);
        b.connect_sink(n1, g);
        b.connect_port_driver(n2, p);
        b.connect_sink(n2, f);
        b.set_die(Rect::new(0, 0, 1000, 1000));
        let _ = m2;
        b.build()
    }

    #[test]
    fn pure_geometry_edits_keep_identity_fingerprints() {
        let mut d = eco_design();
        let m = d.find_cell("u_mem/ram0").unwrap();
        let p = d.find_port("clk_en").unwrap();
        let log = d
            .apply_edits(&[
                DesignEdit::ResizeCell { cell: m, width: 240, height: 120 },
                DesignEdit::SwapMaster {
                    cell: m,
                    lib_cell: "RAM32".into(),
                    width: 260,
                    height: 130,
                },
                DesignEdit::MovePort { port: p, to: Some(Point::new(0, 700)) },
                DesignEdit::SetDie { die: Rect::new(0, 0, 1200, 900) },
            ])
            .unwrap();
        assert_eq!(log.applied, 4);
        assert!(log.diff.is_pure_geometry());
        assert!(log.diff.geometry_changed());
        assert!(!log.diff.wiring_changed());
        assert!(!log.diff.seq_names_changed());
        assert_eq!(log.touched_cells, vec![m]);
        assert_eq!(log.touched_ports, vec![p]);
        assert!(log.die_touched);
        assert_eq!(d.cell(m).width, 260);
        assert_eq!(d.cell(m).lib_cell, "RAM32");
        d.validate().unwrap();
    }

    #[test]
    fn rewire_changes_wiring_fingerprint_and_keeps_cross_references() {
        let mut d = eco_design();
        let n = d.find_net("u_ctl/state").unwrap();
        let f = d.find_cell("u_ctl/state_reg").unwrap();
        let m2 = d.find_cell("u_mem/ram1").unwrap();
        let log = d
            .apply_edits(&[DesignEdit::RewireNet { net: n, driver: Some(f), sinks: vec![m2] }])
            .unwrap();
        assert!(log.diff.wiring_changed());
        assert!(!log.diff.seq_names_changed());
        assert!(!log.diff.geometry_changed());
        assert!(log.touched_nets.contains(&n));
        assert_eq!(d.net(n).sink_cells, vec![m2]);
        d.validate().unwrap();
        // the CSR view reflects the rewire
        let pins: Vec<_> = d.connectivity().pins(n).iter().filter_map(|p| p.cell()).collect();
        assert_eq!(pins, vec![f, m2]);
    }

    #[test]
    fn move_macro_changes_nothing_but_is_logged() {
        let mut d = eco_design();
        let m = d.find_cell("u_mem/ram0").unwrap();
        let before =
            (d.connectivity().fingerprint(), d.seq_name_fingerprint(), d.geometry_fingerprint());
        let log =
            d.apply_edits(&[DesignEdit::MoveMacro { cell: m, to: Point::new(50, 50) }]).unwrap();
        let after =
            (d.connectivity().fingerprint(), d.seq_name_fingerprint(), d.geometry_fingerprint());
        assert_eq!(before, after);
        assert!(log.diff.is_pure_geometry());
        assert!(!log.diff.geometry_changed());
        assert_eq!(log.touched_cells, vec![m]);
        assert!(log.placement_seed);
    }

    #[test]
    fn bad_edits_reject_before_applying_anything() {
        let mut d = eco_design();
        let m = d.find_cell("u_mem/ram0").unwrap();
        let geo = d.geometry_fingerprint();
        let err = d
            .apply_edits(&[
                DesignEdit::ResizeCell { cell: m, width: 999, height: 999 },
                DesignEdit::ResizeCell { cell: CellId(4242), width: 1, height: 1 },
            ])
            .unwrap_err();
        assert_eq!(err, EditError::UnknownCell(CellId(4242)));
        // the valid first edit was not applied either
        assert_eq!(d.geometry_fingerprint(), geo);
        assert_eq!(d.cell(m).width, 200);
        let not_macro = d.find_cell("u_ctl/and_1").unwrap();
        let err = d.apply_edits(&[DesignEdit::MoveMacro { cell: not_macro, to: Point::new(0, 0) }]);
        assert_eq!(err.unwrap_err(), EditError::NotAMacro(not_macro));
        let err = d.apply_edits(&[DesignEdit::ResizeCell { cell: m, width: 0, height: 5 }]);
        assert!(matches!(err.unwrap_err(), EditError::BadDimensions(_)));
    }

    #[test]
    fn effect_matrix_matches_documented_invalidation() {
        let d = eco_design();
        let m = d.find_cell("u_mem/ram0").unwrap();
        let n = d.find_net("u_ctl/state").unwrap();
        let p = d.find_port("clk_en").unwrap();
        let geometry_only = [
            DesignEdit::ResizeCell { cell: m, width: 1, height: 1 },
            DesignEdit::SwapMaster { cell: m, lib_cell: "X".into(), width: 1, height: 1 },
            DesignEdit::MovePort { port: p, to: None },
            DesignEdit::SetDie { die: Rect::new(0, 0, 1, 1) },
        ];
        for e in &geometry_only {
            let fx = e.effect();
            assert!(fx.geometry && !fx.wiring && !fx.seq_names && !fx.placement_seed);
        }
        let fx = DesignEdit::RewireNet { net: n, driver: None, sinks: vec![] }.effect();
        assert!(fx.wiring && !fx.geometry && !fx.seq_names);
        let fx = DesignEdit::MoveMacro { cell: m, to: Point::new(0, 0) }.effect();
        assert!(fx.placement_seed && !fx.wiring && !fx.geometry && !fx.seq_names);
    }

    #[test]
    fn script_round_trips_through_names() {
        let d = eco_design();
        let m = d.find_cell("u_mem/ram0").unwrap();
        let f = d.find_cell("u_ctl/state_reg").unwrap();
        let n = d.find_net("u_ctl/state").unwrap();
        let p = d.find_port("clk_en").unwrap();
        let edits = vec![
            DesignEdit::ResizeCell { cell: m, width: 240, height: 120 },
            DesignEdit::MoveMacro { cell: m, to: Point::new(10, 20) },
            DesignEdit::SwapMaster { cell: m, lib_cell: "RAM32".into(), width: 2, height: 3 },
            DesignEdit::MovePort { port: p, to: Some(Point::new(0, 700)) },
            DesignEdit::MovePort { port: p, to: None },
            DesignEdit::RewireNet { net: n, driver: Some(f), sinks: vec![m, f] },
            DesignEdit::RewireNet { net: n, driver: None, sinks: vec![] },
            DesignEdit::SetDie { die: Rect::new(0, 0, 9, 9) },
        ];
        let script = format_edit_script(&edits, &d);
        let parsed = parse_edit_script(&script, &d).unwrap();
        assert_eq!(parsed, edits);
    }

    #[test]
    fn script_errors_name_the_clause() {
        let d = eco_design();
        let err = parse_edit_script("resize nosuch 1 2", &d).unwrap_err();
        assert!(matches!(&err, EditError::Script(m) if m.contains("nosuch")));
        let err = parse_edit_script("frob x", &d).unwrap_err();
        assert!(matches!(&err, EditError::Script(m) if m.contains("frob")));
        let err = parse_edit_script("resize u_mem/ram0 1", &d).unwrap_err();
        assert!(matches!(&err, EditError::Script(m) if m.contains("expected 4")));
        assert_eq!(parse_edit_script("  ;; ", &d).unwrap(), Vec::<DesignEdit>::new());
    }
}
