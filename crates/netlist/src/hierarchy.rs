//! The hierarchy tree `HT` of the paper (Sect. II-C).
//!
//! Every node represents one level of the RTL hierarchy (one module instance
//! path); edges represent sub-hierarchy relations.  The tree is annotated
//! bottom-up with the total cell area and macro count of each subtree, which
//! is what hierarchical declustering (Sect. IV-B) consumes.

use crate::design::{CellId, CellKind, Design};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a node in a [`HierarchyTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HierarchyNodeId(pub u32);

/// One level of the design hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyNode {
    /// Full hierarchical path of this level (empty string for the root/top).
    pub path: String,
    /// Parent node (None for the root).
    pub parent: Option<HierarchyNodeId>,
    /// Child hierarchy levels.
    pub children: Vec<HierarchyNodeId>,
    /// Cells whose `hier_path` is exactly this level (not including sub-levels).
    pub direct_cells: Vec<CellId>,
    /// Total cell area of the subtree rooted here (DBU²).
    pub subtree_area: i128,
    /// Number of macros in the subtree rooted here.
    pub subtree_macros: usize,
    /// Number of cells of any kind in the subtree rooted here.
    pub subtree_cells: usize,
}

/// The hierarchy tree `HT`.
///
/// # Example
///
/// ```
/// use netlist::design::DesignBuilder;
/// use netlist::hierarchy::HierarchyTree;
///
/// let mut b = DesignBuilder::new("top");
/// b.add_macro("u_mem/ram0", "RAM", 100, 100, "u_mem");
/// b.add_flop("u_ctl/r1", "u_ctl");
/// let design = b.build();
/// let ht = HierarchyTree::from_design(&design);
/// assert_eq!(ht.node(ht.root()).subtree_macros, 1);
/// assert!(ht.find("u_mem").is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyTree {
    nodes: Vec<HierarchyNode>,
    root: HierarchyNodeId,
    index: HashMap<String, HierarchyNodeId>,
}

impl HierarchyTree {
    /// Builds the hierarchy tree of a design from the `hier_path` annotations
    /// of its cells, and computes subtree area / macro / cell counts.
    pub fn from_design(design: &Design) -> Self {
        let mut nodes = vec![HierarchyNode {
            path: String::new(),
            parent: None,
            children: Vec::new(),
            direct_cells: Vec::new(),
            subtree_area: 0,
            subtree_macros: 0,
            subtree_cells: 0,
        }];
        let mut index: HashMap<String, HierarchyNodeId> = HashMap::new();
        index.insert(String::new(), HierarchyNodeId(0));

        // Create nodes for every hierarchy path (and all its prefixes).
        for (cell_id, cell) in design.cells() {
            let node = Self::ensure_path(&mut nodes, &mut index, &cell.hier_path);
            nodes[node.0 as usize].direct_cells.push(cell_id);
        }

        let mut tree = Self { nodes, root: HierarchyNodeId(0), index };
        tree.recompute_stats(design);
        tree
    }

    fn ensure_path(
        nodes: &mut Vec<HierarchyNode>,
        index: &mut HashMap<String, HierarchyNodeId>,
        path: &str,
    ) -> HierarchyNodeId {
        if let Some(&id) = index.get(path) {
            return id;
        }
        let parent_path = match path.rfind('/') {
            Some(pos) => &path[..pos],
            None => "",
        };
        let parent = Self::ensure_path(nodes, index, parent_path);
        let id = HierarchyNodeId(nodes.len() as u32);
        nodes.push(HierarchyNode {
            path: path.to_string(),
            parent: Some(parent),
            children: Vec::new(),
            direct_cells: Vec::new(),
            subtree_area: 0,
            subtree_macros: 0,
            subtree_cells: 0,
        });
        nodes[parent.0 as usize].children.push(id);
        index.insert(path.to_string(), id);
        id
    }

    /// Recomputes the per-subtree area, macro and cell counts (bottom-up).
    pub fn recompute_stats(&mut self, design: &Design) {
        // post-order traversal via explicit ordering: children always have a
        // larger id than their parent because they are created after it.
        for node in &mut self.nodes {
            node.subtree_area = 0;
            node.subtree_macros = 0;
            node.subtree_cells = 0;
        }
        for idx in (0..self.nodes.len()).rev() {
            let (area, macros, cells): (i128, usize, usize) = {
                let node = &self.nodes[idx];
                let mut area: i128 = node.subtree_area;
                let mut macros = node.subtree_macros;
                let mut cells = node.subtree_cells;
                for &c in &node.direct_cells {
                    let cell = design.cell(c);
                    area += cell.area();
                    cells += 1;
                    if cell.kind == CellKind::Macro {
                        macros += 1;
                    }
                }
                (area, macros, cells)
            };
            self.nodes[idx].subtree_area = area;
            self.nodes[idx].subtree_macros = macros;
            self.nodes[idx].subtree_cells = cells;
            if let Some(parent) = self.nodes[idx].parent {
                let p = parent.0 as usize;
                self.nodes[p].subtree_area += area;
                self.nodes[p].subtree_macros += macros;
                self.nodes[p].subtree_cells += cells;
            }
        }
    }

    /// The root node id (the top level of the design).
    pub fn root(&self) -> HierarchyNodeId {
        self.root
    }

    /// Node accessor.
    pub fn node(&self, id: HierarchyNodeId) -> &HierarchyNode {
        &self.nodes[id.0 as usize]
    }

    /// Number of hierarchy levels (nodes) in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tree only contains the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Finds the node for an exact hierarchical path.
    pub fn find(&self, path: &str) -> Option<HierarchyNodeId> {
        self.index.get(path).copied()
    }

    /// Iterates over `(id, node)` pairs in creation order (parents before children).
    pub fn iter(&self) -> impl Iterator<Item = (HierarchyNodeId, &HierarchyNode)> + '_ {
        self.nodes.iter().enumerate().map(|(i, n)| (HierarchyNodeId(i as u32), n))
    }

    /// All cells in the subtree rooted at `id` (direct and nested).
    pub fn subtree_cells(&self, id: HierarchyNodeId) -> Vec<CellId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let node = self.node(n);
            out.extend_from_slice(&node.direct_cells);
            stack.extend_from_slice(&node.children);
        }
        out
    }

    /// All macro cells in the subtree rooted at `id`.
    pub fn subtree_macros(&self, id: HierarchyNodeId, design: &Design) -> Vec<CellId> {
        self.subtree_cells(id)
            .into_iter()
            .filter(|&c| design.cell(c).kind == CellKind::Macro)
            .collect()
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, id: HierarchyNodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Returns `true` if `ancestor` is on the path from `node` to the root
    /// (a node is considered its own ancestor).
    pub fn is_ancestor(&self, ancestor: HierarchyNodeId, node: HierarchyNodeId) -> bool {
        let mut cur = Some(node);
        while let Some(n) = cur {
            if n == ancestor {
                return true;
            }
            cur = self.node(n).parent;
        }
        false
    }
}

impl crate::heap_size::HeapSize for HierarchyNode {
    fn heap_bytes(&self) -> usize {
        self.path.heap_bytes() + self.children.heap_bytes() + self.direct_cells.heap_bytes()
    }
}

impl crate::heap_size::HeapSize for HierarchyTree {
    fn heap_bytes(&self) -> usize {
        self.nodes.heap_bytes() + self.index.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignBuilder;

    fn hier_design() -> Design {
        let mut b = DesignBuilder::new("top");
        b.add_macro("u_a/u_mem/ram0", "RAM", 100, 50, "u_a/u_mem");
        b.add_macro("u_a/u_mem/ram1", "RAM", 100, 50, "u_a/u_mem");
        b.add_flop("u_a/u_ctl/r0", "u_a/u_ctl");
        b.add_comb("u_b/g0", "u_b");
        b.add_comb("glue0", "");
        b.build()
    }

    #[test]
    fn tree_structure_matches_paths() {
        let d = hier_design();
        let ht = HierarchyTree::from_design(&d);
        // nodes: "", u_a, u_a/u_mem, u_a/u_ctl, u_b  => 5
        assert_eq!(ht.len(), 5);
        let root = ht.node(ht.root());
        assert_eq!(root.children.len(), 2); // u_a, u_b
        let ua = ht.find("u_a").unwrap();
        assert_eq!(ht.node(ua).children.len(), 2);
        assert_eq!(ht.depth(ht.find("u_a/u_mem").unwrap()), 2);
    }

    #[test]
    fn subtree_stats_accumulate() {
        let d = hier_design();
        let ht = HierarchyTree::from_design(&d);
        let root = ht.node(ht.root());
        assert_eq!(root.subtree_macros, 2);
        assert_eq!(root.subtree_cells, 5);
        assert_eq!(root.subtree_area, 100 * 50 * 2 + 3);
        let umem = ht.node(ht.find("u_a/u_mem").unwrap());
        assert_eq!(umem.subtree_macros, 2);
        assert_eq!(umem.subtree_cells, 2);
        let ub = ht.node(ht.find("u_b").unwrap());
        assert_eq!(ub.subtree_macros, 0);
        assert_eq!(ub.subtree_cells, 1);
    }

    #[test]
    fn subtree_cells_and_macros() {
        let d = hier_design();
        let ht = HierarchyTree::from_design(&d);
        let ua = ht.find("u_a").unwrap();
        assert_eq!(ht.subtree_cells(ua).len(), 3);
        assert_eq!(ht.subtree_macros(ua, &d).len(), 2);
    }

    #[test]
    fn ancestor_relation() {
        let d = hier_design();
        let ht = HierarchyTree::from_design(&d);
        let root = ht.root();
        let umem = ht.find("u_a/u_mem").unwrap();
        let ua = ht.find("u_a").unwrap();
        let ub = ht.find("u_b").unwrap();
        assert!(ht.is_ancestor(root, umem));
        assert!(ht.is_ancestor(ua, umem));
        assert!(!ht.is_ancestor(ub, umem));
        assert!(ht.is_ancestor(umem, umem));
    }

    #[test]
    fn direct_cells_at_root() {
        let d = hier_design();
        let ht = HierarchyTree::from_design(&d);
        assert_eq!(ht.node(ht.root()).direct_cells.len(), 1);
    }
}
