//! Hierarchical netlist data model and physical-design file parsers.
//!
//! The input to RTL-aware macro placement is a *hierarchical* gate-level
//! netlist `N` together with the geometry of the macro cells and the die.
//! This crate provides:
//!
//! * [`design::Design`] — the flattened-but-hierarchy-annotated circuit model:
//!   cells (macros, flops, combinational gates), ports, nets, and for every
//!   cell the hierarchical path it came from.
//! * [`hierarchy::HierarchyTree`] — the tree `HT` of the paper (Sect. II-C):
//!   one node per hierarchy level with per-subtree area and macro counts.
//! * [`library::Library`] — macro and standard-cell footprints (from LEF).
//! * [`verilog`] — a structural Verilog parser producing a `Design`.
//! * [`lef`] — a LEF parser producing a `Library`.
//! * [`def`] — a DEF reader/writer for die area, placements and orientations.
//! * [`arrays`] — name-based array/bus grouping (`data[3]`, `data_3` → `data`),
//!   the RTL array information the paper exploits for dataflow analysis.
//! * [`dense`] — typed dense maps keyed by the contiguous design ids, the
//!   per-cell/per-net stores of the hot paths.
//! * [`connectivity`] — the flat CSR cell↔net incidence view built once per
//!   design and cached (`Design::connectivity`).
//! * [`edit`] — the typed ECO mutation API ([`edit::DesignEdit`]) applied
//!   through `Design` with exact cache invalidation, producing the
//!   [`edit::EditLog`] fingerprint diff that drives selective artifact
//!   invalidation.
//! * [`heap_size`] — the [`HeapSize`] resident-byte accounting trait behind
//!   byte-budgeted artifact caches and design stores.
//! * [`names`] — the compact open-addressed name→id index behind
//!   `Design::find_cell`/`find_port`/`find_net` (12 bytes per slot instead of
//!   a duplicated `String` per entry).
//! * [`placement`] — the [`placement::PlacementView`] read trait over macro
//!   placements, the dense interchange between flows, evaluation and DEF.
//!
//! # Example
//!
//! ```
//! use netlist::design::{CellKind, Design, DesignBuilder};
//!
//! let mut b = DesignBuilder::new("top");
//! let m = b.add_macro("u_mem/ram0", "RAM16", 200, 100, "u_mem");
//! let f = b.add_flop("u_ctl/state_reg[0]", "u_ctl");
//! let n = b.add_net("u_ctl/state[0]");
//! b.connect_driver(n, f);
//! b.connect_sink(n, m);
//! let design = b.build();
//! assert_eq!(design.macros().count(), 1);
//! assert_eq!(design.cell(m).kind, CellKind::Macro);
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]

pub mod arrays;
pub mod codec;
pub mod connectivity;
pub mod def;
pub mod dense;
pub mod design;
pub mod edit;
pub mod error;
pub mod hash;
pub mod heap_size;
pub mod hierarchy;
pub mod lef;
pub mod library;
pub mod names;
pub mod placement;
pub mod verilog;

pub use connectivity::{Connectivity, PinRef};
pub use dense::{DenseId, DenseMap};
pub use design::{CellId, CellKind, Design, DesignBuilder, NetId, PortDirection, PortId};
pub use edit::{DesignEdit, EditEffect, EditError, EditLog, FingerprintDiff};
pub use error::ParseError;
pub use hash::Fnv1a;
pub use heap_size::HeapSize;
pub use hierarchy::{HierarchyNodeId, HierarchyTree};
pub use library::{Library, MacroDef, PinDef};
pub use placement::{DenseMacroPlacementView, PlacementView};
