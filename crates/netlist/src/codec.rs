//! Minimal little-endian binary codec for the disk spill tier.
//!
//! The workspace's `serde` shim is a no-op marker crate, so spilled
//! artifacts are written with this hand-rolled codec instead: fixed-width
//! little-endian integers, length-prefixed arrays and strings, and a
//! truncation-tolerant [`Reader`] whose every accessor returns `Option` —
//! a short or corrupt buffer decodes to `None`, never a panic, so the
//! spill tier can degrade to a rebuild miss on any malformed file.
//!
//! # Example
//!
//! ```
//! use netlist::codec::{put_u32, put_u32_slice, Reader};
//!
//! let mut buf = Vec::new();
//! put_u32(&mut buf, 7);
//! put_u32_slice(&mut buf, &[1, 2, 3]);
//! let mut r = Reader::new(&buf);
//! assert_eq!(r.take_u32(), Some(7));
//! assert_eq!(r.take_u32_vec(), Some(vec![1, 2, 3]));
//! assert!(r.is_exhausted());
//! ```

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64` little-endian.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed `u32` array.
pub fn put_u32_slice(out: &mut Vec<u8>, vs: &[u32]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_u32(out, v);
    }
}

/// Appends a length-prefixed `u64` array.
pub fn put_u64_slice(out: &mut Vec<u8>, vs: &[u64]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_u64(out, v);
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Upper bound on a single decoded array's element count (1 G entries):
/// guards length-prefix corruption from turning into an allocation bomb.
const MAX_LEN: u64 = 1 << 30;

/// A bounds-checked cursor over an encoded buffer. Every accessor returns
/// `Option`: `None` on truncation or a malformed prefix, after which the
/// caller abandons the decode (spill files degrade to a rebuild miss).
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether the whole buffer was consumed (decoders require this so
    /// trailing garbage is rejected, not silently ignored).
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads a `u8`.
    pub fn take_u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a little-endian `i64`.
    pub fn take_i64(&mut self) -> Option<i64> {
        self.take(8).map(|b| i64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads an array-length prefix, rejecting lengths that cannot fit in
    /// the remaining bytes (at one byte per element) or exceed the sanity
    /// cap. Decoders of multi-byte elements should still divide
    /// [`Reader::remaining`] by their element size before reserving.
    pub fn take_len(&mut self) -> Option<usize> {
        let len = self.take_u64()?;
        // reject lengths that cannot fit in the remaining bytes (element
        // size >= 1) or exceed the sanity cap — corrupt prefixes otherwise
        // turn into huge allocations before the checksum gets a say
        if len > MAX_LEN || len as usize > self.remaining() {
            return None;
        }
        Some(len as usize)
    }

    /// Reads a length-prefixed `u32` array.
    pub fn take_u32_vec(&mut self) -> Option<Vec<u32>> {
        let len = self.take_len()?;
        if self.remaining() / 4 < len {
            return None;
        }
        (0..len).map(|_| self.take_u32()).collect()
    }

    /// Reads a length-prefixed `u64` array.
    pub fn take_u64_vec(&mut self) -> Option<Vec<u64>> {
        let len = self.take_len()?;
        if self.remaining() / 8 < len {
            return None;
        }
        (0..len).map(|_| self.take_u64()).collect()
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Option<String> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xab);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_str(&mut buf, "hél/lo");
        let mut r = Reader::new(&buf);
        assert_eq!(r.take_u8(), Some(0xab));
        assert_eq!(r.take_u32(), Some(0xdead_beef));
        assert_eq!(r.take_u64(), Some(u64::MAX - 1));
        assert_eq!(r.take_i64(), Some(-42));
        assert_eq!(r.take_str().as_deref(), Some("hél/lo"));
        assert!(r.is_exhausted());
    }

    #[test]
    fn arrays_round_trip() {
        let mut buf = Vec::new();
        put_u32_slice(&mut buf, &[3, 2, 1]);
        put_u64_slice(&mut buf, &[]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.take_u32_vec(), Some(vec![3, 2, 1]));
        assert_eq!(r.take_u64_vec(), Some(Vec::new()));
        assert!(r.is_exhausted());
    }

    #[test]
    fn every_truncation_point_returns_none() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u32_slice(&mut buf, &[1, 2, 3]);
        put_str(&mut buf, "tail");
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            // whichever field the cut lands in, some accessor reports None
            let ok = r.take_u32().is_some() && r.take_u32_vec().is_some() && r.take_str().is_some();
            assert!(!ok, "cut at {cut} decoded successfully");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // absurd element count
        assert_eq!(Reader::new(&buf).take_u32_vec(), None);
        let mut buf = Vec::new();
        put_u64(&mut buf, 10); // more elements than bytes remain
        put_u32(&mut buf, 1);
        assert_eq!(Reader::new(&buf).take_u32_vec(), None);
    }

    #[test]
    fn non_utf8_string_is_rejected() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(Reader::new(&buf).take_str(), None);
    }
}
