//! Name-based array (bus) grouping.
//!
//! The paper exploits *array information* from the RTL stage: multi-bit
//! registers and ports whose bits are individual cells in the gate-level
//! netlist. Grouping them back into arrays is done by component names
//! (Sect. IV-D, step 2): `data_reg[13]`, `data_reg_13` and `data_reg13`
//! are all bits of the array `data_reg`.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The result of splitting a bit-level name into an array base name and a
/// bit index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
// lint:allow(heap-size): elaboration transient (per-bit name scratch); dropped before
// any design reaches a store
pub struct ArrayBit {
    /// The array (bus) base name, e.g. `u_core/data_reg`.
    pub base: String,
    /// The bit index, if one was recognized.
    pub index: Option<u32>,
}

/// Splits a bit-level component name into its array base name and bit index.
///
/// Recognized suffix forms (checked in this order):
///
/// * `name[13]` — bracketed index,
/// * `name_13_` or `name_13` — synthesized escaping of a bracketed index,
/// * `name13` is **not** split (plain trailing digits are too ambiguous).
///
/// # Example
///
/// ```
/// use netlist::arrays::split_array_name;
///
/// assert_eq!(split_array_name("data_reg[7]").base, "data_reg");
/// assert_eq!(split_array_name("data_reg_7_").base, "data_reg");
/// assert_eq!(split_array_name("data_reg_7").base, "data_reg");
/// assert_eq!(split_array_name("counter3").base, "counter3");
/// assert_eq!(split_array_name("data_reg[7]").index, Some(7));
/// ```
pub fn split_array_name(name: &str) -> ArrayBit {
    // form: base[idx]
    if let Some(open) = name.rfind('[') {
        if let Some(close) = name.rfind(']') {
            if close == name.len() - 1 && open < close {
                if let Ok(idx) = name[open + 1..close].parse::<u32>() {
                    return ArrayBit { base: name[..open].to_string(), index: Some(idx) };
                }
            }
        }
    }
    // form: base_idx_  (escaped bracket style)
    let trimmed = name.strip_suffix('_').unwrap_or(name);
    if let Some(pos) = trimmed.rfind('_') {
        let (base, digits) = trimmed.split_at(pos);
        let digits = &digits[1..];
        if !base.is_empty() && !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit()) {
            if let Ok(idx) = digits.parse::<u32>() {
                return ArrayBit { base: base.to_string(), index: Some(idx) };
            }
        }
    }
    ArrayBit { base: name.to_string(), index: None }
}

/// A group of bit-level items recognized as one array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
// lint:allow(heap-size): elaboration transient grouping bits during parsing; never
// resident in a byte-budgeted store
pub struct ArrayGroup<T> {
    /// The array base name.
    pub base: String,
    /// The members, in the order they were supplied.
    pub members: Vec<T>,
}

impl<T> ArrayGroup<T> {
    /// Number of bits grouped into the array.
    pub fn width(&self) -> usize {
        self.members.len()
    }
}

/// Groups a collection of `(name, item)` pairs into arrays by base name.
///
/// Items whose name does not look like an array bit form singleton groups
/// under their own full name.
pub fn group_by_array<T, I>(items: I) -> Vec<ArrayGroup<T>>
where
    I: IntoIterator<Item = (String, T)>,
{
    let mut order: Vec<String> = Vec::new();
    let mut map: HashMap<String, Vec<T>> = HashMap::new();
    for (name, item) in items {
        let base = split_array_name(&name).base;
        map.entry(base.clone()).or_insert_with(|| {
            order.push(base.clone());
            Vec::new()
        });
        map.get_mut(&base).expect("just inserted").push(item);
    }
    order
        .into_iter()
        .map(|base| {
            let members = map.remove(&base).expect("present");
            ArrayGroup { base, members }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bracket_form() {
        let b = split_array_name("u_core/data_reg[31]");
        assert_eq!(b.base, "u_core/data_reg");
        assert_eq!(b.index, Some(31));
    }

    #[test]
    fn underscore_forms() {
        assert_eq!(split_array_name("q_5_").base, "q");
        assert_eq!(split_array_name("q_5_").index, Some(5));
        assert_eq!(split_array_name("q_5").base, "q");
    }

    #[test]
    fn non_array_names_untouched() {
        assert_eq!(split_array_name("state").base, "state");
        assert_eq!(split_array_name("state").index, None);
        assert_eq!(split_array_name("reg12x").base, "reg12x");
        assert_eq!(split_array_name("adder3").base, "adder3");
        // malformed bracket
        assert_eq!(split_array_name("a[b]").base, "a[b]");
        assert_eq!(split_array_name("a[3]x").base, "a[3]x");
    }

    #[test]
    fn grouping_collects_bits_in_order() {
        let items = vec![
            ("bus[0]".to_string(), 0),
            ("bus[1]".to_string(), 1),
            ("single".to_string(), 2),
            ("bus[2]".to_string(), 3),
            ("other_0".to_string(), 4),
            ("other_1".to_string(), 5),
        ];
        let groups = group_by_array(items);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].base, "bus");
        assert_eq!(groups[0].width(), 3);
        assert_eq!(groups[1].base, "single");
        assert_eq!(groups[1].width(), 1);
        assert_eq!(groups[2].base, "other");
        assert_eq!(groups[2].members, vec![4, 5]);
    }

    #[test]
    fn hierarchical_prefix_kept_in_base() {
        let groups =
            group_by_array(vec![("u_a/r[0]".to_string(), ()), ("u_b/r[0]".to_string(), ())]);
        assert_eq!(groups.len(), 2, "same leaf name in different hierarchy stays separate");
    }
}
