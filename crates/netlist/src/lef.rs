//! LEF (Library Exchange Format) parser.
//!
//! A pragmatic subset sufficient for macro placement:
//!
//! * `UNITS DATABASE MICRONS <n>` — the DBU scale,
//! * `MACRO <name> ... END <name>` blocks with
//!   * `CLASS BLOCK | CORE | PAD ...`,
//!   * `SIZE <w> BY <h>`,
//!   * `PIN <name> ... PORT ... RECT x1 y1 x2 y2 ... END <name>`.
//!
//! Everything else (layers, sites, obstruction geometry) is skipped.
//!
//! The lexer is *streaming*: it yields `(line, &str)` words borrowed from the
//! source text one at a time instead of materializing a token vector of owned
//! `String`s (which dominates peak memory on large libraries).

use crate::error::ParseError;
use crate::library::{Library, MacroDef, PinDef};
use geometry::{Dbu, Point};

/// Result of parsing a LEF file.
#[derive(Debug, Clone, PartialEq)]
pub struct LefFile {
    /// Database units per micron (defaults to 1000 when not specified).
    pub dbu_per_micron: i64,
    /// The parsed library.
    pub library: Library,
}

/// Streaming word lexer: whitespace-separated words with `#` comments
/// stripped and a trailing `;` split into its own token.
struct Lexer<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
    pending_semi: Option<usize>,
    peeked: Option<(usize, &'a str)>,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Self { text, pos: 0, line: 1, pending_semi: None, peeked: None }
    }

    fn next_raw(&mut self) -> Option<(usize, &'a str)> {
        if let Some(line) = self.pending_semi.take() {
            return Some((line, ";"));
        }
        loop {
            let rest = &self.text[self.pos..];
            let c = rest.chars().next()?;
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => {
                    self.pos += c.len_utf8();
                }
                '#' => match rest.find('\n') {
                    Some(n) => self.pos += n,
                    None => self.pos = self.text.len(),
                },
                _ => {
                    let start = self.pos;
                    let end = rest
                        .find(|c2: char| c2.is_whitespace() || c2 == '#')
                        .map_or(self.text.len(), |n| start + n);
                    self.pos = end;
                    let word = &self.text[start..end];
                    let line = self.line;
                    if word == ";" {
                        return Some((line, ";"));
                    }
                    if let Some(stripped) = word.strip_suffix(';') {
                        self.pending_semi = Some(line);
                        if !stripped.is_empty() {
                            return Some((line, stripped));
                        }
                        return Some((line, ";"));
                    }
                    return Some((line, word));
                }
            }
        }
    }

    fn peek(&mut self) -> Option<(usize, &'a str)> {
        if self.peeked.is_none() {
            self.peeked = self.next_raw();
        }
        self.peeked
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        self.peek();
        self.peeked.take()
    }
}

/// Parses LEF text.
///
/// # Errors
///
/// Returns [`ParseError`] on structurally malformed input (unterminated macro
/// blocks, malformed numbers in `SIZE` statements, ...). Unknown statements
/// are skipped, matching how LEF readers typically behave.
pub fn parse_lef(text: &str) -> Result<LefFile, ParseError> {
    let mut dbu_per_micron: i64 = 1000;
    let mut library = Library::new();
    let mut lx = Lexer::new(text);
    while let Some((line, tok)) = lx.next() {
        match tok {
            "UNITS" => {
                // UNITS DATABASE MICRONS <n> ; ... END UNITS
                while let Some((_, t)) = lx.peek() {
                    if t == "END" {
                        break;
                    }
                    lx.next();
                    if t == "MICRONS" {
                        if let Some((vline, v)) = lx.peek() {
                            dbu_per_micron = v.parse::<f64>().map_err(|_| {
                                ParseError::at_line(vline, "invalid DATABASE MICRONS value")
                            })? as i64;
                        }
                    }
                }
                // skip "END UNITS"
                if lx.peek().is_some() {
                    lx.next();
                    if lx.peek().map(|(_, t)| t) == Some("UNITS") {
                        lx.next();
                    }
                }
            }
            "MACRO" => {
                let def = parse_macro(&mut lx, line, dbu_per_micron)?;
                library.add_macro(def);
            }
            _ => {}
        }
    }
    Ok(LefFile { dbu_per_micron, library })
}

fn parse_macro(lx: &mut Lexer<'_>, start_line: usize, dbu: i64) -> Result<MacroDef, ParseError> {
    let name = lx
        .next()
        .ok_or_else(|| ParseError::at_line(start_line, "MACRO without a name"))?
        .1
        .to_string();
    let mut def =
        MacroDef { name: name.clone(), width: 0, height: 0, is_block: false, pins: Vec::new() };
    while let Some((line, tok)) = lx.next() {
        match tok {
            "CLASS" => {
                if let Some((_, t)) = lx.next() {
                    def.is_block = t == "BLOCK" || t == "RING";
                }
            }
            "SIZE" => {
                // SIZE w BY h ;
                let w = next_micron(lx, dbu)?;
                if lx.next().map(|(_, t)| t) != Some("BY") {
                    return Err(ParseError::at_line(line, "SIZE missing BY keyword"));
                }
                let h = next_micron(lx, dbu)?;
                def.width = w;
                def.height = h;
            }
            "PIN" => {
                def.pins.push(parse_pin(lx, line, dbu)?);
            }
            // END <name> terminates the macro; a bare END belongs to a nested block we skipped.
            "END" if lx.peek().map(|(_, t)| t) == Some(name.as_str()) => {
                lx.next();
                return Ok(def);
            }
            _ => {}
        }
    }
    Err(ParseError::at_line(start_line, format!("unterminated MACRO {name}")))
}

fn parse_pin(lx: &mut Lexer<'_>, start_line: usize, dbu: i64) -> Result<PinDef, ParseError> {
    let name = lx
        .next()
        .ok_or_else(|| ParseError::at_line(start_line, "PIN without a name"))?
        .1
        .to_string();
    let mut offset = Point::origin();
    let mut have_rect = false;
    while let Some((_, tok)) = lx.next() {
        match tok {
            "RECT" => {
                let x1 = next_micron(lx, dbu)?;
                let y1 = next_micron(lx, dbu)?;
                let x2 = next_micron(lx, dbu)?;
                let y2 = next_micron(lx, dbu)?;
                if !have_rect {
                    offset = Point::new((x1 + x2) / 2, (y1 + y2) / 2);
                    have_rect = true;
                }
            }
            "END" if lx.peek().map(|(_, t)| t) == Some(name.as_str()) => {
                lx.next();
                return Ok(PinDef { name, offset });
            }
            _ => {}
        }
    }
    Err(ParseError::at_line(start_line, format!("unterminated PIN {name}")))
}

fn next_micron(lx: &mut Lexer<'_>, dbu: i64) -> Result<Dbu, ParseError> {
    let (line, t) =
        lx.next().ok_or_else(|| ParseError::new("unexpected end of file in numeric field"))?;
    let v: f64 =
        t.parse().map_err(|_| ParseError::at_line(line, format!("invalid number '{t}'")))?;
    Ok((v * dbu as f64).round() as Dbu)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEF: &str = r#"
VERSION 5.8 ;
UNITS
  DATABASE MICRONS 2000 ;
END UNITS

MACRO RAM256x32
  CLASS BLOCK ;
  SIZE 120.5 BY 80 ;
  PIN D[0]
    DIRECTION INPUT ;
    PORT
      LAYER M4 ;
      RECT 0.0 1.0 0.2 1.2 ;
    END
  END D[0]
  PIN Q[0]
    DIRECTION OUTPUT ;
    PORT
      RECT 120.3 1.0 120.5 1.2 ;
    END
  END Q[0]
END RAM256x32

MACRO DFFX1
  CLASS CORE ;
  SIZE 1.2 BY 0.8 ;
END DFFX1
"#;

    #[test]
    fn parses_units_and_macros() {
        let lef = parse_lef(LEF).unwrap();
        assert_eq!(lef.dbu_per_micron, 2000);
        assert_eq!(lef.library.len(), 2);
        let ram = lef.library.find_macro("RAM256x32").unwrap();
        assert!(ram.is_block);
        assert_eq!(ram.width, 241_000);
        assert_eq!(ram.height, 160_000);
        assert_eq!(ram.pins.len(), 2);
        let dff = lef.library.find_macro("DFFX1").unwrap();
        assert!(!dff.is_block);
        assert_eq!(dff.width, 2400);
    }

    #[test]
    fn pin_offset_is_rect_center() {
        let lef = parse_lef(LEF).unwrap();
        let ram = lef.library.find_macro("RAM256x32").unwrap();
        let d0 = ram.find_pin("D[0]").unwrap();
        assert_eq!(d0.offset, Point::new(200, 2200));
    }

    #[test]
    fn comments_are_ignored() {
        let lef = parse_lef("# just a comment\nMACRO M\n SIZE 1 BY 1 ;\nEND M\n").unwrap();
        assert_eq!(lef.library.len(), 1);
    }

    #[test]
    fn unterminated_macro_is_error() {
        assert!(parse_lef("MACRO M\n SIZE 1 BY 1 ;\n").is_err());
    }

    #[test]
    fn malformed_size_is_error() {
        assert!(parse_lef("MACRO M\n SIZE x BY 1 ;\nEND M\n").is_err());
        assert!(parse_lef("MACRO M\n SIZE 1 1 ;\nEND M\n").is_err());
    }

    #[test]
    fn default_dbu_is_1000() {
        let lef = parse_lef("MACRO M\n SIZE 2 BY 3 ;\nEND M\n").unwrap();
        assert_eq!(lef.dbu_per_micron, 1000);
        assert_eq!(lef.library.find_macro("M").unwrap().width, 2000);
    }

    #[test]
    fn inline_comment_terminates_a_word() {
        let lef = parse_lef("MACRO M# trailing\n SIZE 1 BY 1 ;\nEND M\n").unwrap();
        assert!(lef.library.find_macro("M").is_some());
    }
}
