//! LEF (Library Exchange Format) parser.
//!
//! A pragmatic subset sufficient for macro placement:
//!
//! * `UNITS DATABASE MICRONS <n>` — the DBU scale,
//! * `MACRO <name> ... END <name>` blocks with
//!   * `CLASS BLOCK | CORE | PAD ...`,
//!   * `SIZE <w> BY <h>`,
//!   * `PIN <name> ... PORT ... RECT x1 y1 x2 y2 ... END <name>`.
//!
//! Everything else (layers, sites, obstruction geometry) is skipped.

use crate::error::ParseError;
use crate::library::{Library, MacroDef, PinDef};
use geometry::{Dbu, Point};

/// Result of parsing a LEF file.
#[derive(Debug, Clone, PartialEq)]
pub struct LefFile {
    /// Database units per micron (defaults to 1000 when not specified).
    pub dbu_per_micron: i64,
    /// The parsed library.
    pub library: Library,
}

/// Parses LEF text.
///
/// # Errors
///
/// Returns [`ParseError`] on structurally malformed input (unterminated macro
/// blocks, malformed numbers in `SIZE` statements, ...). Unknown statements
/// are skipped, matching how LEF readers typically behave.
pub fn parse_lef(text: &str) -> Result<LefFile, ParseError> {
    let mut dbu_per_micron: i64 = 1000;
    let mut library = Library::new();

    let tokens = lex(text);
    let mut i = 0usize;
    while i < tokens.len() {
        match tokens[i].1.as_str() {
            "UNITS" => {
                // UNITS DATABASE MICRONS <n> ; ... END UNITS
                let mut j = i + 1;
                while j < tokens.len() && tokens[j].1 != "END" {
                    if tokens[j].1 == "MICRONS" && j + 1 < tokens.len() {
                        dbu_per_micron = tokens[j + 1].1.parse::<f64>().map_err(|_| {
                            ParseError::at_line(tokens[j + 1].0, "invalid DATABASE MICRONS value")
                        })? as i64;
                    }
                    j += 1;
                }
                // skip "END UNITS"
                if j < tokens.len() {
                    j += 1;
                    if tokens.get(j).map(|t| t.1.as_str()) == Some("UNITS") {
                        j += 1;
                    }
                }
                i = j;
            }
            "MACRO" => {
                let (def, next) = parse_macro(&tokens, i, dbu_per_micron)?;
                library.add_macro(def);
                i = next;
            }
            _ => i += 1,
        }
    }
    Ok(LefFile { dbu_per_micron, library })
}

/// Lexes into (line, token) pairs, splitting on whitespace and treating `;` as
/// its own token.
fn lex(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = match line.find('#') {
            Some(pos) => &line[..pos],
            None => line,
        };
        for raw in line.split_whitespace() {
            if raw == ";" {
                out.push((lineno + 1, ";".to_string()));
            } else if let Some(stripped) = raw.strip_suffix(';') {
                if !stripped.is_empty() {
                    out.push((lineno + 1, stripped.to_string()));
                }
                out.push((lineno + 1, ";".to_string()));
            } else {
                out.push((lineno + 1, raw.to_string()));
            }
        }
    }
    out
}

fn parse_macro(
    tokens: &[(usize, String)],
    start: usize,
    dbu: i64,
) -> Result<(MacroDef, usize), ParseError> {
    let name = tokens
        .get(start + 1)
        .ok_or_else(|| ParseError::at_line(tokens[start].0, "MACRO without a name"))?
        .1
        .clone();
    let mut def =
        MacroDef { name: name.clone(), width: 0, height: 0, is_block: false, pins: Vec::new() };
    let mut i = start + 2;
    while i < tokens.len() {
        match tokens[i].1.as_str() {
            "CLASS" => {
                if let Some(t) = tokens.get(i + 1) {
                    def.is_block = t.1 == "BLOCK" || t.1 == "RING";
                }
                i += 2;
            }
            "SIZE" => {
                // SIZE w BY h ;
                let w = parse_micron(tokens, i + 1, dbu)?;
                if tokens.get(i + 2).map(|t| t.1.as_str()) != Some("BY") {
                    return Err(ParseError::at_line(tokens[i].0, "SIZE missing BY keyword"));
                }
                let h = parse_micron(tokens, i + 3, dbu)?;
                def.width = w;
                def.height = h;
                i += 4;
            }
            "PIN" => {
                let (pin, next) = parse_pin(tokens, i, dbu)?;
                def.pins.push(pin);
                i = next;
            }
            "END" => {
                // END <name> terminates the macro; a bare END belongs to a nested block we skipped.
                if tokens.get(i + 1).map(|t| t.1.as_str()) == Some(name.as_str()) {
                    return Ok((def, i + 2));
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    Err(ParseError::at_line(tokens[start].0, format!("unterminated MACRO {name}")))
}

fn parse_pin(
    tokens: &[(usize, String)],
    start: usize,
    dbu: i64,
) -> Result<(PinDef, usize), ParseError> {
    let name = tokens
        .get(start + 1)
        .ok_or_else(|| ParseError::at_line(tokens[start].0, "PIN without a name"))?
        .1
        .clone();
    let mut offset = Point::origin();
    let mut have_rect = false;
    let mut i = start + 2;
    while i < tokens.len() {
        match tokens[i].1.as_str() {
            "RECT" => {
                let x1 = parse_micron(tokens, i + 1, dbu)?;
                let y1 = parse_micron(tokens, i + 2, dbu)?;
                let x2 = parse_micron(tokens, i + 3, dbu)?;
                let y2 = parse_micron(tokens, i + 4, dbu)?;
                if !have_rect {
                    offset = Point::new((x1 + x2) / 2, (y1 + y2) / 2);
                    have_rect = true;
                }
                i += 5;
            }
            "END" => {
                if tokens.get(i + 1).map(|t| t.1.as_str()) == Some(name.as_str()) {
                    return Ok((PinDef { name, offset }, i + 2));
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    Err(ParseError::at_line(tokens[start].0, format!("unterminated PIN {name}")))
}

fn parse_micron(tokens: &[(usize, String)], idx: usize, dbu: i64) -> Result<Dbu, ParseError> {
    let (line, t) = tokens
        .get(idx)
        .ok_or_else(|| ParseError::new("unexpected end of file in numeric field"))?;
    let v: f64 =
        t.parse().map_err(|_| ParseError::at_line(*line, format!("invalid number '{t}'")))?;
    Ok((v * dbu as f64).round() as Dbu)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEF: &str = r#"
VERSION 5.8 ;
UNITS
  DATABASE MICRONS 2000 ;
END UNITS

MACRO RAM256x32
  CLASS BLOCK ;
  SIZE 120.5 BY 80 ;
  PIN D[0]
    DIRECTION INPUT ;
    PORT
      LAYER M4 ;
      RECT 0.0 1.0 0.2 1.2 ;
    END
  END D[0]
  PIN Q[0]
    DIRECTION OUTPUT ;
    PORT
      RECT 120.3 1.0 120.5 1.2 ;
    END
  END Q[0]
END RAM256x32

MACRO DFFX1
  CLASS CORE ;
  SIZE 1.2 BY 0.8 ;
END DFFX1
"#;

    #[test]
    fn parses_units_and_macros() {
        let lef = parse_lef(LEF).unwrap();
        assert_eq!(lef.dbu_per_micron, 2000);
        assert_eq!(lef.library.len(), 2);
        let ram = lef.library.find_macro("RAM256x32").unwrap();
        assert!(ram.is_block);
        assert_eq!(ram.width, 241_000);
        assert_eq!(ram.height, 160_000);
        assert_eq!(ram.pins.len(), 2);
        let dff = lef.library.find_macro("DFFX1").unwrap();
        assert!(!dff.is_block);
        assert_eq!(dff.width, 2400);
    }

    #[test]
    fn pin_offset_is_rect_center() {
        let lef = parse_lef(LEF).unwrap();
        let ram = lef.library.find_macro("RAM256x32").unwrap();
        let d0 = ram.find_pin("D[0]").unwrap();
        assert_eq!(d0.offset, Point::new(200, 2200));
    }

    #[test]
    fn comments_are_ignored() {
        let lef = parse_lef("# just a comment\nMACRO M\n SIZE 1 BY 1 ;\nEND M\n").unwrap();
        assert_eq!(lef.library.len(), 1);
    }

    #[test]
    fn unterminated_macro_is_error() {
        assert!(parse_lef("MACRO M\n SIZE 1 BY 1 ;\n").is_err());
    }

    #[test]
    fn malformed_size_is_error() {
        assert!(parse_lef("MACRO M\n SIZE x BY 1 ;\nEND M\n").is_err());
        assert!(parse_lef("MACRO M\n SIZE 1 1 ;\nEND M\n").is_err());
    }

    #[test]
    fn default_dbu_is_1000() {
        let lef = parse_lef("MACRO M\n SIZE 2 BY 3 ;\nEND M\n").unwrap();
        assert_eq!(lef.dbu_per_micron, 1000);
        assert_eq!(lef.library.find_macro("M").unwrap().width, 2000);
    }
}
