//! Structural (gate-level) Verilog parser.
//!
//! The parser supports the subset of Verilog that gate-level hierarchical
//! netlists use in practice:
//!
//! * `module` / `endmodule` with a port list,
//! * `input` / `output` / `inout` declarations, scalar or vectored (`[7:0]`),
//! * `wire` declarations, scalar or vectored,
//! * module / cell instantiations with named port connections
//!   (`CELL inst (.A(n1), .B(bus[3]), ...);`),
//! * `// line` and `/* block */` comments.
//!
//! Behavioural constructs (`always`, `assign` with expressions, parameters)
//! are *not* supported — the input is expected to be a synthesized netlist.
//!
//! The design is produced by flattening the module hierarchy starting at a
//! chosen top module; the instance path of every cell is recorded so the
//! hierarchy tree can be rebuilt (this is exactly the RTL-stage hierarchy
//! information the paper exploits).

use crate::design::{CellKind, Design, DesignBuilder, PortDirection};
use crate::error::ParseError;
use crate::library::Library;
use std::collections::HashMap;

/// A port declaration: name, direction, optional (msb, lsb) range.
type PortDecl = (String, PortDirection, Option<(i64, i64)>);

/// A parsed (unflattened) Verilog module.
#[derive(Debug, Clone, Default)]
struct Module {
    name: String,
    /// port name -> (direction, msb, lsb) ; scalar ports have msb == lsb == None
    ports: Vec<PortDecl>,
    /// wire name -> optional range
    wires: HashMap<String, Option<(i64, i64)>>,
    instances: Vec<Instance>,
}

#[derive(Debug, Clone)]
struct Instance {
    cell: String,
    name: String,
    /// (port, net expression) pairs
    connections: Vec<(String, String)>,
}

/// Tokenizer output.
#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Symbol(char),
    Number(String),
}

fn tokenize(text: &str) -> Result<Vec<(usize, Token)>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = text.char_indices().peekable();
    let mut line = 1usize;
    while let Some(&(_, c)) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                match chars.peek() {
                    Some(&(_, '/')) => {
                        for (_, c2) in chars.by_ref() {
                            if c2 == '\n' {
                                line += 1;
                                break;
                            }
                        }
                    }
                    Some(&(_, '*')) => {
                        chars.next();
                        let mut prev = ' ';
                        for (_, c2) in chars.by_ref() {
                            if c2 == '\n' {
                                line += 1;
                            }
                            if prev == '*' && c2 == '/' {
                                break;
                            }
                            prev = c2;
                        }
                    }
                    _ => tokens.push((line, Token::Symbol('/'))),
                }
            }
            '\\' => {
                // escaped identifier: `\name with specials ` terminated by whitespace
                chars.next();
                let mut ident = String::new();
                while let Some(&(_, c2)) = chars.peek() {
                    if c2.is_whitespace() {
                        break;
                    }
                    ident.push(c2);
                    chars.next();
                }
                tokens.push((line, Token::Ident(ident)));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&(_, c2)) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' || c2 == '$' {
                        ident.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push((line, Token::Ident(ident)));
            }
            c if c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&(_, c2)) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '\'' || c2 == '_' {
                        num.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push((line, Token::Number(num)));
            }
            '(' | ')' | '[' | ']' | '{' | '}' | ',' | ';' | ':' | '.' | '=' | '-' | '+' => {
                tokens.push((line, Token::Symbol(c)));
                chars.next();
            }
            other => {
                return Err(ParseError::at_line(line, format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|(l, _)| *l)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_symbol(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Symbol(s)) if s == c => Ok(()),
            other => {
                Err(ParseError::at_line(self.line(), format!("expected '{c}', found {other:?}")))
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::at_line(
                self.line(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn eat_symbol(&mut self, c: char) -> bool {
        if self.peek() == Some(&Token::Symbol(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parses `[msb:lsb]` if present.
    fn parse_range(&mut self) -> Result<Option<(i64, i64)>, ParseError> {
        if !self.eat_symbol('[') {
            return Ok(None);
        }
        let msb = self.parse_int()?;
        self.expect_symbol(':')?;
        let lsb = self.parse_int()?;
        self.expect_symbol(']')?;
        Ok(Some((msb, lsb)))
    }

    fn parse_int(&mut self) -> Result<i64, ParseError> {
        let mut negative = false;
        if self.eat_symbol('-') {
            negative = true;
        }
        match self.next() {
            Some(Token::Number(n)) => {
                let v: i64 = n.parse().map_err(|_| {
                    ParseError::at_line(self.line(), format!("invalid integer '{n}'"))
                })?;
                Ok(if negative { -v } else { v })
            }
            other => {
                Err(ParseError::at_line(self.line(), format!("expected integer, found {other:?}")))
            }
        }
    }

    /// Parses a net expression: `name`, `name[3]`, `name[7:4]`, or a
    /// concatenation `{a, b[3], ...}`. Returns the list of bit-level net names.
    fn parse_net_expr(&mut self) -> Result<Vec<String>, ParseError> {
        if self.eat_symbol('{') {
            let mut nets = Vec::new();
            loop {
                nets.extend(self.parse_net_expr()?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
            self.expect_symbol('}')?;
            return Ok(nets);
        }
        match self.next() {
            Some(Token::Ident(base)) => {
                if self.eat_symbol('[') {
                    let a = self.parse_int()?;
                    if self.eat_symbol(':') {
                        let b = self.parse_int()?;
                        self.expect_symbol(']')?;
                        // bits are listed in source order, i.e. from `a` to `b`
                        let v: Vec<String> = if a >= b {
                            (b..=a).rev().map(|i| format!("{base}[{i}]")).collect()
                        } else {
                            (a..=b).map(|i| format!("{base}[{i}]")).collect()
                        };
                        Ok(v)
                    } else {
                        self.expect_symbol(']')?;
                        Ok(vec![format!("{base}[{a}]")])
                    }
                } else {
                    Ok(vec![base])
                }
            }
            Some(Token::Number(n)) => {
                // constant like 1'b0 — treat as an anonymous tie net
                Ok(vec![format!("__const_{n}")])
            }
            other => Err(ParseError::at_line(
                self.line(),
                format!("expected net expression, found {other:?}"),
            )),
        }
    }
}

/// Parses Verilog source text into the module table.
fn parse_modules(text: &str) -> Result<HashMap<String, Module>, ParseError> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut modules = HashMap::new();
    while let Some(tok) = p.peek().cloned() {
        match tok {
            Token::Ident(kw) if kw == "module" => {
                p.next();
                let m = parse_module(&mut p)?;
                modules.insert(m.name.clone(), m);
            }
            _ => {
                p.next();
            }
        }
    }
    Ok(modules)
}

fn parse_module(p: &mut Parser) -> Result<Module, ParseError> {
    let name = p.expect_ident()?;
    let mut module = Module { name, ..Default::default() };
    // Header port list. ANSI-style declarations (`input [1:0] a, output y`)
    // are recorded directly; non-ANSI headers only list names and the
    // directions come from declarations in the body.
    if p.eat_symbol('(') {
        let mut dir: Option<PortDirection> = None;
        let mut range: Option<(i64, i64)> = None;
        loop {
            if p.eat_symbol(')') {
                break;
            }
            match p.peek().cloned() {
                Some(Token::Ident(kw)) if kw == "input" || kw == "output" || kw == "inout" => {
                    p.next();
                    dir = Some(match kw.as_str() {
                        "input" => PortDirection::Input,
                        "output" => PortDirection::Output,
                        _ => PortDirection::Inout,
                    });
                    if p.peek() == Some(&Token::Ident("wire".to_string()))
                        || p.peek() == Some(&Token::Ident("reg".to_string()))
                    {
                        p.next();
                    }
                    range = p.parse_range()?;
                }
                Some(Token::Ident(pname)) => {
                    p.next();
                    if let Some(d) = dir {
                        module.ports.push((pname.clone(), d, range));
                        module.wires.insert(pname, range);
                    }
                }
                _ => {
                    p.next();
                }
            }
        }
    }
    p.expect_symbol(';')?;

    loop {
        let tok =
            p.peek().cloned().ok_or_else(|| ParseError::new("unexpected end of file in module"))?;
        match tok {
            Token::Ident(kw) if kw == "endmodule" => {
                p.next();
                break;
            }
            Token::Ident(kw) if kw == "input" || kw == "output" || kw == "inout" => {
                p.next();
                let dir = match kw.as_str() {
                    "input" => PortDirection::Input,
                    "output" => PortDirection::Output,
                    _ => PortDirection::Inout,
                };
                // optional `wire` keyword
                if p.peek() == Some(&Token::Ident("wire".to_string())) {
                    p.next();
                }
                let range = p.parse_range()?;
                loop {
                    let pname = p.expect_ident()?;
                    module.ports.push((pname.clone(), dir, range));
                    module.wires.insert(pname, range);
                    if !p.eat_symbol(',') {
                        break;
                    }
                }
                p.expect_symbol(';')?;
            }
            Token::Ident(kw) if kw == "wire" || kw == "tri" => {
                p.next();
                let range = p.parse_range()?;
                loop {
                    let wname = p.expect_ident()?;
                    module.wires.insert(wname, range);
                    if !p.eat_symbol(',') {
                        break;
                    }
                }
                p.expect_symbol(';')?;
            }
            Token::Ident(kw)
                if kw == "assign" || kw == "parameter" || kw == "supply0" || kw == "supply1" =>
            {
                // skip to semicolon
                p.next();
                while let Some(t) = p.next() {
                    if t == Token::Symbol(';') {
                        break;
                    }
                }
            }
            Token::Ident(cell) => {
                p.next();
                let inst_name = p.expect_ident()?;
                p.expect_symbol('(')?;
                let mut connections = Vec::new();
                if !p.eat_symbol(')') {
                    loop {
                        p.expect_symbol('.')?;
                        let port = p.expect_ident()?;
                        // port may itself have an index suffix like .D[3] — not
                        // legal Verilog but seen in some netlists; handled by
                        // parse_net_expr style indexing of the port name.
                        let port = if p.peek() == Some(&Token::Symbol('[')) {
                            p.next();
                            let i = p.parse_int()?;
                            p.expect_symbol(']')?;
                            format!("{port}[{i}]")
                        } else {
                            port
                        };
                        p.expect_symbol('(')?;
                        let nets = if p.peek() == Some(&Token::Symbol(')')) {
                            Vec::new() // unconnected pin: .X()
                        } else {
                            p.parse_net_expr()?
                        };
                        p.expect_symbol(')')?;
                        // expand multi-bit connections into port[i] names
                        if nets.len() <= 1 {
                            connections
                                .push((port.clone(), nets.first().cloned().unwrap_or_default()));
                        } else {
                            for (i, n) in nets.iter().enumerate() {
                                let bit = nets.len() - 1 - i;
                                connections.push((format!("{port}[{bit}]"), n.clone()));
                            }
                        }
                        if !p.eat_symbol(',') {
                            break;
                        }
                    }
                    p.expect_symbol(')')?;
                }
                p.expect_symbol(';')?;
                module.instances.push(Instance { cell, name: inst_name, connections });
            }
            _ => {
                p.next();
            }
        }
    }
    Ok(module)
}

/// Options controlling how cells are classified during elaboration.
#[derive(Debug, Clone)]
pub struct ElaborateOptions {
    /// Library-cell name prefixes classified as sequential cells.
    pub flop_prefixes: Vec<String>,
    /// Library used to resolve macro footprints; leaf instances whose cell is
    /// a `BLOCK` entry become macros.
    pub library: Library,
}

impl Default for ElaborateOptions {
    fn default() -> Self {
        Self {
            flop_prefixes: vec!["DFF".into(), "SDFF".into(), "FD".into(), "dff".into()],
            library: Library::new(),
        }
    }
}

/// Parses structural Verilog text and flattens it into a [`Design`].
///
/// `top` selects the top module; pass `None` to use the unique module that is
/// never instantiated by another one.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input, unknown top module, or if the
/// top module cannot be inferred.
pub fn parse_verilog(
    text: &str,
    top: Option<&str>,
    opts: &ElaborateOptions,
) -> Result<Design, ParseError> {
    let modules = parse_modules(text)?;
    if modules.is_empty() {
        return Err(ParseError::new("no modules found"));
    }
    let top_name = match top {
        Some(t) => {
            if !modules.contains_key(t) {
                return Err(ParseError::new(format!("top module '{t}' not found")));
            }
            t.to_string()
        }
        None => infer_top(&modules)?,
    };
    let mut builder = DesignBuilder::new(top_name.clone());
    // top-level ports
    let top_module = &modules[&top_name];
    for (pname, dir, range) in &top_module.ports {
        match range {
            Some((msb, lsb)) => {
                let (hi, lo) = ((*msb).max(*lsb), (*msb).min(*lsb));
                for i in lo..=hi {
                    builder.add_port(format!("{pname}[{i}]"), *dir);
                }
            }
            None => {
                builder.add_port(pname.clone(), *dir);
            }
        }
    }
    let mut ctx = Flattener { modules: &modules, opts, builder };
    ctx.flatten(&top_name, "", &HashMap::new())?;
    let mut design = ctx.builder.build();
    design.bind_library(&opts.library);
    connect_top_ports(&mut design);
    Ok(design)
}

/// After flattening, nets named exactly like a top-level port are attached to it.
fn connect_top_ports(design: &mut Design) {
    let pairs: Vec<(crate::design::PortId, crate::design::NetId, PortDirection)> = design
        .ports()
        .filter_map(|(pid, port)| design.find_net(&port.name).map(|nid| (pid, nid, port.direction)))
        .collect();
    for (pid, nid, dir) in pairs {
        // fix up both directions of the association
        {
            let port = design.port_mut(pid);
            port.net = Some(nid);
        }
        let net = design.net_mut(nid);
        match dir {
            PortDirection::Input => net.driver_port = Some(pid),
            _ => {
                if !net.sink_ports.contains(&pid) {
                    net.sink_ports.push(pid);
                }
            }
        }
    }
}

fn infer_top(modules: &HashMap<String, Module>) -> Result<String, ParseError> {
    let mut instantiated: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for m in modules.values() {
        for inst in &m.instances {
            instantiated.insert(inst.cell.as_str());
        }
    }
    let candidates: Vec<&String> =
        modules.keys().filter(|k| !instantiated.contains(k.as_str())).collect();
    match candidates.len() {
        1 => Ok(candidates[0].clone()),
        0 => Err(ParseError::new("could not infer top module (cyclic instantiation?)")),
        _ => Err(ParseError::new(format!(
            "multiple top candidates: {}; pass one explicitly",
            candidates.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
        ))),
    }
}

struct Flattener<'a> {
    modules: &'a HashMap<String, Module>,
    opts: &'a ElaborateOptions,
    builder: DesignBuilder,
}

impl<'a> Flattener<'a> {
    /// Recursively instantiates `module_name` under hierarchical prefix `path`.
    /// `port_map` maps the module's local net names to global net names.
    fn flatten(
        &mut self,
        module_name: &str,
        path: &str,
        port_map: &HashMap<String, String>,
    ) -> Result<(), ParseError> {
        let module = self.modules.get(module_name).expect("checked by caller");
        for inst in &module.instances {
            let inst_path =
                if path.is_empty() { inst.name.clone() } else { format!("{path}/{}", inst.name) };
            if let Some(child) = self.modules.get(&inst.cell) {
                // hierarchical instance: build a port map for the child
                let mut child_map: HashMap<String, String> = HashMap::new();
                for (port, net) in &inst.connections {
                    if net.is_empty() {
                        continue;
                    }
                    // When a vectored child port is connected to a bare bus
                    // name, expand the connection bit by bit so nested levels
                    // resolve individual bits consistently.
                    let child_range =
                        child.ports.iter().find(|(n, _, _)| n == port).and_then(|(_, _, r)| *r);
                    if let (Some((msb, lsb)), false) = (child_range, net.contains('[')) {
                        let (hi, lo) = (msb.max(lsb), msb.min(lsb));
                        for i in lo..=hi {
                            let global = self.resolve_net(path, port_map, &format!("{net}[{i}]"));
                            child_map.insert(format!("{port}[{i}]"), global);
                        }
                        continue;
                    }
                    let global = self.resolve_net(path, port_map, net);
                    child_map.insert(port.clone(), global);
                }
                self.flatten(&inst.cell, &inst_path, &child_map)?;
            } else {
                // leaf cell
                let kind = self.classify(&inst.cell);
                let (w, h) = match self.opts.library.find_macro(&inst.cell) {
                    Some(m) => (m.width, m.height),
                    None => (1, 1),
                };
                let cell_id =
                    self.builder.add_cell(inst_path.clone(), inst.cell.clone(), kind, w, h, path);
                for (port, net) in &inst.connections {
                    if net.is_empty() {
                        continue;
                    }
                    let global = self.resolve_net(path, port_map, net);
                    let net_id = self.builder.add_net(global);
                    if is_output_pin(port) {
                        self.builder.connect_driver(net_id, cell_id);
                    } else {
                        self.builder.connect_sink(net_id, cell_id);
                    }
                }
            }
        }
        Ok(())
    }

    fn classify(&self, cell: &str) -> CellKind {
        if let Some(m) = self.opts.library.find_macro(cell) {
            if m.is_block {
                return CellKind::Macro;
            }
        }
        if self.opts.flop_prefixes.iter().any(|p| cell.starts_with(p.as_str())) {
            CellKind::Flop
        } else {
            CellKind::Comb
        }
    }

    /// Maps a local net name to a global one: through the port map if the net
    /// is a port of the enclosing module, otherwise by prefixing the path.
    fn resolve_net(&self, path: &str, port_map: &HashMap<String, String>, net: &str) -> String {
        if let Some(global) = port_map.get(net) {
            return global.clone();
        }
        if net.starts_with("__const_") {
            return net.to_string();
        }
        if path.is_empty() {
            net.to_string()
        } else {
            format!("{path}/{net}")
        }
    }
}

/// Heuristic classification of a pin name as an output.
fn is_output_pin(pin: &str) -> bool {
    let base = pin.split('[').next().unwrap_or(pin);
    if matches!(
        base,
        "Q" | "QN"
            | "Z"
            | "ZN"
            | "Y"
            | "O"
            | "OUT"
            | "out"
            | "q"
            | "DOUT"
            | "RDATA"
            | "dout"
            | "rdata"
    ) {
        return true;
    }
    // numbered variants such as Q0, Z12, OUT3 (used by netlist writers that
    // enumerate output pins)
    for prefix in ["Q", "Z", "OUT", "DOUT"] {
        if let Some(rest) = base.strip_prefix(prefix) {
            if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::MacroDef;

    const SIMPLE: &str = r#"
// simple two-level netlist
module sub (input [1:0] a, output y);
  wire n1;
  AND2 g1 (.A(a[0]), .B(a[1]), .Y(n1));
  DFFX1 r1 (.D(n1), .CK(clk), .Q(y));
endmodule

module top (input [1:0] in_bus, input clk, output o);
  wire [1:0] w;
  BUF b0 (.A(in_bus[0]), .Y(w[0]));
  BUF b1 (.A(in_bus[1]), .Y(w[1]));
  sub u_sub (.a(w), .y(o));
  RAM16 u_ram (.D(w[0]), .Q(o));
endmodule
"#;

    fn opts_with_ram() -> ElaborateOptions {
        let mut opts = ElaborateOptions::default();
        opts.library.add_macro(MacroDef {
            name: "RAM16".into(),
            width: 500,
            height: 300,
            is_block: true,
            pins: vec![],
        });
        opts
    }

    #[test]
    fn parses_and_flattens_hierarchy() {
        let d = parse_verilog(SIMPLE, Some("top"), &opts_with_ram()).unwrap();
        assert_eq!(d.name(), "top");
        // cells: b0, b1, u_sub/g1, u_sub/r1, u_ram
        assert_eq!(d.num_cells(), 5);
        assert!(d.find_cell("u_sub/g1").is_some());
        assert!(d.find_cell("u_sub/r1").is_some());
        let ram = d.find_cell("u_ram").unwrap();
        assert_eq!(d.cell(ram).kind, CellKind::Macro);
        assert_eq!(d.cell(ram).width, 500);
        let r1 = d.find_cell("u_sub/r1").unwrap();
        assert_eq!(d.cell(r1).kind, CellKind::Flop);
        assert_eq!(d.cell(r1).hier_path, "u_sub");
    }

    #[test]
    fn top_module_inference() {
        let d = parse_verilog(SIMPLE, None, &opts_with_ram()).unwrap();
        assert_eq!(d.name(), "top");
    }

    #[test]
    fn port_connection_maps_through_hierarchy() {
        let d = parse_verilog(SIMPLE, Some("top"), &opts_with_ram()).unwrap();
        // the net w[0] drives both u_sub/g1 (through port a[0]) and u_ram
        let n = d.find_net("w[0]").expect("net w[0] exists");
        let net = d.net(n);
        assert!(net.sink_cells.len() >= 2, "expected at least 2 sinks, got {:?}", net);
    }

    #[test]
    fn primary_ports_created() {
        let d = parse_verilog(SIMPLE, Some("top"), &opts_with_ram()).unwrap();
        assert!(d.find_port("in_bus[0]").is_some());
        assert!(d.find_port("in_bus[1]").is_some());
        assert!(d.find_port("clk").is_some());
        assert!(d.find_port("o").is_some());
    }

    #[test]
    fn comments_and_escaped_identifiers() {
        let src = r#"
module top (input a, output z);
  /* block comment
     spanning lines */
  wire \escaped$name ;
  BUF u1 (.A(a), .Y(\escaped$name ));
  BUF u2 (.A(\escaped$name ), .Y(z));
endmodule
"#;
        let d = parse_verilog(src, Some("top"), &ElaborateOptions::default()).unwrap();
        assert_eq!(d.num_cells(), 2);
        assert!(d.find_net("escaped$name").is_some());
    }

    #[test]
    fn error_on_unknown_top() {
        let err = parse_verilog(SIMPLE, Some("nope"), &ElaborateOptions::default()).unwrap_err();
        assert!(err.message.contains("not found"));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_verilog("module ; garbage", None, &ElaborateOptions::default()).is_err());
    }

    #[test]
    fn concatenation_and_unconnected_pins() {
        let src = r#"
module top (input [1:0] a, output z);
  MYCELL u1 (.D({a[1], a[0]}), .E(), .Y(z));
endmodule
"#;
        let d = parse_verilog(src, Some("top"), &ElaborateOptions::default()).unwrap();
        let c = d.find_cell("u1").unwrap();
        assert_eq!(d.cell(c).fanin.len(), 2);
        assert_eq!(d.cell(c).fanout.len(), 1);
    }
}
