//! Structural (gate-level) Verilog parser.
//!
//! The parser supports the subset of Verilog that gate-level hierarchical
//! netlists use in practice:
//!
//! * `module` / `endmodule` with a port list,
//! * `input` / `output` / `inout` declarations, scalar or vectored (`[7:0]`),
//! * `wire` declarations, scalar or vectored,
//! * module / cell instantiations with named port connections
//!   (`CELL inst (.A(n1), .B(bus[3]), ...);`),
//! * `// line` and `/* block */` comments.
//!
//! Behavioural constructs (`always`, `assign` with expressions, parameters)
//! are *not* supported — the input is expected to be a synthesized netlist.
//!
//! The design is produced by flattening the module hierarchy starting at a
//! chosen top module; the instance path of every cell is recorded so the
//! hierarchy tree can be rebuilt (this is exactly the RTL-stage hierarchy
//! information the paper exploits).
//!
//! The parser is *streaming*: tokens are borrowed slices of the source text
//! produced one at a time by a cursor — never a materialized token vector,
//! which costs gigabytes at a million cells — and the module table and the
//! flattener's per-instance port maps are compact sorted structures rather
//! than `HashMap`s.

use crate::design::{CellKind, Design, DesignBuilder, PortDirection};
use crate::error::ParseError;
use crate::library::Library;
use crate::names::NameTable;

/// A port declaration: name, direction, optional (msb, lsb) range.
type PortDecl = (String, PortDirection, Option<(i64, i64)>);

/// A parsed (unflattened) Verilog module.
#[derive(Debug, Clone, Default)]
struct Module {
    name: String,
    /// port name -> (direction, msb, lsb) ; scalar ports have msb == lsb == None
    ports: Vec<PortDecl>,
    instances: Vec<Instance>,
}

#[derive(Debug, Clone)]
struct Instance {
    cell: String,
    name: String,
    /// (port, net expression) pairs
    connections: Vec<(String, String)>,
}

/// Tokenizer output. Tokens borrow from the source text — no allocation per
/// token.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Token<'a> {
    Ident(&'a str),
    Symbol(char),
    Number(&'a str),
}

/// Streaming tokenizer: a cursor over the source text producing one token per
/// call.
struct Lexer<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Self { text, pos: 0, line: 1 }
    }

    fn next_token(&mut self) -> Result<Option<(usize, Token<'a>)>, ParseError> {
        loop {
            let rest = &self.text[self.pos..];
            let Some(c) = rest.chars().next() else { return Ok(None) };
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => {
                    self.pos += c.len_utf8();
                }
                '/' => match rest[1..].chars().next() {
                    Some('/') => match rest.find('\n') {
                        Some(n) => {
                            self.line += 1;
                            self.pos += n + 1;
                        }
                        None => self.pos = self.text.len(),
                    },
                    Some('*') => {
                        let body = &rest[2..];
                        match body.find("*/") {
                            Some(n) => {
                                self.line += body[..n].matches('\n').count();
                                self.pos += 2 + n + 2;
                            }
                            None => {
                                self.line += body.matches('\n').count();
                                self.pos = self.text.len();
                            }
                        }
                    }
                    _ => {
                        self.pos += 1;
                        return Ok(Some((self.line, Token::Symbol('/'))));
                    }
                },
                '\\' => {
                    // escaped identifier: `\name with specials ` terminated by whitespace
                    let start = self.pos + 1;
                    let end = self.text[start..]
                        .find(char::is_whitespace)
                        .map_or(self.text.len(), |n| start + n);
                    self.pos = end;
                    return Ok(Some((self.line, Token::Ident(&self.text[start..end]))));
                }
                c if c.is_alphabetic() || c == '_' => {
                    let start = self.pos;
                    let end = rest
                        .find(|c2: char| !(c2.is_alphanumeric() || c2 == '_' || c2 == '$'))
                        .map_or(self.text.len(), |n| start + n);
                    self.pos = end;
                    return Ok(Some((self.line, Token::Ident(&self.text[start..end]))));
                }
                c if c.is_ascii_digit() => {
                    let start = self.pos;
                    let end = rest
                        .find(|c2: char| !(c2.is_alphanumeric() || c2 == '\'' || c2 == '_'))
                        .map_or(self.text.len(), |n| start + n);
                    self.pos = end;
                    return Ok(Some((self.line, Token::Number(&self.text[start..end]))));
                }
                '(' | ')' | '[' | ']' | '{' | '}' | ',' | ';' | ':' | '.' | '=' | '-' | '+' => {
                    self.pos += 1;
                    return Ok(Some((self.line, Token::Symbol(c))));
                }
                other => {
                    return Err(ParseError::at_line(
                        self.line,
                        format!("unexpected character '{other}'"),
                    ));
                }
            }
        }
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    peeked: Option<(usize, Token<'a>)>,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self { lexer: Lexer::new(text), peeked: None, line: 1 }
    }

    fn peek(&mut self) -> Result<Option<Token<'a>>, ParseError> {
        if self.peeked.is_none() {
            self.peeked = self.lexer.next_token()?;
        }
        Ok(self.peeked.map(|(_, t)| t))
    }

    fn line(&self) -> usize {
        self.peeked.map(|(l, _)| l).unwrap_or(self.line)
    }

    fn next(&mut self) -> Result<Option<Token<'a>>, ParseError> {
        self.peek()?;
        Ok(self.peeked.take().map(|(l, t)| {
            self.line = l;
            t
        }))
    }

    fn expect_symbol(&mut self, c: char) -> Result<(), ParseError> {
        match self.next()? {
            Some(Token::Symbol(s)) if s == c => Ok(()),
            other => {
                Err(ParseError::at_line(self.line(), format!("expected '{c}', found {other:?}")))
            }
        }
    }

    fn expect_ident(&mut self) -> Result<&'a str, ParseError> {
        match self.next()? {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::at_line(
                self.line(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn eat_symbol(&mut self, c: char) -> Result<bool, ParseError> {
        if self.peek()? == Some(Token::Symbol(c)) {
            self.next()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Parses `[msb:lsb]` if present.
    fn parse_range(&mut self) -> Result<Option<(i64, i64)>, ParseError> {
        if !self.eat_symbol('[')? {
            return Ok(None);
        }
        let msb = self.parse_int()?;
        self.expect_symbol(':')?;
        let lsb = self.parse_int()?;
        self.expect_symbol(']')?;
        Ok(Some((msb, lsb)))
    }

    fn parse_int(&mut self) -> Result<i64, ParseError> {
        let mut negative = false;
        if self.eat_symbol('-')? {
            negative = true;
        }
        match self.next()? {
            Some(Token::Number(n)) => {
                let v: i64 = n.parse().map_err(|_| {
                    ParseError::at_line(self.line(), format!("invalid integer '{n}'"))
                })?;
                Ok(if negative { -v } else { v })
            }
            other => {
                Err(ParseError::at_line(self.line(), format!("expected integer, found {other:?}")))
            }
        }
    }

    /// Parses a net expression: `name`, `name[3]`, `name[7:4]`, or a
    /// concatenation `{a, b[3], ...}`. Returns the list of bit-level net names.
    fn parse_net_expr(&mut self) -> Result<Vec<String>, ParseError> {
        if self.eat_symbol('{')? {
            let mut nets = Vec::new();
            loop {
                nets.extend(self.parse_net_expr()?);
                if !self.eat_symbol(',')? {
                    break;
                }
            }
            self.expect_symbol('}')?;
            return Ok(nets);
        }
        match self.next()? {
            Some(Token::Ident(base)) => {
                if self.eat_symbol('[')? {
                    let a = self.parse_int()?;
                    if self.eat_symbol(':')? {
                        let b = self.parse_int()?;
                        self.expect_symbol(']')?;
                        // bits are listed in source order, i.e. from `a` to `b`
                        let v: Vec<String> = if a >= b {
                            (b..=a).rev().map(|i| format!("{base}[{i}]")).collect()
                        } else {
                            (a..=b).map(|i| format!("{base}[{i}]")).collect()
                        };
                        Ok(v)
                    } else {
                        self.expect_symbol(']')?;
                        Ok(vec![format!("{base}[{a}]")])
                    }
                } else {
                    Ok(vec![base.to_string()])
                }
            }
            Some(Token::Number(n)) => {
                // constant like 1'b0 — treat as an anonymous tie net
                Ok(vec![format!("__const_{n}")])
            }
            other => Err(ParseError::at_line(
                self.line(),
                format!("expected net expression, found {other:?}"),
            )),
        }
    }
}

/// The module table: definition-ordered modules with a compact name index.
#[derive(Default)]
struct ModuleTable {
    modules: Vec<Module>,
    index: NameTable,
}

impl ModuleTable {
    fn find(&self, name: &str) -> Option<&Module> {
        self.index
            .find(NameTable::hash_name(name), |id| self.modules[id as usize].name == name)
            .map(|id| &self.modules[id as usize])
    }

    fn insert(&mut self, m: Module) {
        let hash = NameTable::hash_name(&m.name);
        match self.index.find(hash, |id| self.modules[id as usize].name == m.name) {
            // a redefinition overwrites the earlier one, like map insertion did
            Some(id) => self.modules[id as usize] = m,
            None => {
                let id = self.modules.len() as u32;
                self.index.insert(hash, id);
                self.modules.push(m);
            }
        }
    }
}

/// Parses Verilog source text into the module table.
fn parse_modules(text: &str) -> Result<ModuleTable, ParseError> {
    let mut p = Parser::new(text);
    let mut table = ModuleTable::default();
    while let Some(tok) = p.peek()? {
        match tok {
            Token::Ident("module") => {
                p.next()?;
                let m = parse_module(&mut p)?;
                table.insert(m);
            }
            _ => {
                p.next()?;
            }
        }
    }
    Ok(table)
}

fn parse_module(p: &mut Parser<'_>) -> Result<Module, ParseError> {
    let name = p.expect_ident()?.to_string();
    let mut module = Module { name, ..Default::default() };
    // Header port list. ANSI-style declarations (`input [1:0] a, output y`)
    // are recorded directly; non-ANSI headers only list names and the
    // directions come from declarations in the body.
    if p.eat_symbol('(')? {
        let mut dir: Option<PortDirection> = None;
        let mut range: Option<(i64, i64)> = None;
        loop {
            if p.eat_symbol(')')? {
                break;
            }
            match p.peek()? {
                Some(Token::Ident(kw @ ("input" | "output" | "inout"))) => {
                    p.next()?;
                    dir = Some(match kw {
                        "input" => PortDirection::Input,
                        "output" => PortDirection::Output,
                        _ => PortDirection::Inout,
                    });
                    if matches!(p.peek()?, Some(Token::Ident("wire" | "reg"))) {
                        p.next()?;
                    }
                    range = p.parse_range()?;
                }
                Some(Token::Ident(pname)) => {
                    p.next()?;
                    if let Some(d) = dir {
                        module.ports.push((pname.to_string(), d, range));
                    }
                }
                _ => {
                    p.next()?;
                }
            }
        }
    }
    p.expect_symbol(';')?;

    loop {
        let tok = p.peek()?.ok_or_else(|| ParseError::new("unexpected end of file in module"))?;
        match tok {
            Token::Ident("endmodule") => {
                p.next()?;
                break;
            }
            Token::Ident(kw @ ("input" | "output" | "inout")) => {
                p.next()?;
                let dir = match kw {
                    "input" => PortDirection::Input,
                    "output" => PortDirection::Output,
                    _ => PortDirection::Inout,
                };
                // optional `wire` keyword
                if p.peek()? == Some(Token::Ident("wire")) {
                    p.next()?;
                }
                let range = p.parse_range()?;
                loop {
                    let pname = p.expect_ident()?;
                    module.ports.push((pname.to_string(), dir, range));
                    if !p.eat_symbol(',')? {
                        break;
                    }
                }
                p.expect_symbol(';')?;
            }
            Token::Ident("wire" | "tri") => {
                p.next()?;
                let _range = p.parse_range()?;
                loop {
                    p.expect_ident()?;
                    if !p.eat_symbol(',')? {
                        break;
                    }
                }
                p.expect_symbol(';')?;
            }
            Token::Ident("assign" | "parameter" | "supply0" | "supply1") => {
                // skip to semicolon
                p.next()?;
                while let Some(t) = p.next()? {
                    if t == Token::Symbol(';') {
                        break;
                    }
                }
            }
            Token::Ident(cell) => {
                p.next()?;
                let inst_name = p.expect_ident()?.to_string();
                p.expect_symbol('(')?;
                let mut connections = Vec::new();
                if !p.eat_symbol(')')? {
                    loop {
                        p.expect_symbol('.')?;
                        let port = p.expect_ident()?;
                        // port may itself have an index suffix like .D[3] — not
                        // legal Verilog but seen in some netlists; handled by
                        // parse_net_expr style indexing of the port name.
                        let port = if p.peek()? == Some(Token::Symbol('[')) {
                            p.next()?;
                            let i = p.parse_int()?;
                            p.expect_symbol(']')?;
                            format!("{port}[{i}]")
                        } else {
                            port.to_string()
                        };
                        p.expect_symbol('(')?;
                        let nets = if p.peek()? == Some(Token::Symbol(')')) {
                            Vec::new() // unconnected pin: .X()
                        } else {
                            p.parse_net_expr()?
                        };
                        p.expect_symbol(')')?;
                        // expand multi-bit connections into port[i] names
                        if nets.len() <= 1 {
                            connections
                                .push((port.clone(), nets.first().cloned().unwrap_or_default()));
                        } else {
                            for (i, n) in nets.iter().enumerate() {
                                let bit = nets.len() - 1 - i;
                                connections.push((format!("{port}[{bit}]"), n.clone()));
                            }
                        }
                        if !p.eat_symbol(',')? {
                            break;
                        }
                    }
                    p.expect_symbol(')')?;
                }
                p.expect_symbol(';')?;
                module.instances.push(Instance {
                    cell: cell.to_string(),
                    name: inst_name,
                    connections,
                });
            }
            _ => {
                p.next()?;
            }
        }
    }
    Ok(module)
}

/// Options controlling how cells are classified during elaboration.
#[derive(Debug, Clone)]
// lint:allow(heap-size): parser configuration, not a cached artifact
pub struct ElaborateOptions {
    /// Library-cell name prefixes classified as sequential cells.
    pub flop_prefixes: Vec<String>,
    /// Library used to resolve macro footprints; leaf instances whose cell is
    /// a `BLOCK` entry become macros.
    pub library: Library,
}

impl Default for ElaborateOptions {
    fn default() -> Self {
        Self {
            flop_prefixes: vec!["DFF".into(), "SDFF".into(), "FD".into(), "dff".into()],
            library: Library::new(),
        }
    }
}

/// Parses structural Verilog text and flattens it into a [`Design`].
///
/// `top` selects the top module; pass `None` to use the unique module that is
/// never instantiated by another one.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input, unknown top module, or if the
/// top module cannot be inferred.
pub fn parse_verilog(
    text: &str,
    top: Option<&str>,
    opts: &ElaborateOptions,
) -> Result<Design, ParseError> {
    let modules = parse_modules(text)?;
    if modules.modules.is_empty() {
        return Err(ParseError::new("no modules found"));
    }
    let top_name = match top {
        Some(t) => {
            if modules.find(t).is_none() {
                return Err(ParseError::new(format!("top module '{t}' not found")));
            }
            t.to_string()
        }
        None => infer_top(&modules)?,
    };
    let mut builder = DesignBuilder::new(top_name.clone());
    // top-level ports
    let top_module = modules.find(&top_name).expect("resolved above");
    for (pname, dir, range) in &top_module.ports {
        match range {
            Some((msb, lsb)) => {
                let (hi, lo) = ((*msb).max(*lsb), (*msb).min(*lsb));
                for i in lo..=hi {
                    builder.add_port(format!("{pname}[{i}]"), *dir);
                }
            }
            None => {
                builder.add_port(pname.clone(), *dir);
            }
        }
    }
    let mut ctx = Flattener { modules: &modules, opts, builder };
    ctx.flatten(&top_name, "", &PortMap::default())?;
    let mut design = ctx.builder.build();
    design.bind_library(&opts.library);
    connect_top_ports(&mut design);
    Ok(design)
}

/// After flattening, nets named exactly like a top-level port are attached to it.
fn connect_top_ports(design: &mut Design) {
    let pairs: Vec<(crate::design::PortId, crate::design::NetId, PortDirection)> = design
        .ports()
        .filter_map(|(pid, port)| design.find_net(&port.name).map(|nid| (pid, nid, port.direction)))
        .collect();
    for (pid, nid, dir) in pairs {
        // fix up both directions of the association
        {
            let port = design.port_mut(pid);
            port.net = Some(nid);
        }
        let net = design.net_mut(nid);
        match dir {
            PortDirection::Input => net.driver_port = Some(pid),
            _ => {
                if !net.sink_ports.contains(&pid) {
                    net.sink_ports.push(pid);
                }
            }
        }
    }
}

fn infer_top(modules: &ModuleTable) -> Result<String, ParseError> {
    let mut instantiated: Vec<&str> =
        modules.modules.iter().flat_map(|m| m.instances.iter().map(|i| i.cell.as_str())).collect();
    instantiated.sort_unstable();
    instantiated.dedup();
    let candidates: Vec<&str> = modules
        .modules
        .iter()
        .map(|m| m.name.as_str())
        .filter(|k| instantiated.binary_search(k).is_err())
        .collect();
    match candidates.len() {
        1 => Ok(candidates[0].to_string()),
        0 => Err(ParseError::new("could not infer top module (cyclic instantiation?)")),
        _ => Err(ParseError::new(format!(
            "multiple top candidates: {}; pass one explicitly",
            candidates.join(", ")
        ))),
    }
}

/// Sorted (local net → global net) map used while flattening one hierarchical
/// instance; replaces a per-instance `HashMap` with a binary-searched vector.
#[derive(Debug, Default)]
struct PortMap(Vec<(String, String)>);

impl PortMap {
    fn from_entries(mut entries: Vec<(String, String)>) -> Self {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        // keep the *last* binding of a duplicated port, like map insertion did
        let mut map: Vec<(String, String)> = Vec::with_capacity(entries.len());
        for e in entries {
            match map.last_mut() {
                Some(last) if last.0 == e.0 => *last = e,
                _ => map.push(e),
            }
        }
        Self(map)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.binary_search_by(|(k, _)| k.as_str().cmp(key)).ok().map(|i| self.0[i].1.as_str())
    }
}

struct Flattener<'a> {
    modules: &'a ModuleTable,
    opts: &'a ElaborateOptions,
    builder: DesignBuilder,
}

impl<'a> Flattener<'a> {
    /// Recursively instantiates `module_name` under hierarchical prefix `path`.
    /// `port_map` maps the module's local net names to global net names.
    fn flatten(
        &mut self,
        module_name: &str,
        path: &str,
        port_map: &PortMap,
    ) -> Result<(), ParseError> {
        let module = self.modules.find(module_name).expect("checked by caller");
        for inst in &module.instances {
            let inst_path =
                if path.is_empty() { inst.name.clone() } else { format!("{path}/{}", inst.name) };
            if let Some(child) = self.modules.find(&inst.cell) {
                // hierarchical instance: build a port map for the child.
                // Child port ranges are looked up through a sorted slice so a
                // wide port list stays O(C log P) rather than O(C·P).
                let mut child_ranges: Vec<(&str, Option<(i64, i64)>)> =
                    child.ports.iter().map(|(n, _, r)| (n.as_str(), *r)).collect();
                child_ranges.sort_by(|a, b| a.0.cmp(b.0)); // stable: first decl of a duplicate wins
                child_ranges.dedup_by(|a, b| a.0 == b.0);
                let mut entries: Vec<(String, String)> = Vec::with_capacity(inst.connections.len());
                for (port, net) in &inst.connections {
                    if net.is_empty() {
                        continue;
                    }
                    // When a vectored child port is connected to a bare bus
                    // name, expand the connection bit by bit so nested levels
                    // resolve individual bits consistently.
                    let child_range = child_ranges
                        .binary_search_by(|(n, _)| (*n).cmp(port.as_str()))
                        .ok()
                        .and_then(|i| child_ranges[i].1);
                    if let (Some((msb, lsb)), false) = (child_range, net.contains('[')) {
                        let (hi, lo) = (msb.max(lsb), msb.min(lsb));
                        for i in lo..=hi {
                            let global = self.resolve_net(path, port_map, &format!("{net}[{i}]"));
                            entries.push((format!("{port}[{i}]"), global));
                        }
                        continue;
                    }
                    let global = self.resolve_net(path, port_map, net);
                    entries.push((port.clone(), global));
                }
                self.flatten(&inst.cell, &inst_path, &PortMap::from_entries(entries))?;
            } else {
                // leaf cell
                let kind = self.classify(&inst.cell);
                let (w, h) = match self.opts.library.find_macro(&inst.cell) {
                    Some(m) => (m.width, m.height),
                    None => (1, 1),
                };
                let cell_id =
                    self.builder.add_cell(inst_path.clone(), inst.cell.clone(), kind, w, h, path);
                for (port, net) in &inst.connections {
                    if net.is_empty() {
                        continue;
                    }
                    let global = self.resolve_net(path, port_map, net);
                    let net_id = self.builder.add_net(global);
                    if is_output_pin(port) {
                        self.builder.connect_driver(net_id, cell_id);
                    } else {
                        self.builder.connect_sink(net_id, cell_id);
                    }
                }
            }
        }
        Ok(())
    }

    fn classify(&self, cell: &str) -> CellKind {
        if let Some(m) = self.opts.library.find_macro(cell) {
            if m.is_block {
                return CellKind::Macro;
            }
        }
        if self.opts.flop_prefixes.iter().any(|p| cell.starts_with(p.as_str())) {
            CellKind::Flop
        } else {
            CellKind::Comb
        }
    }

    /// Maps a local net name to a global one: through the port map if the net
    /// is a port of the enclosing module, otherwise by prefixing the path.
    fn resolve_net(&self, path: &str, port_map: &PortMap, net: &str) -> String {
        if let Some(global) = port_map.get(net) {
            return global.to_string();
        }
        if net.starts_with("__const_") {
            return net.to_string();
        }
        if path.is_empty() {
            net.to_string()
        } else {
            format!("{path}/{net}")
        }
    }
}

/// Heuristic classification of a pin name as an output.
fn is_output_pin(pin: &str) -> bool {
    let base = pin.split('[').next().unwrap_or(pin);
    if matches!(
        base,
        "Q" | "QN"
            | "Z"
            | "ZN"
            | "Y"
            | "O"
            | "OUT"
            | "out"
            | "q"
            | "DOUT"
            | "RDATA"
            | "dout"
            | "rdata"
    ) {
        return true;
    }
    // numbered variants such as Q0, Z12, OUT3 (used by netlist writers that
    // enumerate output pins)
    for prefix in ["Q", "Z", "OUT", "DOUT"] {
        if let Some(rest) = base.strip_prefix(prefix) {
            if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::MacroDef;

    const SIMPLE: &str = r#"
// simple two-level netlist
module sub (input [1:0] a, output y);
  wire n1;
  AND2 g1 (.A(a[0]), .B(a[1]), .Y(n1));
  DFFX1 r1 (.D(n1), .CK(clk), .Q(y));
endmodule

module top (input [1:0] in_bus, input clk, output o);
  wire [1:0] w;
  BUF b0 (.A(in_bus[0]), .Y(w[0]));
  BUF b1 (.A(in_bus[1]), .Y(w[1]));
  sub u_sub (.a(w), .y(o));
  RAM16 u_ram (.D(w[0]), .Q(o));
endmodule
"#;

    fn opts_with_ram() -> ElaborateOptions {
        let mut opts = ElaborateOptions::default();
        opts.library.add_macro(MacroDef {
            name: "RAM16".into(),
            width: 500,
            height: 300,
            is_block: true,
            pins: vec![],
        });
        opts
    }

    #[test]
    fn parses_and_flattens_hierarchy() {
        let d = parse_verilog(SIMPLE, Some("top"), &opts_with_ram()).unwrap();
        assert_eq!(d.name(), "top");
        // cells: b0, b1, u_sub/g1, u_sub/r1, u_ram
        assert_eq!(d.num_cells(), 5);
        assert!(d.find_cell("u_sub/g1").is_some());
        assert!(d.find_cell("u_sub/r1").is_some());
        let ram = d.find_cell("u_ram").unwrap();
        assert_eq!(d.cell(ram).kind, CellKind::Macro);
        assert_eq!(d.cell(ram).width, 500);
        let r1 = d.find_cell("u_sub/r1").unwrap();
        assert_eq!(d.cell(r1).kind, CellKind::Flop);
        assert_eq!(d.cell(r1).hier_path, "u_sub");
    }

    #[test]
    fn top_module_inference() {
        let d = parse_verilog(SIMPLE, None, &opts_with_ram()).unwrap();
        assert_eq!(d.name(), "top");
    }

    #[test]
    fn port_connection_maps_through_hierarchy() {
        let d = parse_verilog(SIMPLE, Some("top"), &opts_with_ram()).unwrap();
        // the net w[0] drives both u_sub/g1 (through port a[0]) and u_ram
        let n = d.find_net("w[0]").expect("net w[0] exists");
        let net = d.net(n);
        assert!(net.sink_cells.len() >= 2, "expected at least 2 sinks, got {:?}", net);
    }

    #[test]
    fn primary_ports_created() {
        let d = parse_verilog(SIMPLE, Some("top"), &opts_with_ram()).unwrap();
        assert!(d.find_port("in_bus[0]").is_some());
        assert!(d.find_port("in_bus[1]").is_some());
        assert!(d.find_port("clk").is_some());
        assert!(d.find_port("o").is_some());
    }

    #[test]
    fn comments_and_escaped_identifiers() {
        let src = r#"
module top (input a, output z);
  /* block comment
     spanning lines */
  wire \escaped$name ;
  BUF u1 (.A(a), .Y(\escaped$name ));
  BUF u2 (.A(\escaped$name ), .Y(z));
endmodule
"#;
        let d = parse_verilog(src, Some("top"), &ElaborateOptions::default()).unwrap();
        assert_eq!(d.num_cells(), 2);
        assert!(d.find_net("escaped$name").is_some());
    }

    #[test]
    fn error_on_unknown_top() {
        let err = parse_verilog(SIMPLE, Some("nope"), &ElaborateOptions::default()).unwrap_err();
        assert!(err.message.contains("not found"));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_verilog("module ; garbage", None, &ElaborateOptions::default()).is_err());
    }

    #[test]
    fn concatenation_and_unconnected_pins() {
        let src = r#"
module top (input [1:0] a, output z);
  MYCELL u1 (.D({a[1], a[0]}), .E(), .Y(z));
endmodule
"#;
        let d = parse_verilog(src, Some("top"), &ElaborateOptions::default()).unwrap();
        let c = d.find_cell("u1").unwrap();
        assert_eq!(d.cell(c).fanin.len(), 2);
        assert_eq!(d.cell(c).fanout.len(), 1);
    }

    #[test]
    fn module_redefinition_last_wins() {
        let src = r#"
module sub (input a, output y);
  BUF g0 (.A(a), .Y(y));
endmodule
module sub (input a, output y);
  INV g0 (.A(a), .Y(y));
  INV g1 (.A(y), .Y(y));
endmodule
module top (input a, output z);
  sub u (.a(a), .y(z));
endmodule
"#;
        let d = parse_verilog(src, Some("top"), &ElaborateOptions::default()).unwrap();
        assert_eq!(d.num_cells(), 2);
        assert_eq!(d.cell(d.find_cell("u/g0").unwrap()).lib_cell, "INV");
    }

    #[test]
    fn duplicate_named_connection_last_wins() {
        // map-insertion semantics of the flattener port map: the last binding
        // of a duplicated port name wins.
        let src = r#"
module sub (input a, output y);
  BUF g (.A(a), .Y(y));
endmodule
module top (input p, input q, output z);
  sub u (.a(p), .a(q), .y(z));
endmodule
"#;
        let d = parse_verilog(src, Some("top"), &ElaborateOptions::default()).unwrap();
        let g = d.find_cell("u/g").unwrap();
        let fanin_net = d.cell(g).fanin[0];
        assert_eq!(d.net(fanin_net).name, "q");
    }
}
