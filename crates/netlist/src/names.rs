//! Compact open-addressed name → dense-id index.
//!
//! [`NameTable`] replaces the `HashMap<String, Id>` name indexes that used to
//! duplicate every cell/port/net name `String` inside [`crate::design::Design`]
//! and [`crate::design::DesignBuilder`].  It stores only a 64-bit FNV-1a hash
//! and a `u32` id per slot (two parallel arrays, 12 bytes per slot at ≤ 75%
//! load), and resolves lookups against the canonical name storage through a
//! caller-supplied verification closure — so the names themselves live exactly
//! once, in the `Vec<Cell>`/`Vec<Port>`/`Vec<Net>` stores.  At a million cells
//! this is the difference between ~25 MB and >100 MB of index.

use crate::hash::Fnv1a;

const EMPTY: u32 = u32::MAX;

/// An open-addressed (linear-probe) hash → `u32` id table that never stores
/// the hashed keys.  Collisions on the full 64-bit hash are disambiguated by
/// the verification closure passed to [`NameTable::find`].
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    hashes: Vec<u64>,
    ids: Vec<u32>,
    len: usize,
}

impl NameTable {
    /// An empty table sized for `n` entries without growing.
    pub fn with_capacity(n: usize) -> Self {
        let slots = (n.max(4) * 2).next_power_of_two();
        Self { hashes: vec![0; slots], ids: vec![EMPTY; slots], len: 0 }
    }

    /// The FNV-1a hash every table entry is keyed by.
    #[inline]
    pub fn hash_name(name: &str) -> u64 {
        let mut h = Fnv1a::new();
        h.write_bytes(name.as_bytes());
        h.finish()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `id` under `hash`.  The caller is responsible for not inserting
    /// the same name twice (look it up first); duplicate *hashes* are fine and
    /// resolved at lookup time.
    pub fn insert(&mut self, hash: u64, id: u32) {
        debug_assert_ne!(id, EMPTY, "u32::MAX is the empty-slot sentinel");
        if self.hashes.is_empty() || (self.len + 1) * 4 > self.hashes.len() * 3 {
            self.grow();
        }
        let mask = self.hashes.len() - 1;
        let mut slot = (hash as usize) & mask;
        while self.ids[slot] != EMPTY {
            slot = (slot + 1) & mask;
        }
        self.hashes[slot] = hash;
        self.ids[slot] = id;
        self.len += 1;
    }

    /// Finds the id stored under `hash` for which `verify` confirms the name
    /// match (compare against the canonical name storage).  Probe order is
    /// deterministic, so duplicate names resolve to a stable winner.
    pub fn find(&self, hash: u64, mut verify: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.hashes.is_empty() {
            return None;
        }
        let mask = self.hashes.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let id = self.ids[slot];
            if id == EMPTY {
                return None;
            }
            if self.hashes[slot] == hash && verify(id) {
                return Some(id);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Builds a table from an iterator of names in id order (id = position).
    pub fn build<'a>(names: impl ExactSizeIterator<Item = &'a str>) -> Self {
        let mut table = Self::with_capacity(names.len());
        for (id, name) in names.enumerate() {
            table.insert(Self::hash_name(name), id as u32);
        }
        table
    }

    fn grow(&mut self) {
        let slots = (self.hashes.len() * 2).max(8);
        let mask = slots - 1;
        let mut hashes = vec![0u64; slots];
        let mut ids = vec![EMPTY; slots];
        for (i, &id) in self.ids.iter().enumerate() {
            if id == EMPTY {
                continue;
            }
            let hash = self.hashes[i];
            let mut slot = (hash as usize) & mask;
            while ids[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            hashes[slot] = hash;
            ids[slot] = id;
        }
        self.hashes = hashes;
        self.ids = ids;
    }
}

impl crate::heap_size::HeapSize for NameTable {
    fn heap_bytes(&self) -> usize {
        self.hashes.heap_bytes() + self.ids.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_find_round_trip() {
        let names = ["u_a/ram", "u_b/ram", "clk", "rst_n"];
        let table = NameTable::build(names.iter().copied());
        assert_eq!(table.len(), 4);
        for (i, name) in names.iter().enumerate() {
            let found = table.find(NameTable::hash_name(name), |id| names[id as usize] == *name);
            assert_eq!(found, Some(i as u32), "{name}");
        }
        assert_eq!(table.find(NameTable::hash_name("missing"), |_| true), None);
    }

    #[test]
    fn verification_rejects_hash_collisions() {
        let mut table = NameTable::with_capacity(2);
        // two entries planted under the same hash: only verification can
        // tell them apart
        table.insert(42, 0);
        table.insert(42, 1);
        assert_eq!(table.find(42, |id| id == 1), Some(1));
        assert_eq!(table.find(42, |id| id == 0), Some(0));
        assert_eq!(table.find(42, |_| false), None);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut table = NameTable::default();
        let names: Vec<String> = (0..1000).map(|i| format!("cell_{i}")).collect();
        for (i, name) in names.iter().enumerate() {
            table.insert(NameTable::hash_name(name), i as u32);
        }
        assert_eq!(table.len(), 1000);
        for (i, name) in names.iter().enumerate() {
            let found = table.find(NameTable::hash_name(name), |id| names[id as usize] == *name);
            assert_eq!(found, Some(i as u32));
        }
    }

    #[test]
    fn heap_bytes_counts_both_arrays() {
        use crate::heap_size::HeapSize;
        let table = NameTable::with_capacity(100);
        let slots = table.hashes.len();
        assert_eq!(table.heap_bytes(), slots * 8 + slots * 4);
    }
}
