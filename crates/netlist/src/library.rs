//! Cell library: macro and standard-cell footprints with pin locations.
//!
//! Populated either programmatically (by the workload generator) or by the
//! [`crate::lef`] parser.

use geometry::{Dbu, Point};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A pin of a library macro, with its location in the macro's local frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PinDef {
    /// Pin name (e.g. `D[12]`, `Q`, `CLK`).
    pub name: String,
    /// Location of the pin relative to the macro's lower-left corner.
    pub offset: Point,
}

/// A library cell definition (macro or standard cell).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MacroDef {
    /// Library cell name (e.g. `RAM256x32`).
    pub name: String,
    /// Footprint width in DBU.
    pub width: Dbu,
    /// Footprint height in DBU.
    pub height: Dbu,
    /// `true` for hard macros (LEF `CLASS BLOCK`), `false` for standard cells.
    pub is_block: bool,
    /// Pins of the cell.
    pub pins: Vec<PinDef>,
}

impl MacroDef {
    /// Footprint area in DBU².
    pub fn area(&self) -> i128 {
        self.width as i128 * self.height as i128
    }

    /// Finds a pin by name.
    pub fn find_pin(&self, name: &str) -> Option<&PinDef> {
        self.pins.iter().find(|p| p.name == name)
    }
}

/// A collection of library cells indexed by name.
///
/// # Example
///
/// ```
/// use netlist::library::{Library, MacroDef};
///
/// let mut lib = Library::new();
/// lib.add_macro(MacroDef {
///     name: "RAM64x32".into(),
///     width: 120_000,
///     height: 80_000,
///     is_block: true,
///     pins: Vec::new(),
/// });
/// assert!(lib.find_macro("RAM64x32").is_some());
/// assert_eq!(lib.blocks().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Library {
    macros: Vec<MacroDef>,
    index: HashMap<String, usize>,
}

impl Library {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a cell definition.
    pub fn add_macro(&mut self, def: MacroDef) {
        if let Some(&i) = self.index.get(&def.name) {
            self.macros[i] = def;
        } else {
            self.index.insert(def.name.clone(), self.macros.len());
            self.macros.push(def);
        }
    }

    /// Looks a cell definition up by name.
    pub fn find_macro(&self, name: &str) -> Option<&MacroDef> {
        self.index.get(name).map(|&i| &self.macros[i])
    }

    /// Iterates over every cell definition.
    pub fn iter(&self) -> impl Iterator<Item = &MacroDef> + '_ {
        self.macros.iter()
    }

    /// Iterates over hard-macro definitions only.
    pub fn blocks(&self) -> impl Iterator<Item = &MacroDef> + '_ {
        self.macros.iter().filter(|m| m.is_block)
    }

    /// Number of cell definitions.
    pub fn len(&self) -> usize {
        self.macros.len()
    }

    /// Returns `true` when the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.macros.is_empty()
    }
}

impl Extend<MacroDef> for Library {
    fn extend<T: IntoIterator<Item = MacroDef>>(&mut self, iter: T) {
        for def in iter {
            self.add_macro(def);
        }
    }
}

impl FromIterator<MacroDef> for Library {
    fn from_iter<T: IntoIterator<Item = MacroDef>>(iter: T) -> Self {
        let mut lib = Library::new();
        lib.extend(iter);
        lib
    }
}

impl crate::heap_size::HeapSize for PinDef {
    fn heap_bytes(&self) -> usize {
        self.name.heap_bytes()
    }
}

impl crate::heap_size::HeapSize for MacroDef {
    fn heap_bytes(&self) -> usize {
        self.name.heap_bytes() + self.pins.heap_bytes()
    }
}

impl crate::heap_size::HeapSize for Library {
    fn heap_bytes(&self) -> usize {
        self.macros.heap_bytes() + self.index.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ram() -> MacroDef {
        MacroDef {
            name: "RAM".into(),
            width: 100,
            height: 60,
            is_block: true,
            pins: vec![PinDef { name: "Q[0]".into(), offset: Point::new(0, 10) }],
        }
    }

    #[test]
    fn add_and_find() {
        let mut lib = Library::new();
        lib.add_macro(ram());
        assert_eq!(lib.len(), 1);
        let m = lib.find_macro("RAM").unwrap();
        assert_eq!(m.area(), 6000);
        assert!(m.find_pin("Q[0]").is_some());
        assert!(m.find_pin("Q[1]").is_none());
        assert!(lib.find_macro("ROM").is_none());
    }

    #[test]
    fn replace_keeps_single_entry() {
        let mut lib = Library::new();
        lib.add_macro(ram());
        let mut r2 = ram();
        r2.width = 200;
        lib.add_macro(r2);
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.find_macro("RAM").unwrap().width, 200);
    }

    #[test]
    fn blocks_filters_standard_cells() {
        let mut lib = Library::new();
        lib.add_macro(ram());
        lib.add_macro(MacroDef {
            name: "DFF".into(),
            width: 2,
            height: 1,
            is_block: false,
            pins: vec![],
        });
        assert_eq!(lib.blocks().count(), 1);
        assert_eq!(lib.iter().count(), 2);
    }

    #[test]
    fn from_iterator_collects() {
        let lib: Library = vec![ram()].into_iter().collect();
        assert_eq!(lib.len(), 1);
    }
}
