//! Typed dense maps keyed by the contiguous design ids.
//!
//! Every id family of a [`crate::design::Design`] ([`CellId`], [`NetId`],
//! [`PortId`]) is a dense index `0..n`, so per-element data never needs a
//! hash map: a [`DenseMap`] is a `Vec<T>` with a typed key, giving O(1)
//! branch-free access in the hot loops of placement, wirelength and
//! legalization while keeping the call sites as readable as `map[cell]`.
//!
//! # Example
//!
//! ```
//! use netlist::dense::DenseMap;
//! use netlist::design::CellId;
//!
//! let mut areas: DenseMap<CellId, i64> = DenseMap::with_len(3);
//! areas[CellId(1)] = 42;
//! assert_eq!(areas[CellId(1)], 42);
//! assert_eq!(areas.iter().count(), 3);
//! ```

use crate::design::{CellId, NetId, PortId};
use crate::hierarchy::HierarchyNodeId;
use std::marker::PhantomData;

/// A key type that is a dense index: convertible to and from `usize`.
///
/// Implemented by the design id families ([`CellId`], [`NetId`], [`PortId`])
/// and by [`HierarchyNodeId`]; downstream crates may implement it for their
/// own contiguous ids (the sequential-graph node id, for instance).
pub trait DenseId: Copy {
    /// The dense index of the id.
    fn index(self) -> usize;
    /// Builds the id back from a dense index.
    fn from_index(index: usize) -> Self;
}

macro_rules! impl_dense_id {
    ($($ty:ty),*) => {$(
        impl DenseId for $ty {
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
            #[inline]
            fn from_index(index: usize) -> Self {
                Self(index as u32)
            }
        }
    )*};
}

impl_dense_id!(CellId, NetId, PortId, HierarchyNodeId);

/// A dense, typed map from an id family to values: `Vec<T>` storage with a
/// strongly-typed key, the workhorse container of the dense data plane.
///
/// Unlike a `HashMap`, every key in `0..len` has a slot; use `Option<T>`
/// values for partial maps (e.g. "only macros carry a footprint").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseMap<I, T> {
    data: Vec<T>,
    _key: PhantomData<fn(I)>,
}

impl<I, T> Default for DenseMap<I, T> {
    fn default() -> Self {
        Self { data: Vec::new(), _key: PhantomData }
    }
}

impl<I: DenseId, T> DenseMap<I, T> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// A map of `len` default-initialized slots.
    pub fn with_len(len: usize) -> Self
    where
        T: Default + Clone,
    {
        Self { data: vec![T::default(); len], _key: PhantomData }
    }

    /// A map of `len` copies of `value`.
    pub fn filled(len: usize, value: T) -> Self
    where
        T: Clone,
    {
        Self { data: vec![value; len], _key: PhantomData }
    }

    /// Builds a map by evaluating `f` for every index in `0..len`.
    pub fn from_fn(len: usize, mut f: impl FnMut(I) -> T) -> Self {
        Self { data: (0..len).map(|i| f(I::from_index(i))).collect(), _key: PhantomData }
    }

    /// Wraps an existing vector (index `i` becomes key `I::from_index(i)`).
    pub fn from_vec(data: Vec<T>) -> Self {
        Self { data, _key: PhantomData }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the map has no slots.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The value for `key`, or `None` when the key is out of range.
    #[inline]
    pub fn get(&self, key: I) -> Option<&T> {
        self.data.get(key.index())
    }

    /// Mutable access to the value for `key` (out-of-range keys give `None`).
    #[inline]
    pub fn get_mut(&mut self, key: I) -> Option<&mut T> {
        self.data.get_mut(key.index())
    }

    /// Sets the value for `key`, growing the map with defaults as needed.
    pub fn insert(&mut self, key: I, value: T)
    where
        T: Default + Clone,
    {
        let i = key.index();
        if i >= self.data.len() {
            self.data.resize(i + 1, T::default());
        }
        self.data[i] = value;
    }

    /// Iterates over `(key, &value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> + '_ {
        self.data.iter().enumerate().map(|(i, v)| (I::from_index(i), v))
    }

    /// Iterates over `(key, &mut value)` pairs in key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (I, &mut T)> + '_ {
        self.data.iter_mut().enumerate().map(|(i, v)| (I::from_index(i), v))
    }

    /// Iterates over the values in key order.
    pub fn values(&self) -> impl Iterator<Item = &T> + '_ {
        self.data.iter()
    }

    /// The raw value slice (index `i` is key `I::from_index(i)`).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The raw mutable value slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<I: DenseId, T> std::ops::Index<I> for DenseMap<I, T> {
    type Output = T;

    #[inline]
    fn index(&self, key: I) -> &T {
        &self.data[key.index()]
    }
}

impl<I: DenseId, T> std::ops::IndexMut<I> for DenseMap<I, T> {
    #[inline]
    fn index_mut(&mut self, key: I) -> &mut T {
        &mut self.data[key.index()]
    }
}

impl<I: DenseId, T> FromIterator<T> for DenseMap<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

impl<I, T: crate::heap_size::HeapSize> crate::heap_size::HeapSize for DenseMap<I, T> {
    fn heap_bytes(&self) -> usize {
        self.data.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_len_and_index() {
        let mut m: DenseMap<CellId, u64> = DenseMap::with_len(4);
        assert_eq!(m.len(), 4);
        m[CellId(2)] = 9;
        assert_eq!(m[CellId(2)], 9);
        assert_eq!(m.get(CellId(7)), None);
    }

    #[test]
    fn insert_grows_with_defaults() {
        let mut m: DenseMap<NetId, Option<i32>> = DenseMap::new();
        m.insert(NetId(3), Some(5));
        assert_eq!(m.len(), 4);
        assert_eq!(m[NetId(0)], None);
        assert_eq!(m[NetId(3)], Some(5));
    }

    #[test]
    fn iteration_is_in_key_order() {
        let m: DenseMap<PortId, usize> = DenseMap::from_fn(3, |p: PortId| p.index() * 10);
        let pairs: Vec<(PortId, usize)> = m.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(pairs, vec![(PortId(0), 0), (PortId(1), 10), (PortId(2), 20)]);
    }

    #[test]
    fn hierarchy_node_ids_are_dense_keys() {
        let mut m: DenseMap<HierarchyNodeId, usize> = DenseMap::with_len(2);
        m[HierarchyNodeId(1)] = 7;
        assert_eq!(m[HierarchyNodeId(1)], 7);
        assert_eq!(HierarchyNodeId::from_index(3), HierarchyNodeId(3));
        assert_eq!(HierarchyNodeId(3).index(), 3);
    }

    #[test]
    fn from_vec_round_trips() {
        let m: DenseMap<CellId, char> = DenseMap::from_vec(vec!['a', 'b']);
        assert_eq!(m.as_slice(), &['a', 'b']);
        assert_eq!(m[CellId(1)], 'b');
    }
}
