//! DEF (Design Exchange Format) reader and writer.
//!
//! The supported subset covers what a macro-placement flow needs:
//!
//! * `DESIGN`, `UNITS DISTANCE MICRONS`, `DIEAREA`,
//! * `COMPONENTS ... END COMPONENTS` with `PLACED` / `FIXED` / `UNPLACED`
//!   locations and orientations,
//! * `PINS ... END PINS` with `PLACED` locations.
//!
//! The writer emits the same subset, which is enough to hand a macro
//! placement to a downstream standard-cell placement tool (or to re-read it
//! with this crate; see the round-trip tests).
//!
//! The reader is *streaming*: words are borrowed slices of the source text
//! produced by a cursor with a small bounded lookahead buffer, never a
//! materialized vector of owned `String` tokens.

use crate::design::{CellId, Design, PortId};
use crate::error::ParseError;
use geometry::{Dbu, Orientation, Point, Rect};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Placement status of a DEF component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlaceStatus {
    /// Placed but movable.
    Placed,
    /// Placed and fixed.
    Fixed,
    /// Not placed.
    Unplaced,
}

/// One component (cell instance) entry of a DEF file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// lint:allow(heap-size): parser AST transient; consumed by apply_to and dropped
pub struct DefComponent {
    /// Instance name.
    pub name: String,
    /// Library cell name.
    pub cell: String,
    /// Placement status.
    pub status: PlaceStatus,
    /// Lower-left placement location (valid unless `Unplaced`).
    pub location: Point,
    /// Orientation.
    pub orientation: Orientation,
}

/// One pin (primary port) entry of a DEF file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// lint:allow(heap-size): parser AST transient; consumed by apply_to and dropped
pub struct DefPin {
    /// Pin name.
    pub name: String,
    /// Location, if placed.
    pub location: Option<Point>,
}

/// Parsed contents of a DEF file.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
// lint:allow(heap-size): parser AST transient; consumed by apply_to and dropped
pub struct DefFile {
    /// Design name.
    pub design: String,
    /// Database units per micron.
    pub dbu_per_micron: i64,
    /// Die area.
    pub die: Rect,
    /// Component placements.
    pub components: Vec<DefComponent>,
    /// Pin placements.
    pub pins: Vec<DefPin>,
}

impl DefFile {
    /// Looks up a component by instance name.
    pub fn find_component(&self, name: &str) -> Option<&DefComponent> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Applies the placements in this DEF to a design: sets the die area and
    /// returns the macro placement map (instance name → (location, orientation)).
    pub fn apply_to(&self, design: &mut Design) -> HashMap<CellId, (Point, Orientation)> {
        design.set_die(self.die);
        let mut out = HashMap::new();
        for comp in &self.components {
            if comp.status == PlaceStatus::Unplaced {
                continue;
            }
            if let Some(id) = design.find_cell(&comp.name) {
                out.insert(id, (comp.location, comp.orientation));
            }
        }
        for pin in &self.pins {
            if let (Some(pos), Some(pid)) = (pin.location, design.find_port(&pin.name)) {
                design.port_mut(pid).position = Some(pos);
            }
        }
        out
    }
}

/// Streaming word lexer with bounded lookahead: whitespace-separated words
/// with `#` comments stripped and trailing `;` split into its own token.
struct Lexer<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
    pending_semi: Option<usize>,
    buf: VecDeque<(usize, &'a str)>,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Self { text, pos: 0, line: 1, pending_semi: None, buf: VecDeque::new() }
    }

    fn next_raw(&mut self) -> Option<(usize, &'a str)> {
        if let Some(line) = self.pending_semi.take() {
            return Some((line, ";"));
        }
        loop {
            let rest = &self.text[self.pos..];
            let c = rest.chars().next()?;
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => {
                    self.pos += c.len_utf8();
                }
                '#' => match rest.find('\n') {
                    Some(n) => self.pos += n,
                    None => self.pos = self.text.len(),
                },
                _ => {
                    let start = self.pos;
                    let end = rest
                        .find(|c2: char| c2.is_whitespace() || c2 == '#')
                        .map_or(self.text.len(), |n| start + n);
                    self.pos = end;
                    let word = &self.text[start..end];
                    let line = self.line;
                    if word != ";" && word.ends_with(';') {
                        self.pending_semi = Some(line);
                        return Some((line, word.trim_end_matches(';')));
                    }
                    return Some((line, word));
                }
            }
        }
    }

    /// Peeks the token `k` positions ahead (0 = the next token).
    fn peek_at(&mut self, k: usize) -> Option<(usize, &'a str)> {
        while self.buf.len() <= k {
            let t = self.next_raw()?;
            self.buf.push_back(t);
        }
        self.buf.get(k).copied()
    }

    fn peek(&mut self) -> Option<(usize, &'a str)> {
        self.peek_at(0)
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        if let Some(t) = self.buf.pop_front() {
            return Some(t);
        }
        self.next_raw()
    }
}

fn parse_int_tok(line: usize, t: &str) -> Result<i64, ParseError> {
    t.parse::<f64>()
        .map(|v| v.round() as i64)
        .map_err(|_| ParseError::at_line(line, format!("invalid number '{t}'")))
}

/// Collects the next `count` numeric tokens (skipping parentheses, stopping at
/// `;`) by peeking from `offset` without consuming anything.
fn peek_numbers(lx: &mut Lexer<'_>, offset: usize, count: usize) -> Result<Vec<Dbu>, ParseError> {
    let mut nums = Vec::with_capacity(count);
    let mut k = offset;
    while nums.len() < count {
        let Some((line, t)) = lx.peek_at(k) else { break };
        if t == "(" || t == ")" {
            k += 1;
            continue;
        }
        if t == ";" {
            break;
        }
        nums.push(parse_int_tok(line, t)?);
        k += 1;
    }
    if nums.len() < count {
        return Err(ParseError::new("not enough numeric fields"));
    }
    Ok(nums)
}

/// Consumes tokens until `count` numbers have been read, skipping parentheses
/// and stopping (without consuming) at `;`.
fn take_numbers(lx: &mut Lexer<'_>, count: usize) -> Result<Vec<Dbu>, ParseError> {
    let mut nums = Vec::with_capacity(count);
    while nums.len() < count {
        let Some((line, t)) = lx.peek() else { break };
        if t == "(" || t == ")" {
            lx.next();
            continue;
        }
        if t == ";" {
            break;
        }
        nums.push(parse_int_tok(line, t)?);
        lx.next();
    }
    if nums.len() < count {
        return Err(ParseError::new("not enough numeric fields"));
    }
    Ok(nums)
}

/// Parses DEF text.
///
/// # Errors
///
/// Returns [`ParseError`] when required numeric fields are malformed or
/// sections are not terminated.
pub fn parse_def(text: &str) -> Result<DefFile, ParseError> {
    let mut def = DefFile { dbu_per_micron: 1000, ..Default::default() };
    let mut lx = Lexer::new(text);
    while let Some((_, tok)) = lx.peek() {
        match tok {
            "DESIGN" => {
                lx.next();
                if let Some((_, t)) = lx.peek() {
                    def.design = t.to_string();
                    lx.next();
                }
            }
            "UNITS" => {
                // UNITS DISTANCE MICRONS n ;
                let found = (1..6).find(|&k| matches!(lx.peek_at(k), Some((_, "MICRONS"))));
                match found {
                    Some(k) => {
                        let (line, t) = lx
                            .peek_at(k + 1)
                            .ok_or_else(|| ParseError::new("unexpected end of DEF"))?;
                        def.dbu_per_micron = parse_int_tok(line, t)?;
                        for _ in 0..=(k + 1) {
                            lx.next();
                        }
                    }
                    None => {
                        lx.next();
                    }
                }
            }
            "DIEAREA" => {
                // DIEAREA ( x1 y1 ) ( x2 y2 ) ;
                let nums = peek_numbers(&mut lx, 1, 4)?;
                def.die = Rect::new(nums[0], nums[1], nums[2], nums[3]);
                lx.next();
            }
            "COMPONENTS" => {
                lx.next();
                def.components = parse_components(&mut lx)?;
            }
            "PINS" => {
                lx.next();
                def.pins = parse_pins(&mut lx)?;
            }
            _ => {
                lx.next();
            }
        }
    }
    Ok(def)
}

fn parse_components(lx: &mut Lexer<'_>) -> Result<Vec<DefComponent>, ParseError> {
    let mut components = Vec::new();
    // optional count then ';'
    while let Some((_, t)) = lx.peek() {
        if t == ";" {
            break;
        }
        lx.next();
    }
    lx.next();
    loop {
        let Some((line, tok)) = lx.peek() else {
            return Err(ParseError::new("unterminated COMPONENTS section"));
        };
        if tok == "END" && lx.peek_at(1).map(|(_, t)| t) == Some("COMPONENTS") {
            lx.next();
            lx.next();
            return Ok(components);
        }
        if tok == "-" {
            lx.next();
            let name = lx
                .next()
                .ok_or_else(|| ParseError::at_line(line, "component without a name"))?
                .1
                .to_string();
            let cell = lx
                .next()
                .ok_or_else(|| ParseError::at_line(line, "component without a cell"))?
                .1
                .to_string();
            let mut comp = DefComponent {
                name,
                cell,
                status: PlaceStatus::Unplaced,
                location: Point::origin(),
                orientation: Orientation::N,
            };
            while let Some((_, t)) = lx.peek() {
                if t == ";" {
                    break;
                }
                match t {
                    "+" => {
                        lx.next();
                    }
                    "PLACED" | "FIXED" => {
                        comp.status =
                            if t == "FIXED" { PlaceStatus::Fixed } else { PlaceStatus::Placed };
                        lx.next();
                        let nums = take_numbers(lx, 2)?;
                        comp.location = Point::new(nums[0], nums[1]);
                        // orientation is the token following the closing paren
                        while matches!(lx.peek(), Some((_, "(" | ")"))) {
                            lx.next();
                        }
                        if let Some(o) =
                            lx.peek().and_then(|(_, t2)| Orientation::from_def_name(t2))
                        {
                            comp.orientation = o;
                            lx.next();
                        }
                    }
                    "UNPLACED" => {
                        comp.status = PlaceStatus::Unplaced;
                        lx.next();
                    }
                    _ => {
                        lx.next();
                    }
                }
            }
            components.push(comp);
            lx.next(); // skip ';'
        } else {
            lx.next();
        }
    }
}

fn parse_pins(lx: &mut Lexer<'_>) -> Result<Vec<DefPin>, ParseError> {
    let mut pins = Vec::new();
    while let Some((_, t)) = lx.peek() {
        if t == ";" {
            break;
        }
        lx.next();
    }
    lx.next();
    loop {
        let Some((line, tok)) = lx.peek() else {
            return Err(ParseError::new("unterminated PINS section"));
        };
        if tok == "END" && lx.peek_at(1).map(|(_, t)| t) == Some("PINS") {
            lx.next();
            lx.next();
            return Ok(pins);
        }
        if tok == "-" {
            lx.next();
            let name = lx
                .next()
                .ok_or_else(|| ParseError::at_line(line, "pin without a name"))?
                .1
                .to_string();
            let mut pin = DefPin { name, location: None };
            while let Some((_, t)) = lx.peek() {
                if t == ";" {
                    break;
                }
                if t == "PLACED" || t == "FIXED" {
                    lx.next();
                    let nums = take_numbers(lx, 2)?;
                    pin.location = Some(Point::new(nums[0], nums[1]));
                } else {
                    lx.next();
                }
            }
            pins.push(pin);
            lx.next();
        } else {
            lx.next();
        }
    }
}

/// A macro placement to be written out as DEF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// lint:allow(heap-size): DEF-emit transient; built, written out, dropped
pub struct PlacementEntry {
    /// Instance name.
    pub name: String,
    /// Library cell name.
    pub cell: String,
    /// Lower-left corner.
    pub location: Point,
    /// Orientation.
    pub orientation: Orientation,
    /// Emit as FIXED (true) or PLACED (false).
    pub fixed: bool,
}

/// Streams a DEF file — die area, macro placements and port locations — to
/// any [`std::io::Write`] sink.
///
/// This is the primary emit path: writing a `large_soc`-scale DEF through a
/// `BufWriter` never materializes the multi-megabyte text. [`write_def`] is
/// a thin wrapper for callers that do want the `String`, byte-identical to
/// this stream.
pub fn write_def_to<W: std::io::Write>(
    out: &mut W,
    design_name: &str,
    dbu_per_micron: i64,
    die: Rect,
    entries: &[PlacementEntry],
    pins: &[(String, Point)],
) -> std::io::Result<()> {
    out.write_all(b"VERSION 5.8 ;\n")?;
    writeln!(out, "DESIGN {design_name} ;")?;
    writeln!(out, "UNITS DISTANCE MICRONS {dbu_per_micron} ;")?;
    writeln!(out, "DIEAREA ( {} {} ) ( {} {} ) ;", die.llx, die.lly, die.urx, die.ury)?;
    writeln!(out, "COMPONENTS {} ;", entries.len())?;
    for p in entries {
        let status = if p.fixed { "FIXED" } else { "PLACED" };
        writeln!(
            out,
            "- {} {} + {} ( {} {} ) {} ;",
            p.name, p.cell, status, p.location.x, p.location.y, p.orientation
        )?;
    }
    out.write_all(b"END COMPONENTS\n")?;
    writeln!(out, "PINS {} ;", pins.len())?;
    for (name, pos) in pins {
        writeln!(out, "- {name} + NET {name} + PLACED ( {} {} ) N ;", pos.x, pos.y)?;
    }
    out.write_all(b"END PINS\n")?;
    out.write_all(b"END DESIGN\n")?;
    Ok(())
}

/// Writes a DEF file with the die area, macro placements and port locations
/// of a design, as one `String` (see [`write_def_to`] for the streaming
/// form this wraps).
pub fn write_def(
    design_name: &str,
    dbu_per_micron: i64,
    die: Rect,
    entries: &[PlacementEntry],
    pins: &[(String, Point)],
) -> String {
    let mut buf = Vec::new();
    write_def_to(&mut buf, design_name, dbu_per_micron, die, entries, pins)
        .expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("the DEF emitter writes UTF-8 only")
}

/// Convenience: builds the [`PlacementEntry`] list for a set of macro
/// placements of a design.
pub fn placement_entries(
    design: &Design,
    placements: &HashMap<CellId, (Point, Orientation)>,
    fixed: bool,
) -> Vec<PlacementEntry> {
    placement_entries_from_view(design, placements, fixed)
}

/// Builds the [`PlacementEntry`] list for any [`crate::PlacementView`] — the
/// flow output (`MacroPlacement`), a dense view or the legacy map — without
/// materializing an intermediate `HashMap`.
pub fn placement_entries_from_view(
    design: &Design,
    placements: &impl crate::PlacementView,
    fixed: bool,
) -> Vec<PlacementEntry> {
    let mut entries: Vec<PlacementEntry> = placements
        .iter_placed()
        .map(|(id, loc, orient)| {
            let cell = design.cell(id);
            PlacementEntry {
                name: cell.name.clone(),
                cell: cell.lib_cell.clone(),
                location: loc,
                orientation: orient,
                fixed,
            }
        })
        .collect();
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    entries
}

/// Convenience: collects the placed primary ports of a design as `(name, position)`.
pub fn port_entries(design: &Design) -> Vec<(String, Point)> {
    design
        .ports()
        .filter_map(|(_, p): (PortId, _)| p.position.map(|pos| (p.name.clone(), pos)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEF: &str = r#"
VERSION 5.8 ;
DESIGN chip_top ;
UNITS DISTANCE MICRONS 2000 ;
DIEAREA ( 0 0 ) ( 400000 300000 ) ;
COMPONENTS 3 ;
- u_mem/ram0 RAM256x32 + PLACED ( 1000 2000 ) N ;
- u_mem/ram1 RAM256x32 + FIXED ( 50000 2000 ) FN ;
- u_ctl/misc BUFX2 + UNPLACED ;
END COMPONENTS
PINS 2 ;
- clk + NET clk + DIRECTION INPUT + PLACED ( 0 150000 ) N ;
- rst_n + NET rst_n ;
END PINS
END DESIGN
"#;

    #[test]
    fn parses_header_and_die() {
        let d = parse_def(DEF).unwrap();
        assert_eq!(d.design, "chip_top");
        assert_eq!(d.dbu_per_micron, 2000);
        assert_eq!(d.die, Rect::new(0, 0, 400000, 300000));
    }

    #[test]
    fn parses_components_with_status_and_orientation() {
        let d = parse_def(DEF).unwrap();
        assert_eq!(d.components.len(), 3);
        let r0 = d.find_component("u_mem/ram0").unwrap();
        assert_eq!(r0.status, PlaceStatus::Placed);
        assert_eq!(r0.location, Point::new(1000, 2000));
        assert_eq!(r0.orientation, Orientation::N);
        let r1 = d.find_component("u_mem/ram1").unwrap();
        assert_eq!(r1.status, PlaceStatus::Fixed);
        assert_eq!(r1.orientation, Orientation::FN);
        let misc = d.find_component("u_ctl/misc").unwrap();
        assert_eq!(misc.status, PlaceStatus::Unplaced);
    }

    #[test]
    fn parses_pins() {
        let d = parse_def(DEF).unwrap();
        assert_eq!(d.pins.len(), 2);
        assert_eq!(d.pins[0].location, Some(Point::new(0, 150000)));
        assert_eq!(d.pins[1].location, None);
    }

    #[test]
    fn write_then_parse_roundtrip() {
        let placements = vec![
            PlacementEntry {
                name: "a/ram0".into(),
                cell: "RAM".into(),
                location: Point::new(10, 20),
                orientation: Orientation::FS,
                fixed: true,
            },
            PlacementEntry {
                name: "b/ram1".into(),
                cell: "RAM".into(),
                location: Point::new(500, 600),
                orientation: Orientation::W,
                fixed: false,
            },
        ];
        let pins = vec![("clk".to_string(), Point::new(0, 5))];
        let text = write_def("t", 1000, Rect::new(0, 0, 1000, 1000), &placements, &pins);
        let parsed = parse_def(&text).unwrap();
        assert_eq!(parsed.design, "t");
        assert_eq!(parsed.components.len(), 2);
        let a = parsed.find_component("a/ram0").unwrap();
        assert_eq!(a.status, PlaceStatus::Fixed);
        assert_eq!(a.location, Point::new(10, 20));
        assert_eq!(a.orientation, Orientation::FS);
        let b = parsed.find_component("b/ram1").unwrap();
        assert_eq!(b.status, PlaceStatus::Placed);
        assert_eq!(b.orientation, Orientation::W);
        assert_eq!(parsed.pins.len(), 1);
        assert_eq!(parsed.pins[0].location, Some(Point::new(0, 5)));
    }

    #[test]
    fn unterminated_components_is_error() {
        let text = "COMPONENTS 1 ;\n- a CELL + PLACED ( 0 0 ) N ;\n";
        assert!(parse_def(text).is_err());
    }

    #[test]
    fn apply_to_design_sets_positions() {
        use crate::design::{DesignBuilder, PortDirection};
        let mut b = DesignBuilder::new("chip_top");
        b.add_macro("u_mem/ram0", "RAM256x32", 100, 100, "u_mem");
        b.add_port("clk", PortDirection::Input);
        let mut design = b.build();
        let def = parse_def(DEF).unwrap();
        let placements = def.apply_to(&mut design);
        assert_eq!(placements.len(), 2 - 1); // ram1 not in design, misc unplaced
        assert_eq!(design.die().width(), 400000);
        let clk = design.find_port("clk").unwrap();
        assert_eq!(design.port(clk).position, Some(Point::new(0, 150000)));
    }
}
