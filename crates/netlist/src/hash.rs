//! The workspace's one FNV-1a fold, shared by every fingerprint.
//!
//! Design identity hashes ([`crate::design::Design::seq_name_fingerprint`],
//! [`crate::design::Design::geometry_fingerprint`],
//! [`crate::connectivity::Connectivity::fingerprint`]) and audit-trail hashes
//! in downstream crates all fold through this one implementation, so the
//! constants and byte order cannot drift apart between copies.

/// An incremental FNV-1a hasher over little-endian words and raw bytes.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// A hasher continuing from a previously [`Fnv1a::finish`]ed state (for
    /// running hashes folded incrementally across events).
    pub fn resume(state: u64) -> Self {
        Self(state)
    }

    /// Folds raw bytes.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a `0xff` separator so concatenated fields cannot collide.
    #[inline]
    pub fn write_sep(&mut self) {
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    /// Folds a `u32` as its little-endian bytes.
    #[inline]
    pub fn write_u32(&mut self, word: u32) {
        self.write_bytes(&word.to_le_bytes());
    }

    /// Folds a `u64` as its little-endian bytes.
    #[inline]
    pub fn write_u64(&mut self, word: u64) {
        self.write_bytes(&word.to_le_bytes());
    }

    /// Folds an `i64` as its little-endian bytes.
    #[inline]
    pub fn write_i64(&mut self, word: i64) {
        self.write_bytes(&word.to_le_bytes());
    }

    /// The folded hash.
    #[inline]
    pub fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_fnv1a_fold() {
        // FNV-1a of the empty input is the offset basis
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        // the classic reference vector: fnv1a64("a") = 0xaf63dc4c8601ec8c
        let mut h = Fnv1a::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn word_writes_equal_byte_writes() {
        let mut by_word = Fnv1a::new();
        by_word.write_u32(0x0403_0201);
        let mut by_bytes = Fnv1a::new();
        by_bytes.write_bytes(&[1, 2, 3, 4]);
        assert_eq!(by_word.finish(), by_bytes.finish());
    }

    #[test]
    fn separator_distinguishes_concatenations() {
        let mut joined = Fnv1a::new();
        joined.write_bytes(b"ab");
        joined.write_sep();
        joined.write_bytes(b"c");
        let mut split = Fnv1a::new();
        split.write_bytes(b"a");
        split.write_sep();
        split.write_bytes(b"bc");
        assert_ne!(joined.finish(), split.finish());
    }
}
