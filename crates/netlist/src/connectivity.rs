//! Flat CSR connectivity view of a [`Design`].
//!
//! The hot loops of the flow — Gauss–Seidel placement sweeps, HPWL, RUDY
//! congestion, affinity construction — repeatedly walk cell↔net incidence.
//! The [`Design`] stores that incidence as per-cell and per-net `Vec`s
//! (`cell.fanin`, `net.sink_cells`, …), which means a pointer chase per cell
//! and per net on every traversal.  [`Connectivity`] packs the same
//! information into four flat arrays in *compressed sparse row* form:
//!
//! * `cell→net`: for every cell, its fanin nets followed by its fanout nets,
//!   all in one contiguous `Vec<NetId>` with an offsets array,
//! * `net→pin`: for every net, its pins in the canonical order
//!   *driver cell, sink cells, driver port, sink ports* — the exact order the
//!   pre-CSR walks used — as packed [`PinRef`]s with an offsets array.
//!
//! The view is built once per design (see [`Design::connectivity`], which
//! caches it) and is immutable; mutating accessors on `Design` invalidate the
//! cache.
//!
//! # Example
//!
//! ```
//! use netlist::design::DesignBuilder;
//!
//! let mut b = DesignBuilder::new("t");
//! let f = b.add_flop("f", "");
//! let g = b.add_comb("g", "");
//! let n = b.add_net("n");
//! b.connect_driver(n, f);
//! b.connect_sink(n, g);
//! let design = b.build();
//! let csr = design.connectivity();
//! assert_eq!(csr.fanout(f), &[n]);
//! assert_eq!(csr.fanin(g), &[n]);
//! let pins: Vec<_> = csr.pins(n).iter().map(|p| p.cell()).collect();
//! assert_eq!(pins, vec![Some(f), Some(g)]);
//! ```

use crate::design::{CellId, Design, NetId, PortId};

/// A packed pin reference: a cell or a port, marked as driver or sink.
///
/// Layout: bits `0..30` hold the cell/port index, bit 30 distinguishes ports
/// from cells and bit 31 marks drivers — one word per pin so a net's pin list
/// is a cache-friendly `&[PinRef]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PinRef(u32);

impl PinRef {
    const PORT_BIT: u32 = 1 << 30;
    const DRIVER_BIT: u32 = 1 << 31;
    const INDEX_MASK: u32 = Self::PORT_BIT - 1;

    /// A driver-cell pin.
    pub fn driver_cell(cell: CellId) -> Self {
        debug_assert!(cell.0 & !Self::INDEX_MASK == 0, "cell id exceeds the 30-bit pin encoding");
        Self(cell.0 | Self::DRIVER_BIT)
    }

    /// A sink-cell pin.
    pub fn sink_cell(cell: CellId) -> Self {
        debug_assert!(cell.0 & !Self::INDEX_MASK == 0, "cell id exceeds the 30-bit pin encoding");
        Self(cell.0)
    }

    /// A driver-port pin (primary input).
    pub fn driver_port(port: PortId) -> Self {
        debug_assert!(port.0 & !Self::INDEX_MASK == 0, "port id exceeds the 30-bit pin encoding");
        Self(port.0 | Self::PORT_BIT | Self::DRIVER_BIT)
    }

    /// A sink-port pin (primary output).
    pub fn sink_port(port: PortId) -> Self {
        debug_assert!(port.0 & !Self::INDEX_MASK == 0, "port id exceeds the 30-bit pin encoding");
        Self(port.0 | Self::PORT_BIT)
    }

    /// Whether the pin drives the net.
    #[inline]
    pub fn is_driver(self) -> bool {
        self.0 & Self::DRIVER_BIT != 0
    }

    /// Whether the pin is a primary port.
    #[inline]
    pub fn is_port(self) -> bool {
        self.0 & Self::PORT_BIT != 0
    }

    /// The cell of the pin, when it is a cell pin.
    #[inline]
    pub fn cell(self) -> Option<CellId> {
        (!self.is_port()).then_some(CellId(self.0 & Self::INDEX_MASK))
    }

    /// The port of the pin, when it is a port pin.
    #[inline]
    pub fn port(self) -> Option<PortId> {
        self.is_port().then_some(PortId(self.0 & Self::INDEX_MASK))
    }
}

/// The CSR connectivity view: flat `cell→net` and `net→pin` incidence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Connectivity {
    /// `cell_net_start[c]..cell_net_start[c + 1]` indexes `cell_nets`.
    cell_net_start: Vec<u32>,
    /// Where a cell's fanout begins inside its `cell_nets` range (the nets
    /// before it are the fanin).
    cell_fanout_start: Vec<u32>,
    /// Concatenated per-cell net lists: fanin first, then fanout.
    cell_nets: Vec<NetId>,
    /// `net_pin_start[n]..net_pin_start[n + 1]` indexes `net_pins`.
    net_pin_start: Vec<u32>,
    /// Concatenated per-net pin lists in canonical order (driver cell, sink
    /// cells, driver port, sink ports).
    net_pins: Vec<PinRef>,
    /// FNV-1a hash of the flat arrays, computed once at build time — a cheap
    /// wiring identity for design-keyed caches (see
    /// [`Connectivity::fingerprint`]).
    fingerprint: u64,
}

impl Connectivity {
    /// Builds the CSR view of a design.
    pub fn build(design: &Design) -> Self {
        let num_cells = design.num_cells();
        let num_nets = design.num_nets();

        let mut cell_net_start = Vec::with_capacity(num_cells + 1);
        let mut cell_fanout_start = Vec::with_capacity(num_cells);
        let mut cell_nets = Vec::new();
        cell_net_start.push(0u32);
        for (_, cell) in design.cells() {
            cell_nets.extend_from_slice(&cell.fanin);
            cell_fanout_start.push(cell_nets.len() as u32);
            cell_nets.extend_from_slice(&cell.fanout);
            cell_net_start.push(cell_nets.len() as u32);
        }

        let mut net_pin_start = Vec::with_capacity(num_nets + 1);
        let mut net_pins = Vec::new();
        net_pin_start.push(0u32);
        for (_, net) in design.nets() {
            if let Some(c) = net.driver_cell {
                net_pins.push(PinRef::driver_cell(c));
            }
            net_pins.extend(net.sink_cells.iter().map(|&c| PinRef::sink_cell(c)));
            if let Some(p) = net.driver_port {
                net_pins.push(PinRef::driver_port(p));
            }
            net_pins.extend(net.sink_ports.iter().map(|&p| PinRef::sink_port(p)));
            net_pin_start.push(net_pins.len() as u32);
        }

        let mut view = Self {
            cell_net_start,
            cell_fanout_start,
            cell_nets,
            net_pin_start,
            net_pins,
            fingerprint: 0,
        };
        view.fingerprint = view.compute_fingerprint();
        view
    }

    /// FNV-1a over every flat array word, folded at build time.
    fn compute_fingerprint(&self) -> u64 {
        let mut h = crate::hash::Fnv1a::new();
        for &w in &self.cell_net_start {
            h.write_u32(w);
        }
        for &w in &self.cell_fanout_start {
            h.write_u32(w);
        }
        for &n in &self.cell_nets {
            h.write_u32(n.0);
        }
        for &w in &self.net_pin_start {
            h.write_u32(w);
        }
        for &p in &self.net_pins {
            h.write_u32(p.0);
        }
        h.finish()
    }

    /// A build-time hash of the full cell↔net incidence: two designs with
    /// the same wiring share it, any re-wiring (even one swapped sink)
    /// changes it. Used by evaluation-session caches to key per-design state
    /// without holding a reference to the design.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The fingerprint [`Connectivity::build`] would compute for `design`,
    /// streamed straight off the per-cell/per-net `Vec`s without
    /// materializing the flat arrays. Folds the exact same `u32` sequence as
    /// the private build-time fold (array by array, in order), so
    /// `Connectivity::fingerprint_of(d) == Connectivity::build(d).fingerprint()`
    /// always holds — the spill tier uses it to address a design's spilled
    /// CSR before deciding whether to build one.
    pub fn fingerprint_of(design: &Design) -> u64 {
        let mut h = crate::hash::Fnv1a::new();
        // cell_net_start: 0, then the cumulative net count after each cell
        h.write_u32(0);
        let mut total = 0u32;
        for (_, cell) in design.cells() {
            total += (cell.fanin.len() + cell.fanout.len()) as u32;
            h.write_u32(total);
        }
        // cell_fanout_start: where each cell's fanout begins
        let mut before = 0u32;
        for (_, cell) in design.cells() {
            h.write_u32(before + cell.fanin.len() as u32);
            before += (cell.fanin.len() + cell.fanout.len()) as u32;
        }
        // cell_nets: fanin then fanout per cell
        for (_, cell) in design.cells() {
            for n in cell.fanin.iter().chain(cell.fanout.iter()) {
                h.write_u32(n.0);
            }
        }
        // net_pin_start: 0, then the cumulative pin count after each net
        h.write_u32(0);
        let mut pins = 0u32;
        for (_, net) in design.nets() {
            pins += net.degree() as u32;
            h.write_u32(pins);
        }
        // net_pins in canonical order: driver cell, sink cells, driver port,
        // sink ports — the PinRef words build() would have packed
        for (_, net) in design.nets() {
            if let Some(c) = net.driver_cell {
                h.write_u32(PinRef::driver_cell(c).0);
            }
            for &c in &net.sink_cells {
                h.write_u32(PinRef::sink_cell(c).0);
            }
            if let Some(p) = net.driver_port {
                h.write_u32(PinRef::driver_port(p).0);
            }
            for &p in &net.sink_ports {
                h.write_u32(PinRef::sink_port(p).0);
            }
        }
        h.finish()
    }

    /// Serializes the flat arrays with the spill-tier codec
    /// (see [`crate::codec`]). The fingerprint is not written: decode
    /// recomputes it from the arrays, so a decoded view can never carry a
    /// fingerprint its arrays do not hash to.
    pub fn encode(&self, out: &mut Vec<u8>) {
        crate::codec::put_u32_slice(out, &self.cell_net_start);
        crate::codec::put_u32_slice(out, &self.cell_fanout_start);
        crate::codec::put_u64(out, self.cell_nets.len() as u64);
        for n in &self.cell_nets {
            crate::codec::put_u32(out, n.0);
        }
        crate::codec::put_u32_slice(out, &self.net_pin_start);
        crate::codec::put_u64(out, self.net_pins.len() as u64);
        for p in &self.net_pins {
            crate::codec::put_u32(out, p.0);
        }
    }

    /// Decodes a view encoded by [`Connectivity::encode`]. Returns `None` on
    /// any truncation, trailing garbage or malformed prefix; the fingerprint
    /// is recomputed from the decoded arrays, so callers comparing it against
    /// an expected wiring identity get end-to-end validation.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = crate::codec::Reader::new(bytes);
        let cell_net_start = r.take_u32_vec()?;
        let cell_fanout_start = r.take_u32_vec()?;
        let cell_nets: Vec<NetId> = r.take_u32_vec()?.into_iter().map(NetId).collect();
        let net_pin_start = r.take_u32_vec()?;
        let net_pins: Vec<PinRef> = r.take_u32_vec()?.into_iter().map(PinRef).collect();
        if !r.is_exhausted() {
            return None;
        }
        let mut view = Self {
            cell_net_start,
            cell_fanout_start,
            cell_nets,
            net_pin_start,
            net_pins,
            fingerprint: 0,
        };
        view.fingerprint = view.compute_fingerprint();
        Some(view)
    }

    /// Number of cells covered by the view.
    pub fn num_cells(&self) -> usize {
        self.cell_net_start.len().saturating_sub(1)
    }

    /// Number of nets covered by the view.
    pub fn num_nets(&self) -> usize {
        self.net_pin_start.len().saturating_sub(1)
    }

    /// Total number of pins across all nets.
    pub fn num_pins(&self) -> usize {
        self.net_pins.len()
    }

    /// All nets attached to a cell: fanin first, then fanout — the same
    /// traversal order as `cell.fanin.iter().chain(cell.fanout.iter())`.
    #[inline]
    pub fn nets_of(&self, cell: CellId) -> &[NetId] {
        let lo = self.cell_net_start[cell.0 as usize] as usize;
        let hi = self.cell_net_start[cell.0 as usize + 1] as usize;
        &self.cell_nets[lo..hi]
    }

    /// The fanin nets of a cell (nets the cell reads).
    #[inline]
    pub fn fanin(&self, cell: CellId) -> &[NetId] {
        let lo = self.cell_net_start[cell.0 as usize] as usize;
        let mid = self.cell_fanout_start[cell.0 as usize] as usize;
        &self.cell_nets[lo..mid]
    }

    /// The fanout nets of a cell (nets the cell drives).
    #[inline]
    pub fn fanout(&self, cell: CellId) -> &[NetId] {
        let mid = self.cell_fanout_start[cell.0 as usize] as usize;
        let hi = self.cell_net_start[cell.0 as usize + 1] as usize;
        &self.cell_nets[mid..hi]
    }

    /// The pins of a net in canonical order (driver cell, sink cells, driver
    /// port, sink ports).
    #[inline]
    pub fn pins(&self, net: NetId) -> &[PinRef] {
        let lo = self.net_pin_start[net.0 as usize] as usize;
        let hi = self.net_pin_start[net.0 as usize + 1] as usize;
        &self.net_pins[lo..hi]
    }

    /// Number of pins on a net (equals [`crate::design::Net::degree`]).
    #[inline]
    pub fn degree(&self, net: NetId) -> usize {
        (self.net_pin_start[net.0 as usize + 1] - self.net_pin_start[net.0 as usize]) as usize
    }
}

impl crate::heap_size::HeapSize for Connectivity {
    fn heap_bytes(&self) -> usize {
        self.cell_net_start.heap_bytes()
            + self.cell_fanout_start.heap_bytes()
            + self.cell_nets.heap_bytes()
            + self.net_pin_start.heap_bytes()
            + self.net_pins.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{DesignBuilder, PortDirection};

    fn sample() -> Design {
        let mut b = DesignBuilder::new("t");
        let m = b.add_macro("m", "RAM", 10, 10, "");
        let f = b.add_flop("f", "");
        let g = b.add_comb("g", "");
        let p_in = b.add_port("pi", PortDirection::Input);
        let p_out = b.add_port("po", PortDirection::Output);
        let n1 = b.add_net("n1");
        let n2 = b.add_net("n2");
        b.connect_port_driver(n1, p_in);
        b.connect_sink(n1, f);
        b.connect_driver(n2, f);
        b.connect_sink(n2, m);
        b.connect_sink(n2, g);
        b.connect_port_sink(n2, p_out);
        b.build()
    }

    #[test]
    fn csr_matches_per_cell_vecs() {
        let d = sample();
        let csr = d.connectivity();
        for (id, cell) in d.cells() {
            assert_eq!(csr.fanin(id), cell.fanin.as_slice(), "{}", cell.name);
            assert_eq!(csr.fanout(id), cell.fanout.as_slice(), "{}", cell.name);
            let chained: Vec<NetId> =
                cell.fanin.iter().chain(cell.fanout.iter()).copied().collect();
            assert_eq!(csr.nets_of(id), chained.as_slice());
        }
    }

    #[test]
    fn pins_follow_canonical_order() {
        let d = sample();
        let csr = d.connectivity();
        let n2 = d.find_net("n2").unwrap();
        let pins = csr.pins(n2);
        assert_eq!(pins.len(), d.net(n2).degree());
        assert_eq!(csr.degree(n2), 4);
        assert!(pins[0].is_driver() && !pins[0].is_port());
        assert_eq!(pins[0].cell(), d.find_cell("f"));
        assert_eq!(pins[1].cell(), d.find_cell("m"));
        assert_eq!(pins[2].cell(), d.find_cell("g"));
        assert!(pins[3].is_port() && !pins[3].is_driver());
        assert_eq!(pins[3].port(), d.find_port("po"));
    }

    #[test]
    fn driver_port_is_marked() {
        let d = sample();
        let csr = d.connectivity();
        let n1 = d.find_net("n1").unwrap();
        let pins = csr.pins(n1);
        assert_eq!(pins.len(), 2);
        // canonical order: sink cells come before the driver port
        assert_eq!(pins[0].cell(), d.find_cell("f"));
        assert_eq!(pins[0].port(), None);
        assert!(!pins[0].is_driver());
        assert!(pins[1].is_port() && pins[1].is_driver());
        assert_eq!(pins[1].port(), d.find_port("pi"));
        assert_eq!(pins[1].cell(), None);
    }

    #[test]
    fn fingerprint_distinguishes_rewired_designs_with_identical_counts() {
        // two designs with the same name, cell/net/port counts and pin count,
        // differing only in which cell a net sinks
        let build = |swap: bool| {
            let mut b = DesignBuilder::new("t");
            let f = b.add_flop("f", "");
            let g = b.add_comb("g", "");
            let h = b.add_comb("h", "");
            let n = b.add_net("n");
            b.connect_driver(n, f);
            b.connect_sink(n, if swap { h } else { g });
            b.build()
        };
        let a = build(false);
        let b = build(true);
        assert_ne!(a.connectivity().fingerprint(), b.connectivity().fingerprint());
        // identical wiring hashes identically
        assert_eq!(a.connectivity().fingerprint(), build(false).connectivity().fingerprint());
    }

    #[test]
    fn empty_design_is_empty_view() {
        let d = DesignBuilder::new("t").build();
        let csr = Connectivity::build(&d);
        assert_eq!(csr.num_cells(), 0);
        assert_eq!(csr.num_nets(), 0);
        assert_eq!(csr.num_pins(), 0);
    }

    #[test]
    fn streaming_fingerprint_matches_built_fingerprint() {
        let d = sample();
        assert_eq!(Connectivity::fingerprint_of(&d), Connectivity::build(&d).fingerprint());
        let empty = DesignBuilder::new("t").build();
        assert_eq!(Connectivity::fingerprint_of(&empty), Connectivity::build(&empty).fingerprint());
    }

    #[test]
    fn encode_decode_round_trips_bit_identically() {
        let d = sample();
        let csr = Connectivity::build(&d);
        let mut buf = Vec::new();
        csr.encode(&mut buf);
        let decoded = Connectivity::decode(&buf).expect("decodes");
        assert_eq!(decoded, csr);
        assert_eq!(decoded.fingerprint(), csr.fingerprint());
    }

    #[test]
    fn truncated_or_padded_encodings_are_rejected() {
        let d = sample();
        let mut buf = Vec::new();
        Connectivity::build(&d).encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(Connectivity::decode(&buf[..cut]).is_none(), "cut at {cut}");
        }
        let mut padded = buf.clone();
        padded.push(0);
        assert!(Connectivity::decode(&padded).is_none());
    }
}
