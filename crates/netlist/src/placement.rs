//! Dense, id-indexed read access to a macro placement: the [`PlacementView`]
//! trait and its builder-friendly [`DenseMacroPlacementView`] implementation.
//!
//! The flow→evaluation boundary used to be a `HashMap<CellId, (Point,
//! Orientation)>`: every caller materialized the map from the flow output
//! (`MacroPlacement::to_map`) before handing it to the evaluation pipeline or
//! the DEF writer, re-hashing every macro id per candidate.  [`PlacementView`]
//! replaces that interchange type with a read-only trait the flow output
//! implements *zero-copy*:
//!
//! * `hidap::MacroPlacement` — binary search over its sorted entries,
//! * [`DenseMacroPlacementView`] — a [`DenseMap`]-backed store for builders
//!   and tests,
//! * `HashMap<CellId, (Point, Orientation)>` — an adapter kept for hand-built
//!   test inputs (and for DEF files parsed into the legacy map shape).
//!
//! Consumers take `&impl PlacementView`, so every call site that used to pass
//! `&placement.to_map()` now passes `&placement` directly.
//!
//! A placement's `position` is the **lower-left corner** of the oriented
//! footprint — the same convention as the DEF `PLACED` location and the old
//! map's `Point` — not the footprint center.

use crate::dense::DenseMap;
use crate::design::CellId;
use geometry::{Orientation, Point};
use std::collections::HashMap;

/// Read-only, id-indexed access to a (macro) placement.
///
/// Implementations must be consistent: [`PlacementView::position`] and
/// [`PlacementView::orientation`] return `Some` for exactly the cells that
/// [`PlacementView::iter_placed`] yields, and [`PlacementView::len`] is the
/// number of placed cells.
pub trait PlacementView {
    /// Lower-left corner of the placed cell, `None` when the cell is not
    /// placed by this view.
    fn position(&self, cell: CellId) -> Option<Point>;

    /// Orientation of the placed cell, `None` when the cell is not placed.
    fn orientation(&self, cell: CellId) -> Option<Orientation>;

    /// Location and orientation in one lookup.
    fn placement(&self, cell: CellId) -> Option<(Point, Orientation)> {
        Some((self.position(cell)?, self.orientation(cell)?))
    }

    /// Iterates over the placed cells as `(cell, location, orientation)`.
    ///
    /// The iteration order is implementation-defined (id order for the dense
    /// implementations, arbitrary for the `HashMap` adapter); callers that
    /// need a canonical order sort the result (as the DEF writer does).
    fn iter_placed(&self) -> Box<dyn Iterator<Item = (CellId, Point, Orientation)> + '_>;

    /// Number of placed cells.
    fn len(&self) -> usize;

    /// Whether the view places no cell at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The legacy hash-map interchange shape as a [`PlacementView`], kept for
/// hand-built test inputs and DEF-parsed placements.
impl PlacementView for HashMap<CellId, (Point, Orientation)> {
    fn position(&self, cell: CellId) -> Option<Point> {
        self.get(&cell).map(|&(loc, _)| loc)
    }

    fn orientation(&self, cell: CellId) -> Option<Orientation> {
        self.get(&cell).map(|&(_, orient)| orient)
    }

    fn placement(&self, cell: CellId) -> Option<(Point, Orientation)> {
        self.get(&cell).copied()
    }

    fn iter_placed(&self) -> Box<dyn Iterator<Item = (CellId, Point, Orientation)> + '_> {
        // lint:allow(hash-iter): iter_placed is documented order-arbitrary; deterministic
        // consumers sort (see placement_entries_from_view) or reduce order-independently
        Box::new(self.iter().map(|(&cell, &(loc, orient))| (cell, loc, orient)))
    }

    fn len(&self) -> usize {
        HashMap::len(self)
    }
}

/// A dense, id-indexed macro placement store: one `Option<(Point,
/// Orientation)>` slot per cell id, O(1) branch-free lookups.
///
/// This is the builder/test-side counterpart of the flow output: experiment
/// harnesses that construct candidate placements directly (perturbation
/// sweeps, hand-written fixtures) fill one of these instead of a `HashMap`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DenseMacroPlacementView {
    slots: DenseMap<CellId, Option<(Point, Orientation)>>,
    placed: usize,
}

impl DenseMacroPlacementView {
    /// An empty view (slots grow on [`DenseMacroPlacementView::place`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// An all-unplaced view covering `num_cells` cells.
    pub fn with_num_cells(num_cells: usize) -> Self {
        Self { slots: DenseMap::with_len(num_cells), placed: 0 }
    }

    /// Copies any other view into a dense store.
    pub fn from_view(view: &impl PlacementView) -> Self {
        let mut out = Self::new();
        for (cell, loc, orient) in view.iter_placed() {
            out.place(cell, loc, orient);
        }
        out
    }

    /// Places (or moves) a cell, growing the store as needed.
    pub fn place(&mut self, cell: CellId, location: Point, orientation: Orientation) {
        if self.slots.get(cell).map(|s| s.is_none()).unwrap_or(true) {
            self.placed += 1;
        }
        self.slots.insert(cell, Some((location, orientation)));
    }

    /// Removes a cell's placement (no-op when it was not placed).
    pub fn unplace(&mut self, cell: CellId) {
        if let Some(slot) = self.slots.get_mut(cell) {
            if slot.take().is_some() {
                self.placed -= 1;
            }
        }
    }
}

impl PlacementView for DenseMacroPlacementView {
    fn position(&self, cell: CellId) -> Option<Point> {
        self.placement(cell).map(|(loc, _)| loc)
    }

    fn orientation(&self, cell: CellId) -> Option<Orientation> {
        self.placement(cell).map(|(_, orient)| orient)
    }

    fn placement(&self, cell: CellId) -> Option<(Point, Orientation)> {
        self.slots.get(cell).copied().flatten()
    }

    fn iter_placed(&self) -> Box<dyn Iterator<Item = (CellId, Point, Orientation)> + '_> {
        Box::new(self.slots.iter().filter_map(|(cell, slot)| slot.map(|(l, o)| (cell, l, o))))
    }

    fn len(&self) -> usize {
        self.placed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashmap_adapter_reads_back_entries() {
        let mut map = HashMap::new();
        map.insert(CellId(3), (Point::new(10, 20), Orientation::FN));
        map.insert(CellId(7), (Point::new(0, 0), Orientation::N));
        assert_eq!(map.position(CellId(3)), Some(Point::new(10, 20)));
        assert_eq!(map.orientation(CellId(3)), Some(Orientation::FN));
        assert_eq!(map.placement(CellId(7)), Some((Point::new(0, 0), Orientation::N)));
        assert_eq!(map.position(CellId(0)), None);
        assert_eq!(PlacementView::len(&map), 2);
        assert!(!PlacementView::is_empty(&map));
        let mut placed: Vec<_> = map.iter_placed().collect();
        placed.sort_by_key(|&(c, _, _)| c);
        assert_eq!(placed.len(), 2);
        assert_eq!(placed[0].0, CellId(3));
    }

    #[test]
    fn dense_view_places_unplaces_and_counts() {
        let mut view = DenseMacroPlacementView::with_num_cells(4);
        assert!(view.is_empty());
        view.place(CellId(1), Point::new(5, 6), Orientation::S);
        view.place(CellId(6), Point::new(7, 8), Orientation::N); // grows past 4
        assert_eq!(view.len(), 2);
        assert_eq!(view.placement(CellId(1)), Some((Point::new(5, 6), Orientation::S)));
        // replacing does not double-count
        view.place(CellId(1), Point::new(9, 9), Orientation::N);
        assert_eq!(view.len(), 2);
        assert_eq!(view.position(CellId(1)), Some(Point::new(9, 9)));
        view.unplace(CellId(1));
        assert_eq!(view.len(), 1);
        assert_eq!(view.placement(CellId(1)), None);
        // unplacing an out-of-range or already-empty slot is a no-op
        view.unplace(CellId(100));
        view.unplace(CellId(2));
        assert_eq!(view.len(), 1);
        let placed: Vec<_> = view.iter_placed().collect();
        assert_eq!(placed, vec![(CellId(6), Point::new(7, 8), Orientation::N)]);
    }

    #[test]
    fn from_view_round_trips_a_hashmap() {
        let mut map = HashMap::new();
        map.insert(CellId(2), (Point::new(1, 2), Orientation::W));
        map.insert(CellId(5), (Point::new(3, 4), Orientation::FS));
        let dense = DenseMacroPlacementView::from_view(&map);
        assert_eq!(dense.len(), 2);
        for (cell, loc, orient) in map.iter_placed() {
            assert_eq!(dense.placement(cell), Some((loc, orient)));
        }
    }
}
