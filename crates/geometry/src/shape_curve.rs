//! Shape curves: Pareto sets of feasible bounding boxes.
//!
//! A shape curve Γ (paper Sect. II-D) describes, for a block containing hard
//! macros, the set of minimal bounding boxes `(width, height)` such that a
//! legal (non-overlapping) placement of the macros exists inside the box.
//! Only the Pareto-minimal points are stored: a box `(w, h)` is feasible iff
//! there is a curve point `(w', h')` with `w' <= w` and `h' <= h`.

use crate::Dbu;
use serde::{Deserialize, Serialize};

/// A Pareto-minimal set of feasible `(width, height)` bounding boxes.
///
/// Points are kept sorted by increasing width (and therefore strictly
/// decreasing height). The empty curve means "no constraint": every box,
/// including a degenerate one, is feasible — this is the curve of a block
/// with no macros (soft block).
///
/// # Example
///
/// ```
/// use geometry::ShapeCurve;
///
/// let a = ShapeCurve::from_macro(4, 2, true); // rotatable 4x2 macro
/// let b = ShapeCurve::from_macro(2, 2, false);
/// let stacked = a.compose_vertical(&b);
/// assert!(stacked.fits(4, 4));   // 4x2 under 2x2
/// assert!(stacked.fits(2, 6));   // rotated 2x4 under 2x2
/// assert!(!stacked.fits(3, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ShapeCurve {
    points: Vec<(Dbu, Dbu)>,
}

impl ShapeCurve {
    /// The unconstrained curve (a block with no macros): every box is feasible.
    pub fn unconstrained() -> Self {
        Self { points: Vec::new() }
    }

    /// Builds a curve from an arbitrary set of feasible boxes, keeping only
    /// the Pareto-minimal ones.
    pub fn from_points<I: IntoIterator<Item = (Dbu, Dbu)>>(points: I) -> Self {
        let mut pts: Vec<(Dbu, Dbu)> =
            points.into_iter().filter(|&(w, h)| w >= 0 && h >= 0).collect();
        pts.sort_unstable();
        let mut pareto: Vec<(Dbu, Dbu)> = Vec::with_capacity(pts.len());
        for (w, h) in pts {
            // Points are visited by increasing width; keep one only if it has
            // strictly smaller height than everything kept so far.
            match pareto.last() {
                Some(&(lw, lh)) => {
                    if lw == w {
                        // same width, previous (smaller or equal height) dominates
                        debug_assert!(lh <= h);
                    } else if h < lh {
                        pareto.push((w, h));
                    }
                }
                None => pareto.push((w, h)),
            }
        }
        Self { points: pareto }
    }

    /// Curve for a single hard macro of size `width x height`.
    ///
    /// When `rotatable` is true the 90°-rotated footprint is also feasible.
    pub fn from_macro(width: Dbu, height: Dbu, rotatable: bool) -> Self {
        if rotatable && width != height {
            Self::from_points([(width, height), (height, width)])
        } else {
            Self::from_points([(width, height)])
        }
    }

    /// The Pareto points of the curve, sorted by increasing width.
    pub fn points(&self) -> &[(Dbu, Dbu)] {
        &self.points
    }

    /// Returns `true` when the curve imposes no constraint.
    pub fn is_unconstrained(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns `true` if a `width x height` box can hold the block's macros.
    pub fn fits(&self, width: Dbu, height: Dbu) -> bool {
        if self.points.is_empty() {
            return true;
        }
        // Find the widest curve point not exceeding `width`; heights are
        // decreasing in width so that point has the smallest feasible height.
        let idx = self.points.partition_point(|&(w, _)| w <= width);
        if idx == 0 {
            return false;
        }
        self.points[..idx].iter().any(|&(_, h)| h <= height)
    }

    /// The minimum area over all Pareto points (0 for an unconstrained curve).
    pub fn min_area(&self) -> i128 {
        self.points.iter().map(|&(w, h)| w as i128 * h as i128).min().unwrap_or(0)
    }

    /// The smallest feasible width (0 for an unconstrained curve).
    pub fn min_width(&self) -> Dbu {
        self.points.first().map(|&(w, _)| w).unwrap_or(0)
    }

    /// The smallest feasible height (0 for an unconstrained curve).
    pub fn min_height(&self) -> Dbu {
        self.points.last().map(|&(_, h)| h).unwrap_or(0)
    }

    /// For a given width budget, the minimum height needed (``None`` if no
    /// feasible point has width ≤ `width`; `Some(0)` for unconstrained curves).
    pub fn min_height_for_width(&self, width: Dbu) -> Option<Dbu> {
        if self.points.is_empty() {
            return Some(0);
        }
        let idx = self.points.partition_point(|&(w, _)| w <= width);
        self.points[..idx].iter().map(|&(_, h)| h).min()
    }

    /// For a given height budget, the minimum width needed (``None`` if no
    /// feasible point has height ≤ `height`; `Some(0)` for unconstrained curves).
    pub fn min_width_for_height(&self, height: Dbu) -> Option<Dbu> {
        if self.points.is_empty() {
            return Some(0);
        }
        self.points.iter().filter(|&&(_, h)| h <= height).map(|&(w, _)| w).min()
    }

    /// Composes two curves side by side (widths add, heights max).
    pub fn compose_horizontal(&self, other: &ShapeCurve) -> ShapeCurve {
        self.compose(other, true)
    }

    /// Composes two curves stacked vertically (heights add, widths max).
    pub fn compose_vertical(&self, other: &ShapeCurve) -> ShapeCurve {
        self.compose(other, false)
    }

    fn compose(&self, other: &ShapeCurve, horizontal: bool) -> ShapeCurve {
        if self.points.is_empty() {
            return other.clone();
        }
        if other.points.is_empty() {
            return self.clone();
        }
        let mut combos = Vec::with_capacity(self.points.len() * other.points.len());
        for &(w1, h1) in &self.points {
            for &(w2, h2) in &other.points {
                if horizontal {
                    combos.push((w1 + w2, h1.max(h2)));
                } else {
                    combos.push((w1.max(w2), h1 + h2));
                }
            }
        }
        ShapeCurve::from_points(combos)
    }

    /// Keeps at most `limit` points, preserving the extremes and an evenly
    /// spread selection in between. Used to bound curve growth during
    /// bottom-up composition.
    pub fn pruned(&self, limit: usize) -> ShapeCurve {
        if self.points.len() <= limit || limit == 0 {
            return self.clone();
        }
        let n = self.points.len();
        let mut kept = Vec::with_capacity(limit);
        for i in 0..limit {
            let idx = i * (n - 1) / (limit - 1).max(1);
            kept.push(self.points[idx]);
        }
        kept.dedup();
        ShapeCurve { points: kept }
    }

    /// Number of Pareto points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the curve has no explicit points (unconstrained).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl FromIterator<(Dbu, Dbu)> for ShapeCurve {
    fn from_iter<I: IntoIterator<Item = (Dbu, Dbu)>>(iter: I) -> Self {
        ShapeCurve::from_points(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_filtering_removes_dominated_points() {
        let c = ShapeCurve::from_points([(4, 2), (2, 4), (4, 4), (3, 3), (5, 1)]);
        // (4,4) dominated by (4,2)/(3,3); others are pareto.
        assert_eq!(c.points(), &[(2, 4), (3, 3), (4, 2), (5, 1)]);
    }

    #[test]
    fn fits_uses_dominance() {
        let c = ShapeCurve::from_macro(4, 2, true);
        assert!(c.fits(4, 2));
        assert!(c.fits(10, 2));
        assert!(c.fits(2, 4));
        assert!(c.fits(4, 4));
        assert!(!c.fits(3, 3));
        assert!(!c.fits(1, 100));
    }

    #[test]
    fn unconstrained_accepts_everything() {
        let c = ShapeCurve::unconstrained();
        assert!(c.fits(0, 0));
        assert!(c.fits(1000, 1));
        assert_eq!(c.min_area(), 0);
        assert_eq!(c.min_height_for_width(5), Some(0));
    }

    #[test]
    fn horizontal_composition_adds_width() {
        let a = ShapeCurve::from_macro(4, 2, false);
        let b = ShapeCurve::from_macro(3, 5, false);
        let c = a.compose_horizontal(&b);
        assert_eq!(c.points(), &[(7, 5)]);
    }

    #[test]
    fn vertical_composition_adds_height() {
        let a = ShapeCurve::from_macro(4, 2, false);
        let b = ShapeCurve::from_macro(3, 5, false);
        let c = a.compose_vertical(&b);
        assert_eq!(c.points(), &[(4, 7)]);
    }

    #[test]
    fn composition_with_unconstrained_is_identity() {
        let a = ShapeCurve::from_macro(4, 2, true);
        let u = ShapeCurve::unconstrained();
        assert_eq!(a.compose_horizontal(&u), a);
        assert_eq!(u.compose_vertical(&a), a);
    }

    #[test]
    fn min_height_for_width_respects_budget() {
        let c = ShapeCurve::from_points([(2, 6), (4, 3), (8, 1)]);
        assert_eq!(c.min_height_for_width(1), None);
        assert_eq!(c.min_height_for_width(2), Some(6));
        assert_eq!(c.min_height_for_width(5), Some(3));
        assert_eq!(c.min_height_for_width(100), Some(1));
        assert_eq!(c.min_width_for_height(2), Some(8));
        assert_eq!(c.min_width_for_height(0), None);
    }

    #[test]
    fn pruning_keeps_extremes() {
        let c = ShapeCurve::from_points((1..=20).map(|i| (i, 21 - i)));
        let p = c.pruned(5);
        assert_eq!(p.len(), 5);
        assert_eq!(p.points().first(), c.points().first());
        assert_eq!(p.points().last(), c.points().last());
    }

    #[test]
    fn square_macro_not_duplicated_when_rotatable() {
        let c = ShapeCurve::from_macro(3, 3, true);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn min_area_of_composition_at_least_sum_of_macro_areas() {
        let a = ShapeCurve::from_macro(4, 2, true);
        let b = ShapeCurve::from_macro(3, 5, true);
        let c = a.compose_horizontal(&b);
        assert!(c.min_area() >= 8 + 15);
    }
}
