//! Macro orientations following the LEF/DEF convention.

use crate::{Dbu, Point};
use serde::{Deserialize, Serialize};

/// One of the eight orientations a macro can take in a DEF placement.
///
/// The names follow the DEF standard: `N` is the reference orientation,
/// `S`/`W`/`E` are rotations by 180°, 90° and 270° counter-clockwise, and the
/// `F*` variants are the same rotations preceded by a mirror about the y axis.
///
/// # Example
///
/// ```
/// use geometry::Orientation;
///
/// // A 30x10 macro rotated by 90 degrees occupies 10x30.
/// let (w, h) = Orientation::W.transformed_size(30, 10);
/// assert_eq!((w, h), (10, 30));
/// assert!(Orientation::W.swaps_axes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Orientation {
    /// North: no rotation (R0).
    #[default]
    N,
    /// South: rotated 180° (R180).
    S,
    /// West: rotated 90° counter-clockwise (R90).
    W,
    /// East: rotated 270° counter-clockwise (R270).
    E,
    /// Flipped North: mirrored about the y axis (MY).
    FN,
    /// Flipped South: mirrored about the x axis (MX).
    FS,
    /// Flipped West: mirrored then rotated 90° (MX90).
    FW,
    /// Flipped East: mirrored then rotated 270° (MY90).
    FE,
}

impl Orientation {
    /// All eight orientations.
    pub const ALL: [Orientation; 8] = [
        Orientation::N,
        Orientation::S,
        Orientation::W,
        Orientation::E,
        Orientation::FN,
        Orientation::FS,
        Orientation::FW,
        Orientation::FE,
    ];

    /// The four orientations that keep the footprint axis-aligned without
    /// swapping width and height.
    pub const NON_ROTATING: [Orientation; 4] =
        [Orientation::N, Orientation::S, Orientation::FN, Orientation::FS];

    /// Returns `true` when the orientation exchanges the width and height of
    /// the footprint (90° / 270° family).
    pub fn swaps_axes(self) -> bool {
        matches!(self, Orientation::W | Orientation::E | Orientation::FW | Orientation::FE)
    }

    /// Footprint size after applying the orientation to a `width x height` macro.
    pub fn transformed_size(self, width: Dbu, height: Dbu) -> (Dbu, Dbu) {
        if self.swaps_axes() {
            (height, width)
        } else {
            (width, height)
        }
    }

    /// Transforms a pin offset given in the macro's local frame (origin at the
    /// macro lower-left corner, reference orientation `N`) into the offset in
    /// the placed frame, for a macro of size `width x height`.
    ///
    /// The returned offset is again relative to the placed macro's lower-left
    /// corner, so the absolute pin location is `placement_ll + offset`.
    pub fn transform_pin(self, pin: Point, width: Dbu, height: Dbu) -> Point {
        let (x, y) = (pin.x, pin.y);
        match self {
            Orientation::N => Point::new(x, y),
            Orientation::S => Point::new(width - x, height - y),
            Orientation::W => Point::new(height - y, x),
            Orientation::E => Point::new(y, width - x),
            Orientation::FN => Point::new(width - x, y),
            Orientation::FS => Point::new(x, height - y),
            Orientation::FW => Point::new(y, x),
            Orientation::FE => Point::new(height - y, width - x),
        }
    }

    /// The DEF keyword for the orientation.
    pub fn def_name(self) -> &'static str {
        match self {
            Orientation::N => "N",
            Orientation::S => "S",
            Orientation::W => "W",
            Orientation::E => "E",
            Orientation::FN => "FN",
            Orientation::FS => "FS",
            Orientation::FW => "FW",
            Orientation::FE => "FE",
        }
    }

    /// Parses a DEF orientation keyword.
    pub fn from_def_name(s: &str) -> Option<Orientation> {
        Some(match s {
            "N" => Orientation::N,
            "S" => Orientation::S,
            "W" => Orientation::W,
            "E" => Orientation::E,
            "FN" => Orientation::FN,
            "FS" => Orientation::FS,
            "FW" => Orientation::FW,
            "FE" => Orientation::FE,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Orientation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.def_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_swapping_orientations() {
        assert!(!Orientation::N.swaps_axes());
        assert!(!Orientation::FS.swaps_axes());
        assert!(Orientation::W.swaps_axes());
        assert!(Orientation::FE.swaps_axes());
    }

    #[test]
    fn transformed_size_swaps_for_rotations() {
        assert_eq!(Orientation::N.transformed_size(30, 10), (30, 10));
        assert_eq!(Orientation::E.transformed_size(30, 10), (10, 30));
    }

    #[test]
    fn def_name_roundtrip() {
        for o in Orientation::ALL {
            assert_eq!(Orientation::from_def_name(o.def_name()), Some(o));
        }
        assert_eq!(Orientation::from_def_name("X"), None);
    }

    #[test]
    fn pin_transform_stays_in_footprint() {
        let (w, h) = (20, 8);
        let pin = Point::new(3, 2);
        for o in Orientation::ALL {
            let (tw, th) = o.transformed_size(w, h);
            let p = o.transform_pin(pin, w, h);
            assert!(p.x >= 0 && p.x <= tw, "{o}: {p}");
            assert!(p.y >= 0 && p.y <= th, "{o}: {p}");
        }
    }

    #[test]
    fn pin_transform_identity_and_180() {
        let pin = Point::new(1, 2);
        assert_eq!(Orientation::N.transform_pin(pin, 10, 6), Point::new(1, 2));
        assert_eq!(Orientation::S.transform_pin(pin, 10, 6), Point::new(9, 4));
        assert_eq!(Orientation::FN.transform_pin(pin, 10, 6), Point::new(9, 2));
        assert_eq!(Orientation::FS.transform_pin(pin, 10, 6), Point::new(1, 4));
    }

    #[test]
    fn pin_transform_rotations() {
        let pin = Point::new(1, 2);
        // W: (x,y) -> (h-y, x)
        assert_eq!(Orientation::W.transform_pin(pin, 10, 6), Point::new(4, 1));
        // E: (x,y) -> (y, w-x)
        assert_eq!(Orientation::E.transform_pin(pin, 10, 6), Point::new(2, 9));
    }
}
