//! 2-D integer points.

use crate::Dbu;
use serde::{Deserialize, Serialize};

/// A point in the plane, in database units.
///
/// # Example
///
/// ```
/// use geometry::Point;
///
/// let a = Point::new(10, 20);
/// let b = Point::new(13, 16);
/// assert_eq!(a.manhattan_distance(b), 7);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Dbu,
    /// Vertical coordinate.
    pub y: Dbu,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: Dbu, y: Dbu) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const fn origin() -> Self {
        Self { x: 0, y: 0 }
    }

    /// Manhattan (L1) distance to `other`.
    pub fn manhattan_distance(self, other: Point) -> Dbu {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean distance to `other`, as `f64`.
    pub fn euclidean_distance(self, other: Point) -> f64 {
        let dx = (self.x - other.x) as f64;
        let dy = (self.y - other.y) as f64;
        (dx * dx + dy * dy).sqrt()
    }

    /// Component-wise translation.
    pub fn translated(self, dx: Dbu, dy: Dbu) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl std::ops::Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(Dbu, Dbu)> for Point {
    fn from((x, y): (Dbu, Dbu)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(3, -4);
        let b = Point::new(-1, 9);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(b), 4 + 13);
    }

    #[test]
    fn euclidean_distance_matches_pythagoras() {
        let a = Point::origin();
        let b = Point::new(3, 4);
        assert!((a.euclidean_distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Point::new(5, 7);
        let b = Point::new(2, -3);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn translated_moves_both_axes() {
        assert_eq!(Point::new(1, 1).translated(2, -4), Point::new(3, -3));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Point::new(1, 2).to_string(), "(1, 2)");
    }
}
