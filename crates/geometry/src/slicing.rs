//! Slicing structures: normalized Polish expressions and slicing trees.
//!
//! The layout of a set of blocks is represented by a *slicing tree*: every
//! internal node cuts its rectangle either vertically or horizontally and the
//! leaves are blocks.  Following Wong & Liu (DAC'86), the tree is stored as a
//! normalized Polish expression, and the simulated-annealing search of the
//! paper (Sect. IV-E) perturbs that expression with three moves:
//!
//! * **M1** — swap two adjacent operands,
//! * **M2** — complement a chain of operators (`H` ↔ `V`),
//! * **M3** — swap an adjacent operand/operator pair (only when the result is
//!   still a normalized, balloting-valid expression).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Direction of the cut performed by an internal slicing-tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CutDirection {
    /// Vertical cut: the children are placed side by side (left, right).
    Vertical,
    /// Horizontal cut: the children are stacked (bottom, top).
    Horizontal,
}

impl CutDirection {
    /// The opposite cut direction.
    pub fn flipped(self) -> CutDirection {
        match self {
            CutDirection::Vertical => CutDirection::Horizontal,
            CutDirection::Horizontal => CutDirection::Vertical,
        }
    }
}

/// One token of a Polish expression: either a block index or a cut operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolishToken {
    /// A leaf block, identified by its index.
    Operand(usize),
    /// An internal node cutting in the given direction.
    Operator(CutDirection),
}

impl PolishToken {
    /// Returns `true` for operand tokens.
    pub fn is_operand(&self) -> bool {
        matches!(self, PolishToken::Operand(_))
    }
}

/// A (postfix) Polish expression describing a slicing floorplan of `n` blocks.
///
/// Invariants maintained by every constructor and move:
///
/// * exactly `n` operands, each block index appearing exactly once,
/// * exactly `n - 1` operators,
/// * the *balloting property*: in every prefix, #operands > #operators,
/// * *normalized*: no two consecutive identical operators (avoids redundant
///   representations of the same floorplan).
///
/// # Example
///
/// ```
/// use geometry::{PolishExpression, CutDirection};
///
/// let e = PolishExpression::chain(3, CutDirection::Vertical);
/// assert_eq!(e.num_blocks(), 3);
/// assert!(e.is_valid());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolishExpression {
    tokens: Vec<PolishToken>,
    num_blocks: usize,
}

impl PolishExpression {
    /// Builds the expression `0 1 op 2 op 3 op ...`, i.e. a "staircase" of
    /// alternating cuts starting from `first_cut`. For a single block the
    /// expression is just that operand.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0`.
    pub fn chain(num_blocks: usize, first_cut: CutDirection) -> Self {
        assert!(num_blocks > 0, "a slicing floorplan needs at least one block");
        let mut tokens = Vec::with_capacity(2 * num_blocks - 1);
        tokens.push(PolishToken::Operand(0));
        let mut cut = first_cut;
        for i in 1..num_blocks {
            tokens.push(PolishToken::Operand(i));
            tokens.push(PolishToken::Operator(cut));
            cut = cut.flipped();
        }
        Self { tokens, num_blocks }
    }

    /// Builds an expression from raw tokens.
    ///
    /// Returns `None` if the token sequence is not a valid normalized Polish
    /// expression over blocks `0..n`.
    pub fn from_tokens(tokens: Vec<PolishToken>) -> Option<Self> {
        let num_blocks = tokens.iter().filter(|t| t.is_operand()).count();
        let e = Self { tokens, num_blocks };
        if e.is_valid() {
            Some(e)
        } else {
            None
        }
    }

    /// The tokens of the expression in postfix order.
    pub fn tokens(&self) -> &[PolishToken] {
        &self.tokens
    }

    /// Number of leaf blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Checks every structural invariant (see the type-level docs).
    pub fn is_valid(&self) -> bool {
        if self.num_blocks == 0 || self.tokens.len() != 2 * self.num_blocks - 1 {
            return false;
        }
        let mut seen = vec![false; self.num_blocks];
        let mut operands = 0usize;
        let mut operators = 0usize;
        let mut prev_op: Option<CutDirection> = None;
        for t in &self.tokens {
            match *t {
                PolishToken::Operand(i) => {
                    if i >= self.num_blocks || seen[i] {
                        return false;
                    }
                    seen[i] = true;
                    operands += 1;
                    prev_op = None;
                }
                PolishToken::Operator(dir) => {
                    operators += 1;
                    // balloting property: strictly more operands than operators
                    if operators >= operands {
                        return false;
                    }
                    // normalization: no two consecutive identical operators
                    if prev_op == Some(dir) {
                        return false;
                    }
                    prev_op = Some(dir);
                }
            }
        }
        operands == self.num_blocks && operators + 1 == operands
    }

    /// Applies one random Wong–Liu move, returning the indices it touched so
    /// the caller can undo it by restoring a clone. The move kinds are chosen
    /// with equal probability as in the paper.
    pub fn random_move<R: Rng + ?Sized>(&mut self, rng: &mut R) -> MoveKind {
        // Retry until a move succeeds; M3 can fail on particular positions.
        loop {
            match rng.gen_range(0..3) {
                0 => {
                    if self.move_swap_operands(rng) {
                        return MoveKind::OperandSwap;
                    }
                }
                1 => {
                    if self.move_invert_chain(rng) {
                        return MoveKind::ChainInvert;
                    }
                }
                _ => {
                    if self.move_swap_operand_operator(rng) {
                        return MoveKind::OperandOperatorSwap;
                    }
                }
            }
        }
    }

    /// M1: swaps two adjacent operands (adjacent in operand order, ignoring
    /// the operators between them). Always succeeds for ≥ 2 blocks.
    pub fn move_swap_operands<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        if self.num_blocks < 2 {
            return false;
        }
        let operand_positions: Vec<usize> = self
            .tokens
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.is_operand().then_some(i))
            .collect();
        let k = rng.gen_range(0..operand_positions.len() - 1);
        self.tokens.swap(operand_positions[k], operand_positions[k + 1]);
        true
    }

    /// M2: complements every operator in a randomly chosen maximal operator
    /// chain (`H` ↔ `V`). Always succeeds when at least one operator exists.
    pub fn move_invert_chain<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        let chains = self.operator_chains();
        if chains.is_empty() {
            return false;
        }
        let (start, len) = chains[rng.gen_range(0..chains.len())];
        for t in &mut self.tokens[start..start + len] {
            if let PolishToken::Operator(dir) = t {
                *dir = dir.flipped();
            }
        }
        true
    }

    /// M3: swaps a randomly chosen adjacent operand/operator pair, provided
    /// the result still satisfies balloting and normalization. Returns `false`
    /// if the chosen position is infeasible.
    pub fn move_swap_operand_operator<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        if self.tokens.len() < 3 {
            return false;
        }
        let candidates: Vec<usize> = (0..self.tokens.len() - 1)
            .filter(|&i| self.tokens[i].is_operand() != self.tokens[i + 1].is_operand())
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let i = candidates[rng.gen_range(0..candidates.len())];
        self.tokens.swap(i, i + 1);
        if self.is_valid() {
            true
        } else {
            self.tokens.swap(i, i + 1);
            false
        }
    }

    /// Maximal runs of consecutive operators as `(start_index, length)`.
    fn operator_chains(&self) -> Vec<(usize, usize)> {
        let mut chains = Vec::new();
        let mut i = 0;
        while i < self.tokens.len() {
            if !self.tokens[i].is_operand() {
                let start = i;
                while i < self.tokens.len() && !self.tokens[i].is_operand() {
                    i += 1;
                }
                chains.push((start, i - start));
            } else {
                i += 1;
            }
        }
        chains
    }

    /// Builds the slicing tree corresponding to this expression.
    ///
    /// # Panics
    ///
    /// Panics if the expression is invalid (cannot happen for expressions
    /// produced through the public API).
    pub fn to_tree(&self) -> SlicingTree {
        let mut stack: Vec<usize> = Vec::new();
        let mut nodes: Vec<SlicingNode> = Vec::new();
        for t in &self.tokens {
            match *t {
                PolishToken::Operand(block) => {
                    nodes.push(SlicingNode::Leaf { block });
                    stack.push(nodes.len() - 1);
                }
                PolishToken::Operator(cut) => {
                    let right = stack.pop().expect("valid polish expression");
                    let left = stack.pop().expect("valid polish expression");
                    nodes.push(SlicingNode::Internal { cut, left, right });
                    stack.push(nodes.len() - 1);
                }
            }
        }
        let root = stack.pop().expect("valid polish expression");
        assert!(stack.is_empty(), "valid polish expression leaves one root");
        SlicingTree { nodes, root }
    }
}

/// Which of the three annealing moves was applied by [`PolishExpression::random_move`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// Two adjacent operands were exchanged.
    OperandSwap,
    /// An operator chain was complemented.
    ChainInvert,
    /// An adjacent operand/operator pair was exchanged.
    OperandOperatorSwap,
}

/// A node of a [`SlicingTree`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlicingNode {
    /// A leaf holding a block index.
    Leaf {
        /// Index of the block this leaf represents.
        block: usize,
    },
    /// An internal node cutting its rectangle into two children.
    Internal {
        /// Cut direction applied at this node.
        cut: CutDirection,
        /// Index of the left / bottom child in [`SlicingTree::nodes`].
        left: usize,
        /// Index of the right / top child in [`SlicingTree::nodes`].
        right: usize,
    },
}

/// An explicit slicing tree produced from a [`PolishExpression`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlicingTree {
    nodes: Vec<SlicingNode>,
    root: usize,
}

impl SlicingTree {
    /// All nodes of the tree; children indices refer into this slice.
    pub fn nodes(&self) -> &[SlicingNode] {
        &self.nodes
    }

    /// Index of the root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Node accessor.
    pub fn node(&self, idx: usize) -> &SlicingNode {
        &self.nodes[idx]
    }

    /// Number of leaf blocks in the tree.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, SlicingNode::Leaf { .. })).count()
    }

    /// Visits leaves in left-to-right order, yielding block indices.
    pub fn leaf_order(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.num_leaves());
        self.collect_leaves(self.root, &mut out);
        out
    }

    fn collect_leaves(&self, idx: usize, out: &mut Vec<usize>) {
        match &self.nodes[idx] {
            SlicingNode::Leaf { block } => out.push(*block),
            SlicingNode::Internal { left, right, .. } => {
                self.collect_leaves(*left, out);
                self.collect_leaves(*right, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_expression_is_valid() {
        for n in 1..10 {
            let e = PolishExpression::chain(n, CutDirection::Vertical);
            assert!(e.is_valid(), "chain of {n} blocks should be valid");
            assert_eq!(e.num_blocks(), n);
        }
    }

    #[test]
    fn invalid_expressions_rejected() {
        use CutDirection::*;
        use PolishToken::*;
        // operator before enough operands
        assert!(PolishExpression::from_tokens(vec![Operand(0), Operator(Vertical), Operand(1)])
            .is_none());
        // duplicate operand
        assert!(PolishExpression::from_tokens(vec![Operand(0), Operand(0), Operator(Vertical)])
            .is_none());
        // consecutive identical operators (not normalized)
        assert!(PolishExpression::from_tokens(vec![
            Operand(0),
            Operand(1),
            Operand(2),
            Operator(Vertical),
            Operator(Vertical),
        ])
        .is_none());
        // valid alternatives
        assert!(PolishExpression::from_tokens(vec![
            Operand(0),
            Operand(1),
            Operand(2),
            Operator(Vertical),
            Operator(Horizontal),
        ])
        .is_some());
        assert!(PolishExpression::from_tokens(vec![
            Operand(0),
            Operand(1),
            Operator(Vertical),
            Operand(2),
            Operator(Horizontal),
        ])
        .is_some());
    }

    #[test]
    fn moves_preserve_validity() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut e = PolishExpression::chain(8, CutDirection::Horizontal);
        for _ in 0..500 {
            e.random_move(&mut rng);
            assert!(e.is_valid());
        }
    }

    #[test]
    fn single_block_tree() {
        let e = PolishExpression::chain(1, CutDirection::Vertical);
        let t = e.to_tree();
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.leaf_order(), vec![0]);
    }

    #[test]
    fn tree_has_all_leaves_once() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut e = PolishExpression::chain(6, CutDirection::Vertical);
        for _ in 0..100 {
            e.random_move(&mut rng);
        }
        let t = e.to_tree();
        let mut leaves = t.leaf_order();
        leaves.sort_unstable();
        assert_eq!(leaves, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(t.nodes().len(), 2 * 6 - 1);
    }

    #[test]
    fn operand_swap_changes_leaf_order() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut e = PolishExpression::chain(4, CutDirection::Vertical);
        let before = e.to_tree().leaf_order();
        e.move_swap_operands(&mut rng);
        let after = e.to_tree().leaf_order();
        assert_ne!(before, after);
    }

    #[test]
    fn chain_invert_flips_cuts() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut e = PolishExpression::chain(2, CutDirection::Vertical);
        assert!(e.move_invert_chain(&mut rng));
        match e.tokens()[2] {
            PolishToken::Operator(dir) => assert_eq!(dir, CutDirection::Horizontal),
            _ => panic!("expected operator"),
        }
    }
}
