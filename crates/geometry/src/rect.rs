//! Axis-aligned rectangles.

use crate::{Dbu, Point};
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle defined by its lower-left and upper-right corners.
///
/// The rectangle is half-open conceptually but all operations treat it as a
/// closed region of the plane; a rectangle with `llx == urx` or `lly == ury`
/// is degenerate (zero area) but still valid.
///
/// # Example
///
/// ```
/// use geometry::Rect;
///
/// let die = Rect::new(0, 0, 100, 50);
/// let macro_box = Rect::from_size(10, 10, 30, 20);
/// assert!(die.contains_rect(&macro_box));
/// assert_eq!(macro_box.area(), 600);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left x coordinate.
    pub llx: Dbu,
    /// Lower-left y coordinate.
    pub lly: Dbu,
    /// Upper-right x coordinate.
    pub urx: Dbu,
    /// Upper-right y coordinate.
    pub ury: Dbu,
}

impl Rect {
    /// Creates a rectangle from corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `urx < llx` or `ury < lly`.
    pub fn new(llx: Dbu, lly: Dbu, urx: Dbu, ury: Dbu) -> Self {
        assert!(urx >= llx && ury >= lly, "malformed rectangle corners");
        Self { llx, lly, urx, ury }
    }

    /// Creates a rectangle from its lower-left corner and a size.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    pub fn from_size(llx: Dbu, lly: Dbu, width: Dbu, height: Dbu) -> Self {
        assert!(width >= 0 && height >= 0, "negative rectangle size");
        Self::new(llx, lly, llx + width, lly + height)
    }

    /// Width of the rectangle.
    pub fn width(&self) -> Dbu {
        self.urx - self.llx
    }

    /// Height of the rectangle.
    pub fn height(&self) -> Dbu {
        self.ury - self.lly
    }

    /// Area of the rectangle.
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// Center point (rounded down to integer coordinates).
    pub fn center(&self) -> Point {
        Point::new((self.llx + self.urx) / 2, (self.lly + self.ury) / 2)
    }

    /// Lower-left corner.
    pub fn lower_left(&self) -> Point {
        Point::new(self.llx, self.lly)
    }

    /// Upper-right corner.
    pub fn upper_right(&self) -> Point {
        Point::new(self.urx, self.ury)
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.llx && p.x <= self.urx && p.y >= self.lly && p.y <= self.ury
    }

    /// Returns `true` if `other` lies entirely inside (or on the boundary of) `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.llx >= self.llx
            && other.urx <= self.urx
            && other.lly >= self.lly
            && other.ury <= self.ury
    }

    /// Returns `true` if the interiors of the two rectangles overlap.
    ///
    /// Rectangles that only touch at an edge or a corner do *not* overlap.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.llx < other.urx && other.llx < self.urx && self.lly < other.ury && other.lly < self.ury
    }

    /// Intersection of the two rectangles, if non-degenerate overlap region exists.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let llx = self.llx.max(other.llx);
        let lly = self.lly.max(other.lly);
        let urx = self.urx.min(other.urx);
        let ury = self.ury.min(other.ury);
        if llx < urx && lly < ury {
            Some(Rect::new(llx, lly, urx, ury))
        } else {
            None
        }
    }

    /// Area of overlap with `other` (zero if disjoint).
    pub fn overlap_area(&self, other: &Rect) -> i128 {
        self.intersection(other).map(|r| r.area()).unwrap_or(0)
    }

    /// The smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.llx.min(other.llx),
            self.lly.min(other.lly),
            self.urx.max(other.urx),
            self.ury.max(other.ury),
        )
    }

    /// Bounding box of a set of points. Returns `None` for an empty iterator.
    pub fn bounding_box<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect::new(first.x, first.y, first.x, first.y);
        for p in it {
            r.llx = r.llx.min(p.x);
            r.lly = r.lly.min(p.y);
            r.urx = r.urx.max(p.x);
            r.ury = r.ury.max(p.y);
        }
        Some(r)
    }

    /// Rectangle translated by `(dx, dy)`.
    pub fn translated(&self, dx: Dbu, dy: Dbu) -> Rect {
        Rect::new(self.llx + dx, self.lly + dy, self.urx + dx, self.ury + dy)
    }

    /// Rectangle with the same lower-left corner but a new size.
    pub fn resized(&self, width: Dbu, height: Dbu) -> Rect {
        Rect::from_size(self.llx, self.lly, width, height)
    }

    /// Manhattan distance between the centers of two rectangles.
    pub fn center_distance(&self, other: &Rect) -> Dbu {
        self.center().manhattan_distance(other.center())
    }

    /// Clamps a point to lie within the rectangle.
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.llx, self.urx), p.y.clamp(self.lly, self.ury))
    }

    /// Splits the rectangle vertically (left | right) at `x` (absolute coordinate).
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside `[llx, urx]`.
    pub fn split_vertical(&self, x: Dbu) -> (Rect, Rect) {
        assert!(x >= self.llx && x <= self.urx, "split outside rectangle");
        (Rect::new(self.llx, self.lly, x, self.ury), Rect::new(x, self.lly, self.urx, self.ury))
    }

    /// Splits the rectangle horizontally (bottom / top) at `y` (absolute coordinate).
    ///
    /// # Panics
    ///
    /// Panics if `y` is outside `[lly, ury]`.
    pub fn split_horizontal(&self, y: Dbu) -> (Rect, Rect) {
        assert!(y >= self.lly && y <= self.ury, "split outside rectangle");
        (Rect::new(self.llx, self.lly, self.urx, y), Rect::new(self.llx, y, self.urx, self.ury))
    }

    /// Aspect ratio (width / height); `f64::INFINITY` for zero height.
    pub fn aspect_ratio(&self) -> f64 {
        if self.height() == 0 {
            f64::INFINITY
        } else {
            self.width() as f64 / self.height() as f64
        }
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} {} {} {}]", self.llx, self.lly, self.urx, self.ury)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_size() {
        let r = Rect::from_size(5, 5, 10, 4);
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 4);
        assert_eq!(r.area(), 40);
        assert_eq!(r.center(), Point::new(10, 7));
    }

    #[test]
    fn overlap_touching_edges_is_not_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert!(!a.overlaps(&b));
        assert_eq!(a.overlap_area(&b), 0);
    }

    #[test]
    fn overlap_area_of_intersecting_rects() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert!(a.overlaps(&b));
        assert_eq!(a.overlap_area(&b), 25);
        assert_eq!(a.intersection(&b).unwrap(), Rect::new(5, 5, 10, 10));
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(10, 2, 12, 8);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::new(0, 0, 12, 8));
    }

    #[test]
    fn containment() {
        let die = Rect::new(0, 0, 100, 100);
        assert!(die.contains_rect(&Rect::new(0, 0, 100, 100)));
        assert!(die.contains_rect(&Rect::new(10, 10, 20, 20)));
        assert!(!die.contains_rect(&Rect::new(90, 90, 110, 95)));
        assert!(die.contains(Point::new(100, 100)));
        assert!(!die.contains(Point::new(101, 50)));
    }

    #[test]
    fn splits_partition_area() {
        let r = Rect::new(0, 0, 10, 6);
        let (l, right) = r.split_vertical(4);
        assert_eq!(l.area() + right.area(), r.area());
        let (b, t) = r.split_horizontal(2);
        assert_eq!(b.area() + t.area(), r.area());
    }

    #[test]
    fn bounding_box_of_points() {
        let bb =
            Rect::bounding_box([Point::new(3, 4), Point::new(-1, 9), Point::new(5, 0)]).unwrap();
        assert_eq!(bb, Rect::new(-1, 0, 5, 9));
        assert!(Rect::bounding_box(std::iter::empty()).is_none());
    }

    #[test]
    fn clamp_point_projects_inside() {
        let r = Rect::new(0, 0, 10, 10);
        assert_eq!(r.clamp_point(Point::new(-5, 20)), Point::new(0, 10));
        assert_eq!(r.clamp_point(Point::new(5, 5)), Point::new(5, 5));
    }

    #[test]
    #[should_panic]
    fn malformed_rect_panics() {
        let _ = Rect::new(10, 0, 0, 10);
    }
}
