//! Geometric primitives for floorplanning and macro placement.
//!
//! This crate provides the low-level geometric machinery used by the HiDaP
//! macro placer:
//!
//! * [`Point`], [`Rect`] — coordinates and axis-aligned rectangles with the
//!   usual area / intersection / containment operations.
//! * [`Orientation`] — the eight macro orientations of the LEF/DEF standard
//!   (`N`, `S`, `W`, `E`, `FN`, `FS`, `FW`, `FE`) and how they transform
//!   a macro footprint and its pins.
//! * [`ShapeCurve`] — the Pareto set of bounding boxes that can hold a
//!   placement of a set of hard blocks, plus horizontal/vertical composition
//!   (the "shape curve" Γ of the paper, Sect. II-D / IV-A).
//! * [`SlicingTree`] and [`PolishExpression`] — the slicing-structure layout
//!   representation used during layout generation (Sect. IV-E), together with
//!   the three Wong–Liu simulated-annealing moves.
//!
//! All dimensions are in integer database units (DBU); a typical convention
//! is 1 DBU = 1 nm, but nothing in this crate depends on the physical unit.
//!
//! # Example
//!
//! ```
//! use geometry::{Rect, ShapeCurve};
//!
//! // A 4x2 macro can also be placed rotated as 2x4.
//! let curve = ShapeCurve::from_macro(4, 2, true);
//! assert!(curve.fits(4, 2));
//! assert!(curve.fits(2, 4));
//! assert!(!curve.fits(3, 2));
//!
//! // Two such macros side by side.
//! let pair = curve.compose_horizontal(&curve);
//! assert!(pair.fits(8, 2));
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]

pub mod orientation;
pub mod point;
pub mod rect;
pub mod shape_curve;
pub mod slicing;

pub use orientation::Orientation;
pub use point::Point;
pub use rect::Rect;
pub use shape_curve::ShapeCurve;
pub use slicing::{CutDirection, PolishExpression, PolishToken, SlicingNode, SlicingTree};

/// Integer database unit used for all coordinates in the workspace.
pub type Dbu = i64;
