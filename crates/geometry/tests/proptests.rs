//! Property-based tests of the geometric primitives.

use geometry::{CutDirection, Orientation, Point, PolishExpression, Rect, ShapeCurve};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0i64..1000, 0i64..1000, 1i64..500, 1i64..500)
        .prop_map(|(x, y, w, h)| Rect::from_size(x, y, w, h))
}

proptest! {
    #[test]
    fn rect_intersection_is_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert_eq!(i.area(), a.overlap_area(&b));
        } else {
            prop_assert_eq!(a.overlap_area(&b), 0);
        }
    }

    #[test]
    fn rect_union_contains_both_and_is_minimal_in_area(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() >= a.area().max(b.area()));
    }

    #[test]
    fn overlap_is_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert_eq!(a.overlap_area(&b), b.overlap_area(&a));
    }

    #[test]
    fn splits_partition_area(r in arb_rect(), frac in 0.0f64..1.0) {
        let x = r.llx + ((r.width() as f64) * frac) as i64;
        let (l, rr) = r.split_vertical(x);
        prop_assert_eq!(l.area() + rr.area(), r.area());
        let y = r.lly + ((r.height() as f64) * frac) as i64;
        let (b, t) = r.split_horizontal(y);
        prop_assert_eq!(b.area() + t.area(), r.area());
    }

    #[test]
    fn manhattan_distance_satisfies_triangle_inequality(
        ax in -1000i64..1000, ay in -1000i64..1000,
        bx in -1000i64..1000, by in -1000i64..1000,
        cx in -1000i64..1000, cy in -1000i64..1000,
    ) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let c = Point::new(cx, cy);
        prop_assert!(a.manhattan_distance(c) <= a.manhattan_distance(b) + b.manhattan_distance(c));
    }

    #[test]
    fn orientation_transform_preserves_footprint_membership(
        w in 1i64..200, h in 1i64..200, px in 0i64..200, py in 0i64..200,
    ) {
        let pin = Point::new(px.min(w), py.min(h));
        for o in Orientation::ALL {
            let (tw, th) = o.transformed_size(w, h);
            let p = o.transform_pin(pin, w, h);
            prop_assert!(p.x >= 0 && p.x <= tw);
            prop_assert!(p.y >= 0 && p.y <= th);
            // transformed footprint preserves area
            prop_assert_eq!(tw * th, w * h);
        }
    }

    #[test]
    fn shape_curve_points_are_pareto_minimal(
        points in prop::collection::vec((1i64..500, 1i64..500), 1..20)
    ) {
        let curve = ShapeCurve::from_points(points.clone());
        let pts = curve.points();
        // strictly increasing width, strictly decreasing height
        for pair in pts.windows(2) {
            prop_assert!(pair[0].0 < pair[1].0);
            prop_assert!(pair[0].1 > pair[1].1);
        }
        // every original point is dominated by (or equal to) some curve point
        for (w, h) in points {
            prop_assert!(curve.fits(w, h));
        }
    }

    #[test]
    fn shape_curve_composition_min_area_at_least_sum(
        a_pts in prop::collection::vec((1i64..100, 1i64..100), 1..6),
        b_pts in prop::collection::vec((1i64..100, 1i64..100), 1..6),
    ) {
        let a = ShapeCurve::from_points(a_pts);
        let b = ShapeCurve::from_points(b_pts);
        let h = a.compose_horizontal(&b);
        let v = a.compose_vertical(&b);
        // a packing of both can never use less area than the two smallest members
        prop_assert!(h.min_area() >= a.min_area() + b.min_area());
        prop_assert!(v.min_area() >= a.min_area() + b.min_area());
    }

    #[test]
    fn shape_curve_fits_is_monotone(
        pts in prop::collection::vec((1i64..300, 1i64..300), 1..10),
        w in 1i64..400, h in 1i64..400,
    ) {
        let curve = ShapeCurve::from_points(pts);
        if curve.fits(w, h) {
            prop_assert!(curve.fits(w + 10, h));
            prop_assert!(curve.fits(w, h + 10));
        }
    }

    #[test]
    fn polish_moves_preserve_validity_and_leaf_set(n in 2usize..12, seed in 0u64..500, moves in 1usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut expr = PolishExpression::chain(n, CutDirection::Vertical);
        for _ in 0..moves {
            expr.random_move(&mut rng);
            prop_assert!(expr.is_valid());
        }
        let mut leaves = expr.to_tree().leaf_order();
        leaves.sort_unstable();
        prop_assert_eq!(leaves, (0..n).collect::<Vec<_>>());
    }
}
