//! Differential ECO fuzzer: random design × random edit sequence, the
//! incremental path asserted bit-identical to from-scratch.
//!
//! Each round drives one adversarial preset (`workload::adversarial`)
//! through two independent pipelines:
//!
//! * **incremental** — one [`placer_core::PlacementService`]: intern the
//!   base design, place it cold, then run a `replace` job that applies a
//!   seeded random edit script through the store (selective artifact
//!   invalidation) and warm-starts from the held base result, then place
//!   the mutated interned design cold again;
//! * **from-scratch** — `base.clone()`, the same edit script applied
//!   directly via [`netlist::design::Design::apply_edits`], interned into a
//!   *fresh* service with empty caches, and placed cold.
//!
//! The cold results of the two pipelines must agree bit for bit — the
//! in-place mutation plus whatever cached artifacts survived it can change
//! timing, never results. The preserved pre-session pipeline
//! (`bench::reference::evaluate_placement_reference`) re-derives the
//! metrics as a third opinion. Pure-geometry scripts additionally assert
//! the CI invariant from ISSUE 8: zero `Gnet` and zero `Gseq` rebuilds
//! across the replace *and* the post-edit cold job, straight off the
//! artifact-cache miss counters.
//!
//! The default tests are the quick CI shape (one mixed and one
//! geometry-only round per preset). `eco_fuzz_deep` widens to many seeds
//! and longer scripts; run it with `cargo test -p bench -- --ignored`.

use bench::reference::evaluate_placement_reference;
use eval::EvalConfig;
use geometry::{Orientation, Point};
use netlist::design::CellId;
use placer_core::{DesignHandle, EffortLevel, PlaceJob, PlacementService};
use std::collections::HashMap;
use workload::{adversarial_design, random_edits, random_geometry_edits, ADVERSARIAL_PRESETS};

fn job(design: DesignHandle) -> PlaceJob {
    PlaceJob::new(design, "hidap")
        .with_effort(EffortLevel::Fast)
        .with_seeds(vec![7])
        .with_evaluation(EvalConfig::standard())
}

fn service() -> PlacementService {
    PlacementService::new(baselines::default_registry())
}

/// One differential round: `count` random edits (optionally restricted to
/// pure geometry) on `preset`, incremental vs from-scratch.
fn differential_round(preset: &str, seed: u64, count: usize, geometry_only: bool) {
    let base = adversarial_design(preset);
    let edits = if geometry_only {
        random_geometry_edits(&base, seed, count)
    } else {
        random_edits(&base, seed, count)
    };
    assert_eq!(edits.len(), count, "the generator honors the requested script length");

    // --- incremental: one service, the store mutated in place ------------
    let mut inc = service();
    let handle = inc.intern(base.clone());
    let base_job = inc.submit(job(handle));
    inc.run_all();
    let cold_stats = inc.store().artifacts().stats();

    let replace = inc.submit(job(handle).with_replace(base_job, edits.clone()));
    inc.run_all();
    let warm = inc.take_result(replace).expect("replace ran").expect("replace succeeded");
    let log = warm.edit_log.clone().expect("a non-empty script leaves an edit log");
    assert_eq!(log.applied, count, "every edit of the script applied");
    let edited_view = inc.store().get_design(handle).expect("design stays resident");
    assert!(warm.outcome.placement.is_legal(edited_view), "warm re-place stays legal");
    assert!(warm.outcome.metrics.is_some(), "warm re-place evaluated");

    // post-edit cold place through the same (mutated) store
    let cold_job = inc.submit(job(handle));
    inc.run_all();
    let inc_cold = inc.take_result(cold_job).expect("cold job ran").expect("cold job succeeded");

    if geometry_only {
        assert!(log.diff.is_pure_geometry(), "a no-rewire script keeps the identity");
        let stats = inc.store().artifacts().stats();
        assert_eq!(
            stats.seq.misses, cold_stats.seq.misses,
            "{preset} seed {seed}: a pure-geometry script must rebuild zero Gseq"
        );
        assert_eq!(
            stats.net.misses, cold_stats.net.misses,
            "{preset} seed {seed}: a pure-geometry script must rebuild zero Gnet"
        );
    }

    // --- from-scratch: the same script on a clone, all caches cold --------
    let mut scratch = base.clone();
    let scratch_log = scratch.apply_edits(&edits).expect("the script applies to the clone");
    assert_eq!(
        scratch_log.diff, log.diff,
        "{preset} seed {seed}: store-applied and directly-applied edits disagree on the \
         fingerprint diff"
    );
    scratch.validate().expect("the edited design is well-formed");
    let mut fresh_svc = service();
    let fresh_handle = fresh_svc.intern(scratch.clone());
    let fresh_job = fresh_svc.submit(job(fresh_handle));
    fresh_svc.run_all();
    let fresh =
        fresh_svc.take_result(fresh_job).expect("fresh job ran").expect("fresh job succeeded");

    assert_eq!(
        inc_cold.outcome.placement, fresh.outcome.placement,
        "{preset} seed {seed}: incremental and from-scratch placements diverged"
    );
    assert_eq!(
        inc_cold.outcome.metrics, fresh.outcome.metrics,
        "{preset} seed {seed}: incremental and from-scratch metrics diverged"
    );

    // --- third opinion: the preserved one-shot reference pipeline ---------
    let map: HashMap<CellId, (Point, Orientation)> = inc_cold
        .outcome
        .placement
        .macros
        .iter()
        .map(|m| (m.cell, (m.location, m.orientation)))
        .collect();
    let reference = evaluate_placement_reference(&scratch, &map, &EvalConfig::standard());
    assert_eq!(
        &reference,
        inc_cold.outcome.metrics.as_ref().unwrap(),
        "{preset} seed {seed}: the reference pipeline disagrees with the session evaluator"
    );
}

#[test]
fn eco_fuzz_quick_mixed_edits() {
    for (i, preset) in ADVERSARIAL_PRESETS.iter().enumerate() {
        differential_round(preset, 0xEC0 + i as u64, 8, false);
    }
}

#[test]
fn eco_fuzz_quick_geometry_edits_keep_graphs_warm() {
    for (i, preset) in ADVERSARIAL_PRESETS.iter().enumerate() {
        differential_round(preset, 0x6E0 + i as u64, 8, true);
    }
}

/// Pinned regression: this deep-sweep round once produced an *illegal* warm
/// re-place — the edit batch defeated incremental legalization on the
/// near-full die and the warm path returned the overlapping placement
/// instead of falling back to the full flow (fixed in `hidap::flow`).
#[test]
fn eco_fuzz_regression_packed_die_defeats_incremental_legalization() {
    differential_round("adv_packed", 57366, 24, true);
}

/// The deep sweep: every preset × 6 seeds × both modes × two script
/// lengths. Minutes, not seconds — `cargo test -p bench -- --ignored`.
#[test]
#[ignore = "deep fuzz sweep; run explicitly with -- --ignored"]
fn eco_fuzz_deep() {
    for (i, preset) in ADVERSARIAL_PRESETS.iter().enumerate() {
        for seed in 0..6u64 {
            for &count in &[4usize, 24] {
                for geometry_only in [false, true] {
                    differential_round(
                        preset,
                        0xDEE7 + 101 * i as u64 + seed,
                        count,
                        geometry_only,
                    );
                }
            }
        }
    }
}
