//! Regenerates Fig. 9 of the paper: standard-cell density maps of circuit c3
//! placed with the three flows, plus the top-level block floorplan HiDaP
//! derived from the dataflow graph (Fig. 9d).
//!
//! ```text
//! cargo run --release -p bench --bin fig9 -- [--circuits c3] [--effort fast|default|paper]
//! ```

use baselines::{HandFp, IndEda};
use bench::experiments::parse_common_args;
use bench::report::ascii_floorplan;
use eval::{EvalConfig, Evaluator};
use hidap::HidapFlow;
use workload::presets::generate_circuit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (circuits, effort) = parse_common_args(&args, &["c3"]);
    let circuit = circuits.first().map(String::as_str).unwrap_or("c3");

    let generated = generate_circuit(circuit);
    let design = &generated.design;
    println!(
        "# Fig. 9 reproduction on {circuit}: {} cells, {} macros",
        design.num_cells(),
        design.num_macros()
    );
    // one evaluation session for all three flows (Gseq built once)
    let mut evaluator = Evaluator::new(EvalConfig::standard());

    // (a) IndEDA
    let indeda = IndEda::new(effort.indeda_config()).run(design).expect("IndEDA failed");
    let m_ind = evaluator.evaluate(design, &indeda);
    println!(
        "\n(a) IndEDA   WL = {:.3} m, peak density = {:.2}",
        m_ind.wirelength_m,
        m_ind.density.peak()
    );
    println!("{}", m_ind.density.to_ascii());

    // (c) HiDaP (printed before handFP to mirror the paper's layout order a/c/b)
    let hidap = HidapFlow::new(effort.hidap_config()).run(design).expect("HiDaP failed");
    let m_hidap = evaluator.evaluate(design, &hidap);
    println!(
        "(c) HiDaP    WL = {:.3} m, peak density = {:.2}",
        m_hidap.wirelength_m,
        m_hidap.density.peak()
    );
    println!("{}", m_hidap.density.to_ascii());

    // (b) handFP proxy
    let (handfp, wl) = HandFp::new(effort.handfp_config()).run(design).expect("handFP failed");
    let m_hand = evaluator.evaluate(design, &handfp);
    println!("(b) handFP   WL = {:.3} m, peak density = {:.2}", wl, m_hand.density.peak());
    println!("{}", m_hand.density.to_ascii());

    // (d) the top block floorplan of HiDaP (the Gdf view).
    println!("(d) HiDaP top-level block floorplan (dataflow blocks):");
    println!("{}", ascii_floorplan(design.die(), &hidap.top_blocks, 64));

    println!(
        "peak cell density:  IndEDA {:.2}   HiDaP {:.2}   handFP {:.2}",
        m_ind.density.peak(),
        m_hidap.density.peak(),
        m_hand.density.peak()
    );
}
