//! The λ exploration of Sect. V: HiDaP is run with λ ∈ {0.2, 0.5, 0.8} (plus
//! the 0.0 / 1.0 extremes for context) on every requested circuit, and the
//! per-λ measured wirelength is reported.
//!
//! ```text
//! cargo run --release -p bench --bin lambda_sweep -- [--circuits c1,c2] [--effort fast|default|paper]
//! ```

use bench::experiments::parse_common_args;
use eval::{EvalConfig, Evaluator};
use hidap::{HidapConfig, HidapFlow};
use workload::presets::generate_circuit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (circuits, effort) = parse_common_args(&args, &["c1", "c5", "c8"]);
    let lambdas = [0.0, 0.2, 0.5, 0.8, 1.0];

    println!("# lambda sweep — effort {effort:?}");
    print!("{:<8}", "circuit");
    for l in lambdas {
        print!("  WL@{l:<5}");
    }
    println!("  best");
    for circuit in &circuits {
        eprintln!("running {circuit} ...");
        let generated = generate_circuit(circuit);
        let design = &generated.design;
        // one session per circuit: every lambda candidate reuses its Gseq
        let mut evaluator = Evaluator::new(EvalConfig::standard());
        print!("{circuit:<8}");
        let mut best = (f64::INFINITY, 0.0);
        for lambda in lambdas {
            let config = HidapConfig { lambda, ..effort.hidap_config() };
            let placement = HidapFlow::new(config).run(design).expect("flow failed");
            let wl = evaluator.evaluate(design, &placement).wirelength_m;
            print!("  {wl:<8.3}");
            if wl < best.0 {
                best = (wl, lambda);
            }
        }
        println!("  lambda={}", best.1);
    }
}
