//! Regenerates Table III of the paper: per-circuit wirelength, congestion and
//! timing for the three flows (IndEDA stand-in, HiDaP, handFP proxy).
//!
//! The default scenario list is [`bench::experiments::TABLE_SCENARIOS`]:
//! the paper's c1–c8 stand-ins plus the `large_soc` scale scenario (~90k
//! cells, 200 macros — expect minutes for that row even at fast effort).
//!
//! ```text
//! cargo run --release -p bench --bin table3 -- [--circuits c1,c2,large_soc] [--effort fast|default|paper]
//! ```

use bench::experiments::{compare_flows, parse_common_args, TABLE_SCENARIOS};
use bench::report::{comparisons_json, format_table3};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (circuits, effort) = parse_common_args(&args, &TABLE_SCENARIOS);

    println!("# Table III reproduction — effort {effort:?}");
    println!(
        "# (synthetic c1-c8 stand-ins; macro counts match the paper, cell counts are scaled)\n"
    );

    let mut comparisons = Vec::new();
    for circuit in &circuits {
        eprintln!("running {circuit} ...");
        let cmp = compare_flows(circuit, effort);
        println!("{}", format_table3(std::slice::from_ref(&cmp)));
        comparisons.push(cmp);
    }

    println!("# full table\n{}", format_table3(&comparisons));
    let json = comparisons_json(&comparisons);
    let path = "table3_results.json";
    if std::fs::write(path, json).is_ok() {
        println!("# raw results written to {path}");
    }
}
