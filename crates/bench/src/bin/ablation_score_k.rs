//! Ablation of the latency-decay exponent `k` in `score(h, k)` (Sect. IV-D):
//! larger `k` makes long-latency dataflow matter less for block adjacency.
//!
//! ```text
//! cargo run --release -p bench --bin ablation_score_k -- [--circuits c2] [--effort fast|default|paper]
//! ```

use bench::experiments::parse_common_args;
use eval::{EvalConfig, Evaluator};
use hidap::{HidapConfig, HidapFlow};
use workload::presets::generate_circuit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (circuits, effort) = parse_common_args(&args, &["c2"]);
    let mut evaluator = Evaluator::new(EvalConfig::standard());

    println!("# score(h, k) exponent ablation — effort {effort:?}");
    println!("{:<8} {:>4} {:>12} {:>10} {:>10}", "circuit", "k", "WL (m)", "GRC%", "WNS%");
    for circuit in &circuits {
        eprintln!("running {circuit} ...");
        let generated = generate_circuit(circuit);
        let design = &generated.design;
        for k in [0u32, 1, 2, 3] {
            let config = HidapConfig { score_k: k, ..effort.hidap_config() };
            let placement = HidapFlow::new(config).run(design).expect("flow failed");
            let metrics = evaluator.evaluate(design, &placement);
            println!(
                "{:<8} {:>4} {:>12.3} {:>10.2} {:>10.1}",
                circuit,
                k,
                metrics.wirelength_m,
                metrics.grc_percent(),
                metrics.wns_percent()
            );
        }
    }
    println!("\n# k = 1 is the paper's formulation (bits / latency)");
}
