//! Regenerates Fig. 2/3 of the paper: the four-block system whose layout
//! differs depending on whether block flow, macro flow or their combination
//! drives the affinity.
//!
//! * λ = 1.0 — block flow only: A–D cluster around X, relative order arbitrary,
//! * λ = 0.0 — macro flow only: A→{B,C}→D chain respected, X can land anywhere,
//! * λ = 0.5 — combined: both structures respected (the paper's Fig. 3c).
//!
//! ```text
//! cargo run --release -p bench --bin fig3 -- [--effort fast|default|paper]
//! ```

use bench::experiments::parse_common_args;
use bench::report::ascii_floorplan;
use eval::{EvalConfig, Evaluator};
use hidap::{HidapConfig, HidapFlow};
use workload::presets::fig3_design;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, effort) = parse_common_args(&args, &[]);
    let design = fig3_design();
    println!(
        "# Fig. 3 reproduction: {} macros (blocks A-D) + standard-cell hub X, {} cells",
        design.num_macros(),
        design.num_cells()
    );

    let mut evaluator = Evaluator::new(EvalConfig::standard());
    for (label, lambda) in [
        ("(a) block flow only, lambda = 1.0", 1.0),
        ("(b) macro flow only, lambda = 0.0", 0.0),
        ("(c) combined,        lambda = 0.5", 0.5),
    ] {
        let config = HidapConfig { lambda, ..effort.hidap_config() };
        let placement = HidapFlow::new(config).run(&design).expect("flow failed");
        let metrics = evaluator.evaluate(&design, &placement);
        println!(
            "\n{label}:  WL = {:.4} m, legal = {}",
            metrics.wirelength_m,
            placement.is_legal(&design)
        );
        let rects: Vec<(String, geometry::Rect)> = placement
            .macros
            .iter()
            .map(|m| {
                (
                    design.cell(m.cell).name.clone(),
                    placement.rect_of(m.cell, &design).expect("placed"),
                )
            })
            .collect();
        println!("{}", ascii_floorplan(design.die(), &rects, 56));
    }
}
