//! Ablation of the hierarchical-declustering parameters (Sect. IV-B): the
//! paper fixes `min_area` = 40 % and `open_area` = 1 % of the floorplanned
//! node's area; this binary sweeps both and reports the effect on block count
//! and measured wirelength.
//!
//! ```text
//! cargo run --release -p bench --bin ablation_decluster -- [--circuits c2] [--effort fast|default|paper]
//! ```

use bench::experiments::parse_common_args;
use eval::{EvalConfig, Evaluator};
use hidap::decluster::hierarchical_declustering;
use hidap::shape_curves::ShapeCurveSet;
use hidap::{HidapConfig, HidapFlow};
use netlist::hierarchy::HierarchyTree;
use workload::presets::generate_circuit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (circuits, effort) = parse_common_args(&args, &["c2"]);
    let circuit = circuits.first().map(String::as_str).unwrap_or("c2");
    let generated = generate_circuit(circuit);
    let design = &generated.design;
    let ht = HierarchyTree::from_design(design);
    let mut evaluator = Evaluator::new(EvalConfig::standard());

    println!("# declustering ablation on {circuit} — effort {effort:?}");
    println!(
        "{:>10} {:>10} {:>14} {:>12} {:>12}",
        "open_area", "min_area", "top blocks", "WL (m)", "legal"
    );
    for open_area_frac in [0.002, 0.01, 0.05] {
        for min_area_frac in [0.1, 0.4, 0.8] {
            let config = HidapConfig { open_area_frac, min_area_frac, ..effort.hidap_config() };
            // block count at the top level
            let curves = ShapeCurveSet::generate(design, &ht, &config);
            let blocks = hierarchical_declustering(design, &ht, &curves, ht.root(), &config);
            // full flow quality
            let placement = HidapFlow::new(config).run(design).expect("flow failed");
            let wl = evaluator.evaluate(design, &placement).wirelength_m;
            println!(
                "{:>9.1}% {:>9.0}% {:>14} {:>12.3} {:>12}",
                open_area_frac * 100.0,
                min_area_frac * 100.0,
                blocks.len(),
                wl,
                placement.is_legal(design)
            );
        }
    }
    println!("\n# the paper's operating point is open_area = 1%, min_area = 40%");
}
