//! Regenerates Table II of the paper: average (geometric-mean) wirelength
//! normalized to handFP, average WNS, and the effort of each flow.
//!
//! ```text
//! cargo run --release -p bench --bin table2 -- [--circuits c1,c2] [--effort fast|default|paper]
//! ```

use bench::experiments::{compare_flows, parse_common_args};
use bench::report::{format_table2, format_table3};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = ["c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8"];
    let (circuits, effort) = parse_common_args(&args, &all);

    println!("# Table II reproduction — effort {effort:?}\n");
    let mut comparisons = Vec::new();
    for circuit in &circuits {
        eprintln!("running {circuit} ...");
        comparisons.push(compare_flows(circuit, effort));
    }

    println!("{}", format_table2(&comparisons));
    println!("# paper reference: IndEDA 1.143 / -39.1%  |  HiDaP 1.013 / -24.6%  |  handFP 1.000 / -17.9%");
    println!("\n# per-circuit detail\n{}", format_table3(&comparisons));
}
