//! Dense-data-plane microbench: analytical-placer sweeps + HPWL at
//! `large_soc` scale, hash-map stores vs the dense CSR path.
//!
//! Runs the pre-refactor hash-map implementation (preserved in
//! [`bench::reference`]) and the dense implementation on the same design and
//! macro placement, cross-checks that they produce bit-identical results, and
//! writes the timings to `BENCH_placer.json`.
//!
//! ```text
//! cargo run --release -p bench --bin bench_placer            # full large_soc
//! cargo run --release -p bench --bin bench_placer -- --scale 0.25 --repeats 5
//! ```

use bench::reference::{place_standard_cells_hashmap, to_dense, total_hpwl_hashmap};
use eval::{place_standard_cells, total_hpwl, PlacerConfig};
use geometry::{Orientation, Point};
use netlist::design::{CellId, Design};
use std::collections::HashMap;
use std::time::Instant;
use workload::presets::large_soc_config;
use workload::SocGenerator;

/// A deterministic macro grid placement (the bench measures the standard-cell
/// placer, not macro placement, so a cheap legal-ish grid is enough).
fn grid_macro_placement(design: &Design) -> HashMap<CellId, (Point, Orientation)> {
    let die = design.die();
    let macros: Vec<CellId> = design.macros().collect();
    let cols = (macros.len() as f64).sqrt().ceil() as i64;
    let mut mp = HashMap::new();
    for (i, &m) in macros.iter().enumerate() {
        let cell = design.cell(m);
        let col = i as i64 % cols;
        let row = i as i64 / cols;
        let x = (die.llx + col * die.width() / cols).min(die.urx - cell.width).max(die.llx);
        let y = (die.lly + row * die.height() / cols).min(die.ury - cell.height).max(die.lly);
        mp.insert(m, (Point::new(x, y), Orientation::N));
    }
    mp
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut repeats = 3usize;
    let mut out_path = "BENCH_placer.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().unwrap_or(1.0);
                i += 2;
            }
            "--repeats" if i + 1 < args.len() => {
                repeats = args[i + 1].parse().unwrap_or(3).max(1);
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument '{other}'");
                i += 1;
            }
        }
    }

    eprintln!("generating large_soc (scale {scale}) ...");
    let generated = SocGenerator::new(large_soc_config(scale)).generate();
    let design = &generated.design;
    let csr = design.connectivity();
    eprintln!(
        "design: {} cells, {} nets ({} pins), {} macros",
        design.num_cells(),
        design.num_nets(),
        csr.num_pins(),
        design.num_macros()
    );
    let mp = grid_macro_placement(design);
    let cfg = PlacerConfig::default();

    // --- hash-map reference ------------------------------------------------
    let mut hashmap_place_s = Vec::new();
    let mut hashmap_hpwl_s = Vec::new();
    let mut reference = HashMap::new();
    for _ in 0..repeats {
        let t = Instant::now();
        reference = place_standard_cells_hashmap(design, &mp, &cfg);
        hashmap_place_s.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let _ = total_hpwl_hashmap(design, &reference);
        hashmap_hpwl_s.push(t.elapsed().as_secs_f64());
    }
    let wl_reference = total_hpwl_hashmap(design, &reference);

    // --- dense CSR path ----------------------------------------------------
    let mut dense_place_s = Vec::new();
    let mut dense_hpwl_s = Vec::new();
    let mut dense = eval::CellPlacement::default();
    for _ in 0..repeats {
        let t = Instant::now();
        dense = place_standard_cells(design, &mp, &cfg);
        dense_place_s.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let _ = total_hpwl(design, &dense);
        dense_hpwl_s.push(t.elapsed().as_secs_f64());
    }
    let wl_dense = total_hpwl(design, &dense);

    // --- cross-check: both paths must agree bit for bit --------------------
    assert_eq!(wl_reference, wl_dense, "hashmap and dense HPWL disagree");
    assert_eq!(to_dense(design, &reference), dense, "hashmap and dense placements disagree");

    let hm_place = median(&mut hashmap_place_s);
    let hm_hpwl = median(&mut hashmap_hpwl_s);
    let dn_place = median(&mut dense_place_s);
    let dn_hpwl = median(&mut dense_hpwl_s);
    let speedup_place = hm_place / dn_place.max(1e-12);
    let speedup_hpwl = hm_hpwl / dn_hpwl.max(1e-12);
    let speedup_total = (hm_place + hm_hpwl) / (dn_place + dn_hpwl).max(1e-12);

    println!(
        "placer sweep: hashmap {:.1} ms, dense {:.1} ms ({speedup_place:.2}x)",
        hm_place * 1e3,
        dn_place * 1e3
    );
    println!(
        "HPWL:         hashmap {:.2} ms, dense {:.2} ms ({speedup_hpwl:.2}x)",
        hm_hpwl * 1e3,
        dn_hpwl * 1e3
    );
    println!(
        "combined speedup: {speedup_total:.2}x (HPWL {} DBU over {} nets)",
        wl_dense.dbu, wl_dense.routed_nets
    );

    let json = format!(
        "{{\n  \"bench\": \"placer_sweep_plus_hpwl\",\n  \"workload\": \"large_soc\",\n  \"scale\": {scale},\n  \"cells\": {},\n  \"nets\": {},\n  \"pins\": {},\n  \"macros\": {},\n  \"repeats\": {repeats},\n  \"hashmap_place_ms\": {:.3},\n  \"hashmap_hpwl_ms\": {:.3},\n  \"dense_place_ms\": {:.3},\n  \"dense_hpwl_ms\": {:.3},\n  \"speedup_place\": {:.3},\n  \"speedup_hpwl\": {:.3},\n  \"speedup_combined\": {:.3},\n  \"hpwl_dbu\": {},\n  \"routed_nets\": {},\n  \"results_bit_identical\": true\n}}\n",
        design.num_cells(),
        design.num_nets(),
        csr.num_pins(),
        design.num_macros(),
        hm_place * 1e3,
        hm_hpwl * 1e3,
        dn_place * 1e3,
        dn_hpwl * 1e3,
        speedup_place,
        speedup_hpwl,
        speedup_total,
        wl_dense.dbu,
        wl_dense.routed_nets,
    );
    std::fs::write(&out_path, json).expect("write BENCH_placer.json");
    eprintln!("wrote {out_path}");
}
