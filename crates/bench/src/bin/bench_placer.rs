//! Dense-data-plane macrobench at `large_soc` scale, in three parts:
//!
//! 1. analytical-placer sweeps + HPWL, hash-map stores vs the dense CSR path
//!    (the PR-2 comparison, preserved),
//! 2. `evaluator_reuse`: a 16-candidate evaluation sweep through the
//!    pre-session one-shot pipeline preserved in
//!    `bench::reference::evaluate_placement_reference` (one `to_map()`, one
//!    rescan-sweep placement and one fresh `Gseq` per candidate) vs a reused
//!    [`eval::Evaluator`] session (incremental-sum placer sweeps, one `Gseq`
//!    for the whole sweep, serial and per-worker-clone parallel variants),
//! 3. `service_reuse`: a fleet of distinct designs placed **twice** through
//!    one [`placer_core::PlacementService`] — the cold pass builds every
//!    per-design `Gseq` into the store's shared artifact cache, the warm
//!    pass reuses them (asserted in-process through the cache-hit
//!    counters), and the serial warm/cold timing ratio measures the
//!    artifact reuse,
//! 4. `artifact_reuse`: the full design-store lifecycle on a fresh service —
//!    a **cold** pass (every `Gnet` and `Gseq` built), a **warm** pass
//!    (asserted in-process to perform zero `NetGraph` *and* zero `SeqGraph`
//!    builds — the CI gate), then every design **released, evicted and
//!    re-interned** and a rebuilt pass run from empty caches. A fourth
//!    **revived** pass repeats the lifecycle on a spill-dir-backed store
//!    (`docs/MEMORY.md`): eviction demotes every graph and the designs'
//!    CSR to disk, and the pass after re-interning is asserted in-process
//!    to perform zero graph rebuilds — every miss served by
//!    deserialization. Placements and metrics must be bit-identical
//!    across all four passes (eviction changes timing, never results).
//! 5. `serve_session`: the same N-job fleet scripted through the
//!    `hidap --serve` daemon loop (`crates/server`), cold session vs warm
//!    session against one live daemon, with every `job-done` frame's
//!    metrics asserted bit-identical to direct `PlacementService`
//!    execution — the wire adds overhead, never drift.
//!
//! 6. `eco_incremental`: the ECO re-place loop — place one design, resize
//!    one macro (a pure-geometry edit), then re-place cold vs warm through
//!    a `replace` job. The warm job rebuilds zero graphs and its result is
//!    asserted bit-identical to the warm flow run directly in process; the
//!    cold/warm floors give the measured ECO speedup.
//!
//! 7. `--scale-sweep`: the million-cell scale axis — each scale point is
//!    generated, emitted to Verilog/LEF/DEF text, re-parsed through the
//!    streaming parsers, placed and measured (parse ms, place ms, HPWL ms,
//!    resident bytes via `HeapSize`), with the dense result asserted
//!    bit-identical to the preserved `bench::reference` hash-map path at
//!    every point. Lands as the `scale_curve` array in the JSON. Scale 12
//!    is the `mega_soc` preset (~1M cells); `--quick` sweeps small scales
//!    only (the CI shape), `--scales 0.5,2` overrides the list.
//!
//! All parts cross-check that the before/after paths produce bit-identical
//! results, and the timings land in `BENCH_placer.json`. Warm/cold ratios
//! are measured **floor against floor**: a store is only cold once, but
//! fresh stores are cheap, so the cold time is the minimum over N fresh
//! services and the warm time the minimum over N repeats on the survivor.
//! The ratios are asserted ≥ 1.0 — a warm pass does strictly less work, so
//! only a measurement-structure bug can lose.
//!
//! ```text
//! cargo run --release -p bench --bin bench_placer            # full large_soc
//! cargo run --release -p bench --bin bench_placer -- --scale 0.25 --repeats 5
//! cargo run --release -p bench --bin bench_placer -- --quick # CI-sized run
//! cargo run --release -p bench --bin bench_placer -- --scale-sweep   # + curve
//! ```

use bench::reference::{place_standard_cells_hashmap, to_dense, total_hpwl_hashmap};
use eval::{place_standard_cells, total_hpwl, EvalConfig, Evaluator, PlacerConfig};
use geometry::{Orientation, Point};
use hidap::{MacroPlacement, PlacedMacro};
use netlist::design::{CellId, Design};
use placer_core::{EffortLevel, JobId, JobResult, PlaceJob, PlaceRequest, PlacementService};
use std::collections::HashMap;
use std::time::Instant;
use workload::presets::{large_soc_config, service_fleet};
use workload::SocGenerator;

/// A deterministic macro grid placement (the bench measures the evaluation
/// substrate, not macro placement, so a cheap legal-ish grid is enough).
/// `rotation` shifts which macro lands in which grid slot, producing distinct
/// sweep candidates from the same grid.
fn grid_macro_placement(design: &Design, rotation: usize) -> MacroPlacement {
    let die = design.die();
    let macros: Vec<CellId> = design.macros().collect();
    let cols = (macros.len() as f64).sqrt().ceil() as i64;
    let mut placement = MacroPlacement::default();
    for (i, &m) in macros.iter().enumerate() {
        let cell = design.cell(m);
        let slot = (i + rotation) % macros.len();
        let col = slot as i64 % cols;
        let row = slot as i64 / cols;
        let x = (die.llx + col * die.width() / cols).min(die.urx - cell.width).max(die.llx);
        let y = (die.lly + row * die.height() / cols).min(die.ury - cell.height).max(die.lly);
        placement.macros.push(PlacedMacro {
            cell: m,
            location: Point::new(x, y),
            orientation: Orientation::N,
        });
    }
    placement
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// One point on the scale curve: the full text-to-metrics pipeline at one
/// workload scale.
struct ScalePoint {
    scale: f64,
    cells: usize,
    nets: usize,
    macros: usize,
    gen_ms: f64,
    parse_ms: f64,
    place_ms: f64,
    hpwl_ms: f64,
    parse_bytes: usize,
    peak_bytes: usize,
}

/// Ceiling on the streaming parsers' per-cell resident cost (the parsed
/// `Design`'s `heap_bytes` over its cell count, before the CSR is built).
/// Small designs carry fixed overheads, so the bound is calibrated against
/// the quick scales (~395 B/cell at 0.05, falling with scale) and holds
/// with ≥1.5x headroom at every measured point;
/// a regression in the parsers' compaction (owned-token vectors, per-name
/// `String`s) blows past it immediately.
const PARSE_BYTES_PER_CELL_CEILING: usize = 600;

/// Generates `large_soc_config(scale)`, emits it to Verilog/LEF/DEF text,
/// re-parses it through the streaming parsers, places it on the dense path
/// and cross-checks every result against the preserved
/// `bench::reference` hash-map pipeline — the same end-to-end shape a user
/// runs, measured at one scale.
fn sweep_point(scale: f64) -> ScalePoint {
    use netlist::HeapSize;

    eprintln!("scale sweep: generating scale {scale} ...");
    let t = Instant::now();
    let generated = SocGenerator::new(large_soc_config(scale)).generate();
    let verilog = workload::emit::emit_verilog(&generated.design);
    let lef = workload::emit::emit_lef(&generated.design, &generated.library, 1000);
    let def = workload::emit::emit_def(&generated.design, 1000, &HashMap::new());
    let gen_s = t.elapsed().as_secs_f64();

    eprintln!(
        "scale sweep: parsing {:.1} MiB of Verilog ...",
        verilog.len() as f64 / (1u64 << 20) as f64
    );
    let t = Instant::now();
    let lef_file = netlist::lef::parse_lef(&lef).expect("emitted LEF parses");
    let elaborate =
        netlist::verilog::ElaborateOptions { library: lef_file.library, ..Default::default() };
    let mut design = netlist::verilog::parse_verilog(&verilog, None, &elaborate)
        .expect("emitted Verilog parses");
    netlist::def::parse_def(&def).expect("emitted DEF parses").apply_to(&mut design);
    let parse_s = t.elapsed().as_secs_f64();
    let parse_bytes = design.heap_bytes();

    // the parsed design is the generated design: same id families, same die
    assert_eq!(design.num_cells(), generated.design.num_cells(), "cell count drifts");
    assert_eq!(design.num_nets(), generated.design.num_nets(), "net count drifts");
    assert_eq!(design.num_macros(), generated.design.num_macros(), "macro count drifts");
    assert_eq!(design.num_ports(), generated.design.num_ports(), "port count drifts");
    assert_eq!(design.die(), generated.design.die(), "die drifts through the DEF");
    drop(generated);

    let cells = design.num_cells();
    assert!(
        parse_bytes <= cells * PARSE_BYTES_PER_CELL_CEILING,
        "parsed design costs {} bytes for {cells} cells ({} B/cell) — over the \
         {PARSE_BYTES_PER_CELL_CEILING} B/cell streaming-parser ceiling",
        parse_bytes,
        parse_bytes / cells.max(1)
    );

    eprintln!("scale sweep: placing {cells} cells ...");
    design.connectivity(); // build the CSR outside the placer timing
    let base = grid_macro_placement(&design, 0);
    let cfg = PlacerConfig::default();
    let t = Instant::now();
    let dense = place_standard_cells(&design, &base, &cfg);
    let place_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let wl = total_hpwl(&design, &dense);
    let hpwl_s = t.elapsed().as_secs_f64();
    // design + name tables + CSR, the resident footprint of the point
    let peak_bytes = design.heap_bytes();

    // every point on the curve is bit-identical to the preserved hash-map
    // reference — scaling up never buys a different answer
    let reference = place_standard_cells_hashmap(&design, &base.to_map(), &cfg);
    assert_eq!(
        total_hpwl_hashmap(&design, &reference),
        wl,
        "dense and reference HPWL disagree at scale {scale}"
    );
    assert_eq!(
        to_dense(&design, &reference),
        dense,
        "dense and reference placements disagree at scale {scale}"
    );

    ScalePoint {
        scale,
        cells,
        nets: design.num_nets(),
        macros: design.num_macros(),
        gen_ms: gen_s * 1e3,
        parse_ms: parse_s * 1e3,
        place_ms: place_s * 1e3,
        hpwl_ms: hpwl_s * 1e3,
        parse_bytes,
        peak_bytes,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut repeats = 3usize;
    let mut candidates = 16usize;
    let mut out_path = "BENCH_placer.json".to_string();
    let mut quick = false;
    let mut spill_dir_arg: Option<std::path::PathBuf> = None;
    let mut scale_sweep = false;
    let mut sweep_scales: Option<Vec<f64>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().unwrap_or(1.0);
                i += 2;
            }
            "--repeats" if i + 1 < args.len() => {
                repeats = args[i + 1].parse().unwrap_or(3).max(1);
                i += 2;
            }
            "--candidates" if i + 1 < args.len() => {
                candidates = args[i + 1].parse().unwrap_or(16).max(1);
                i += 2;
            }
            "--quick" => {
                // CI-sized run: the same equality checks on a small design
                quick = true;
                scale = 0.05;
                repeats = 1;
                candidates = 4;
                i += 1;
            }
            "--scale-sweep" => {
                scale_sweep = true;
                i += 1;
            }
            "--scales" if i + 1 < args.len() => {
                sweep_scales = Some(
                    args[i + 1]
                        .split(',')
                        .map(|s| s.trim().parse().expect("--scales takes comma-separated floats"))
                        .collect(),
                );
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--spill-dir" if i + 1 < args.len() => {
                // scratch directory for the artifact-revive pass; defaults
                // to a per-process temp dir, wiped before each round
                spill_dir_arg = Some(std::path::PathBuf::from(&args[i + 1]));
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument '{other}'");
                i += 1;
            }
        }
    }
    // warm timings are min-of-N; the quick run leans on more repeats to
    // beat scheduler noise on a small design
    let warm_passes = if quick { 5 } else { 3 };

    eprintln!("generating large_soc (scale {scale}) ...");
    let generated = SocGenerator::new(large_soc_config(scale)).generate();
    let design = &generated.design;
    let csr = design.connectivity();
    eprintln!(
        "design: {} cells, {} nets ({} pins), {} macros",
        design.num_cells(),
        design.num_nets(),
        csr.num_pins(),
        design.num_macros()
    );
    let base_placement = grid_macro_placement(design, 0);
    let mp = base_placement.to_map();
    let cfg = PlacerConfig::default();

    // --- hash-map reference ------------------------------------------------
    let mut hashmap_place_s = Vec::new();
    let mut hashmap_hpwl_s = Vec::new();
    let mut reference = HashMap::new();
    for _ in 0..repeats {
        let t = Instant::now();
        reference = place_standard_cells_hashmap(design, &mp, &cfg);
        hashmap_place_s.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let _ = total_hpwl_hashmap(design, &reference);
        hashmap_hpwl_s.push(t.elapsed().as_secs_f64());
    }
    let wl_reference = total_hpwl_hashmap(design, &reference);

    // --- dense CSR path ----------------------------------------------------
    let mut dense_place_s = Vec::new();
    let mut dense_hpwl_s = Vec::new();
    let mut dense = eval::CellPlacement::default();
    for _ in 0..repeats {
        let t = Instant::now();
        dense = place_standard_cells(design, &base_placement, &cfg);
        dense_place_s.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let _ = total_hpwl(design, &dense);
        dense_hpwl_s.push(t.elapsed().as_secs_f64());
    }
    let wl_dense = total_hpwl(design, &dense);

    // --- cross-check: both paths must agree bit for bit --------------------
    assert_eq!(wl_reference, wl_dense, "hashmap and dense HPWL disagree");
    assert_eq!(to_dense(design, &reference), dense, "hashmap and dense placements disagree");

    let hm_place = median(&mut hashmap_place_s);
    let hm_hpwl = median(&mut hashmap_hpwl_s);
    let dn_place = median(&mut dense_place_s);
    let dn_hpwl = median(&mut dense_hpwl_s);
    let speedup_place = hm_place / dn_place.max(1e-12);
    let speedup_hpwl = hm_hpwl / dn_hpwl.max(1e-12);
    let speedup_total = (hm_place + hm_hpwl) / (dn_place + dn_hpwl).max(1e-12);

    println!(
        "placer sweep: hashmap {:.1} ms, dense {:.1} ms ({speedup_place:.2}x)",
        hm_place * 1e3,
        dn_place * 1e3
    );
    println!(
        "HPWL:         hashmap {:.2} ms, dense {:.2} ms ({speedup_hpwl:.2}x)",
        hm_hpwl * 1e3,
        dn_hpwl * 1e3
    );
    println!(
        "combined speedup: {speedup_total:.2}x (HPWL {} DBU over {} nets)",
        wl_dense.dbu, wl_dense.routed_nets
    );

    // --- evaluator reuse: one-shot baseline vs reused session --------------
    //
    // Three shapes of the same 16-candidate sweep:
    //  * one-shot — the pre-session `evaluate_placement` preserved verbatim
    //    in `bench::reference` (the call shape every bench binary used): one
    //    `to_map()` HashMap, one rescan-sweep standard-cell placement and
    //    one freshly built Gseq per candidate;
    //  * session (serial) — one `Evaluator`, candidates as `PlacementView`s:
    //    the map and Gseq rebuilds disappear and the placer sweep runs on
    //    incrementally maintained per-net sums;
    //  * session (parallel) — `Evaluator` is `Clone + Send` around a shared
    //    `ArtifactCache`, so per-worker clones fan the sweep across all
    //    cores while still building one Gseq total (the shape `BatchRunner`
    //    uses). The old boundary had no shareable session to clone.
    let sweep: Vec<MacroPlacement> =
        (0..candidates).map(|c| grid_macro_placement(design, c * 7 + 1)).collect();
    let eval_cfg = EvalConfig::standard();

    eprintln!("evaluator sweep: {candidates} candidates, one-shot path ...");
    let t = Instant::now();
    let oneshot_metrics: Vec<_> = sweep
        .iter()
        .map(|candidate| {
            // the pre-session boundary: a map per candidate, a Gseq per call
            bench::reference::evaluate_placement_reference(design, &candidate.to_map(), &eval_cfg)
        })
        .collect();
    let oneshot_s = t.elapsed().as_secs_f64();

    eprintln!("evaluator sweep: {candidates} candidates, reused session (serial) ...");
    let mut evaluator = Evaluator::new(eval_cfg);
    let t = Instant::now();
    let reused_metrics: Vec<_> =
        sweep.iter().map(|candidate| evaluator.evaluate(design, candidate)).collect();
    let reused_s = t.elapsed().as_secs_f64();

    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("evaluator sweep: {candidates} candidates, reused session ({workers} workers) ...");
    let session = Evaluator::new(eval_cfg);
    let t = Instant::now();
    let parallel_metrics = {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let next = AtomicUsize::new(0);
        let slots: Vec<_> = sweep.iter().map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers.min(sweep.len()) {
                // per-worker clones share one ArtifactCache: one Gseq total
                let mut worker = session.clone();
                let next = &next;
                let slots = &slots;
                let sweep = &sweep;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    let Some(candidate) = sweep.get(i) else { break };
                    let metrics = worker.evaluate(design, candidate);
                    *slots[i].lock().expect("metrics slot") = Some(metrics);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("metrics slot").expect("every candidate ran"))
            .collect::<Vec<_>>()
    };
    let parallel_s = t.elapsed().as_secs_f64();

    // fixed-seed metrics must be bit-identical across all three paths
    for ((one, reused), parallel) in
        oneshot_metrics.iter().zip(&reused_metrics).zip(&parallel_metrics)
    {
        assert_eq!(one, reused, "one-shot and serial-session metrics disagree");
        assert_eq!(one, parallel, "one-shot and parallel-session metrics disagree");
    }
    let speedup_eval = oneshot_s / reused_s.max(1e-12);
    let speedup_parallel = oneshot_s / parallel_s.max(1e-12);
    println!(
        "evaluator sweep ({candidates} candidates): one-shot {:.1} ms, session {:.1} ms \
         ({speedup_eval:.2}x), session x{workers} workers {:.1} ms ({speedup_parallel:.2}x)",
        oneshot_s * 1e3,
        reused_s * 1e3,
        parallel_s * 1e3
    );

    // --- service reuse: a fleet placed twice through one service -----------
    //
    // N distinct designs, each placed once per pass (hidap fast, full
    // evaluation) through a single `PlacementService`. The cold pass builds
    // every per-design `Gseq` into the store's shared LRU; the warm pass
    // resubmits the same jobs and reuses them. The serial warm/cold ratio is
    // the measured benefit of store-owned artifacts; results must be
    // bit-identical (shared caches change timing, never outcomes).
    let fleet_size = 3usize;
    let fleet_scale = scale.clamp(0.05, 1.0);
    eprintln!(
        "service reuse: generating a fleet of {fleet_size} designs (scale {fleet_scale}) ..."
    );
    let fleet: Vec<Design> =
        service_fleet(fleet_size, fleet_scale).into_iter().map(|g| g.design).collect();

    fn run_fleet_pass(
        service: &mut PlacementService,
        handles: &[placer_core::DesignHandle],
        eval_cfg: EvalConfig,
    ) -> (Vec<JobResult>, f64) {
        let jobs: Vec<JobId> = handles
            .iter()
            .map(|&h| {
                service.submit(
                    PlaceJob::new(h, "hidap")
                        .with_effort(EffortLevel::Fast)
                        .with_evaluation(eval_cfg),
                )
            })
            .collect();
        let t = Instant::now();
        service.run_all();
        let elapsed = t.elapsed().as_secs_f64();
        let results = jobs
            .into_iter()
            .map(|j| service.take_result(j).expect("job ran").expect("job succeeded"))
            .collect();
        (results, elapsed)
    }

    // A store is only cold once, but fresh stores are cheap. Each round
    // runs a cold pass on a fresh service and a warm pass on that same
    // service back to back — paired samples share ambient noise — and both
    // timings keep their minimum. Rounds continue past the `warm_passes`
    // floor (up to 5x) until the warm floor dips under the cold floor: the
    // warm pass does strictly less work, so its true floor IS lower, and
    // on a noisy box extra rounds separate the floors instead of flaking.
    eprintln!("service reuse: paired cold/warm passes ({warm_passes}+ rounds) ...");
    let mut service = PlacementService::new(baselines::default_registry());
    let mut handles: Vec<placer_core::DesignHandle> =
        fleet.iter().map(|d| service.intern(d.clone())).collect();
    let mut cold_results = Vec::new();
    let mut warm_results = Vec::new();
    let mut cold_s = f64::INFINITY;
    let mut warm_s = f64::INFINITY;
    for round in 1..=warm_passes * 5 {
        if round > 1 {
            service = PlacementService::new(baselines::default_registry());
            handles = fleet.iter().map(|d| service.intern(d.clone())).collect();
        }
        let (results, s) = run_fleet_pass(&mut service, &handles, eval_cfg);
        cold_results = results;
        cold_s = cold_s.min(s);
        assert_eq!(
            service.store().artifacts().stats().seq.misses as usize,
            fleet_size,
            "cold pass builds one Gseq per design"
        );
        let (results, s) = run_fleet_pass(&mut service, &handles, eval_cfg);
        warm_results = results;
        warm_s = warm_s.min(s);
        if round >= warm_passes && warm_s <= cold_s {
            break;
        }
    }
    let seq_built = service.store().artifacts().stats().seq.misses;
    let seq_reused = service.store().artifacts().stats().seq.hits;
    // the warm-cache pass must actually reuse the stored SeqGraphs, and
    // rebuild nothing (miss counter frozen at the cold count) — this gate
    // runs before the JSON artifact is written/uploaded
    assert!(seq_reused > 0, "warm pass must hit the store's SeqGraph cache (hits = {seq_reused})");
    assert_eq!(seq_built as usize, fleet_size, "warm pass must not rebuild any graph");
    for (cold, warm) in cold_results.iter().zip(&warm_results) {
        assert_eq!(
            cold.outcome.placement, warm.outcome.placement,
            "cold and warm placements disagree"
        );
        assert_eq!(cold.outcome.metrics, warm.outcome.metrics, "cold and warm metrics disagree");
    }
    let speedup_service = cold_s / warm_s.max(1e-12);
    assert!(
        speedup_service >= 1.0,
        "a warm pass does strictly less work than the cold pass, yet measured \
         {speedup_service:.3}x (cold floor {cold_s:.4}s vs warm floor {warm_s:.4}s)"
    );
    println!(
        "service reuse ({fleet_size} designs x2): cold {:.1} ms, warm {:.1} ms \
         ({speedup_service:.2}x, {seq_built} Gseq built, {seq_reused} reused)",
        cold_s * 1e3,
        warm_s * 1e3
    );

    // --- artifact reuse: cold / warm / evicted-and-rebuilt hidap passes ----
    //
    // The full design-store lifecycle on a fresh service. Pass 1 (cold)
    // builds every Gnet and Gseq into the byte-budgeted artifact cache;
    // pass 2 (warm) must perform ZERO NetGraph builds and ZERO SeqGraph
    // builds — the in-process CI gate mirroring the Gseq assertion above —
    // so a hidap run against a warm design touches no graph constructor at
    // all. Then every handle is released, `evict_unreferenced` drops the
    // designs AND their artifacts, the fleet is re-interned under the same
    // handles, and pass 3 rebuilds from empty caches. All three passes must
    // produce bit-identical placements and metrics.
    eprintln!("artifact reuse: paired cold/warm passes ({warm_passes}+ rounds) ...");
    let mut art_service = PlacementService::new(baselines::default_registry());
    let mut art_handles: Vec<placer_core::DesignHandle> = Vec::new();
    let mut art_cold = Vec::new();
    let mut art_warm = Vec::new();
    let mut art_cold_s = f64::INFINITY;
    let mut art_warm_s = f64::INFINITY;
    let mut cold_stats = art_service.store().artifacts().stats();
    for round in 1..=warm_passes * 5 {
        let mut fresh = PlacementService::new(baselines::default_registry());
        let fresh_handles: Vec<_> = fleet.iter().map(|d| fresh.intern(d.clone())).collect();
        let (results, s) = run_fleet_pass(&mut fresh, &fresh_handles, eval_cfg);
        art_cold = results;
        art_cold_s = art_cold_s.min(s);
        art_service = fresh;
        art_handles = fresh_handles;
        cold_stats = art_service.store().artifacts().stats();
        assert_eq!(cold_stats.net.misses as usize, fleet_size, "cold pass: one Gnet per design");
        assert_eq!(cold_stats.seq.misses as usize, fleet_size, "cold pass: one Gseq per design");
        let (results, s) = run_fleet_pass(&mut art_service, &art_handles, eval_cfg);
        art_warm = results;
        art_warm_s = art_warm_s.min(s);
        if round >= warm_passes && art_warm_s <= art_cold_s {
            break;
        }
    }
    let warm_stats = art_service.store().artifacts().stats();
    // CI gate: a warm hidap run performs zero NetGraph builds (and zero
    // SeqGraph builds) — asserted before the JSON artifact is written
    assert_eq!(
        warm_stats.net.misses, cold_stats.net.misses,
        "warm hidap runs must perform zero NetGraph builds"
    );
    assert_eq!(
        warm_stats.seq.misses, cold_stats.seq.misses,
        "warm hidap runs must perform zero SeqGraph builds"
    );
    assert!(warm_stats.net.hits > cold_stats.net.hits, "warm pass reuses the stored NetGraphs");
    let net_built = warm_stats.net.misses;
    let net_reused = warm_stats.net.hits;

    eprintln!("artifact reuse: evicting and re-interning the fleet ...");
    for &h in &art_handles {
        art_service.release(h);
    }
    let evicted = art_service.store_mut().evict_unreferenced();
    assert_eq!(evicted, fleet_size, "every released design is evicted");
    assert_eq!(
        art_service.store().artifacts().resident_bytes(),
        0,
        "design eviction purges the designs' artifacts"
    );
    let revived: Vec<_> = fleet.iter().map(|d| art_service.intern(d.clone())).collect();
    assert_eq!(revived, art_handles, "re-interned designs revive their old handles");

    eprintln!("artifact reuse: rebuilt pass ...");
    let (art_rebuilt, art_rebuilt_s) = run_fleet_pass(&mut art_service, &art_handles, eval_cfg);
    let rebuilt_stats = art_service.store().artifacts().stats();
    assert_eq!(
        rebuilt_stats.net.misses as usize,
        2 * fleet_size,
        "the rebuilt pass reconstructs every Gnet from scratch"
    );
    for ((cold, warm), rebuilt) in art_cold.iter().zip(&art_warm).zip(&art_rebuilt) {
        assert_eq!(
            cold.outcome.placement, warm.outcome.placement,
            "cold and warm placements disagree"
        );
        assert_eq!(
            cold.outcome.placement, rebuilt.outcome.placement,
            "cold and evicted-and-rebuilt placements disagree"
        );
        assert_eq!(cold.outcome.metrics, warm.outcome.metrics, "cold/warm metrics disagree");
        assert_eq!(
            cold.outcome.metrics, rebuilt.outcome.metrics,
            "cold and evicted-and-rebuilt metrics disagree"
        );
    }
    let speedup_artifact = art_cold_s / art_warm_s.max(1e-12);
    assert!(
        speedup_artifact >= 1.0,
        "a zero-rebuild warm pass must not lose to the cold pass, yet measured \
         {speedup_artifact:.3}x (cold floor {art_cold_s:.4}s vs warm floor {art_warm_s:.4}s)"
    );
    println!(
        "artifact reuse ({fleet_size} designs x3): cold {:.1} ms, warm {:.1} ms \
         ({speedup_artifact:.2}x), rebuilt {:.1} ms ({net_built} Gnet built, {net_reused} \
         reused, {evicted} designs evicted)",
        art_cold_s * 1e3,
        art_warm_s * 1e3,
        art_rebuilt_s * 1e3
    );

    // --- artifact revive: the disk spill tier turns rebuilds into loads ---
    //
    // The same eviction lifecycle as the rebuilt pass, but the store carries
    // a scratch spill directory (the bench-owned analogue of `--spill-dir`,
    // see docs/MEMORY.md): eviction demotes every Gnet/Gseq and the designs'
    // cached CSR to disk, and the pass after re-interning *revives* them by
    // deserialization — ZERO constructor runs. Cold and revived samples are
    // paired per round and keep running minimums (the noise-floor pattern
    // above), with rounds extending until the revived floor dips under its
    // paired cold floor.
    eprintln!("artifact revive: paired cold/revived passes ({warm_passes}+ rounds) ...");
    let spill_dir = spill_dir_arg.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("hidap-bench-spill-{}", std::process::id()))
    });
    let mut art_revived = Vec::new();
    let mut art_spill_cold_s = f64::INFINITY;
    let mut art_revived_s = f64::INFINITY;
    let mut revived_service = None;
    for round in 1..=warm_passes * 5 {
        // every round starts from an empty tier, so its cold pass really
        // builds and its eviction really spills
        let _ = std::fs::remove_dir_all(&spill_dir);
        let store = placer_core::DesignStore::new().with_spill_dir(&spill_dir);
        let mut svc = PlacementService::with_store(baselines::default_registry(), store);
        let hs: Vec<_> = fleet.iter().map(|d| svc.intern(d.clone())).collect();
        let (results, s) = run_fleet_pass(&mut svc, &hs, eval_cfg);
        for (cold, spill_cold) in art_cold.iter().zip(&results) {
            assert_eq!(
                cold.outcome.placement, spill_cold.outcome.placement,
                "attaching a spill directory changed a cold placement"
            );
        }
        art_spill_cold_s = art_spill_cold_s.min(s);

        for &h in &hs {
            svc.release(h);
        }
        let dropped = svc.store_mut().evict_unreferenced();
        assert_eq!(dropped, fleet_size, "every released design is evicted");
        assert_eq!(
            svc.store().artifacts().stats().spills() as usize,
            2 * fleet_size,
            "eviction demotes every Gnet and Gseq to the spill tier"
        );
        let rehydrated: Vec<_> = fleet.iter().map(|d| svc.intern(d.clone())).collect();
        assert_eq!(rehydrated, hs, "re-interned designs revive their old handles");

        let (results, s) = run_fleet_pass(&mut svc, &hs, eval_cfg);
        art_revived = results;
        art_revived_s = art_revived_s.min(s);
        revived_service = Some(svc);
        if round >= warm_passes && art_revived_s <= art_spill_cold_s {
            break;
        }
    }
    let revived_service = revived_service.expect("at least one revive round ran");
    let revived_stats = revived_service.store().artifacts().stats();
    // CI gate: the revived pass performs ZERO graph rebuilds — every miss is
    // served from the spill tier by deserialization, so the per-kind miss
    // counters stay frozen at the cold count (asserted before the JSON
    // artifact is written/uploaded)
    assert_eq!(
        revived_stats.net.misses as usize, fleet_size,
        "the revived pass must not rebuild any NetGraph"
    );
    assert_eq!(
        revived_stats.seq.misses as usize, fleet_size,
        "the revived pass must not rebuild any SeqGraph"
    );
    assert_eq!(
        revived_stats.net.revives as usize, fleet_size,
        "every evicted NetGraph is revived from disk"
    );
    assert_eq!(
        revived_stats.seq.revives as usize, fleet_size,
        "every evicted SeqGraph is revived from disk"
    );
    let revive_svc_stats = revived_service.stats();
    assert_eq!(
        revive_svc_stats.csr_revives as usize, fleet_size,
        "re-interning revives every design's spilled CSR connectivity"
    );
    for (cold, revived) in art_cold.iter().zip(&art_revived) {
        assert_eq!(
            cold.outcome.placement, revived.outcome.placement,
            "cold and revived placements disagree"
        );
        assert_eq!(
            cold.outcome.metrics, revived.outcome.metrics,
            "cold and revived metrics disagree"
        );
    }
    let speedup_revived = art_spill_cold_s / art_revived_s.max(1e-12);
    assert!(
        speedup_revived >= 1.0,
        "a zero-rebuild revived pass must not lose to its paired cold pass, yet measured \
         {speedup_revived:.3}x (cold floor {art_spill_cold_s:.4}s vs revived floor \
         {art_revived_s:.4}s)"
    );
    let revived_vs_warm = art_revived_s / art_warm_s.max(1e-12);
    let _ = std::fs::remove_dir_all(&spill_dir);
    println!(
        "artifact revive ({fleet_size} designs x2): cold {:.1} ms, revived {:.1} ms \
         ({speedup_revived:.2}x, 0 graphs rebuilt, {} Gnet + {} Gseq + {} CSR revived; \
         {revived_vs_warm:.2}x of the warm floor {:.1} ms)",
        art_spill_cold_s * 1e3,
        art_revived_s * 1e3,
        revived_stats.net.revives,
        revived_stats.seq.revives,
        revive_svc_stats.csr_revives,
        art_warm_s * 1e3
    );

    // --- serve session: the daemon loop vs direct service execution --------
    //
    // The same N-job fleet driven two ways: directly through a serial
    // `PlacementService`, and over the wire through the `hidap --serve`
    // session loop (script in, frames out). Two scripted sessions run
    // against one daemon — the cold session interns and places every
    // design, the warm session resubmits the same jobs against the
    // still-warm store. The metrics on the wire must be bit-identical to
    // direct execution (`f64` Display round-trips exactly, so string
    // comparison IS bit comparison), and the warm/cold ratio times the
    // daemon's artifact reuse including all protocol overhead.
    eprintln!("serve session: {fleet_size} jobs, direct service ...");
    let serve_designs: Vec<Design> = fleet.clone();
    let mut direct = PlacementService::new(baselines::default_registry()).with_jobs(1);
    let direct_jobs: Vec<JobId> = serve_designs
        .iter()
        .enumerate()
        .map(|(i, design)| {
            let handle = direct.intern(design.clone());
            direct.submit(
                PlaceJob::new(handle, "hidap")
                    .with_effort(EffortLevel::Fast)
                    .with_seeds(vec![i as u64 + 1])
                    .with_evaluation(eval_cfg),
            )
        })
        .collect();
    direct.run_all();
    let direct_results: Vec<JobResult> = direct_jobs
        .into_iter()
        .map(|j| direct.take_result(j).expect("job ran").expect("job succeeded"))
        .collect();

    let make_daemon = || {
        let loader_designs = serve_designs.clone();
        let loader = move |spec: &server::InternSpec| -> Result<server::LoadedDesign, String> {
            let index: usize = spec
                .get("design")
                .ok_or_else(|| "intern needs design=<index>".to_string())?
                .parse()
                .map_err(|_| "design= must be an index".to_string())?;
            let design = loader_designs
                .get(index)
                .ok_or_else(|| format!("no fleet design {index}"))?
                .clone();
            Ok(server::LoadedDesign { design, dbu: 1000 })
        };
        let service = PlacementService::new(baselines::default_registry()).with_jobs(1);
        server::Server::new(placer_core::Scheduler::with_service(service), loader)
    };

    let submits: String = (0..fleet_size)
        .map(|i| {
            format!("submit design={i} flow=hidap effort=fast seeds={} evaluate=standard\n", i + 1)
        })
        .collect();
    let interns: String = (0..fleet_size).map(|i| format!("intern design={i}\n")).collect();
    // the warm script carries no shutdown so it can repeat for min-of-N
    // timing; a final one-frame session shuts the daemon down cleanly
    let cold_script = format!("hello client=bench\n{interns}{submits}drain\n");
    let warm_script = format!("hello client=bench\n{submits}drain\n");

    let run_session = |daemon: &mut server::Server, script: &str, expect: server::SessionEnd| {
        let out = server::SharedWriter::new(Vec::new());
        let t = Instant::now();
        let end = daemon.serve_once(script.as_bytes(), out.clone()).expect("session io");
        let elapsed = t.elapsed().as_secs_f64();
        assert_eq!(end, expect, "session ended unexpectedly");
        let transcript = String::from_utf8(out.lock().clone()).expect("utf-8 transcript");
        let done: Vec<server::Frame> = transcript
            .lines()
            .map(|line| server::Frame::parse(line).expect("well-formed frame"))
            .filter(|f| f.name == "job-done")
            .collect();
        (done, elapsed)
    };

    eprintln!("serve session: paired cold/warm sessions ({warm_passes}+ rounds) ...");
    let mut daemon = make_daemon();
    let mut serve_cold = Vec::new();
    let mut serve_warm = Vec::new();
    let mut serve_cold_s = f64::INFINITY;
    let mut serve_warm_s = f64::INFINITY;
    for round in 1..=warm_passes * 5 {
        let mut fresh = make_daemon();
        let (done, s) = run_session(&mut fresh, &cold_script, server::SessionEnd::Eof);
        serve_cold = done;
        serve_cold_s = serve_cold_s.min(s);
        daemon = fresh;
        let (done, s) = run_session(&mut daemon, &warm_script, server::SessionEnd::Eof);
        serve_warm = done;
        serve_warm_s = serve_warm_s.min(s);
        if round >= warm_passes && serve_warm_s <= serve_cold_s {
            break;
        }
    }
    run_session(&mut daemon, "hello client=bench\nshutdown\n", server::SessionEnd::Shutdown);
    assert_eq!(serve_cold.len(), fleet_size, "cold session completes every job");
    assert_eq!(serve_warm.len(), fleet_size, "warm session completes every job");
    assert_eq!(
        daemon.scheduler().service().store().artifacts().stats().seq.misses as usize,
        fleet_size,
        "the warm session rebuilds no graphs over the wire"
    );

    // every frame's metrics must match direct execution bit for bit, both
    // sessions (Display of f64/i128 is lossless, so equal strings ⇔ equal
    // bits)
    for frames in [&serve_cold, &serve_warm] {
        for (frame, direct) in frames.iter().zip(&direct_results) {
            let metrics = direct.outcome.metrics.as_ref().expect("evaluated job");
            assert_eq!(frame.get("seed"), Some(direct.outcome.seed.to_string().as_str()));
            assert_eq!(frame.get("hpwl_dbu"), Some(metrics.hpwl.dbu.to_string().as_str()));
            assert_eq!(
                frame.get("wirelength_m"),
                Some(metrics.wirelength_m.to_string().as_str()),
                "wire and direct wirelength disagree"
            );
            assert_eq!(frame.get("grc_percent"), Some(metrics.grc_percent().to_string().as_str()));
            assert_eq!(frame.get("wns_percent"), Some(metrics.wns_percent().to_string().as_str()));
            assert_eq!(frame.get("tns_ns"), Some(metrics.tns_ns().to_string().as_str()));
        }
    }
    let speedup_serve = serve_cold_s / serve_warm_s.max(1e-12);
    assert!(
        speedup_serve >= 1.0,
        "a warm session (no interns, no graph builds) must not lose to the cold one, yet \
         measured {speedup_serve:.3}x (cold floor {serve_cold_s:.4}s vs warm floor \
         {serve_warm_s:.4}s)"
    );
    println!(
        "serve session ({fleet_size} jobs x2): cold {:.1} ms, warm {:.1} ms \
         ({speedup_serve:.2}x, wire metrics ≡ direct)",
        serve_cold_s * 1e3,
        serve_warm_s * 1e3
    );

    // --- eco incremental: cold vs warm re-place after a one-macro edit -----
    //
    // The ECO loop of the replace subsystem: one design placed, then a
    // single macro's footprint resized (a pure-geometry edit) and the
    // design re-placed two ways — cold (full flow on the edited design,
    // fresh caches) and warm (a `replace` job warm-started from the held
    // base result, every identity-keyed artifact still cached). The warm
    // job must rebuild zero graphs, its result must be bit-identical to
    // running the warm flow directly in process (the service adds
    // orchestration, never drift), and the paired floors give the measured
    // ECO speedup. All assertions run before the JSON artifact is written.
    eprintln!("eco incremental: paired cold/warm re-place ({warm_passes}+ rounds) ...");
    let eco_design = fleet[0].clone();
    let eco_macro = eco_design.macros().next().expect("fleet designs carry macros");
    let (macro_w, macro_h) = {
        let c = eco_design.cell(eco_macro);
        (c.width, c.height)
    };
    let eco_edits = vec![netlist::DesignEdit::ResizeCell {
        cell: eco_macro,
        width: macro_w * 11 / 10,
        height: macro_h,
    }];
    let mut eco_edited = eco_design.clone();
    let eco_log = eco_edited.apply_edits(&eco_edits).expect("the eco edit applies");
    assert!(eco_log.diff.is_pure_geometry(), "a resize keeps the design identity");

    let mut eco_cold_s = f64::INFINITY;
    let mut eco_warm_s = f64::INFINITY;
    for round in 1..=warm_passes * 5 {
        // cold re-place: the edited design from scratch, empty caches
        let mut cold_svc = PlacementService::new(baselines::default_registry());
        let ch = cold_svc.intern(eco_edited.clone());
        let cold_job = cold_svc.submit(
            PlaceJob::new(ch, "hidap").with_effort(EffortLevel::Fast).with_evaluation(eval_cfg),
        );
        let t = Instant::now();
        cold_svc.run_all();
        eco_cold_s = eco_cold_s.min(t.elapsed().as_secs_f64());
        cold_svc.take_result(cold_job).expect("cold job ran").expect("cold job succeeded");

        // warm re-place: base place (untimed), then the replace job (timed)
        let mut warm_svc = PlacementService::new(baselines::default_registry());
        let wh = warm_svc.intern(eco_design.clone());
        let base_job = warm_svc.submit(
            PlaceJob::new(wh, "hidap").with_effort(EffortLevel::Fast).with_evaluation(eval_cfg),
        );
        warm_svc.run_all();
        let base_stats = warm_svc.store().artifacts().stats();
        let replace_job = warm_svc.submit(
            PlaceJob::new(wh, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_evaluation(eval_cfg)
                .with_replace(base_job, eco_edits.clone()),
        );
        let t = Instant::now();
        warm_svc.run_all();
        eco_warm_s = eco_warm_s.min(t.elapsed().as_secs_f64());
        let warm =
            warm_svc.take_result(replace_job).expect("replace ran").expect("replace succeeded");
        let eco_stats = warm_svc.store().artifacts().stats();
        assert_eq!(
            eco_stats.seq.misses, base_stats.seq.misses,
            "the warm re-place rebuilds no Gseq"
        );
        assert_eq!(
            eco_stats.net.misses, base_stats.net.misses,
            "the warm re-place rebuilds no Gnet"
        );
        assert!(warm.edit_log.as_ref().expect("edit log").diff.is_pure_geometry());
        assert!(warm.outcome.placement.is_legal(&eco_edited), "the warm re-place stays legal");

        // the service's warm result must match the warm flow run directly
        let base_outcome =
            warm_svc.take_result(base_job).expect("base held").expect("base succeeded").outcome;
        let base_metrics = base_outcome.metrics.as_ref().expect("base evaluated");
        let direct_req = PlaceRequest::new(&eco_edited)
            .with_seed(1)
            .with_effort(EffortLevel::Fast)
            .with_evaluation(eval_cfg)
            .with_warm_start(&base_outcome.placement)
            .with_warm_cells(&base_metrics.cell_placement);
        let direct = baselines::default_registry()
            .create("hidap")
            .expect("hidap flow")
            .place(&direct_req, &mut placer_core::PlaceContext::new())
            .expect("direct warm place");
        assert_eq!(
            warm.outcome.placement, direct.placement,
            "the service replace and the direct warm flow disagree"
        );
        assert_eq!(
            warm.outcome.metrics, direct.metrics,
            "the service replace and the direct warm flow metrics disagree"
        );

        if round >= warm_passes && eco_warm_s <= eco_cold_s {
            break;
        }
    }
    let speedup_eco = eco_cold_s / eco_warm_s.max(1e-12);
    assert!(
        speedup_eco >= 1.0,
        "a warm re-place (no global stages, no graph builds) must not lose to the cold one, \
         yet measured {speedup_eco:.3}x (cold floor {eco_cold_s:.4}s vs warm floor \
         {eco_warm_s:.4}s)"
    );
    println!(
        "eco incremental (one-macro resize): cold {:.1} ms, warm {:.1} ms \
         ({speedup_eco:.2}x, 0 graphs rebuilt, warm ≡ direct)",
        eco_cold_s * 1e3,
        eco_warm_s * 1e3
    );

    // --- scale sweep: the million-cell axis --------------------------------
    //
    // Each point runs the full text pipeline (generate → emit → streaming
    // parse → dense place → HPWL) with the dense results asserted
    // bit-identical to the hash-map reference, and records resident bytes
    // via HeapSize. Scale 12 is the mega_soc preset (~1M cells). The quick
    // list keeps CI at small scales; the committed BENCH_placer.json
    // carries the full curve.
    let curve: Vec<ScalePoint> = if scale_sweep {
        let scales = sweep_scales.unwrap_or_else(|| {
            if quick {
                vec![0.05, 0.1, 0.25]
            } else {
                vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 12.0]
            }
        });
        scales
            .into_iter()
            .map(|s| {
                let p = sweep_point(s);
                println!(
                    "scale {:>5}: {:>7} cells, gen {:>8.1} ms, parse {:>8.1} ms, place \
                     {:>8.1} ms, HPWL {:>7.1} ms, {:.1} MiB resident",
                    p.scale,
                    p.cells,
                    p.gen_ms,
                    p.parse_ms,
                    p.place_ms,
                    p.hpwl_ms,
                    p.peak_bytes as f64 / (1u64 << 20) as f64
                );
                p
            })
            .collect()
    } else {
        Vec::new()
    };
    let scale_curve_json: String = if curve.is_empty() {
        "[]".to_string()
    } else {
        let entries: Vec<String> = curve
            .iter()
            .map(|p| {
                format!(
                    "    {{\n      \"scale\": {},\n      \"cells\": {},\n      \"nets\": {},\n      \"macros\": {},\n      \"gen_ms\": {:.3},\n      \"parse_ms\": {:.3},\n      \"place_ms\": {:.3},\n      \"hpwl_ms\": {:.3},\n      \"parse_bytes\": {},\n      \"peak_bytes\": {},\n      \"bit_identical_to_reference\": true\n    }}",
                    p.scale,
                    p.cells,
                    p.nets,
                    p.macros,
                    p.gen_ms,
                    p.parse_ms,
                    p.place_ms,
                    p.hpwl_ms,
                    p.parse_bytes,
                    p.peak_bytes,
                )
            })
            .collect();
        format!("[\n{}\n  ]", entries.join(",\n"))
    };

    let json = format!(
        "{{\n  \"bench\": \"placer_sweep_plus_hpwl\",\n  \"workload\": \"large_soc\",\n  \"scale\": {scale},\n  \"cells\": {},\n  \"nets\": {},\n  \"pins\": {},\n  \"macros\": {},\n  \"repeats\": {repeats},\n  \"hashmap_place_ms\": {:.3},\n  \"hashmap_hpwl_ms\": {:.3},\n  \"dense_place_ms\": {:.3},\n  \"dense_hpwl_ms\": {:.3},\n  \"speedup_place\": {:.3},\n  \"speedup_hpwl\": {:.3},\n  \"speedup_combined\": {:.3},\n  \"hpwl_dbu\": {},\n  \"routed_nets\": {},\n  \"results_bit_identical\": true,\n  \"evaluator_reuse\": {{\n    \"candidates\": {candidates},\n    \"oneshot_ms\": {:.3},\n    \"reused_ms\": {:.3},\n    \"reused_parallel_ms\": {:.3},\n    \"workers\": {workers},\n    \"speedup\": {:.3},\n    \"speedup_parallel\": {:.3},\n    \"metrics_bit_identical\": true\n  }},\n  \"service_reuse\": {{\n    \"designs\": {fleet_size},\n    \"fleet_scale\": {fleet_scale},\n    \"jobs_per_pass\": {fleet_size},\n    \"cold_ms\": {:.3},\n    \"warm_ms\": {:.3},\n    \"speedup\": {:.3},\n    \"seq_graphs_built\": {seq_built},\n    \"seq_graphs_reused\": {seq_reused},\n    \"metrics_bit_identical\": true\n  }},\n  \"artifact_reuse\": {{\n    \"designs\": {fleet_size},\n    \"fleet_scale\": {fleet_scale},\n    \"cold_ms\": {:.3},\n    \"warm_ms\": {:.3},\n    \"rebuilt_ms\": {:.3},\n    \"revived_ms\": {:.3},\n    \"speedup\": {:.3},\n    \"speedup_revived\": {:.3},\n    \"revived_vs_warm\": {:.3},\n    \"net_graphs_built\": {net_built},\n    \"net_graphs_reused\": {net_reused},\n    \"warm_net_graph_builds\": 0,\n    \"warm_seq_graph_builds\": 0,\n    \"revived_graph_rebuilds\": 0,\n    \"net_graphs_revived\": {},\n    \"seq_graphs_revived\": {},\n    \"csr_revived\": {},\n    \"designs_evicted\": {evicted},\n    \"metrics_bit_identical\": true\n  }},\n  \"serve_session\": {{\n    \"jobs\": {fleet_size},\n    \"fleet_scale\": {fleet_scale},\n    \"cold_ms\": {:.3},\n    \"warm_ms\": {:.3},\n    \"speedup\": {:.3},\n    \"warm_graph_rebuilds\": 0,\n    \"metrics_bit_identical_to_direct\": true\n  }},\n  \"eco_incremental\": {{\n    \"fleet_scale\": {fleet_scale},\n    \"edit\": \"resize one macro +10% width (pure geometry)\",\n    \"cold_ms\": {:.3},\n    \"warm_ms\": {:.3},\n    \"speedup\": {:.3},\n    \"warm_net_graph_builds\": 0,\n    \"warm_seq_graph_builds\": 0,\n    \"warm_bit_identical_to_direct\": true\n  }},\n  \"warm_samples\": {warm_passes},\n  \"scale_curve\": {scale_curve_json}\n}}\n",
        design.num_cells(),
        design.num_nets(),
        csr.num_pins(),
        design.num_macros(),
        hm_place * 1e3,
        hm_hpwl * 1e3,
        dn_place * 1e3,
        dn_hpwl * 1e3,
        speedup_place,
        speedup_hpwl,
        speedup_total,
        wl_dense.dbu,
        wl_dense.routed_nets,
        oneshot_s * 1e3,
        reused_s * 1e3,
        parallel_s * 1e3,
        speedup_eval,
        speedup_parallel,
        cold_s * 1e3,
        warm_s * 1e3,
        speedup_service,
        art_cold_s * 1e3,
        art_warm_s * 1e3,
        art_rebuilt_s * 1e3,
        art_revived_s * 1e3,
        speedup_artifact,
        speedup_revived,
        revived_vs_warm,
        revived_stats.net.revives,
        revived_stats.seq.revives,
        revive_svc_stats.csr_revives,
        serve_cold_s * 1e3,
        serve_warm_s * 1e3,
        speedup_serve,
        eco_cold_s * 1e3,
        eco_warm_s * 1e3,
        speedup_eco,
    );
    std::fs::write(&out_path, json).expect("write BENCH_placer.json");
    eprintln!("wrote {out_path}");
}
