//! Regenerates Fig. 1 of the paper: the evolution of the multi-level block
//! floorplan of a 16-macro design, from the first top-level partition down to
//! fixed macro locations.
//!
//! ```text
//! cargo run --release -p bench --bin fig1 -- [--effort fast|default|paper]
//! ```

use bench::experiments::parse_common_args;
use bench::report::ascii_floorplan;
use hidap::{HidapFlow, MacroPlacement};
use workload::presets::fig1_design;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, effort) = parse_common_args(&args, &[]);

    let generated = fig1_design();
    let design = &generated.design;
    println!(
        "# Fig. 1 reproduction: {} macros, {} cells, die {} x {}",
        design.num_macros(),
        design.num_cells(),
        design.die().width(),
        design.die().height()
    );

    let placement: MacroPlacement =
        HidapFlow::new(effort.hidap_config()).run(design).expect("HiDaP flow failed");

    // Stage (a): the top-level block partition found by declustering.
    println!("\n(a) top-level block floorplan (dark blocks hold macros):");
    println!("{}", ascii_floorplan(design.die(), &placement.top_blocks, 64));

    // Stage (d): final macro locations.
    println!("(d) final macro placement:");
    let macro_rects: Vec<(String, geometry::Rect)> = placement
        .macros
        .iter()
        .map(|m| {
            let cell = design.cell(m.cell);
            (cell.name.clone(), placement.rect_of(m.cell, design).expect("placed macro"))
        })
        .collect();
    println!("{}", ascii_floorplan(design.die(), &macro_rects, 64));

    println!("legal: {}", placement.is_legal(design));
    for (name, rect) in &macro_rects {
        println!("  {:<22} {}", name, rect);
    }
}
