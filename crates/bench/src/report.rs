//! Text-table formatting for the experiment binaries.

use crate::experiments::{geometric_mean, CircuitComparison};

/// Formats Table III: one row per (circuit, flow).
pub fn format_table3(comparisons: &[CircuitComparison]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:<10} {:<8} {:>10} {:>8} {:>8} {:>8} {:>10} {:>9}\n",
        "circ", "cells", "flow", "WL (m)", "norm.", "GRC%", "WNS%", "TNS (ns)", "time (s)"
    ));
    out.push_str(&"-".repeat(86));
    out.push('\n');
    for cmp in comparisons {
        for (i, r) in cmp.results.iter().enumerate() {
            let label = if i == 0 {
                format!("{} ({}k/{}M)", cmp.circuit, cmp.cells / 1000, cmp.macros)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{:<6} {:<10} {:<8} {:>10.3} {:>8.3} {:>8.2} {:>8.1} {:>10.1} {:>9.1}\n",
                if i == 0 { cmp.circuit.as_str() } else { "" },
                if i == 0 { format!("{}c/{}m", cmp.cells, cmp.macros) } else { String::new() },
                r.flow,
                r.wirelength_m,
                r.wl_normalized,
                r.grc_percent,
                r.wns_percent,
                r.tns_ns,
                r.runtime_s,
            ));
            let _ = label;
        }
        out.push('\n');
    }
    out
}

/// Formats Table II: geometric-mean normalized WL, average WNS and runtime
/// range per flow.
pub fn format_table2(comparisons: &[CircuitComparison]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>10} {:>10} {:>22}\n",
        "flow", "WL (gm)", "WNS (avg)", "effort"
    ));
    out.push_str(&"-".repeat(54));
    out.push('\n');
    for flow in ["IndEDA", "HiDaP", "handFP"] {
        let norm: Vec<f64> =
            comparisons.iter().filter_map(|c| c.flow(flow).map(|r| r.wl_normalized)).collect();
        let wns: Vec<f64> =
            comparisons.iter().filter_map(|c| c.flow(flow).map(|r| r.wns_percent)).collect();
        let times: Vec<f64> =
            comparisons.iter().filter_map(|c| c.flow(flow).map(|r| r.runtime_s)).collect();
        let avg_wns = if wns.is_empty() { 0.0 } else { wns.iter().sum::<f64>() / wns.len() as f64 };
        let (tmin, tmax) =
            times.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &t| (lo.min(t), hi.max(t)));
        out.push_str(&format!(
            "{:<8} {:>10.3} {:>9.1}% {:>14.1}-{:.1} s\n",
            flow,
            geometric_mean(&norm),
            avg_wns,
            if tmin.is_finite() { tmin } else { 0.0 },
            tmax,
        ));
    }
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serializes comparisons as pretty-printed JSON (for `table3_results.json`).
pub fn comparisons_json(comparisons: &[CircuitComparison]) -> String {
    let mut out = String::from("[\n");
    for (i, cmp) in comparisons.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!("    \"circuit\": {},\n", json_string(&cmp.circuit)));
        out.push_str(&format!("    \"cells\": {},\n", cmp.cells));
        out.push_str(&format!("    \"macros\": {},\n", cmp.macros));
        out.push_str(&format!("    \"hidap_best_lambda\": {},\n", json_f64(cmp.hidap_best_lambda)));
        out.push_str("    \"results\": [\n");
        for (j, r) in cmp.results.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"flow\": {}, \"wirelength_m\": {}, \"wl_normalized\": {}, \
\"grc_percent\": {}, \"wns_percent\": {}, \"tns_ns\": {}, \"runtime_s\": {}, \"legal\": {}}}{}\n",
                json_string(&r.flow),
                json_f64(r.wirelength_m),
                json_f64(r.wl_normalized),
                json_f64(r.grc_percent),
                json_f64(r.wns_percent),
                json_f64(r.tns_ns),
                json_f64(r.runtime_s),
                r.legal,
                if j + 1 < cmp.results.len() { "," } else { "" },
            ));
        }
        out.push_str("    ]\n");
        out.push_str(if i + 1 < comparisons.len() { "  },\n" } else { "  }\n" });
    }
    out.push(']');
    out
}

/// Renders a block floorplan (name + rectangle) as an ASCII sketch of the die.
pub fn ascii_floorplan(
    die: geometry::Rect,
    blocks: &[(String, geometry::Rect)],
    width: usize,
) -> String {
    let height =
        (width as f64 * die.height() as f64 / die.width().max(1) as f64 * 0.5).round() as usize;
    let height = height.max(8);
    let mut grid = vec![vec![' '; width]; height];
    for (idx, (_, rect)) in blocks.iter().enumerate() {
        let label = char::from(b'A' + (idx % 26) as u8);
        let x0 = ((rect.llx - die.llx) as f64 / die.width() as f64 * width as f64) as usize;
        let x1 =
            (((rect.urx - die.llx) as f64 / die.width() as f64 * width as f64) as usize).min(width);
        let y0 = ((rect.lly - die.lly) as f64 / die.height() as f64 * height as f64) as usize;
        let y1 = (((rect.ury - die.lly) as f64 / die.height() as f64 * height as f64) as usize)
            .min(height);
        for row in grid.iter_mut().take(y1).skip(y0) {
            for cell in row.iter_mut().take(x1).skip(x0) {
                *cell = label;
            }
        }
    }
    let mut out = String::new();
    for row in grid.iter().rev() {
        out.push('|');
        out.extend(row.iter());
        out.push_str("|\n");
    }
    let legend: Vec<String> = blocks
        .iter()
        .enumerate()
        .map(|(idx, (name, _))| format!("{}={}", char::from(b'A' + (idx % 26) as u8), name))
        .collect();
    out.push_str(&legend.join("  "));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::FlowResult;

    fn fake_comparison() -> CircuitComparison {
        let make = |flow: &str, wl: f64| FlowResult {
            flow: flow.into(),
            wirelength_m: wl,
            wl_normalized: wl / 10.0,
            grc_percent: 5.0,
            wns_percent: -10.0,
            tns_ns: -100.0,
            runtime_s: 1.5,
            legal: true,
        };
        CircuitComparison {
            circuit: "c1".into(),
            cells: 2000,
            macros: 32,
            results: vec![make("IndEDA", 12.0), make("HiDaP", 10.5), make("handFP", 10.0)],
            hidap_best_lambda: 0.5,
        }
    }

    #[test]
    fn table3_contains_all_flows() {
        let text = format_table3(&[fake_comparison()]);
        assert!(text.contains("IndEDA"));
        assert!(text.contains("HiDaP"));
        assert!(text.contains("handFP"));
        assert!(text.contains("c1"));
    }

    #[test]
    fn table2_has_three_rows() {
        let text = format_table2(&[fake_comparison()]);
        assert_eq!(text.lines().count(), 2 + 3);
        assert!(text.contains("HiDaP"));
    }

    #[test]
    fn comparisons_json_is_well_formed() {
        let json = comparisons_json(&[fake_comparison()]);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"circuit\": \"c1\""));
        assert!(json.contains("\"flow\": \"HiDaP\""));
        assert_eq!(json.matches("\"legal\": true").count(), 3);
        // escaping
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn ascii_floorplan_draws_blocks() {
        let die = geometry::Rect::new(0, 0, 100, 100);
        let blocks = vec![
            ("left".to_string(), geometry::Rect::new(0, 0, 50, 100)),
            ("right".to_string(), geometry::Rect::new(50, 0, 100, 100)),
        ];
        let art = ascii_floorplan(die, &blocks, 40);
        assert!(art.contains('A'));
        assert!(art.contains('B'));
        assert!(art.contains("A=left"));
    }
}
